//! Approximate betweenness centrality on a social-network stand-in
//! (the Sec. 4.3 / Fig. 7c workflow) and compare against the
//! Riondato–Kornaropoulos sampling baseline of Table 1.
//!
//! Run with: `cargo run -p qsc-examples --bin centrality_social --release`

use qsc_centrality::approx::{approximate, CentralityApproxConfig};
use qsc_centrality::sampling::{betweenness_sampling, SamplingConfig};
use qsc_centrality::{brandes, spearman};
use qsc_examples::{fmt, section};

fn main() {
    let g = qsc_datasets::load_graph("facebook", qsc_datasets::Scale::Small).expect("dataset");
    println!(
        "social-graph stand-in for facebook: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    section("Exact betweenness (Brandes)");
    let start = std::time::Instant::now();
    let exact = brandes::betweenness(&g);
    let exact_secs = start.elapsed().as_secs_f64();
    let mut top: Vec<usize> = (0..g.num_nodes()).collect();
    top.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap());
    println!("time: {:.3}s", exact_secs);
    println!("top-5 nodes by betweenness: {:?}", &top[..5]);

    section("Quasi-stable coloring approximation");
    println!("{:<8} {:>12} {:>10}", "colors", "Spearman ρ", "time(s)");
    for budget in [10, 25, 50, 100] {
        let start = std::time::Instant::now();
        let approx = approximate(&g, &CentralityApproxConfig::with_max_colors(budget));
        let secs = start.elapsed().as_secs_f64();
        let rho = spearman(&exact, &approx.scores);
        println!(
            "{:<8} {:>12} {:>10}",
            approx.partition.num_colors(),
            fmt(rho),
            fmt(secs)
        );
    }

    section("Riondato–Kornaropoulos sampling baseline");
    println!("{:<8} {:>12} {:>10}", "epsilon", "Spearman ρ", "time(s)");
    for epsilon in [0.1, 0.05, 0.03] {
        let start = std::time::Instant::now();
        let est = betweenness_sampling(&g, &SamplingConfig::with_epsilon(epsilon));
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<8} {:>12} {:>10}",
            epsilon,
            fmt(spearman(&exact, &est)),
            fmt(secs)
        );
    }
}
