//! Approximate a structured linear program via quasi-stable coloring
//! (the Sec. 4.1 / Fig. 7b workflow, on the qap15 stand-in).
//!
//! Solves the LP exactly with the interior-point solver, then for several
//! color budgets builds the reduced LP of Eq. (6), solves it with the
//! simplex solver and reports size, runtime and relative error.
//!
//! Run with: `cargo run -p qsc-examples --bin lp_approximation --release`

use qsc_examples::{fmt, section};
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::simplex;

fn main() {
    let lp = qsc_datasets::load_lp("qap15", qsc_datasets::Scale::Full).expect("dataset");
    println!(
        "LP stand-in for qap15: {} rows, {} cols, {} non-zeros",
        lp.num_rows(),
        lp.num_cols(),
        lp.num_nonzeros()
    );

    section("Exact solution (interior point)");
    let start = std::time::Instant::now();
    let (exact, _) = interior_point::solve_with(&lp, &InteriorPointConfig::default());
    let exact_secs = start.elapsed().as_secs_f64();
    println!("optimal value: {}", fmt(exact.objective));
    println!("time: {:.3}s", exact_secs);

    section("Quasi-stable coloring approximations (Eq. 6 reduction)");
    println!(
        "{:<8} {:>6} {:>6} {:>10} {:>10} {:>10}",
        "colors", "rows", "cols", "value", "rel.err", "time(s)"
    );
    for budget in [6, 10, 20, 40, 80] {
        let start = std::time::Instant::now();
        let reduced = reduce_with_rothko(
            &lp,
            &LpColoringConfig::with_max_colors(budget),
            LpReductionVariant::SqrtNormalized,
        );
        let sol = simplex::solve(&reduced.problem);
        let secs = start.elapsed().as_secs_f64();
        let rel = if sol.objective > 0.0 && exact.objective > 0.0 {
            (sol.objective / exact.objective).max(exact.objective / sol.objective)
        } else {
            f64::INFINITY
        };
        println!(
            "{:<8} {:>6} {:>6} {:>10} {:>10} {:>10}",
            budget,
            reduced.num_rows(),
            reduced.num_cols(),
            fmt(sol.objective),
            fmt(rel),
            fmt(secs)
        );
    }

    section("Lifting a reduced solution back to the original variables");
    let reduced = reduce_with_rothko(
        &lp,
        &LpColoringConfig::with_max_colors(40),
        LpReductionVariant::SqrtNormalized,
    );
    let sol = simplex::solve(&reduced.problem);
    let lifted = reduced.lift_solution(&sol.x);
    println!(
        "lifted point: {} variables, objective {}, max constraint violation {}",
        lifted.len(),
        fmt(lp.objective_value(&lifted)),
        fmt(lp.max_violation(&lifted))
    );
}
