//! The robustness experiment of Fig. 2: stable coloring collapses under a
//! handful of random edge insertions, quasi-stable coloring does not.
//!
//! Run with: `cargo run -p qsc-examples --bin robustness --release`

use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::stable_coloring;
use qsc_examples::section;
use qsc_graph::generators::{perturb_add_edges, stable_blueprint_graph};

fn main() {
    // |V| = 1000, |E| ≈ 21 600, stable coloring of size ≈ 100 by
    // construction (Fig. 2's synthetic graph).
    let base = stable_blueprint_graph(100, 10, 0.44, 1, 42);
    println!(
        "synthetic regular graph: {} nodes, {} edges",
        base.num_nodes(),
        base.num_edges()
    );

    section("Colors vs. fraction of perturbed edges");
    println!(
        "{:<12} {:>14} {:>16} {:>14}",
        "added edges", "% of |E|", "stable colors", "q=4 colors"
    );
    let m = base.num_edges();
    for added in [0usize, 40, 80, 160, 240, 320] {
        let g = if added == 0 {
            base.clone()
        } else {
            perturb_add_edges(&base, added, 7 + added as u64)
        };
        let stable = stable_coloring(&g).num_colors();
        let qstable = Rothko::new(RothkoConfig::with_target_error(4.0))
            .run(&g)
            .partition
            .num_colors();
        println!(
            "{:<12} {:>13.2}% {:>16} {:>14}",
            added,
            100.0 * added as f64 / m as f64,
            stable,
            qstable
        );
    }
    println!();
    println!(
        "The stable coloring degrades towards one color per node, while the \
         q-stable coloring stays two orders of magnitude smaller."
    );
}
