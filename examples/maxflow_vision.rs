//! Approximate max-flow on a vision-style grid network (the Sec. 4.2 /
//! Fig. 7a workflow, on the Tsukuba stereo-vision stand-in).
//!
//! Run with: `cargo run -p qsc-examples --bin maxflow_vision --release`

use qsc_examples::{fmt, section};
use qsc_flow::reduce::{approximate_max_flow, relative_error, FlowApproxConfig};
use qsc_flow::{dinic, push_relabel};

fn main() {
    let network = qsc_datasets::load_flow("tsukuba0", qsc_datasets::Scale::Full).expect("dataset");
    println!(
        "flow network stand-in for tsukuba0: {} nodes, {} arcs",
        network.num_nodes(),
        network.num_edges()
    );

    section("Exact max-flow (push-relabel baseline)");
    let start = std::time::Instant::now();
    let exact = push_relabel::max_flow(&network);
    let exact_secs = start.elapsed().as_secs_f64();
    println!("max flow: {}", fmt(exact.value));
    println!("time: {:.3}s ({} relabels)", exact_secs, exact.iterations);

    let check = dinic::max_flow(&network);
    println!("cross-check (Dinic): {}", fmt(check.value));

    section("Coloring-based approximation (Theorem 6 upper bound)");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "colors", "value", "rel.err", "max q", "time(s)"
    );
    for budget in [5, 10, 20, 35, 60] {
        let start = std::time::Instant::now();
        let approx = approximate_max_flow(&network, &FlowApproxConfig::with_max_colors(budget));
        let secs = start.elapsed().as_secs_f64();
        println!(
            "{:<8} {:>10} {:>10} {:>10} {:>10}",
            approx.colors,
            fmt(approx.value),
            fmt(relative_error(exact.value, approx.value)),
            fmt(approx.max_q_error),
            fmt(secs)
        );
    }

    section("Minimum cut of the original network");
    let cut = qsc_flow::min_cut(&network);
    println!(
        "min-cut capacity {} across {} edges (equals the max flow, as it must)",
        fmt(cut.capacity),
        cut.edges.len()
    );
}
