//! Quickstart: color Zachary's karate club (Fig. 1 of the paper).
//!
//! Computes the classical stable coloring (27 colors — barely smaller than
//! the 34-node graph) and a 6-color quasi-stable coloring, showing the
//! compression/error trade-off and the reduced graph.
//!
//! Run with: `cargo run -p qsc-examples --bin quickstart`

use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::{coloring_stats, reduced_graph, stable_coloring, ReductionWeighting};
use qsc_examples::section;
use qsc_graph::generators::karate_club;

fn main() {
    let g = karate_club();
    println!(
        "Zachary's karate club: {} nodes, {} edges",
        g.num_nodes(),
        g.num_edges()
    );

    section("Stable coloring (1-WL, exact)");
    let stable = stable_coloring(&g);
    let stats = coloring_stats(&stable);
    println!("colors: {}", stats.colors);
    println!("compression ratio: {:.2}:1", stats.compression_ratio);
    println!("singleton colors: {}", stats.singletons);

    section("Quasi-stable coloring with 6 colors (Fig. 1b)");
    let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
    let stats = coloring_stats(&coloring.partition);
    println!("colors: {}", stats.colors);
    println!("max q-error: {}", coloring.max_q_error);
    println!("mean q-error: {:.3}", coloring.mean_q_error);
    println!("compression ratio: {:.2}:1", stats.compression_ratio);
    for (color, members) in coloring.partition.classes() {
        let labels: Vec<String> = members.iter().map(|&v| (v + 1).to_string()).collect();
        println!("  color {color}: {{{}}}", labels.join(", "));
    }

    section("Reduced graph");
    let reduced = reduced_graph(&g, &coloring.partition, ReductionWeighting::Sum);
    println!(
        "reduced graph: {} nodes, {} edges (original: {} nodes, {} edges)",
        reduced.num_nodes(),
        reduced.num_edges(),
        g.num_nodes(),
        g.num_edges()
    );
    for (i, j, w) in reduced.edges() {
        if i <= j {
            println!("  w(P{i}, P{j}) = {w}");
        }
    }
}
