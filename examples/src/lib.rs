//! Shared helpers for the runnable examples.
//!
//! The examples themselves live at the package root (`quickstart.rs`,
//! `lp_approximation.rs`, `maxflow_vision.rs`, `centrality_social.rs`,
//! `robustness.rs`) and are declared as binaries of this package:
//!
//! ```text
//! cargo run -p qsc-examples --bin quickstart
//! cargo run -p qsc-examples --bin lp_approximation --release
//! ```

/// Format a floating-point value for the example output tables.
pub fn fmt(value: f64) -> String {
    if value.abs() >= 100.0 {
        format!("{value:.1}")
    } else {
        format!("{value:.3}")
    }
}

/// Print a section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_rules() {
        assert_eq!(fmt(1234.5678), "1234.6");
        assert_eq!(fmt(1.23456), "1.235");
    }
}
