//! Shared helpers for integration tests.
