//! Cross-crate property tests for the coloring core: every Rothko output is
//! a valid q-stable coloring, stable coloring is a fixpoint, and the lattice
//! operations behave.

use proptest::prelude::*;
use qsc_core::q_error::{max_q_error, q_error_report};
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_core::{stable_coloring, Partition};
use qsc_graph::{generators, Graph, GraphBuilder};

/// Build a random graph from a proptest-generated edge list.
fn graph_from_edges(n: usize, edges: &[(u8, u8)], directed: bool) -> Graph {
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for &(u, v) in edges {
        let u = (u as usize % n) as u32;
        let v = (v as usize % n) as u32;
        if u != v {
            b.add_edge(u, v, 1.0);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rothko_respects_error_target(
        edges in proptest::collection::vec((0u8..40, 0u8..40), 20..200),
        q in 0.0f64..6.0,
        directed in any::<bool>(),
    ) {
        let g = graph_from_edges(40, &edges, directed);
        let coloring = Rothko::new(RothkoConfig::with_target_error(q)).run(&g);
        prop_assert!(coloring.partition.validate());
        // The run only stops on the error criterion (there is no color cap),
        // so the final coloring must satisfy it.
        prop_assert!(
            coloring.max_q_error <= q + 1e-9,
            "target {} but got {}", q, coloring.max_q_error
        );
        // And the reported error must be exact.
        prop_assert!((coloring.max_q_error - max_q_error(&g, &coloring.partition)).abs() < 1e-9);
    }

    #[test]
    fn rothko_respects_color_budget(
        edges in proptest::collection::vec((0u8..50, 0u8..50), 30..250),
        budget in 2usize..20,
    ) {
        let g = graph_from_edges(50, &edges, false);
        let coloring = Rothko::new(RothkoConfig::with_max_colors(budget)).run(&g);
        prop_assert!(coloring.partition.num_colors() <= budget);
        prop_assert!(coloring.partition.validate());
        // Each iteration adds exactly one color starting from one.
        prop_assert_eq!(coloring.partition.num_colors(), coloring.iterations + 1);
    }

    #[test]
    fn stable_coloring_is_fixpoint_and_refines_rothko(
        edges in proptest::collection::vec((0u8..30, 0u8..30), 10..150),
    ) {
        let g = graph_from_edges(30, &edges, false);
        let stable = stable_coloring(&g);
        // Zero q-error: the definition of stability.
        prop_assert_eq!(max_q_error(&g, &stable), 0.0);
        // Rothko with q = 0 also reaches a stable coloring and cannot be
        // coarser than the coarsest stable coloring.
        let rothko = Rothko::new(RothkoConfig::with_target_error(0.0)).run(&g);
        prop_assert_eq!(rothko.max_q_error, 0.0);
        prop_assert!(rothko.partition.num_colors() >= stable.num_colors());
    }

    #[test]
    fn geometric_split_also_valid(
        edges in proptest::collection::vec((0u8..40, 0u8..40), 30..200),
        budget in 3usize..15,
    ) {
        let g = graph_from_edges(40, &edges, false);
        let config = RothkoConfig::with_max_colors(budget).split_mean(SplitMean::Geometric);
        let coloring = Rothko::new(config).run(&g);
        prop_assert!(coloring.partition.validate());
        prop_assert!(coloring.partition.num_colors() <= budget);
    }

    #[test]
    fn meet_refines_both_operands(
        assignment_a in proptest::collection::vec(0u32..5, 30),
        assignment_b in proptest::collection::vec(0u32..4, 30),
    ) {
        let p = Partition::from_assignment(&assignment_a);
        let q = Partition::from_assignment(&assignment_b);
        let m = p.meet(&q);
        prop_assert!(m.is_refinement_of(&p));
        prop_assert!(m.is_refinement_of(&q));
        prop_assert!(m.validate());
    }

    #[test]
    fn q_error_monotone_under_refinement(
        edges in proptest::collection::vec((0u8..30, 0u8..30), 20..150),
        budget in 3usize..12,
    ) {
        // Splitting colors can only reduce (or keep) the maximum error: the
        // error of the finer Rothko coloring is at most the error of the
        // coarser one produced along the same run.
        let g = graph_from_edges(30, &edges, false);
        let rothko = Rothko::new(RothkoConfig::with_max_colors(budget));
        let mut run = rothko.start(&g);
        let mut previous = f64::INFINITY;
        while run.step() {
            let report = q_error_report(&g, run.partition());
            // Not strictly monotone step to step, but never worse than the
            // single-color starting point and finite.
            prop_assert!(report.max_q.is_finite());
            previous = previous.min(report.max_q);
        }
        let final_report = q_error_report(&g, run.partition());
        prop_assert!(final_report.max_q <= max_q_error(&g, &Partition::unit(30)) + 1e-9);
    }
}

#[test]
fn karate_stable_coloring_matches_paper_figure() {
    // Fig. 1a: the karate club's stable coloring needs 27 colors; Fig. 1b: a
    // q-stable coloring with 6 colors reaches q <= 3 in the paper. Our
    // heuristic reaches a single-digit q with the same budget and puts the
    // two club leaders (nodes 1 and 34) in a small, separate color.
    let g = generators::karate_club();
    assert_eq!(stable_coloring(&g).num_colors(), 27);
    let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
    assert_eq!(coloring.partition.num_colors(), 6);
    assert!(coloring.max_q_error <= 6.0);
    let leader_color = coloring.partition.color_of(0);
    assert_eq!(leader_color, coloring.partition.color_of(33));
    assert!(coloring.partition.size(leader_color) <= 4);
}

#[test]
fn fig2_stable_coloring_collapses_but_qstable_does_not() {
    // The Fig. 2 robustness phenomenon, end to end.
    let base = generators::stable_blueprint_graph(50, 8, 0.4, 1, 11);
    let stable_base = stable_coloring(&base).num_colors();
    assert!(
        stable_base <= 50 + 5,
        "base stable coloring too large: {stable_base}"
    );

    let perturbed = generators::perturb_add_edges(&base, 40, 3);
    let stable_after = stable_coloring(&perturbed).num_colors();
    let qstable_after = Rothko::new(RothkoConfig::with_target_error(4.0))
        .run(&perturbed)
        .partition
        .num_colors();
    assert!(
        stable_after > 3 * qstable_after,
        "stable {stable_after} should blow up relative to q-stable {qstable_after}"
    );
}

#[test]
fn clamped_similarity_maximum_coloring_is_reachable() {
    // Theorem 12 (1): congruence relations admit a unique maximum coloring.
    // For the clamped congruence with c = infinity the maximum coloring is
    // the stable coloring; sanity-check via q-error = 0.
    let g = generators::barabasi_albert(80, 2, 9);
    let stable = stable_coloring(&g);
    assert_eq!(max_q_error(&g, &stable), 0.0);
    assert!(qsc_core::q_error::is_quasi_stable(
        &g,
        &stable,
        &qsc_core::Exact
    ));
}
