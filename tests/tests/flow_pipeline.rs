//! Cross-crate max-flow tests: Theorem 6's sandwich, max-flow = min-cut,
//! solver agreement, and the Fig. 4 / Example 7 pathological instance.

use proptest::prelude::*;
use qsc_core::Partition;
use qsc_flow::generators::{grid_flow_network, layered_random_network};
use qsc_flow::reduce::{
    approximate_max_flow, approximate_with_partition, color_network, reduced_network_lower,
    reduced_network_upper, relative_error, FlowApproxConfig,
};
use qsc_flow::{dinic, edmonds_karp, min_cut, push_relabel, FlowNetwork};
use qsc_graph::{generators, GraphBuilder};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn solvers_agree_and_match_min_cut(
        seed in 0u64..500,
        n in 10usize..40,
        m_factor in 2usize..6,
    ) {
        let g = generators::erdos_renyi_nm(n, (n * m_factor).min(n * (n - 1) / 2), seed)
            .to_directed();
        let net = FlowNetwork::new(g, 0, (n - 1) as u32);
        let d = dinic::max_flow(&net).value;
        let ek = edmonds_karp::max_flow(&net).value;
        let pr = push_relabel::max_flow(&net).value;
        prop_assert!((d - ek).abs() < 1e-6, "dinic {} vs edmonds-karp {}", d, ek);
        prop_assert!((d - pr).abs() < 1e-6, "dinic {} vs push-relabel {}", d, pr);
        let cut = min_cut(&net);
        prop_assert!((cut.capacity - d).abs() < 1e-6);
        let cut_capacity: f64 = cut.edges.iter().map(|&(_, _, c)| c).sum();
        prop_assert!(cut_capacity + 1e-6 >= d);
    }

    #[test]
    fn theorem6_upper_bound_holds_for_any_coloring(
        seed in 0u64..200,
        colors in 3usize..12,
    ) {
        let net = layered_random_network(4, 8, 0.35, 4.0, seed);
        let exact = dinic::max_flow(&net).value;
        let partition = color_network(&net, &FlowApproxConfig::with_max_colors(colors));
        let (upper_net, _, _) = reduced_network_upper(&net, &partition);
        let upper = dinic::max_flow(&upper_net).value;
        prop_assert!(
            upper + 1e-6 >= exact,
            "upper bound {} below exact {}", upper, exact
        );
    }

    #[test]
    fn theorem6_lower_bound_holds(
        seed in 0u64..60,
        colors in 3usize..8,
    ) {
        // Smaller networks: the lower bound needs one max-uniform-flow
        // computation per color pair.
        let (net, _) = grid_flow_network(5, 5, 2.0, 0.3, seed);
        let exact = dinic::max_flow(&net).value;
        let partition = color_network(&net, &FlowApproxConfig::with_max_colors(colors));
        let lower_net = reduced_network_lower(&net, &partition, 1e-6);
        let lower = dinic::max_flow(&lower_net).value;
        prop_assert!(
            lower <= exact + 1e-4,
            "lower bound {} exceeds exact {}", lower, exact
        );
    }
}

#[test]
fn fig4_pathological_instance_demonstrates_both_failure_modes() {
    // Example 7: a 1-stable coloring whose ĉ₂ upper bound badly
    // overestimates and whose ĉ₁ lower bound collapses to zero.
    let layers = 6;
    let layer_size = 8;
    let (g, s, t) = generators::pathological_flow_layers(layers, layer_size);
    let n = g.num_nodes();
    let net = FlowNetwork::new(g, s, t);
    let exact = dinic::max_flow(&net).value;

    let mut assignment = vec![0u32; n];
    for l in 0..layers {
        for i in 0..layer_size {
            assignment[l * layer_size + i] = l as u32;
        }
    }
    assignment[s as usize] = layers as u32;
    assignment[t as usize] = layers as u32 + 1;
    let partition = Partition::from_assignment(&assignment);
    assert!(qsc_core::q_error::max_q_error(&net.graph, &partition) <= 1.0);

    let approx = approximate_with_partition(&net, partition.clone());
    assert!(
        approx.value >= exact + 1.0,
        "upper bound {} should overestimate exact {}",
        approx.value,
        exact
    );
    let lower_net = reduced_network_lower(&net, &partition, 1e-6);
    let lower = dinic::max_flow(&lower_net).value;
    assert!(lower < 0.5, "lower bound should collapse, got {lower}");
}

#[test]
fn corollary9_stable_coloring_preserves_max_flow() {
    // Build a network made of identical parallel branches: the stable
    // coloring merges the branches and Corollary 9 (2) promises the reduced
    // flow equals the exact flow.
    let branches = 5;
    let mut b = GraphBuilder::new_directed(2 + 2 * branches);
    let s = 0u32;
    let t = 1u32;
    for i in 0..branches as u32 {
        let a = 2 + 2 * i;
        let c = 3 + 2 * i;
        b.add_edge(s, a, 2.0);
        b.add_edge(a, c, 1.0);
        b.add_edge(c, t, 2.0);
    }
    let net = FlowNetwork::new(b.build(), s, t);
    let exact = dinic::max_flow(&net).value;
    assert!((exact - branches as f64).abs() < 1e-9);

    let stable = qsc_core::stable_coloring(&net.graph);
    // Source and sink end up in their own colors because their degrees are
    // unique.
    assert_eq!(stable.size(stable.color_of(s)), 1);
    assert_eq!(stable.size(stable.color_of(t)), 1);
    let approx = approximate_with_partition(&net, stable);
    assert!((approx.value - exact).abs() < 1e-9);
    assert_eq!(approx.max_q_error, 0.0);
}

#[test]
fn grid_approximation_quality_improves_with_colors() {
    // The Fig. 8a shape: error decreases (roughly monotonically) with the
    // number of colors.
    let (net, _) = grid_flow_network(12, 10, 3.0, 0.25, 9);
    let exact = dinic::max_flow(&net).value;
    let mut errors = Vec::new();
    for colors in [4, 8, 16, 32] {
        let approx = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(colors));
        errors.push(relative_error(exact, approx.value));
    }
    assert!(
        errors.last().unwrap() <= &(errors[0] + 0.3),
        "error should not grow substantially with colors: {errors:?}"
    );
    assert!(
        *errors.last().unwrap() < 2.5,
        "32-color error too large: {errors:?}"
    );
}
