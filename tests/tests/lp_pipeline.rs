//! Cross-crate LP tests: Theorem 2 (exact for q = 0, convergent for q → 0),
//! simplex/interior-point agreement, and the Fig. 3 worked example.

use proptest::prelude::*;
use qsc_lp::generators::{assignment_like, block_lp, covering_like, transport_like, BlockLpSpec};
use qsc_lp::interior_point::{self, InteriorPointConfig};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::{simplex, LpProblem, LpStatus};

fn relative_error(a: f64, b: f64) -> f64 {
    if a <= 0.0 || b <= 0.0 {
        return f64::INFINITY;
    }
    (a / b).max(b / a)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn simplex_and_interior_point_agree(
        seed in 0u64..400,
        block_rows in 2usize..5,
        block_cols in 2usize..4,
    ) {
        let lp = block_lp(&BlockLpSpec {
            name: "prop".into(),
            block_rows,
            block_cols,
            rows_per_block: 3,
            cols_per_block: 3,
            density: 0.8,
            noise: 0.1,
            seed,
        });
        let s = simplex::solve(&lp);
        prop_assert_eq!(s.status, LpStatus::Optimal);
        let (ipm, _) = interior_point::solve_with(&lp, &InteriorPointConfig::default());
        prop_assert!(
            (s.objective - ipm.objective).abs() <= 1e-3 * (1.0 + s.objective.abs()),
            "simplex {} vs interior point {}", s.objective, ipm.objective
        );
        // The simplex solution is feasible.
        prop_assert!(lp.is_feasible(&s.x, 1e-6));
    }

    #[test]
    fn zero_noise_block_lp_reduces_exactly(
        seed in 0u64..200,
        block_rows in 2usize..5,
        block_cols in 2usize..4,
        expansion in 2usize..5,
    ) {
        // Theorem 2 with q = 0: the blueprint partition is a stable coloring
        // of the extended matrix, so the reduced LP has the same optimum.
        let lp = block_lp(&BlockLpSpec {
            name: "exact".into(),
            block_rows,
            block_cols,
            rows_per_block: expansion,
            cols_per_block: expansion,
            density: 1.0,
            noise: 0.0,
            seed,
        });
        let exact = simplex::solve(&lp);
        prop_assert_eq!(exact.status, LpStatus::Optimal);
        let reduced = reduce_with_rothko(
            &lp,
            &LpColoringConfig::with_target_error(0.0),
            LpReductionVariant::SqrtNormalized,
        );
        prop_assert!(reduced.max_q_error <= 1e-9);
        prop_assert!(reduced.num_rows() <= block_rows + 1);
        let approx = simplex::solve(&reduced.problem);
        prop_assert!(
            (exact.objective - approx.objective).abs() <= 1e-5 * (1.0 + exact.objective.abs()),
            "exact {} vs reduced {}", exact.objective, approx.objective
        );
    }

    #[test]
    fn reduced_lp_value_is_finite_and_positive(
        seed in 0u64..200,
        colors in 6usize..20,
    ) {
        let lp = block_lp(&BlockLpSpec {
            name: "budget".into(),
            block_rows: 4,
            block_cols: 3,
            rows_per_block: 4,
            cols_per_block: 4,
            density: 0.8,
            noise: 0.15,
            seed,
        });
        let reduced = reduce_with_rothko(
            &lp,
            &LpColoringConfig::with_max_colors(colors),
            LpReductionVariant::SqrtNormalized,
        );
        let sol = simplex::solve(&reduced.problem);
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        prop_assert!(sol.objective.is_finite() && sol.objective > 0.0);
    }
}

#[test]
fn fig3_worked_example_end_to_end() {
    // Fig. 3: original optimum 128.157, reduced optimum 130.199 under the
    // q = 1 coloring shown in the paper.
    let lp = LpProblem::from_dense(
        "fig3",
        &[
            vec![4.0, 8.0, 2.0],
            vec![6.0, 5.0, 1.0],
            vec![7.0, 4.0, 2.0],
            vec![3.0, 1.0, 22.0],
            vec![2.0, 3.0, 21.0],
        ],
        vec![20.0, 20.0, 21.0, 50.0, 51.0],
        vec![9.0, 10.0, 50.0],
    );
    let exact = simplex::solve(&lp);
    assert!((exact.objective - 128.157).abs() < 0.01);

    let coloring = qsc_lp::reduce::LpColoring {
        row_colors: vec![0, 0, 0, 1, 1],
        col_colors: vec![0, 0, 1],
        num_row_colors: 2,
        num_col_colors: 2,
        max_q_error: 1.0,
    };
    let reduced = qsc_lp::reduce::reduce_lp(&lp, &coloring, LpReductionVariant::SqrtNormalized);
    let approx = simplex::solve(&reduced.problem);
    assert!((approx.objective - 130.199).abs() < 0.01);
    assert!(relative_error(exact.objective, approx.objective) < 1.02);
}

#[test]
fn error_shrinks_with_color_budget_on_dataset_stand_ins() {
    // The Fig. 8b shape on the four Table 3 stand-ins: a generous color
    // budget gives a much better approximation than a tiny one.
    for name in ["qap15", "nug08-3rd", "supportcase10", "ex10"] {
        let lp = qsc_datasets::load_lp(name, qsc_datasets::Scale::Small).unwrap();
        let exact = simplex::solve(&lp);
        assert_eq!(exact.status, LpStatus::Optimal, "{name} exact solve failed");
        let tiny = simplex::solve(
            &reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(5),
                LpReductionVariant::SqrtNormalized,
            )
            .problem,
        );
        let generous = simplex::solve(
            &reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(40),
                LpReductionVariant::SqrtNormalized,
            )
            .problem,
        );
        let err_tiny = relative_error(exact.objective, tiny.objective);
        let err_generous = relative_error(exact.objective, generous.objective);
        assert!(
            err_generous <= err_tiny * 1.5 + 0.5,
            "{name}: generous budget should not be much worse (tiny {err_tiny}, generous {err_generous})"
        );
        assert!(
            err_generous < 3.0,
            "{name}: 40-color approximation too far off ({err_generous})"
        );
    }
}

#[test]
fn all_lp_generators_are_feasible_and_bounded() {
    let problems = vec![
        assignment_like(6, 0.3, 1),
        covering_like(8, 60, 4, 0.1, 2),
        transport_like(6, 5, 2, 3),
        block_lp(&BlockLpSpec {
            name: "b".into(),
            block_rows: 3,
            block_cols: 3,
            rows_per_block: 3,
            cols_per_block: 3,
            density: 0.7,
            noise: 0.1,
            seed: 4,
        }),
    ];
    for lp in problems {
        let sol = simplex::solve(&lp);
        assert_eq!(sol.status, LpStatus::Optimal, "{} not optimal", lp.name);
        assert!(sol.objective.is_finite());
        assert!(
            lp.is_feasible(&sol.x, 1e-6),
            "{} solution infeasible",
            lp.name
        );
    }
}

#[test]
fn early_stopping_is_faster_but_less_accurate() {
    // The Table 1 (bottom) comparison in miniature: the early-stopped IPM
    // uses fewer iterations than the exact IPM.
    let lp = qsc_datasets::load_lp("qap15", qsc_datasets::Scale::Small).unwrap();
    let (exact, _) = interior_point::solve_with(&lp, &InteriorPointConfig::default());
    let (stopped, _) = interior_point::solve_with(
        &lp,
        &InteriorPointConfig {
            stop_at_relative_error: Some(2.0),
            ..Default::default()
        },
    );
    assert!(stopped.iterations <= exact.iterations);
    assert!(matches!(
        stopped.status,
        LpStatus::EarlyStopped | LpStatus::Optimal
    ));
}
