//! Storage-mode equivalence suite: `Sparse == Dense == Auto`, bit for bit.
//!
//! The incremental engine's accumulator storage (`RothkoConfig::storage` /
//! `IncrementalDegrees::new_with_storage`) is a pure representation choice
//! — dense `n × k` matrices vs tiered sparse rows must never change a
//! single observable bit. This suite pins that over mixed
//! split/merge/node-churn/edge-batch traces on dense and symmetric random
//! graphs, at threads 1 and 4 (with parallel thresholds forced down so the
//! sharded apply/rescan/axis paths actually run): colorings, witness
//! sequences, q-error bits, q-reports and reduced emissions all compared
//! across every storage mode × thread count combination. Weights are
//! multiples of 0.5 so all sums are exact and equalities can be required
//! bit-for-bit.

use qsc_core::q_error::IncrementalDegrees;
use qsc_core::reduced::quotient_matrix;
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::{Partition, StorageMode};
use qsc_graph::delta::EdgeEvent;
use qsc_graph::{Graph, GraphBuilder, GraphDelta};
use rand::prelude::*;

/// Random graph with exactly representable weights (multiples of 0.5).
fn random_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            let w = (rng.random_range(1u32..9) as f64) * 0.5;
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Random edge insert/delete/reweight batch against a live `GraphDelta`.
fn churn_batch(
    delta: &mut GraphDelta,
    edges: &mut Vec<(u32, u32)>,
    rng: &mut StdRng,
    ops: usize,
) -> Vec<EdgeEvent> {
    let n = delta.num_nodes();
    for _ in 0..ops {
        match rng.random_range(0..3u32) {
            0 => {
                for _ in 0..20 {
                    let u = rng.random_range(0..n) as u32;
                    let v = rng.random_range(0..n) as u32;
                    if !delta.has_edge(u, v) {
                        let w = (rng.random_range(1u32..9) as f64) * 0.5;
                        delta.insert_edge(u, v, w).unwrap();
                        edges.push((u, v));
                        break;
                    }
                }
            }
            1 => {
                if edges.is_empty() {
                    continue;
                }
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                delta.delete_edge(u, v).unwrap();
            }
            _ => {
                if edges.is_empty() {
                    continue;
                }
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges[i];
                let w = (rng.random_range(1u32..9) as f64) * 0.5;
                delta.reweight_edge(u, v, w).unwrap();
            }
        }
    }
    delta.drain_events()
}

/// Split a random color of `p` (same rule as the dynamic-graph suite).
fn random_split(p: &mut Partition, rng: &mut StdRng) -> Option<qsc_core::SplitEvent> {
    let k = p.num_colors();
    let candidates: Vec<u32> = (0..k as u32).filter(|&c| p.size(c) >= 2).collect();
    let &c = candidates.as_slice().choose(rng)?;
    let members: Vec<u32> = p.members(c).to_vec();
    let pivot = members[rng.random_range(0..members.len())];
    p.split_color(c, |v| v >= pivot && v != members[0])
}

/// All six (storage, threads) engine variants over one graph + partition.
/// Threads-4 engines get their parallel thresholds forced down so every
/// sharded path (apply, entry rescans, axis rebuilds) actually runs.
fn engine_variants(g: &Graph, p: &Partition) -> Vec<(String, IncrementalDegrees)> {
    let mut out = Vec::new();
    for mode in [StorageMode::Dense, StorageMode::Sparse, StorageMode::Auto] {
        for threads in [1usize, 4] {
            let mut e = IncrementalDegrees::new_with_storage(g, p, threads, mode, p.num_colors());
            if threads > 1 {
                e.set_parallel_thresholds(1, 1);
            }
            out.push((format!("{mode:?}/t{threads}"), e));
        }
    }
    out
}

#[test]
fn engine_storage_modes_bit_identical_under_mixed_churn() {
    for (directed, seed) in [(false, 9u64), (true, 29)] {
        let g = random_graph(60, 260, directed, seed);
        let mut p = Partition::unit(60);
        let mut engines = engine_variants(&g, &p);
        let mut delta = GraphDelta::new(g);
        let mut edges: Vec<(u32, u32)> = delta
            .base()
            .edges()
            .iter()
            .map(|&(u, v, _)| (u, v))
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51a5);
        let mut current = delta.compact();
        for round in 0..6 {
            // Two random splits...
            for _ in 0..2 {
                if let Some(ev) = random_split(&mut p, &mut rng) {
                    for (_, e) in engines.iter_mut() {
                        e.apply_split(&current, &p, &ev);
                    }
                }
            }
            // ...an occasional merge (the relabel-last path) once enough
            // colors exist...
            if p.num_colors() >= 4 && round % 2 == 1 {
                let k = p.num_colors() as u32;
                let loser = rng.random_range(1..k);
                let winner = rng.random_range(0..loser);
                let ev = p.merge_colors(winner, loser);
                for (_, e) in engines.iter_mut() {
                    e.apply_merge(&current, &p, &ev);
                }
            }
            // ...and an edge batch.
            let events = churn_batch(&mut delta, &mut edges, &mut rng, 14);
            for (_, e) in engines.iter_mut() {
                e.apply_edge_batch(&p, &events);
            }
            current = delta.compact();
            // Every variant verifies against a fresh recomputation...
            for (name, e) in engines.iter() {
                assert_eq!(
                    e.verify_against(&current, &p),
                    Ok(()),
                    "round {round}: {name} diverged from scratch"
                );
            }
            // ...and every observable is bit-identical across variants.
            for (_, e) in engines.iter_mut() {
                e.refresh(&p, 1.0);
            }
            let (ref_name, reference) = &engines[0];
            let max_bits = reference.max_error().to_bits();
            let witness = reference.pick_witness(&p, 1.0);
            let report = reference.q_report();
            let merge = reference.pick_merge(f64::INFINITY);
            for (name, e) in engines.iter().skip(1) {
                assert_eq!(
                    e.max_error().to_bits(),
                    max_bits,
                    "round {round}: max_error bits {name} vs {ref_name}"
                );
                assert_eq!(
                    e.pick_witness(&p, 1.0),
                    witness,
                    "round {round}: witness {name} vs {ref_name}"
                );
                assert_eq!(
                    e.q_report(),
                    report,
                    "round {round}: q_report {name} vs {ref_name}"
                );
                assert_eq!(
                    e.pick_merge(f64::INFINITY),
                    merge,
                    "round {round}: merge pick {name} vs {ref_name}"
                );
            }
        }
    }
}

#[test]
fn maintained_runs_agree_across_storage_modes() {
    // Full-stack equivalence: RothkoRun (splits + coarsening merges +
    // node/edge churn + maintenance) replayed once per storage mode ×
    // thread count. Colorings, split sequences, error bits and the reduced
    // emission must agree with the Dense/threads-1 reference at every
    // round.
    for (directed, seed) in [(false, 13u64), (true, 43)] {
        // (label, per-round assignments, per-round error bits, per-round q).
        type Trace = (String, Vec<Vec<u32>>, Vec<u64>, Vec<f64>);
        let mut traces: Vec<Trace> = Vec::new();
        for mode in [StorageMode::Dense, StorageMode::Sparse, StorageMode::Auto] {
            for threads in [1usize, 4] {
                let g = random_graph(110, 480, directed, seed);
                let config = RothkoConfig {
                    max_colors: 55,
                    target_error: 3.0,
                    threads: Some(threads),
                    coarsen: true,
                    storage: mode,
                    ..Default::default()
                };
                let mut run = Rothko::new(config).start(&g);
                run.maintain();
                let mut delta = GraphDelta::new(g.clone());
                let mut edges: Vec<(u32, u32)> = delta
                    .base()
                    .edges()
                    .iter()
                    .map(|&(u, v, _)| (u, v))
                    .collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xfade);
                let mut node_rng = StdRng::seed_from_u64(seed ^ 0x0DE5);
                let mut assignments = Vec::new();
                let mut error_bits = Vec::new();
                for round in 0..4 {
                    if round % 2 == 0 {
                        let events = churn_batch(&mut delta, &mut edges, &mut rng, 16);
                        let compacted = delta.compact();
                        run.apply_edge_batch(compacted, &events);
                    } else {
                        let (batch, compacted) = qsc_bench::random_node_churn(
                            &mut delta,
                            run.partition(),
                            &mut node_rng,
                            4,
                            3,
                            3,
                            |rng| (rng.random_range(1u32..9) as f64) * 0.5,
                        );
                        edges = delta
                            .base()
                            .edges()
                            .iter()
                            .map(|&(u, v, _)| (u, v))
                            .collect();
                        run.apply_node_batch(compacted, &batch);
                    }
                    run.maintain();
                    assignments.push(run.partition().canonical_assignment());
                    error_bits.push(run.exact_max_error().to_bits());
                }
                // Reduced emission from the final coloring: equal colorings
                // force equal quotient matrices, which we also pin directly.
                let compacted = delta.compact();
                let q = quotient_matrix(&compacted, run.partition());
                traces.push((format!("{mode:?}/t{threads}"), assignments, error_bits, q));
            }
        }
        let (ref_name, ref_assignments, ref_bits, ref_q) = traces[0].clone();
        for (name, assignments, bits, q) in traces.iter().skip(1) {
            assert_eq!(
                assignments, &ref_assignments,
                "colorings diverged: {name} vs {ref_name} (directed={directed})"
            );
            assert_eq!(
                bits, &ref_bits,
                "error bits diverged: {name} vs {ref_name} (directed={directed})"
            );
            assert_eq!(
                q, &ref_q,
                "reduced emission diverged: {name} vs {ref_name} (directed={directed})"
            );
        }
    }
}

#[test]
fn sparse_engine_capacity_growth_matches_dense() {
    // Long split sequences exercise `ensure_capacity`'s geometric regrowth
    // (dense restride vs sparse no-op) — refine all the way to the discrete
    // partition and compare every observable at each step.
    let g = random_graph(48, 200, false, 77);
    let mut p = Partition::unit(48);
    let mut dense = IncrementalDegrees::new_with_storage(&g, &p, 1, StorageMode::Dense, 1);
    let mut sparse = IncrementalDegrees::new_with_storage(&g, &p, 1, StorageMode::Sparse, 1);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    while let Some(ev) = random_split(&mut p, &mut rng) {
        dense.apply_split(&g, &p, &ev);
        sparse.apply_split(&g, &p, &ev);
        dense.refresh(&p, 0.0);
        sparse.refresh(&p, 0.0);
        assert_eq!(dense.max_error().to_bits(), sparse.max_error().to_bits());
        assert_eq!(dense.pick_witness(&p, 0.0), sparse.pick_witness(&p, 0.0));
    }
    assert_eq!(p.num_colors(), 48);
    assert_eq!(dense.verify_against(&g, &p), Ok(()));
    assert_eq!(sparse.verify_against(&g, &p), Ok(()));
}
