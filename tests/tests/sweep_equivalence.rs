//! Warm-start equivalence suite for the sweep pipeline.
//!
//! The warm-started sweep (one coloring refinement, patched reductions,
//! warm-started solvers) must produce the *same results* as the per-budget
//! cold path at every budget:
//!
//! * **colorings** — a checkpoint at budget `b` equals a fresh run with
//!   `max_colors = b` (the refinement is deterministic and monotone);
//! * **flow** — warm-started push-relabel on the patched reduced network
//!   equals the cold solve of the rebuilt reduced network; with integer (or
//!   quarter-integer) capacities all arithmetic is exact, so the values are
//!   required to be **bit-identical**;
//! * **LP** — the warm-started simplex objective equals the cold two-phase
//!   objective within 1e-9 relative (the reduced problems agree up to color
//!   numbering and float associativity).

use qsc_core::reduced::{quotient_matrix, ReducedDelta};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::sweep::ColoringSweep;
use qsc_flow::reduce::{approximate_max_flow, FlowApproxConfig};
use qsc_flow::sweep::sweep_max_flow;
use qsc_flow::{FlowNetwork, WarmFlowSolver};
use qsc_graph::{generators, GraphBuilder};
use qsc_lp::reduce::{reduce_with_rothko, LpColoringConfig, LpReductionVariant};
use qsc_lp::sweep::sweep_lp;
use qsc_lp::{simplex, LpProblem};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A random directed network with small-integer capacities: every flow
/// quantity stays an exact integer, so warm and cold solves must agree
/// bit-for-bit.
fn integer_network(n: usize, m: usize, seed: u64) -> FlowNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_directed(n);
    for _ in 0..m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_edge(u, v, rng.random_range(1..9) as f64);
        }
    }
    // Guarantee source/sink attachment.
    b.add_edge(0, 1 % n as u32 + 1, 4.0);
    b.add_edge((n - 2) as u32, (n - 1) as u32, 4.0);
    FlowNetwork::new(b.build(), 0, (n - 1) as u32)
}

#[test]
fn coloring_checkpoints_equal_fresh_runs_across_seeds() {
    for seed in [1u64, 7, 23] {
        let g = generators::barabasi_albert(250, 3, seed);
        let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
        for budget in [4usize, 9, 18, 33, 60] {
            let cp = sweep.advance_to(budget, |_, _| {});
            let fresh = Rothko::new(RothkoConfig::with_max_colors(budget)).run(&g);
            assert!(
                sweep.partition().same_as(&fresh.partition),
                "seed {seed}: checkpoint at {budget} differs from a fresh run"
            );
            assert_eq!(cp.max_q_error, fresh.max_q_error, "seed {seed}");
        }
    }
}

#[test]
fn reduced_delta_equals_scratch_quotient_across_random_sweeps() {
    for seed in [3u64, 11, 31] {
        let g = generators::erdos_renyi_nm(80, 400, seed).to_directed();
        let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
        let mut delta = ReducedDelta::new(&g, sweep.partition());
        for budget in [5usize, 12, 25] {
            sweep.advance_to(budget, |p, ev| delta.apply_split(&g, p, ev));
            // Unit weights: the patched quotient matrix is bit-identical to
            // the from-scratch one.
            assert_eq!(
                delta.quotient_matrix(),
                quotient_matrix(&g, sweep.partition()),
                "seed {seed} budget {budget}"
            );
        }
    }
}

#[test]
fn warm_flow_sweep_is_bit_identical_to_cold_path_on_integer_networks() {
    for seed in [2u64, 13, 29] {
        let net = integer_network(70, 420, seed);
        let budgets = [4usize, 7, 12, 20, 32];
        let points = sweep_max_flow(&net, &budgets, 0.0);
        for (point, &budget) in points.iter().zip(budgets.iter()) {
            let cold = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(budget));
            assert_eq!(
                point.value.to_bits(),
                cold.value.to_bits(),
                "seed {seed} budget {budget}: warm {} vs cold {}",
                point.value,
                cold.value
            );
            assert_eq!(point.colors, cold.colors, "seed {seed} budget {budget}");
        }
    }
}

#[test]
fn warm_push_relabel_matches_cold_solvers_across_perturbations() {
    // Drive one WarmFlowSolver through a chain of perturbed integer
    // networks; at every step the warm value must equal both cold
    // push-relabel and Dinic exactly.
    for seed in [5u64, 17] {
        let base = integer_network(40, 220, seed);
        let mut solver = WarmFlowSolver::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut arcs: Vec<(u32, u32, f64)> = base.graph.arcs().collect();
        for round in 0..5 {
            let net = FlowNetwork::new(
                {
                    let mut b = GraphBuilder::new_directed(40);
                    for &(u, v, c) in &arcs {
                        b.add_edge(u, v, c);
                    }
                    b.build()
                },
                base.source,
                base.sink,
            );
            let warm = solver.solve(&net).value;
            let cold_pr = qsc_flow::push_relabel::max_flow(&net).value;
            let cold_dinic = qsc_flow::dinic::max_flow(&net).value;
            assert_eq!(
                warm.to_bits(),
                cold_pr.to_bits(),
                "seed {seed} round {round}: warm {warm} vs push-relabel {cold_pr}"
            );
            assert_eq!(
                warm.to_bits(),
                cold_dinic.to_bits(),
                "seed {seed} round {round}: warm {warm} vs dinic {cold_dinic}"
            );
            // Perturb ~a third of the capacities by an integer amount.
            for arc in arcs.iter_mut() {
                if rng.random_range(0..3u32) == 0 {
                    let delta = rng.random_range(0..5) as f64 - 2.0;
                    arc.2 = (arc.2 + delta).max(1.0);
                }
            }
        }
    }
}

#[test]
fn warm_lp_sweep_objectives_equal_cold_path() {
    let datasets = ["qap15", "supportcase10", "ex10"];
    for name in datasets {
        let lp = qsc_datasets::load_lp(name, qsc_datasets::Scale::Small).unwrap();
        let budgets = [5usize, 8, 13, 21];
        let points = sweep_lp(
            &lp,
            &budgets,
            &LpColoringConfig::with_max_colors(usize::MAX),
            LpReductionVariant::SqrtNormalized,
        );
        for (point, &budget) in points.iter().zip(budgets.iter()) {
            let reduced = reduce_with_rothko(
                &lp,
                &LpColoringConfig::with_max_colors(budget),
                LpReductionVariant::SqrtNormalized,
            );
            let cold = simplex::solve(&reduced.problem);
            assert_eq!(point.status, cold.status, "{name} budget {budget}");
            assert!(
                (point.objective - cold.objective).abs() <= 1e-9 * (1.0 + cold.objective.abs()),
                "{name} budget {budget}: warm {} vs cold {}",
                point.objective,
                cold.objective
            );
            assert_eq!(
                point.rows + point.cols,
                reduced.num_rows() + reduced.num_cols(),
                "{name} budget {budget}"
            );
        }
    }
}

#[test]
fn warm_simplex_equals_cold_on_random_reduction_chains() {
    // Property-style check of the solver layer alone: chains of growing
    // random LPs (as the sweep produces) solved warm vs cold.
    for seed in [1u64, 9, 27, 77] {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..4).map(|_| rng.random::<f64>() * 3.0).collect())
            .collect();
        let mut b: Vec<f64> = (0..4).map(|_| 4.0 + rng.random::<f64>() * 6.0).collect();
        let mut c: Vec<f64> = (0..4).map(|_| rng.random::<f64>() * 2.0).collect();
        let mut basis = None;
        let config = simplex::SimplexConfig::default();
        for step in 0..8usize {
            if rng.random::<f64>() < 0.5 {
                rows.push((0..c.len()).map(|_| rng.random::<f64>() * 3.0).collect());
                b.push(4.0 + rng.random::<f64>() * 6.0);
            } else {
                for row in rows.iter_mut() {
                    row.push(rng.random::<f64>() * 3.0);
                }
                c.push(rng.random::<f64>() * 2.0);
            }
            let lp =
                LpProblem::from_dense(format!("chain-{seed}-{step}"), &rows, b.clone(), c.clone());
            let warm = simplex::solve_warm(&lp, &config, basis.as_ref());
            let cold = simplex::solve(&lp);
            assert_eq!(warm.solution.status, cold.status, "seed {seed} step {step}");
            assert!(
                (warm.solution.objective - cold.objective).abs()
                    <= 1e-7 * (1.0 + cold.objective.abs()),
                "seed {seed} step {step}: warm {} vs cold {}",
                warm.solution.objective,
                cold.objective
            );
            basis = warm.basis;
        }
    }
}

#[test]
fn patched_lp_emission_equals_dense_reemission() {
    // The in-place-patched reduced LP must equal the dense O(k·l)
    // re-emission bit-for-bit at every checkpoint (same aggregates, same
    // formulas, same triplet order).
    use qsc_lp::reduce::coloring_graph;
    use qsc_lp::sweep::{PatchedReducedLp, ReducedLpDelta};
    let lp = qsc_datasets::load_lp("qap15", qsc_datasets::Scale::Small).unwrap();
    let (graph, initial) = coloring_graph(&lp);
    let rothko_config = RothkoConfig {
        max_colors: usize::MAX,
        initial: Some(initial),
        ..Default::default()
    };
    for variant in [
        LpReductionVariant::SqrtNormalized,
        LpReductionVariant::GroheAverage,
    ] {
        let mut sweep = ColoringSweep::new(&graph, rothko_config.clone());
        let mut delta = ReducedLpDelta::new(&lp);
        let mut emitter = PatchedReducedLp::new(&mut delta, variant);
        for budget in [5usize, 9, 14, 22] {
            sweep.advance_to(budget, |_, ev| delta.apply_split(ev));
            emitter.sync(&mut delta);
            let patched = emitter.to_problem(&lp.name);
            let dense = delta.reduced_problem(variant);
            assert_eq!(patched.name, dense.name, "budget {budget}");
            let pt: Vec<(u32, u32, u64)> = patched
                .a
                .triplets()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect();
            let dt: Vec<(u32, u32, u64)> = dense
                .a
                .triplets()
                .map(|(i, j, v)| (i, j, v.to_bits()))
                .collect();
            assert_eq!(pt, dt, "budget {budget} ({variant:?})");
            let pb: Vec<u64> = patched.b.iter().map(|v| v.to_bits()).collect();
            let db: Vec<u64> = dense.b.iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, db, "budget {budget} ({variant:?})");
            let pc: Vec<u64> = patched.c.iter().map(|v| v.to_bits()).collect();
            let dc: Vec<u64> = dense.c.iter().map(|v| v.to_bits()).collect();
            assert_eq!(pc, dc, "budget {budget} ({variant:?})");
        }
    }
}

#[test]
fn patched_flow_emission_equals_dense_reemission_after_churn() {
    // The flow sweep's patched reduced network, including after edge
    // churn threaded through the sweep, equals the dense re-emission.
    use qsc_core::reduced::PatchedReducedGraph;
    use qsc_graph::GraphDelta;
    let net = integer_network(60, 360, 19);
    let g = net.graph.clone();
    let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
    let mut delta = ReducedDelta::new(&g, sweep.partition());
    let weighting =
        |i: usize, j: usize, sum: f64, _: usize, _: usize| if i == j { 0.0 } else { sum.max(0.0) };
    let mut emitter = PatchedReducedGraph::new(&mut delta, weighting);
    let mut churn = GraphDelta::new(g.clone());
    let mut current = g.clone();
    for budget in [5usize, 9, 15] {
        let closure_graph = current.clone();
        sweep.advance_to(budget, |p, ev| delta.apply_split(&closure_graph, p, ev));
        // Drop one existing edge, add one new one.
        let (u, v, _) = current.edges()[budget];
        churn.delete_edge(u, v).unwrap();
        let mut added = false;
        'outer: for a in 0..current.num_nodes() as u32 {
            for b in 0..current.num_nodes() as u32 {
                if a != b && !churn.has_edge(a, b) {
                    churn.insert_edge(a, b, 2.0).unwrap();
                    added = true;
                    break 'outer;
                }
            }
        }
        assert!(added);
        let events = churn.drain_events();
        current = churn.compact();
        delta.apply_edge_batch(sweep.partition(), &events);
        sweep.apply_edge_batch(current.clone(), &events);
        emitter.sync(&mut delta);
        let patched: Vec<_> = emitter.to_graph().arcs().collect();
        let dense: Vec<_> = delta.reduced_graph_with(weighting).arcs().collect();
        assert_eq!(patched, dense, "budget {budget}");
    }
}

#[test]
fn full_pipeline_sweep_on_grid_matches_cold_within_tolerance() {
    // Float capacities end-to-end (the realistic case): equality within
    // floating-point tolerance rather than bit-for-bit.
    let (net, _) = qsc_flow::generators::grid_flow_network(16, 16, 3.0, 0.3, 9);
    let budgets = [5usize, 10, 18, 30];
    let points = sweep_max_flow(&net, &budgets, 0.0);
    for (point, &budget) in points.iter().zip(budgets.iter()) {
        let cold = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(budget));
        assert!(
            (point.value - cold.value).abs() <= 1e-9 * (1.0 + cold.value.abs()),
            "budget {budget}: warm {} vs cold {}",
            point.value,
            cold.value
        );
        assert_eq!(point.max_q_error, cold.max_q_error, "budget {budget}");
    }
}

#[test]
fn flow_emitter_stays_bit_identical_through_merges() {
    // The bidirectional event algebra at the flow-reduction layer: after
    // merges (including the relabel of the ex-last color and the removal
    // of its row/column from the emitted instance), the patched reduced
    // network must equal the dense re-emission bit-for-bit, and a warm
    // solve of it must equal the cold solve of the rebuilt instance.
    let net = integer_network(60, 320, 13);
    let graph = &net.graph;
    let mut run = Rothko::new(RothkoConfig::with_max_colors(14)).start(graph);
    let mut delta = ReducedDelta::new(graph, run.partition());
    while run.step() {
        let ev = run.last_event().expect("split");
        delta.apply_split(graph, run.partition(), ev);
    }
    // The flow sweep's capacity weighting: no self-loops, clamped at zero.
    let weighting = |i: usize, j: usize, sum: f64, _: usize, _: usize| {
        if i == j {
            0.0
        } else {
            sum.max(0.0)
        }
    };
    let mut emitter = qsc_core::reduced::PatchedReducedGraph::new(&mut delta, weighting);
    let mut p = run.partition().clone();
    let mut solver = WarmFlowSolver::new();
    let (mut s, mut t) = (p.color_of(net.source), p.color_of(net.sink));
    while p.num_colors() > 4 {
        // Merge the first pair that spares the source/sink colors (their
        // ids stay meaningful for the reduced network; the relabel of the
        // ex-last color may move them, tracked below).
        let k = p.num_colors() as u32;
        let pair = (0..k)
            .filter(|&c| c != s && c != t)
            .collect::<Vec<_>>()
            .windows(2)
            .map(|w| (w[0], w[1]))
            .next()
            .expect("k > 4 leaves a mergeable pair");
        let (a, b) = pair;
        let ev = p.merge_colors(a, b);
        if let Some(old_last) = ev.relabeled {
            if s == old_last {
                s = ev.loser;
            }
            if t == old_last {
                t = ev.loser;
            }
        }
        delta.apply_merge(&ev);
        assert_eq!(delta.verify_against(graph, &p), Ok(()));
        emitter.sync(&mut delta);
        let patched = emitter.to_graph();
        let dense = delta.reduced_graph_with(weighting);
        let pa: Vec<_> = patched.arcs().collect();
        let da: Vec<_> = dense.arcs().collect();
        assert_eq!(pa, da, "k = {}", p.num_colors());
        // Warm-solving the patched instance equals cold-solving the dense
        // one (integer capacities: bit-identical).
        let warm = solver.solve(&FlowNetwork::new(patched, s, t));
        let cold = qsc_flow::push_relabel::max_flow(&FlowNetwork::new(dense, s, t));
        assert_eq!(warm.value, cold.value);
    }
}
