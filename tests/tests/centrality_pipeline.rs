//! Cross-crate centrality tests: the Fig. 5 phenomenon (stable colorings do
//! not preserve betweenness), approximation quality on the dataset
//! stand-ins, and agreement between the estimators.

use proptest::prelude::*;
use qsc_centrality::approx::{
    approximate, reduced_graph_scores, stratified, ApproxMethod, CentralityApproxConfig,
};
use qsc_centrality::sampling::{betweenness_sampling, SamplingConfig};
use qsc_centrality::{brandes, spearman};
use qsc_core::{stable_coloring, Partition};
use qsc_graph::{generators, GraphBuilder};

/// Disjoint union of a 6-cycle and two triangles: every node is 2-regular so
/// the stable coloring has a single color, yet cycle nodes have positive
/// betweenness while triangle nodes have zero. This realizes the Fig. 5
/// phenomenon (same 1-WL color, different centrality) with a minimal graph.
fn cycle_and_triangles() -> qsc_graph::Graph {
    let mut b = GraphBuilder::new_undirected(12);
    for i in 0..6u32 {
        b.add_edge(i, (i + 1) % 6, 1.0);
    }
    for base in [6u32, 9u32] {
        b.add_edge(base, base + 1, 1.0);
        b.add_edge(base + 1, base + 2, 1.0);
        b.add_edge(base + 2, base, 1.0);
    }
    b.build()
}

#[test]
fn fig5_stable_coloring_does_not_preserve_centrality() {
    let g = cycle_and_triangles();
    let stable = stable_coloring(&g);
    // All nodes are 2-regular: a single stable color.
    assert_eq!(stable.num_colors(), 1);
    let centrality = brandes::betweenness(&g);
    // Nodes 0..6 (the cycle) have strictly positive betweenness, the
    // triangle nodes have zero — despite sharing the color.
    assert!(centrality[0] > 0.0);
    assert!(centrality[6] == 0.0);
    assert_ne!(centrality[0], centrality[6]);
}

#[test]
fn stratified_estimator_is_exact_for_the_discrete_partition() {
    let g = generators::karate_club();
    let exact = brandes::betweenness(&g);
    let estimate = stratified(&g, &Partition::discrete(34), 0);
    for v in 0..34 {
        assert!((exact[v] - estimate[v]).abs() < 1e-9);
    }
}

#[test]
fn centrality_datasets_reach_high_correlation_with_few_colors() {
    // Fig. 7c / 8c shape: 50-100 colors give rank correlation well above
    // 0.9 on the social-network stand-ins.
    for name in ["facebook", "deezer"] {
        let g = qsc_datasets::load_graph(name, qsc_datasets::Scale::Small).unwrap();
        let exact = brandes::betweenness(&g);
        let approx = approximate(&g, &CentralityApproxConfig::with_max_colors(80));
        let rho = spearman(&exact, &approx.scores);
        assert!(
            rho > 0.85,
            "{name}: correlation {rho} too low with 80 colors"
        );
        let coarse = approximate(&g, &CentralityApproxConfig::with_max_colors(10));
        let rho_coarse = spearman(&exact, &coarse.scores);
        assert!(
            rho >= rho_coarse - 0.05,
            "{name}: more colors should not hurt ({rho_coarse} -> {rho})"
        );
    }
}

#[test]
fn sampling_baseline_and_coloring_both_recover_ranking() {
    let g = qsc_datasets::load_graph("enron", qsc_datasets::Scale::Small).unwrap();
    let exact = brandes::betweenness(&g);
    let coloring = approximate(&g, &CentralityApproxConfig::with_max_colors(60));
    let sampled = betweenness_sampling(
        &g,
        &SamplingConfig {
            epsilon: 0.05,
            seed: 5,
            ..Default::default()
        },
    );
    let rho_coloring = spearman(&exact, &coloring.scores);
    let rho_sampling = spearman(&exact, &sampled);
    assert!(rho_coloring > 0.8, "coloring correlation {rho_coloring}");
    assert!(rho_sampling > 0.6, "sampling correlation {rho_sampling}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn estimators_produce_nonnegative_scores(seed in 0u64..100, colors in 4usize..20,) {
        let g = generators::barabasi_albert(120, 2, seed);
        let approx = approximate(&g, &CentralityApproxConfig {
            method: ApproxMethod::Stratified,
            seed,
            ..CentralityApproxConfig::with_max_colors(colors)
        });
        prop_assert_eq!(approx.scores.len(), 120);
        prop_assert!(approx.scores.iter().all(|&s| s >= 0.0 && s.is_finite()));

        let reduced = reduced_graph_scores(&g, &approx.partition);
        prop_assert!(reduced.iter().all(|&s| s >= 0.0 && s.is_finite()));
    }

    #[test]
    fn spearman_of_identical_rankings_is_one(values in proptest::collection::vec(0.0f64..100.0, 5..60),) {
        prop_assert!((spearman(&values, &values) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn brandes_total_mass_matches_pair_count_on_trees(n in 3usize..40,) {
        // On a path graph (a tree), every ordered pair (s, t) with
        // d(s,t) >= 2 contributes exactly d(s,t) - 1 units of betweenness in
        // total (each interior vertex of the unique path gets 1).
        let mut b = GraphBuilder::new_undirected(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, (i + 1) as u32, 1.0);
        }
        let g = b.build();
        let total: f64 = brandes::betweenness(&g).iter().sum();
        let mut expected = 0.0;
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    let d = (s as i64 - t as i64).unsigned_abs() as f64;
                    if d >= 2.0 {
                        expected += d - 1.0;
                    }
                }
            }
        }
        prop_assert!((total - expected).abs() < 1e-6);
    }
}
