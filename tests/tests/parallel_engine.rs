//! Determinism suite for the parallel sharded refinement engine and the
//! batched witness rounds: colorings, witness sequences and error values
//! must be **bit-identical** across thread counts {1, 2, 8} and stable
//! under batch sizes {1, 4} on seeded random directed and undirected
//! graphs. `threads = 1, batch = 1` must equal the default serial engine
//! exactly, and the sharded code paths are additionally exercised with
//! forced-low dispatch thresholds at the engine level.

use qsc_core::q_error::IncrementalDegrees;
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::sweep::ColoringSweep;
use qsc_core::{Partition, ReducedDelta};
use qsc_graph::{Graph, GraphBuilder};
use rand::prelude::*;

/// Random graph with exactly representable weights (multiples of 0.5), so
/// every configuration must agree bit-for-bit.
fn random_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            let w = (rng.random_range(1u32..9) as f64) * 0.5;
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Drive a full run, collecting the coloring, the witness sequence, and the
/// exact final error.
fn run_trace(g: &Graph, config: RothkoConfig) -> (Vec<u32>, Vec<(u32, u32, bool)>, u64) {
    let mut run = Rothko::new(config).start(g);
    let mut witnesses = Vec::new();
    while run.step() {
        for w in run.last_round_witnesses() {
            witnesses.push((w.split_color, w.other_color, w.outgoing));
        }
    }
    let err = run.exact_max_error().to_bits();
    (run.partition().canonical_assignment(), witnesses, err)
}

#[test]
fn colorings_and_witnesses_identical_across_thread_counts() {
    for (directed, seed) in [(false, 3u64), (false, 17), (true, 5), (true, 29)] {
        let g = random_graph(150, 700, directed, seed);
        for batch in [1usize, 4] {
            let base = RothkoConfig::with_max_colors(40).batch(batch);
            let reference = run_trace(&g, base.clone().threads(1));
            for threads in [2usize, 8] {
                let parallel = run_trace(&g, base.clone().threads(threads));
                assert_eq!(
                    parallel, reference,
                    "threads={threads} batch={batch} diverged (directed={directed}, seed={seed})"
                );
            }
        }
    }
}

#[test]
fn serial_batch_one_equals_default_engine() {
    for (directed, seed) in [(false, 11u64), (true, 23)] {
        let g = random_graph(120, 500, directed, seed);
        let default_run = run_trace(&g, RothkoConfig::with_max_colors(30));
        let pinned = run_trace(&g, RothkoConfig::with_max_colors(30).threads(1).batch(1));
        assert_eq!(pinned, default_run, "directed={directed} seed={seed}");
    }
}

#[test]
fn weighted_configs_stay_deterministic_across_threads() {
    // Size-weighted witness picks (α, β ≠ 0) exercise the β-weighted best
    // cache across the sharded refresh.
    let g = random_graph(140, 650, true, 41);
    let base = RothkoConfig::with_max_colors(35).weights(1.0, 1.0).batch(4);
    let reference = run_trace(&g, base.clone().threads(1));
    let parallel = run_trace(&g, base.threads(8));
    assert_eq!(parallel, reference);
}

/// Force every sharded code path (accumulator phase, member-axis scans,
/// entry rescans, witness refresh) on small graphs by dropping the
/// dispatch thresholds to 1, and cross-check against both a serial twin
/// and the from-scratch recomputation after every split.
#[test]
fn forced_sharding_is_bit_identical_to_serial_engine() {
    for (directed, seed) in [(false, 7u64), (true, 13)] {
        let g = random_graph(80, 400, directed, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
        let mut p_serial = Partition::unit(g.num_nodes());
        let mut p_par = p_serial.clone();
        let mut serial = IncrementalDegrees::new_with_threads(&g, &p_serial, 1);
        let mut par = IncrementalDegrees::new_with_threads(&g, &p_par, 3);
        par.set_parallel_thresholds(1, 1);
        for _ in 0..40 {
            let k = p_serial.num_colors();
            let candidates: Vec<u32> = (0..k as u32).filter(|&c| p_serial.size(c) >= 2).collect();
            let Some(&c) = candidates.as_slice().choose(&mut rng) else {
                break;
            };
            let members: Vec<u32> = p_serial.members(c).to_vec();
            let pivot = members[rng.random_range(0..members.len())];
            let eject = |v: u32| v >= pivot && v != members[0];
            let Some(ev) = p_serial.split_color(c, eject) else {
                continue;
            };
            let ev2 = p_par.split_color(c, eject).expect("same split applies");
            assert_eq!(ev, ev2);
            serial.apply_split(&g, &p_serial, &ev);
            par.apply_split(&g, &p_par, &ev2);
            serial.refresh(&p_serial, 1.0);
            par.refresh(&p_par, 1.0);
            assert_eq!(serial.max_error().to_bits(), par.max_error().to_bits());
            assert_eq!(
                serial.pick_witness(&p_serial, 1.0),
                par.pick_witness(&p_par, 1.0)
            );
            assert_eq!(par.verify_against(&g, &p_par), Ok(()));
        }
        assert!(p_serial.num_colors() > 10, "splits actually happened");
    }
}

/// Pin the sharded touched-collection phase: a giant split (half the
/// graph moves, so nearly every node is a touched neighbor of several
/// movers across chunk boundaries) must leave engines at thread counts
/// {1, 4, 8} in bit-identical states — touched ordering included, since
/// the ordering decides the attainer choices and witness tie-breaks the
/// later assertions observe.
#[test]
fn sharded_touched_collection_is_bit_identical() {
    for (directed, seed) in [(false, 19u64), (true, 37)] {
        let g = random_graph(300, 2600, directed, seed);
        let mut p1 = Partition::unit(300);
        let mut engines: Vec<IncrementalDegrees> = [1usize, 4, 8]
            .iter()
            .map(|&t| {
                let mut e = IncrementalDegrees::new_with_threads(&g, &p1, t);
                if t > 1 {
                    e.set_parallel_thresholds(1, 1);
                }
                e
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
        for _ in 0..12 {
            let k = p1.num_colors();
            let candidates: Vec<u32> = (0..k as u32).filter(|&c| p1.size(c) >= 2).collect();
            let Some(&c) = candidates.as_slice().choose(&mut rng) else {
                break;
            };
            let mut members: Vec<u32> = p1.members(c).to_vec();
            members.sort_unstable();
            // Move roughly half the color: large touched sets with heavy
            // cross-chunk neighbor overlap.
            let pivot = members[members.len() / 2];
            let Some(ev) = p1.split_color(c, |v| v >= pivot && v != members[0]) else {
                continue;
            };
            for e in &mut engines {
                e.apply_split(&g, &p1, &ev);
            }
            let mut picks = Vec::new();
            for e in &mut engines {
                e.refresh(&p1, 1.0);
                picks.push((e.max_error().to_bits(), e.pick_witness(&p1, 1.0)));
            }
            assert_eq!(picks[0], picks[1], "threads 1 vs 4 (seed {seed})");
            assert_eq!(picks[0], picks[2], "threads 1 vs 8 (seed {seed})");
            assert_eq!(engines[1].verify_against(&g, &p1), Ok(()));
        }
        assert!(p1.num_colors() >= 8, "splits actually happened");
    }
}

#[test]
fn batched_rounds_respect_budgets_and_caps() {
    let g = random_graph(100, 450, false, 77);
    // run_to_budget never overshoots, even when the batch is larger than
    // the remaining budget room.
    let mut run = Rothko::new(RothkoConfig::with_max_colors(25).batch(8)).start(&g);
    assert!(run.run_to_budget(9));
    assert_eq!(run.partition().num_colors(), 9);
    assert!(run.run_to_budget(25));
    assert_eq!(run.partition().num_colors(), 25);
    // A round performs at most `batch` splits.
    let mut run = Rothko::new(RothkoConfig::with_max_colors(30).batch(4)).start(&g);
    let mut k = run.partition().num_colors();
    while run.step() {
        let added = run.partition().num_colors() - k;
        assert!((1..=4).contains(&added), "round added {added} colors");
        assert_eq!(run.last_round_events().len(), added);
        assert_eq!(run.last_round_witnesses().len(), added);
        k = run.partition().num_colors();
    }
    // max_iterations caps total splits across batched rounds.
    let config = RothkoConfig {
        max_colors: usize::MAX,
        batch: 4,
        max_iterations: Some(6),
        ..Default::default()
    };
    let coloring = Rothko::new(config).run(&g);
    assert_eq!(coloring.iterations, 6);
    assert_eq!(coloring.partition.num_colors(), 7);
}

#[test]
fn batched_rounds_match_reference_stepper() {
    // The reference (from-scratch) stepper shares per-round witness
    // selection, so batched incremental and batched reference runs must
    // produce identical refinements.
    for batch in [2usize, 4] {
        let g = random_graph(90, 400, true, 101);
        let config = RothkoConfig::with_max_colors(24).batch(batch);
        let incremental = Rothko::new(config.clone()).run(&g);
        let reference = Rothko::new(config).run_reference(&g);
        assert_eq!(
            incremental.partition.canonical_assignment(),
            reference.partition.canonical_assignment(),
            "batch={batch}"
        );
        assert_eq!(incremental.iterations, reference.iterations);
    }
}

#[test]
fn batched_sweep_delivers_every_split_in_lockstep() {
    // Multi-split rounds must still hand each event to the visitor with
    // the partition exactly one split ahead — the ReducedDelta contract.
    let g = random_graph(110, 500, true, 55);
    let mut sweep = ColoringSweep::new(&g, RothkoConfig::default().batch(4).threads(2));
    let mut delta = ReducedDelta::new(&g, sweep.partition());
    let mut seen = 0usize;
    for budget in [5usize, 12, 21] {
        let cp = sweep.advance_to(budget, |p, ev| {
            assert_eq!(ev.child as usize + 1, p.num_colors());
            delta.apply_split(&g, p, ev);
            seen += 1;
        });
        assert_eq!(cp.colors, budget, "budget checkpoints land exactly");
        assert_eq!(delta.num_colors(), budget);
    }
    assert_eq!(seen, 20, "one event per added color");
    assert_eq!(delta.verify_against(&g, sweep.partition()), Ok(()));
}

#[test]
fn beta_change_keeps_max_error_valid_without_error_rescans() {
    // row_max_err is β-independent: after a β-only refresh the maximum
    // error must be unchanged and still exact, and witness picks under the
    // new β must match a freshly built engine's.
    let g = random_graph(80, 350, true, 67);
    let mut p = Partition::unit(g.num_nodes());
    let mut engine = IncrementalDegrees::new(&g, &p);
    let mut rng = StdRng::seed_from_u64(99);
    for _ in 0..15 {
        let k = p.num_colors();
        let Some(c) = (0..k as u32).find(|&c| p.size(c) >= 2) else {
            break;
        };
        let members: Vec<u32> = p.members(c).to_vec();
        let pivot = members[rng.random_range(0..members.len())];
        if let Some(ev) = p.split_color(c, |v| v >= pivot && v != members[0]) {
            engine.apply_split(&g, &p, &ev);
        }
    }
    engine.refresh(&p, 0.0);
    let err = engine.max_error();
    for beta in [1.0f64, -0.5, 2.0, 0.0] {
        engine.refresh(&p, beta);
        assert_eq!(engine.max_error().to_bits(), err.to_bits());
        let fresh = IncrementalDegrees::new(&g, &p);
        let mut fresh = fresh;
        fresh.refresh(&p, beta);
        assert_eq!(
            engine.pick_witness(&p, 1.0),
            fresh.pick_witness(&p, 1.0),
            "beta={beta}"
        );
    }
}

#[test]
fn degrees_only_sparse_rows_match_dense_summary_engine() {
    // The degrees-only engine now keeps sparse rows; its accumulator
    // values must equal the dense summary engine's bit-for-bit across a
    // refinement, on both directed and undirected graphs.
    for (directed, seed) in [(false, 31u64), (true, 43)] {
        let g = random_graph(70, 300, directed, seed);
        let mut p = Partition::unit(g.num_nodes());
        let mut dense = IncrementalDegrees::new(&g, &p);
        let mut sparse = IncrementalDegrees::new_degrees_only(&g, &p);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..30 {
            let k = p.num_colors();
            let Some(c) = (0..k as u32).find(|&c| p.size(c) >= 2) else {
                break;
            };
            let members: Vec<u32> = p.members(c).to_vec();
            let pivot = members[rng.random_range(0..members.len())];
            let Some(ev) = p.split_color(c, |v| v >= pivot && v != members[0]) else {
                continue;
            };
            dense.apply_split(&g, &p, &ev);
            sparse.apply_split(&g, &p, &ev);
            assert_eq!(sparse.verify_against(&g, &p), Ok(()));
        }
        let k = p.num_colors() as u32;
        for v in 0..g.num_nodes() as u32 {
            for c in 0..k {
                assert_eq!(
                    dense.out_degree_of(v, c).to_bits(),
                    sparse.out_degree_of(v, c).to_bits()
                );
                assert_eq!(
                    dense.in_degree_of(v, c).to_bits(),
                    sparse.in_degree_of(v, c).to_bits()
                );
            }
        }
    }
}
