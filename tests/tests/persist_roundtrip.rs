//! Persistence round-trip suite: checkpoint + WAL replay restores the
//! full incremental stack **bit-identically**.
//!
//! Each trace drives a live `RothkoRun` + lockstep `ReducedDelta` through
//! mixed edge batches, node churn and maintenance while logging every
//! input into a [`qsc_persist::Store`]; at every round the store is
//! recovered in a fresh process-like context and the restored stack is
//! compared to the live one by re-encoding both into checkpoint bytes —
//! byte equality is the strongest available bit-identity check (it covers
//! the graph CSR, coloring, accumulators, summary matrices with witness
//! args, nonzero counts, sparse rows and the reduced instance, all
//! through `to_bits`). Restored stacks are then *advanced* through more
//! batches alongside the never-persisted one and must stay byte-equal.
//! Runs across Dense / Sparse / Auto storage × threads {1, 4} × both
//! graph directions, with weights kept at multiples of 0.5 so sums are
//! exact (the same regime as the rest of the dynamic suite). A proptest
//! harness fuzzes randomized trace schedules on top.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;
use qsc_core::partition::PartitionEvent;
use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{Rothko, RothkoConfig, RothkoRun};
use qsc_core::StorageMode;
use qsc_graph::delta::EdgeEvent;
use qsc_graph::{Graph, GraphBuilder, GraphDelta};
use qsc_persist::{encode_checkpoint, CheckpointData, Layout, Store, StoreOptions};
use rand::prelude::*;

/// Fresh scratch directory under the system temp dir.
fn temp_store_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qsc-persist-rt-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Random graph with exactly representable weights (multiples of 0.5).
fn random_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            let w = (rng.random_range(1u32..9) as f64) * 0.5;
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Canonical byte encoding of a stack's full observable state.
fn state_bytes(run: &RothkoRun<'_>, reduced: Option<&ReducedDelta>) -> Vec<u8> {
    let mut config = run.config().clone();
    config.initial = None; // not persisted; normalize for comparison
    let data = CheckpointData {
        graph: run.graph().clone(),
        config,
        run: run.snapshot(),
        reduced: reduced.map(ReducedDelta::snapshot),
        wal_seq: 0,
    };
    encode_checkpoint(&data).0
}

/// Random edge mutations over `delta`, returning the drained events.
fn edge_churn(delta: &mut GraphDelta, rng: &mut StdRng, ops: usize) -> Vec<EdgeEvent> {
    let n = delta.num_nodes();
    let mut edges: Vec<(u32, u32)> = delta
        .base()
        .edges()
        .iter()
        .map(|&(u, v, _)| (u, v))
        .collect();
    for _ in 0..ops {
        match rng.random_range(0..3u32) {
            0 => {
                for _ in 0..20 {
                    let u = rng.random_range(0..n) as u32;
                    let v = rng.random_range(0..n) as u32;
                    if delta.is_live(u) && delta.is_live(v) && !delta.has_edge(u, v) {
                        let w = (rng.random_range(1u32..9) as f64) * 0.5;
                        delta.insert_edge(u, v, w).unwrap();
                        edges.push((u, v));
                        break;
                    }
                }
            }
            1 => {
                if edges.is_empty() {
                    continue;
                }
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                if delta.has_edge(u, v) {
                    delta.delete_edge(u, v).unwrap();
                }
            }
            _ => {
                if edges.is_empty() {
                    continue;
                }
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges[i];
                if delta.has_edge(u, v) {
                    let w = (rng.random_range(1u32..9) as f64) * 0.5;
                    delta.reweight_edge(u, v, w).unwrap();
                }
            }
        }
    }
    delta.drain_events()
}

/// One live trace step: edge batch, logged then applied in the canonical
/// run → reduced lockstep order.
fn live_edge_batch(
    store: &mut Store,
    run: &mut RothkoRun<'_>,
    reduced: &mut ReducedDelta,
    delta: &mut GraphDelta,
    rng: &mut StdRng,
    ops: usize,
) {
    let events = edge_churn(delta, rng, ops);
    store.log_edge_batch(&events).unwrap();
    let compacted = delta.compact();
    run.apply_edge_batch(compacted, &events);
    reduced.apply_edge_batch(run.partition(), &events);
}

/// One live trace step: node churn, logged then applied with the reduced
/// lockstep running on a grown partition clone before the run's remap.
fn live_node_batch(
    store: &mut Store,
    run: &mut RothkoRun<'_>,
    reduced: &mut ReducedDelta,
    delta: &mut GraphDelta,
    rng: &mut StdRng,
) -> Graph {
    let (batch, compacted) =
        qsc_bench::random_node_churn(delta, run.partition(), rng, 3, 2, 3, |r| {
            (r.random_range(1u32..9) as f64) * 0.5
        });
    store.log_node_batch(&batch).unwrap();
    let mut p = run.partition().clone();
    for &c in &batch.inserted_colors {
        p.insert_node(c);
        reduced.apply_node_insert(c);
    }
    reduced.apply_edge_batch(&p, &batch.edge_events);
    for &v in &batch.removed {
        reduced.apply_node_removal(p.color_of(v));
    }
    run.apply_node_batch(compacted.clone(), &batch);
    compacted
}

/// One live trace step: maintenance with reduced lockstep, logged.
fn live_maintain(
    store: &mut Store,
    run: &mut RothkoRun<'_>,
    reduced: &mut ReducedDelta,
    base: &Graph,
) {
    store.log_maintain().unwrap();
    run.maintain_with(|p, ev| match ev {
        PartitionEvent::Split(s) => reduced.apply_split(base, p, s),
        PartitionEvent::Merge(m) => reduced.apply_merge(m),
        PartitionEvent::NodeInsert { .. } | PartitionEvent::NodeRemove { .. } => {}
    });
}

/// Drive a full trace for one (storage, threads, directed, seed) cell,
/// recovering and comparing after every round and once more after
/// advancing the recovered stack in lockstep with the live one.
fn roundtrip_trace(
    storage: StorageMode,
    threads: usize,
    directed: bool,
    seed: u64,
    rounds: usize,
    layout: Layout,
) {
    let dir = temp_store_dir("trace");
    let g = random_graph(70, 300, directed, seed);
    let config = RothkoConfig {
        max_colors: 36,
        target_error: 3.0,
        threads: Some(threads),
        storage,
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let mut reduced = ReducedDelta::new(&g, run.partition());
    // Tiny segments force rotation mid-trace so recovery crosses segment
    // boundaries; sync_every 0 fsyncs each record.
    let mut store = Store::create(
        &dir,
        StoreOptions {
            segment_bytes: 512,
            sync_every_bytes: 0,
            layout,
        },
    )
    .unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    let mut delta = GraphDelta::new(g.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b9);
    for round in 0..rounds {
        live_edge_batch(&mut store, &mut run, &mut reduced, &mut delta, &mut rng, 12);
        let mut base = delta.compact();
        if round % 2 == 1 {
            base = live_node_batch(&mut store, &mut run, &mut reduced, &mut delta, &mut rng);
        }
        live_maintain(&mut store, &mut run, &mut reduced, &base);
        // Mid-trace checkpoint on the middle round: recovery now starts
        // from a non-initial snapshot and replays only the newer tail.
        if round == rounds / 2 {
            store.checkpoint(&run, Some(&reduced)).unwrap();
        }
        let rec = Store::recover(&dir, None).unwrap();
        assert_eq!(
            state_bytes(&run, Some(&reduced)),
            state_bytes(&rec.run, rec.reduced.as_ref()),
            "restored state diverged (storage {storage:?}, threads {threads}, \
             directed {directed}, round {round})"
        );
    }
    // Restored-then-advanced: one more batch + maintain applied to both
    // the live stack and a fresh recovery must stay byte-identical.
    let rec = Store::recover(&dir, None).unwrap();
    let mut rec_run = rec.run;
    let mut rec_reduced = rec.reduced.unwrap();
    let events = edge_churn(&mut delta, &mut rng, 10);
    let compacted = delta.compact();
    run.apply_edge_batch(compacted.clone(), &events);
    reduced.apply_edge_batch(run.partition(), &events);
    rec_run.apply_edge_batch(compacted.clone(), &events);
    rec_reduced.apply_edge_batch(rec_run.partition(), &events);
    run.maintain_with(|p, ev| match ev {
        PartitionEvent::Split(s) => reduced.apply_split(&compacted, p, s),
        PartitionEvent::Merge(m) => reduced.apply_merge(m),
        _ => {}
    });
    rec_run.maintain_with(|p, ev| match ev {
        PartitionEvent::Split(s) => rec_reduced.apply_split(&compacted, p, s),
        PartitionEvent::Merge(m) => rec_reduced.apply_merge(m),
        _ => {}
    });
    assert_eq!(
        state_bytes(&run, Some(&reduced)),
        state_bytes(&rec_run, Some(&rec_reduced)),
        "advanced-after-restore state diverged (storage {storage:?}, threads {threads}, \
         directed {directed})"
    );
    assert_eq!(
        reduced.verify_against(&run.graph().clone(), run.partition()),
        Ok(())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restored_stack_is_bit_identical_across_modes_and_threads() {
    for storage in [StorageMode::Dense, StorageMode::Sparse, StorageMode::Auto] {
        for threads in [1usize, 4] {
            for (directed, seed) in [(false, 17u64), (true, 53)] {
                roundtrip_trace(storage, threads, directed, seed, 3, Layout::Packed);
            }
        }
    }
}

#[test]
fn restored_stack_is_bit_identical_from_mapped_checkpoints() {
    // Same grid as the packed sweep, but the store writes version-2
    // (mapped raw) checkpoints and recovery serves the large columns
    // zero-copy out of the map. Bit-identity must hold regardless.
    for storage in [StorageMode::Dense, StorageMode::Sparse, StorageMode::Auto] {
        for threads in [1usize, 4] {
            for (directed, seed) in [(false, 17u64), (true, 53)] {
                roundtrip_trace(storage, threads, directed, seed, 3, Layout::MappedRaw);
            }
        }
    }
}

/// Mapped restore and owned restore of the same store, advanced through
/// identical churn rounds, must stay bit-identical at every step — the
/// engine must not be able to observe which memory its columns sit on.
fn mapped_vs_owned_equivalence(threads: usize) {
    let dir = temp_store_dir("mapped-eq");
    let g = random_graph(70, 300, false, 29);
    let config = RothkoConfig {
        max_colors: 36,
        target_error: 3.0,
        threads: Some(threads),
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let reduced = ReducedDelta::new(&g, run.partition());
    let mut store = Store::create(
        &dir,
        StoreOptions {
            layout: Layout::MappedRaw,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    drop(store);

    // Owned restore: decode the same v2 file eagerly into owned columns.
    let path = dir.join(qsc_persist::CHECKPOINT_FILE);
    let bytes = std::fs::read(&path).unwrap();
    let owned = qsc_persist::decode_checkpoint(&bytes).unwrap();
    let mut owned_run = RothkoRun::from_snapshot(owned.graph.clone(), owned.config, &owned.run);
    let mut owned_reduced = ReducedDelta::from_snapshot(owned.reduced.as_ref().unwrap());

    // Mapped restore: recovery auto-detects v2 and borrows the columns.
    let rec = Store::recover(&dir, None).unwrap();
    let mut rec_run = rec.run;
    let mut rec_reduced = rec.reduced.unwrap();
    assert_eq!(
        state_bytes(&owned_run, Some(&owned_reduced)),
        state_bytes(&rec_run, Some(&rec_reduced)),
        "mapped and owned restores diverged before any churn (threads {threads})"
    );

    // Three rounds of identical churn + maintenance applied to both.
    let mut delta = GraphDelta::new(rec_run.graph().clone());
    let mut rng = StdRng::seed_from_u64(0xfeed);
    for round in 0..3 {
        let events = edge_churn(&mut delta, &mut rng, 12);
        let compacted = delta.compact();
        rec_run.apply_edge_batch(compacted.clone(), &events);
        rec_reduced.apply_edge_batch(rec_run.partition(), &events);
        owned_run.apply_edge_batch(compacted.clone(), &events);
        owned_reduced.apply_edge_batch(owned_run.partition(), &events);
        rec_run.maintain_with(|p, ev| match ev {
            PartitionEvent::Split(s) => rec_reduced.apply_split(&compacted, p, s),
            PartitionEvent::Merge(m) => rec_reduced.apply_merge(m),
            _ => {}
        });
        owned_run.maintain_with(|p, ev| match ev {
            PartitionEvent::Split(s) => owned_reduced.apply_split(&compacted, p, s),
            PartitionEvent::Merge(m) => owned_reduced.apply_merge(m),
            _ => {}
        });
        assert_eq!(
            state_bytes(&owned_run, Some(&owned_reduced)),
            state_bytes(&rec_run, Some(&rec_reduced)),
            "mapped and owned stacks diverged after churn round {round} (threads {threads})"
        );
    }
    assert_eq!(
        rec_reduced.verify_against(&rec_run.graph().clone(), rec_run.partition()),
        Ok(())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mapped_restore_matches_owned_restore_under_churn() {
    mapped_vs_owned_equivalence(1);
    mapped_vs_owned_equivalence(4);
}

#[test]
fn mapped_store_queries_match_recovered_run() {
    // MappedStore's direct queries (coloring, quotient weights) must agree
    // with the fully recovered stack without assembling the engine.
    let dir = temp_store_dir("mapped-query");
    let g = random_graph(60, 260, false, 41);
    let config = RothkoConfig {
        max_colors: 24,
        target_error: 3.0,
        threads: Some(1),
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let reduced = ReducedDelta::new(&g, run.partition());
    let mut store = Store::create(
        &dir,
        StoreOptions {
            layout: Layout::MappedRaw,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    drop(store);

    let mapped = qsc_persist::MappedStore::open_dir(&dir).unwrap();
    assert!(mapped.is_mapped());
    assert_eq!(mapped.num_nodes(), g.num_nodes());
    let coloring = mapped.coloring().unwrap();
    let k = mapped.num_colors();
    for (v, &c) in coloring.iter().enumerate() {
        assert_eq!(c, run.partition().color_of(v as u32));
    }
    for a in 0..k {
        for b in 0..k {
            assert_eq!(
                mapped.quotient_weight(a, b).unwrap().to_bits(),
                reduced.pair_weight(a, b).to_bits(),
                "quotient weight ({a},{b}) disagrees with the live reduced instance"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recovery_is_idempotent_and_reports_coverage() {
    // Recovering twice from the same store yields the same bytes, and a
    // store reopened at the recovered sequence keeps logging seamlessly.
    let dir = temp_store_dir("idem");
    let g = random_graph(50, 200, false, 99);
    let config = RothkoConfig {
        max_colors: 24,
        target_error: 3.0,
        threads: Some(1),
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let mut reduced = ReducedDelta::new(&g, run.partition());
    let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    let mut delta = GraphDelta::new(g.clone());
    let mut rng = StdRng::seed_from_u64(7);
    live_edge_batch(&mut store, &mut run, &mut reduced, &mut delta, &mut rng, 8);
    store.sync().unwrap();
    let seq_logged = store.last_seq();
    drop(store);

    let a = Store::recover(&dir, None).unwrap();
    let b = Store::recover(&dir, None).unwrap();
    assert_eq!(a.replayed, 1);
    assert_eq!(a.last_seq, seq_logged);
    assert_eq!(
        state_bytes(&a.run, a.reduced.as_ref()),
        state_bytes(&b.run, b.reduced.as_ref())
    );
    assert_eq!(
        state_bytes(&run, Some(&reduced)),
        state_bytes(&a.run, a.reduced.as_ref())
    );

    // Resume logging from the recovered position and recover again.
    let mut store = Store::open_at(&dir, a.last_seq, StoreOptions::default()).unwrap();
    let mut run2 = a.run;
    let mut reduced2 = a.reduced.unwrap();
    live_edge_batch(
        &mut store,
        &mut run2,
        &mut reduced2,
        &mut delta,
        &mut rng,
        8,
    );
    store.sync().unwrap();
    let c = Store::recover(&dir, None).unwrap();
    assert_eq!(c.replayed, 2);
    assert_eq!(
        state_bytes(&run2, Some(&reduced2)),
        state_bytes(&c.run, c.reduced.as_ref())
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn thread_override_on_recovery_preserves_results() {
    // Recovering a 1-thread store with 4 threads (and vice versa) changes
    // only the pool; coloring, error bits and reduced state must match.
    let dir = temp_store_dir("threads");
    let g = random_graph(60, 260, true, 5);
    let config = RothkoConfig {
        max_colors: 30,
        target_error: 3.0,
        threads: Some(1),
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let mut reduced = ReducedDelta::new(&g, run.partition());
    let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    let mut delta = GraphDelta::new(g.clone());
    let mut rng = StdRng::seed_from_u64(31);
    live_edge_batch(&mut store, &mut run, &mut reduced, &mut delta, &mut rng, 10);
    let base = delta.compact();
    live_maintain(&mut store, &mut run, &mut reduced, &base);
    store.sync().unwrap();

    let rec = Store::recover(&dir, Some(4)).unwrap();
    let mut rec_run = rec.run;
    assert_eq!(rec_run.config().threads, Some(4));
    assert!(run.partition().same_as(rec_run.partition()));
    assert_eq!(
        run.exact_max_error().to_bits(),
        rec_run.exact_max_error().to_bits()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzzed trace schedules: random storage mode, thread count,
    /// direction, round count and churn sizes — every recovery must be
    /// byte-identical to the live stack.
    #[test]
    fn fuzzed_traces_roundtrip(
        seed in any::<u64>(),
        storage_idx in 0usize..3,
        threads_idx in 0usize..2,
        directed in any::<bool>(),
        rounds in 1usize..4,
    ) {
        let storage = [StorageMode::Dense, StorageMode::Sparse, StorageMode::Auto][storage_idx];
        let threads = [1usize, 4][threads_idx];
        roundtrip_trace(storage, threads, directed, seed, rounds, Layout::Packed);
    }

    /// The same fuzzed schedules against version-2 mapped checkpoints:
    /// recovery borrows the large columns from the map instead of
    /// decoding, and must remain byte-identical to the live stack.
    #[test]
    fn fuzzed_traces_roundtrip_mapped(
        seed in any::<u64>(),
        storage_idx in 0usize..3,
        threads_idx in 0usize..2,
        directed in any::<bool>(),
        rounds in 1usize..4,
    ) {
        let storage = [StorageMode::Dense, StorageMode::Sparse, StorageMode::Auto][storage_idx];
        let threads = [1usize, 4][threads_idx];
        roundtrip_trace(storage, threads, directed, seed, rounds, Layout::MappedRaw);
    }
}
