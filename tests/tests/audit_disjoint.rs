//! Tests for the dynamic `SyncSliceMut` disjointness checker
//! (`qsc-core --features audit`): disjoint sharding passes, epoch
//! retirement keeps cross-region reuse legal, and deliberately
//! overlapping cross-thread claims abort the process.
//!
//! The whole file is compiled only with the `audit` feature; the negative
//! tests re-exec the test binary (the checker aborts, which cannot be
//! caught in-process) and assert on the child's exit status and stderr.
#![cfg(feature = "audit")]

use qsc_core::parallel::{chunk_range, SyncSliceMut, ThreadPool};
use std::process::Command;

const CHILD_ENV: &str = "QSC_AUDIT_OVERLAP_CHILD";

/// Re-run exactly one test of this binary in a child process with
/// `CHILD_ENV` set, returning `(success, stderr)`.
fn run_child(test_name: &str) -> (bool, String) {
    let exe = std::env::current_exe().expect("test binary path");
    let out = Command::new(exe)
        .arg("--exact")
        .arg(test_name)
        .arg("--nocapture")
        .arg("--test-threads=1")
        .env(CHILD_ENV, "1")
        .output()
        .expect("spawn child test process");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn is_child() -> bool {
    std::env::var_os(CHILD_ENV).is_some()
}

#[test]
fn disjoint_shards_pass_with_checker_enabled() {
    if is_child() {
        return;
    }
    let pool = ThreadPool::new(4);
    let data: Vec<u64> = (0..997).collect();
    let mut out = vec![0u64; 4];
    let shards = SyncSliceMut::new(&mut out);
    pool.run(|slot| {
        let (lo, hi) = chunk_range(data.len(), 4, slot);
        // SAFETY: each slot writes only its own index.
        unsafe { *shards.get_mut(slot) = data[lo..hi].iter().sum() };
    });
    assert_eq!(out.iter().sum::<u64>(), (0..997u64).sum());
}

#[test]
fn same_thread_reclaims_are_exempt() {
    if is_child() {
        return;
    }
    // Sequential re-borrows from one thread claim the same index twice;
    // the checker only polices *cross-thread* overlap.
    let pool = ThreadPool::new(1);
    let mut data = vec![0u64; 4];
    let shards = SyncSliceMut::new(&mut data);
    pool.run(|_| {
        // SAFETY: single-threaded region; each reference is dropped
        // before the next claim.
        unsafe { *shards.get_mut(1) += 1 };
        unsafe { *shards.get_mut(1) += 1 };
        unsafe { shards.slice_mut(0, 4)[1] += 1 };
    });
    assert_eq!(data[1], 3);
}

#[test]
fn epoch_retirement_allows_cross_region_reuse() {
    if is_child() {
        return;
    }
    // Region r has slot i claim chunk (i + r) % slots: across regions the
    // same range is claimed by different threads, which must be legal
    // because ThreadPool::run retires the previous region's claims.
    let pool = ThreadPool::new(4);
    let mut data = vec![0u64; 64];
    let shards = SyncSliceMut::new(&mut data);
    for r in 0..8 {
        pool.run(|slot| {
            let (lo, hi) = chunk_range(64, 4, (slot + r) % 4);
            // SAFETY: the four rotated chunks are pairwise disjoint
            // within each region.
            let chunk = unsafe { shards.slice_mut(lo, hi) };
            for x in chunk {
                *x += 1;
            }
        });
    }
    assert!(data.iter().all(|&x| x == 8));
}

#[test]
fn overlapping_get_mut_claims_abort() {
    if is_child() {
        // Deliberate violation: both slots claim element 0.
        let pool = ThreadPool::new(2);
        let mut data = vec![0u64; 4];
        let shards = SyncSliceMut::new(&mut data);
        pool.run(|slot| {
            // SAFETY: deliberately unsound — this is the negative test
            // the checker exists to catch; it aborts before the second
            // reference materializes.
            unsafe { *shards.get_mut(0) = slot as u64 };
        });
        // Only reached if the checker failed to fire.
        eprintln!("child survived overlapping get_mut claims");
        std::process::exit(0);
    }
    let (ok, stderr) = run_child("overlapping_get_mut_claims_abort");
    assert!(
        !ok,
        "child must die on overlapping claims; stderr: {stderr}"
    );
    assert!(
        stderr.contains("qsc-audit: overlapping claim"),
        "checker diagnostic missing from child stderr: {stderr}"
    );
    assert!(
        !stderr.contains("child survived"),
        "checker let the overlap through: {stderr}"
    );
}

#[test]
fn overlapping_slice_mut_claims_abort() {
    if is_child() {
        // Deliberate violation: ranges [0, 3) and [2, 4) intersect at 2.
        let pool = ThreadPool::new(2);
        let mut data = vec![0u64; 4];
        let shards = SyncSliceMut::new(&mut data);
        pool.run(|slot| {
            let (lo, hi) = if slot == 0 { (0, 3) } else { (2, 4) };
            // SAFETY: deliberately unsound — negative test for the
            // checker; it aborts before both slices are live.
            unsafe { shards.slice_mut(lo, hi)[0] = 1 };
        });
        eprintln!("child survived overlapping slice_mut claims");
        std::process::exit(0);
    }
    let (ok, stderr) = run_child("overlapping_slice_mut_claims_abort");
    assert!(
        !ok,
        "child must die on overlapping claims; stderr: {stderr}"
    );
    assert!(
        stderr.contains("qsc-audit: overlapping claim"),
        "checker diagnostic missing from child stderr: {stderr}"
    );
    assert!(
        !stderr.contains("child survived"),
        "checker let the overlap through: {stderr}"
    );
}
