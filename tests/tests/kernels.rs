//! Lane-kernel equivalence suite: every kernel in `qsc_linalg::lanes` /
//! `qsc_core::kernels` must match its naive scalar reference *bit for bit*
//! on adversarial floats — signed zeros, subnormals, extremum ties,
//! empty/short/unaligned-length slices — plus engine-level pins that
//! colorings stay bit-identical across thread counts after the rewire.

use proptest::prelude::*;
use qsc_core::kernels;
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_graph::generators;
use qsc_linalg::lanes;

/// Map small generated codes onto adversarial f64 values: both zero signs,
/// subnormals, ±1 ULP neighbours, repeats (ties), and ordinary magnitudes.
fn adversarial(code: u8) -> f64 {
    const SUBNORMAL: f64 = 5e-324; // smallest positive subnormal
    match code % 12 {
        0 => 0.0,
        1 => -0.0,
        2 => 1.0,
        3 => -1.0,
        4 => f64::MIN_POSITIVE,
        5 => -f64::MIN_POSITIVE,
        6 => SUBNORMAL,
        7 => -SUBNORMAL,
        8 => 2.5,
        9 => 2.5, // deliberate duplicate: extremum ties across positions
        10 => 1e300,
        _ => -7.25,
    }
}

fn decode(codes: &[u8]) -> Vec<f64> {
    codes.iter().map(|&c| adversarial(c)).collect()
}

/// The canonical blocked reduction tree, written naively (the reference
/// the `sum`/`dot` kernels are pinned against).
fn reference_tree_sum(xs: &[f64]) -> f64 {
    const W: usize = lanes::LANES;
    let mut acc_lanes = [0.0f64; W];
    let blocked = xs.len() - xs.len() % W;
    for (i, &x) in xs[..blocked].iter().enumerate() {
        acc_lanes[i % W] += x;
    }
    let mut acc = ((acc_lanes[0] + acc_lanes[1]) + (acc_lanes[2] + acc_lanes[3]))
        + ((acc_lanes[4] + acc_lanes[5]) + (acc_lanes[6] + acc_lanes[7]));
    for &x in &xs[blocked..] {
        acc += x;
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sum_and_dot_match_canonical_tree(
        codes in proptest::collection::vec(0u8..12, 0..40),
    ) {
        let xs = decode(&codes);
        prop_assert_eq!(lanes::sum(&xs).to_bits(), reference_tree_sum(&xs).to_bits());
        let ys: Vec<f64> = xs.iter().map(|x| x * 0.5 - 1.0).collect();
        let prods: Vec<f64> = xs.iter().zip(&ys).map(|(x, y)| x * y).collect();
        prop_assert_eq!(
            lanes::dot(&xs, &ys).to_bits(),
            reference_tree_sum(&prods).to_bits()
        );
    }

    #[test]
    fn elementwise_folds_match_scalar(
        codes in proptest::collection::vec((0u8..12, 0u8..12), 0..40),
    ) {
        let src: Vec<f64> = codes.iter().map(|&(a, _)| adversarial(a)).collect();
        let init: Vec<f64> = codes.iter().map(|&(_, b)| adversarial(b)).collect();
        let mut got = init.clone();
        lanes::fold_add(&mut got, &src);
        let want: Vec<f64> = init.iter().zip(&src).map(|(d, s)| d + s).collect();
        prop_assert_eq!(bits(&got), bits(&want));
        let mut got = init.clone();
        lanes::fold_sub(&mut got, &src);
        let want: Vec<f64> = init.iter().zip(&src).map(|(d, s)| d - s).collect();
        prop_assert_eq!(bits(&got), bits(&want));
        let mut got = init.clone();
        lanes::axpy(1.5, &src, &mut got);
        let want: Vec<f64> = init.iter().zip(&src).map(|(d, s)| d + 1.5 * s).collect();
        prop_assert_eq!(bits(&got), bits(&want));
    }

    #[test]
    fn min_max_matches_strict_scalar_scan(
        codes in proptest::collection::vec(0u8..12, 0..40),
    ) {
        let xs = decode(&codes);
        let (mn, mx) = lanes::min_max(&xs);
        let mut smn = f64::INFINITY;
        let mut smx = f64::NEG_INFINITY;
        for &x in &xs {
            if x < smn {
                smn = x;
            }
            if x > smx {
                smx = x;
            }
        }
        prop_assert_eq!(mn.to_bits(), smn.to_bits());
        prop_assert_eq!(mx.to_bits(), smx.to_bits());
    }

    #[test]
    fn fold_minmax_row_matches_scalar_scan(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u8..12, 13), 1..6,
        ),
    ) {
        // 13 columns exercises both the 8-wide blocked body and the tail;
        // the per-member fold must keep the FIRST attainer on ties.
        for k in [0usize, 1, 7, 8, 13] {
            let mut mins = vec![f64::INFINITY; k];
            let mut maxs = vec![f64::NEG_INFINITY; k];
            let mut amn = vec![kernels::NO_ARG; k];
            let mut amx = vec![kernels::NO_ARG; k];
            let mut nz = vec![0u32; k];
            let mut smins = mins.clone();
            let mut smaxs = maxs.clone();
            let mut samn = amn.clone();
            let mut samx = amx.clone();
            let mut snz = nz.clone();
            for (u, codes) in rows.iter().enumerate() {
                let row = decode(&codes[..k]);
                kernels::fold_minmax_row(
                    u as u32, &row, &mut mins, &mut maxs, &mut amn, &mut amx, &mut nz,
                );
                for j in 0..k {
                    let o = row[j];
                    snz[j] += u32::from(o != 0.0);
                    if o < smins[j] {
                        smins[j] = o;
                        samn[j] = u as u32;
                    }
                    if o > smaxs[j] {
                        smaxs[j] = o;
                        samx[j] = u as u32;
                    }
                }
            }
            prop_assert_eq!(bits(&mins), bits(&smins));
            prop_assert_eq!(bits(&maxs), bits(&smaxs));
            prop_assert_eq!(&amn, &samn);
            prop_assert_eq!(&amx, &samx);
            prop_assert_eq!(&nz, &snz);
        }
    }

    #[test]
    fn scan_gather_column_matches_scalar_scan(
        codes in proptest::collection::vec(0u8..12, 64),
        member_picks in proptest::collection::vec(0u32..8, 0..8),
    ) {
        let cap = 8usize;
        let acc = decode(&codes); // 8 nodes × cap 8
        for col in 0..cap {
            let (mn, mx, amn, amx, nz) =
                kernels::scan_gather_column(&member_picks, &acc, cap, col);
            let mut smn = f64::INFINITY;
            let mut smx = f64::NEG_INFINITY;
            let mut samn = kernels::NO_ARG;
            let mut samx = kernels::NO_ARG;
            let mut snz = 0u32;
            for &u in &member_picks {
                let x = acc[u as usize * cap + col];
                snz += u32::from(x != 0.0);
                if x < smn {
                    smn = x;
                    samn = u;
                }
                if x > smx {
                    smx = x;
                    samx = u;
                }
            }
            prop_assert_eq!(mn.to_bits(), smn.to_bits());
            prop_assert_eq!(mx.to_bits(), smx.to_bits());
            prop_assert_eq!((amn, amx, nz), (samn, samx, snz));
        }
    }

    #[test]
    fn row_err_argmax_matches_scalar_scan(
        pairs in proptest::collection::vec((0u8..12, 0u8..12), 0..40),
    ) {
        // Lengths 0..40 cover empty rows, pure-tail rows, and rows with
        // cross-lane ties (the duplicate code makes equal spreads common);
        // the kernel must return the sequential FIRST attainer.
        let maxs: Vec<f64> = pairs.iter().map(|&(a, b)| {
            let (x, y) = (adversarial(a), adversarial(b));
            if x > y { x } else { y }
        }).collect();
        let mins: Vec<f64> = pairs.iter().map(|&(a, b)| {
            let (x, y) = (adversarial(a), adversarial(b));
            if x > y { y } else { x }
        }).collect();
        let (err, arg) = kernels::row_err_argmax(&maxs, &mins);
        let mut serr = 0.0f64;
        let mut sarg = kernels::NO_ARG;
        for j in 0..maxs.len() {
            let e = maxs[j] - mins[j];
            if e > serr {
                serr = e;
                sarg = j as u32;
            }
        }
        prop_assert_eq!(err.to_bits(), serr.to_bits());
        prop_assert_eq!(arg, sarg);
    }

    #[test]
    fn scan_gather_columns_matches_per_column_gather(
        codes in proptest::collection::vec(0u8..12, 64),
        member_picks in proptest::collection::vec(0u32..8, 0..8),
        col_picks in proptest::collection::vec(0u32..8, 0..8),
    ) {
        // The grouped multi-column pass must equal one scan_gather_column
        // call per queued column (duplicated columns included).
        let cap = 8usize;
        let acc = decode(&codes);
        let t = col_picks.len();
        let mut mn = vec![0.0f64; t];
        let mut mx = vec![0.0f64; t];
        let mut amn = vec![0u32; t];
        let mut amx = vec![0u32; t];
        let mut nz = vec![0u32; t];
        kernels::scan_gather_columns(
            &member_picks, &acc, cap, &col_picks,
            &mut mn, &mut mx, &mut amn, &mut amx, &mut nz,
        );
        for (s, &col) in col_picks.iter().enumerate() {
            let (smn, smx, samn, samx, snz) =
                kernels::scan_gather_column(&member_picks, &acc, cap, col as usize);
            prop_assert_eq!(mn[s].to_bits(), smn.to_bits());
            prop_assert_eq!(mx[s].to_bits(), smx.to_bits());
            prop_assert_eq!((amn[s], amx[s], nz[s]), (samn, samx, snz));
        }
    }

    #[test]
    fn gather_stats_matches_tree_sum_and_scalar_minmax(
        codes in proptest::collection::vec(0u8..12, 32),
        member_picks in proptest::collection::vec(0u32..32, 0..24),
    ) {
        let vals = decode(&codes);
        let stats = kernels::gather_stats(&member_picks, &vals);
        let gathered: Vec<f64> = member_picks.iter().map(|&u| vals[u as usize]).collect();
        prop_assert_eq!(stats.sum.to_bits(), reference_tree_sum(&gathered).to_bits());
        let (mn, mx) = lanes::min_max(&gathered);
        prop_assert_eq!(stats.min.to_bits(), mn.to_bits());
        prop_assert_eq!(stats.max.to_bits(), mx.to_bits());
        // The fast variant may reassociate the sum but min/max are pinned.
        let fast = kernels::gather_stats_fast(&member_picks, &vals);
        prop_assert_eq!(fast.min.to_bits(), mn.to_bits());
        prop_assert_eq!(fast.max.to_bits(), mx.to_bits());
    }
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

/// Engine-level pin: after the kernel rewire, full Rothko runs stay bit
/// identical across thread counts — color assignments and the reported
/// maximum q-error compare equal to the bit.
#[test]
fn rothko_bit_identical_across_thread_counts() {
    let graphs = [
        ("ba", generators::barabasi_albert(600, 3, 11)),
        ("er", generators::erdos_renyi(400, 0.02, 7)),
    ];
    for (name, g) in &graphs {
        for (alpha, beta, mean) in [
            (0.0, 0.0, SplitMean::Arithmetic),
            (1.0, 1.0, SplitMean::Geometric),
        ] {
            let run = |threads: usize| {
                Rothko::new(
                    RothkoConfig::with_max_colors(48)
                        .weights(alpha, beta)
                        .split_mean(mean)
                        .threads(threads),
                )
                .run(g)
            };
            let c1 = run(1);
            let c4 = run(4);
            assert_eq!(
                c1.max_q_error.to_bits(),
                c4.max_q_error.to_bits(),
                "{name} max_q_error diverged across thread counts"
            );
            let n = g.num_nodes();
            for v in 0..n as u32 {
                assert_eq!(
                    c1.partition.color_of(v),
                    c4.partition.color_of(v),
                    "{name} node {v} colored differently at 1 vs 4 threads"
                );
            }
        }
    }
}

/// `fast_math` is opt-in: the default config keeps the canonical order, and
/// the relaxed mode still produces a structurally valid coloring of the
/// same size (its thresholds may differ only by float associativity).
#[test]
fn fast_math_is_opt_in_and_structurally_sound() {
    assert!(!RothkoConfig::default().fast_math);
    let g = generators::barabasi_albert(400, 3, 5);
    let exact = Rothko::new(RothkoConfig::with_max_colors(32)).run(&g);
    let fast = Rothko::new(RothkoConfig::with_max_colors(32).fast_math(true)).run(&g);
    assert_eq!(
        exact.partition.num_colors(),
        fast.partition.num_colors(),
        "fast_math changed the color count on an integer-weight graph"
    );
    // Unit-weight graphs sum exactly under any association, so the two
    // modes must agree exactly here — the difference is order only.
    for v in 0..g.num_nodes() as u32 {
        assert_eq!(exact.partition.color_of(v), fast.partition.color_of(v));
    }
}
