//! Seeded-random equivalence suite for the incremental refinement engine:
//! after every split, [`IncrementalDegrees`] must agree with a from-scratch
//! [`DegreeMatrices::compute`], and the engine-driven Rothko must produce
//! exactly the partition the from-scratch reference stepper produces.

use qsc_core::q_error::{DegreeMatrices, IncrementalDegrees};
use qsc_core::rothko::{Rothko, RothkoConfig, SplitMean};
use qsc_core::{stable_coloring, Partition};
use qsc_graph::{Graph, GraphBuilder};
use rand::prelude::*;

/// Random graph with exactly representable weights (multiples of 0.5), so
/// incremental subtraction and from-scratch summation agree bit-for-bit.
fn random_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            // Weights in {0.5, 1.0, ..., 4.0}.
            let w = (rng.random_range(1u32..9) as f64) * 0.5;
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Apply a sequence of random (but valid) splits, cross-checking the engine
/// against the from-scratch matrices after every one.
fn check_random_splits(g: &Graph, seed: u64) {
    let n = g.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
    let mut p = Partition::unit(n);
    let mut engine = IncrementalDegrees::new(g, &p);
    assert_eq!(engine.verify_against(g, &p), Ok(()));
    for _ in 0..n {
        // Pick a splittable color and eject a random non-trivial subset.
        let k = p.num_colors();
        let candidates: Vec<u32> = (0..k as u32).filter(|&c| p.size(c) >= 2).collect();
        let Some(&c) = candidates.as_slice().choose(&mut rng) else {
            break;
        };
        let members: Vec<u32> = p.members(c).to_vec();
        let pivot = members[rng.random_range(0..members.len())];
        let by_parity = rng.random::<bool>();
        let event = if by_parity {
            p.split_color(c, |v| v % 2 == pivot % 2 && v != members[0])
        } else {
            p.split_color(c, |v| v >= pivot && v != members[0])
        };
        let Some(event) = event else { continue };
        engine.apply_split(g, &p, &event);
        assert_eq!(
            engine.verify_against(g, &p),
            Ok(()),
            "engine diverged after splitting color {c} (seed {seed})"
        );
    }
    // Spot-check the error entries against the scratch matrices directly.
    let scratch = DegreeMatrices::compute(g, &p);
    for i in 0..p.num_colors() {
        for j in 0..p.num_colors() {
            assert_eq!(engine.out_error(i, j), scratch.out_error(i, j));
            assert_eq!(engine.in_error(i, j), scratch.in_error(i, j));
        }
    }
}

#[test]
fn engine_matches_scratch_on_random_undirected_graphs() {
    for seed in 0..8 {
        let g = random_graph(60, 240, false, seed);
        check_random_splits(&g, seed);
    }
}

#[test]
fn engine_matches_scratch_on_random_directed_graphs() {
    for seed in 0..8 {
        let g = random_graph(60, 240, true, seed * 31 + 7);
        check_random_splits(&g, seed);
    }
}

#[test]
fn engine_matches_scratch_on_sparse_and_dense_extremes() {
    // Nearly edgeless and nearly complete graphs stress the implicit-zero
    // handling and the touched-count bookkeeping respectively.
    for &(n, m) in &[(40usize, 10usize), (30, 800)] {
        for seed in 0..4 {
            let g = random_graph(n, m, seed % 2 == 0, seed + 100);
            check_random_splits(&g, seed);
        }
    }
}

/// The refactor must not change Rothko's output: the incremental run and
/// the from-scratch reference run share witness selection and split logic,
/// so for exactly representable weights the partitions are identical.
fn assert_runs_identical(g: &Graph, config: RothkoConfig, label: &str) {
    let incremental = Rothko::new(config.clone()).run(g);
    let reference = Rothko::new(config).run_reference(g);
    assert_eq!(
        incremental.partition.canonical_assignment(),
        reference.partition.canonical_assignment(),
        "incremental vs reference partitions diverged: {label}"
    );
    assert_eq!(incremental.iterations, reference.iterations, "{label}");
    assert_eq!(incremental.max_q_error, reference.max_q_error, "{label}");
}

#[test]
fn rothko_identical_before_and_after_refactor_fixed_seeds() {
    for seed in [1u64, 7, 23, 101] {
        let g = random_graph(80, 320, seed % 2 == 0, seed);
        assert_runs_identical(&g, RothkoConfig::with_max_colors(16), "max_colors=16");
        assert_runs_identical(&g, RothkoConfig::with_target_error(2.0), "target_error=2");
        assert_runs_identical(
            &g,
            RothkoConfig::with_max_colors(12).weights(1.0, 0.0),
            "alpha=1",
        );
        assert_runs_identical(
            &g,
            RothkoConfig::with_max_colors(12)
                .weights(1.0, 1.0)
                .split_mean(SplitMean::Geometric),
            "alpha=beta=1 geometric",
        );
    }
}

#[test]
fn rothko_engine_reaches_stability_like_reference() {
    let g = random_graph(50, 150, true, 999);
    let incremental = Rothko::new(RothkoConfig::with_target_error(0.0)).run(&g);
    let reference = Rothko::new(RothkoConfig::with_target_error(0.0)).run_reference(&g);
    assert_eq!(incremental.max_q_error, 0.0);
    assert_eq!(
        incremental.partition.canonical_assignment(),
        reference.partition.canonical_assignment()
    );
    // And both refine at least as far as the coarsest stable coloring.
    assert!(incremental.partition.num_colors() >= stable_coloring(&g).num_colors());
}

#[test]
fn engine_tracks_initial_partitions() {
    // Engines seeded from a non-trivial initial coloring stay consistent.
    let g = random_graph(40, 160, false, 4242);
    let init = Partition::from_assignment(&(0..40).map(|v| (v % 3) as u32).collect::<Vec<_>>());
    let config = RothkoConfig::with_max_colors(10).initial(init.clone());
    let incremental = Rothko::new(config.clone()).run(&g);
    let reference = Rothko::new(config).run_reference(&g);
    assert!(incremental.partition.is_refinement_of(&init));
    assert_eq!(
        incremental.partition.canonical_assignment(),
        reference.partition.canonical_assignment()
    );
}
