//! Corruption robustness suite: hostile bytes are **typed errors, never
//! panics**.
//!
//! Checkpoints: every single-bit flip over the *entire* file (header,
//! every block header field, every payload byte) must either fail with a
//! typed [`qsc_persist::PersistError`] or decode to the exact original
//! state (flips landing in ignored padding); every strict prefix
//! truncation must fail typed. Targeted cases pin the specific error
//! variants for bad magic, unknown versions, and header CRC damage.
//!
//! WAL: damage in a *sealed* segment is a hard error; any truncation or
//! flip in the *last* (open) segment recovers cleanly to the longest
//! prefix of complete records — the recover-to-last-complete-batch
//! guarantee, exercised at every byte boundary of the open segment.
//! CRC-valid but semantically poisoned records (out-of-range colors,
//! color-emptying removals, dangling node ids) must surface as
//! [`qsc_persist::PersistError::Corrupt`] from replay, not panics.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{NodeChurnBatch, Rothko, RothkoConfig, RothkoRun};
use qsc_graph::{Graph, GraphBuilder, GraphDelta, NodeRemap};
use qsc_persist::{
    decode_checkpoint, encode_checkpoint, encode_checkpoint_with, read_wal, CheckpointData, Layout,
    MappedStore, PersistError, Store, StoreOptions,
};
use rand::prelude::*;

fn temp_store_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "qsc-persist-corrupt-{}-{}-{}",
        std::process::id(),
        tag,
        NEXT.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Small deterministic graph with exactly representable weights.
fn small_graph(n: usize, edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new_undirected(n);
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            b.add_edge(u, v, (rng.random_range(1u32..9) as f64) * 0.5);
        }
    }
    b.build()
}

/// A maintained run + reduced pair over a small graph.
fn small_stack(seed: u64) -> (Graph, RothkoRun<'static>, ReducedDelta) {
    let g = small_graph(30, 110, seed);
    let config = RothkoConfig {
        max_colors: 12,
        target_error: 3.0,
        threads: Some(1),
        ..Default::default()
    };
    let mut run = Rothko::new(config.clone()).start(&g);
    run.maintain();
    let reduced = ReducedDelta::new(&g, run.partition());
    let snap = run.snapshot();
    (
        g.clone(),
        RothkoRun::from_snapshot(g, config, &snap),
        reduced,
    )
}

fn checkpoint_bytes(seed: u64) -> Vec<u8> {
    let (g, run, reduced) = small_stack(seed);
    let data = CheckpointData {
        graph: g,
        config: run.config().clone(),
        run: run.snapshot(),
        reduced: Some(reduced.snapshot()),
        wal_seq: 7,
    };
    encode_checkpoint(&data).0
}

#[test]
fn every_checkpoint_bit_flip_is_detected_or_inert() {
    let bytes = checkpoint_bytes(3);
    let baseline = encode_checkpoint(&decode_checkpoint(&bytes).unwrap()).0;
    assert_eq!(baseline, bytes, "decode→encode must be the identity");
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            // Must never panic. Ok is tolerated only when the flip landed
            // in bytes the format ignores (reserved padding) — the
            // decoded state must then re-encode to the pristine bytes.
            if let Ok(data) = decode_checkpoint(&mutated) {
                assert_eq!(
                    encode_checkpoint(&data).0,
                    baseline,
                    "byte {i} bit {bit}: flip decoded Ok to a different state"
                );
            }
        }
    }
}

#[test]
fn every_checkpoint_truncation_fails_typed() {
    let bytes = checkpoint_bytes(4);
    for len in 0..bytes.len() {
        let err = decode_checkpoint(&bytes[..len]).expect_err("strict prefix must not decode");
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::Corrupt { .. }
                    | PersistError::CrcMismatch { .. }
                    | PersistError::BadMagic { .. }
            ),
            "truncation to {len} gave unexpected error {err}"
        );
    }
}

#[test]
fn checkpoint_header_fields_fail_with_specific_errors() {
    let bytes = checkpoint_bytes(5);
    // Magic.
    let mut m = bytes.clone();
    m[0] = b'X';
    assert!(matches!(
        decode_checkpoint(&m),
        Err(PersistError::BadMagic { kind: "checkpoint" })
    ));
    // Version (future version, header CRC fixed up to isolate the check).
    let mut v = bytes.clone();
    v[8..12].copy_from_slice(&99u32.to_le_bytes());
    let crc = qsc_persist::codec::crc32(&v[0..16]);
    v[16..20].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        decode_checkpoint(&v),
        Err(PersistError::UnsupportedVersion {
            found: 99,
            supported: 2
        })
    ));
    // Block count (header CRC catches the edit).
    let mut c = bytes.clone();
    c[12] ^= 0xff;
    assert!(matches!(
        decode_checkpoint(&c),
        Err(PersistError::CrcMismatch { .. })
    ));
    // Header CRC itself.
    let mut h = bytes.clone();
    h[19] ^= 0x01;
    assert!(matches!(
        decode_checkpoint(&h),
        Err(PersistError::CrcMismatch { .. })
    ));
    // A payload byte (first block's payload starts at 20 + 24).
    let mut p = bytes;
    p[44] ^= 0x10;
    assert!(decode_checkpoint(&p).is_err());
}

/// Build a store with one checkpoint and `batches` logged edge batches,
/// returning (dir, per-batch state bytes) where entry `i` is the state
/// after batch `i` (entry 0 = checkpoint-only state).
fn store_with_batches(tag: &str, batches: usize) -> (PathBuf, Vec<Vec<u8>>) {
    let dir = temp_store_dir(tag);
    let (g, mut run, mut reduced) = small_stack(11);
    let mut store = Store::create(
        &dir,
        StoreOptions {
            segment_bytes: u64::MAX,
            sync_every_bytes: 0,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    let mut delta = GraphDelta::new(g);
    let mut rng = StdRng::seed_from_u64(77);
    let state = |run: &RothkoRun<'_>, reduced: &ReducedDelta| {
        let data = CheckpointData {
            graph: run.graph().clone(),
            config: run.config().clone(),
            run: run.snapshot(),
            reduced: Some(reduced.snapshot()),
            wal_seq: 0,
        };
        encode_checkpoint(&data).0
    };
    let mut states = vec![state(&run, &reduced)];
    for _ in 0..batches {
        let n = delta.num_nodes();
        let mut events = Vec::new();
        for _ in 0..6 {
            for _ in 0..20 {
                let u = rng.random_range(0..n) as u32;
                let v = rng.random_range(0..n) as u32;
                if u != v && !delta.has_edge(u, v) {
                    delta
                        .insert_edge(u, v, (rng.random_range(1u32..9) as f64) * 0.5)
                        .unwrap();
                    break;
                }
            }
        }
        events.extend(delta.drain_events());
        store.log_edge_batch(&events).unwrap();
        let compacted = delta.compact();
        run.apply_edge_batch(compacted, &events);
        reduced.apply_edge_batch(run.partition(), &events);
        states.push(state(&run, &reduced));
    }
    store.sync().unwrap();
    (dir, states)
}

/// The single open WAL segment in `dir` (the one recovery treats as last).
fn open_segment(dir: &PathBuf) -> PathBuf {
    let mut segs: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    segs.pop().unwrap()
}

/// Byte offsets of record boundaries in a segment (24-byte header, then
/// `len u32 | crc u32 | body(len)` frames).
fn record_boundaries(seg: &[u8]) -> Vec<usize> {
    let mut bounds = vec![24usize];
    let mut pos = 24usize;
    while pos + 8 <= seg.len() {
        let len = u32::from_le_bytes(seg[pos..pos + 4].try_into().unwrap()) as usize;
        pos += 8 + len;
        bounds.push(pos);
    }
    assert_eq!(*bounds.last().unwrap(), seg.len(), "trailing garbage");
    bounds
}

#[test]
fn torn_wal_tail_recovers_to_last_complete_batch() {
    let (dir, states) = store_with_batches("torn", 3);
    let seg_path = open_segment(&dir);
    let pristine = fs::read(&seg_path).unwrap();
    let bounds = record_boundaries(&pristine);
    assert_eq!(bounds.len(), 4, "3 records expected");
    // Truncate the open segment at EVERY byte length: recovery must
    // succeed and land exactly on the last complete record's state.
    for cut in 0..pristine.len() {
        fs::write(&seg_path, &pristine[..cut]).unwrap();
        let rec = Store::recover(&dir, None)
            .unwrap_or_else(|e| panic!("cut at {cut} failed recovery: {e}"));
        let complete = bounds.iter().filter(|&&b| b <= cut && b > 24).count();
        assert_eq!(rec.replayed, complete, "cut at {cut}");
        let data = CheckpointData {
            graph: rec.run.graph().clone(),
            config: rec.run.config().clone(),
            run: rec.run.snapshot(),
            reduced: rec.reduced.as_ref().map(ReducedDelta::snapshot),
            wal_seq: 0,
        };
        assert_eq!(
            encode_checkpoint(&data).0,
            states[complete],
            "cut at {cut}: wrong recovered state"
        );
    }
    fs::write(&seg_path, &pristine).unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flips_in_open_segment_records_drop_the_tail_not_the_process() {
    let (dir, states) = store_with_batches("tailflip", 3);
    let seg_path = open_segment(&dir);
    let pristine = fs::read(&seg_path).unwrap();
    let bounds = record_boundaries(&pristine);
    // Flip one byte inside each record: everything from that record on
    // is dropped as a torn tail; earlier records survive.
    for (i, w) in bounds.windows(2).enumerate() {
        let mut mutated = pristine.clone();
        mutated[w[0] + (w[1] - w[0]) / 2] ^= 0x40;
        fs::write(&seg_path, &mutated).unwrap();
        let rec = Store::recover(&dir, None).unwrap();
        assert_eq!(rec.replayed, i, "flip in record {i}");
        let data = CheckpointData {
            graph: rec.run.graph().clone(),
            config: rec.run.config().clone(),
            run: rec.run.snapshot(),
            reduced: rec.reduced.as_ref().map(ReducedDelta::snapshot),
            wal_seq: 0,
        };
        assert_eq!(encode_checkpoint(&data).0, states[i]);
    }
    // A flip in the open segment's *header* is a hard error: headers are
    // written whole before any record is acknowledged.
    let mut mutated = pristine.clone();
    mutated[13] ^= 0x01;
    fs::write(&seg_path, &mutated).unwrap();
    assert!(Store::recover(&dir, None).is_err());
    fs::write(&seg_path, &pristine).unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn damage_in_sealed_segments_is_a_hard_error() {
    // Tiny segment budget: every record rotates into its own segment, so
    // all but the newest are sealed.
    let dir = temp_store_dir("sealed");
    let (g, mut run, mut reduced) = small_stack(21);
    let mut store = Store::create(
        &dir,
        StoreOptions {
            segment_bytes: 64,
            sync_every_bytes: 0,
            ..StoreOptions::default()
        },
    )
    .unwrap();
    store.checkpoint(&run, Some(&reduced)).unwrap();
    let mut delta = GraphDelta::new(g);
    let mut rng = StdRng::seed_from_u64(13);
    for _ in 0..6 {
        let n = delta.num_nodes();
        loop {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u != v && !delta.has_edge(u, v) {
                delta.insert_edge(u, v, 1.5).unwrap();
                break;
            }
        }
        let events = delta.drain_events();
        store.log_edge_batch(&events).unwrap();
        let compacted = delta.compact();
        run.apply_edge_batch(compacted, &events);
        reduced.apply_edge_batch(run.partition(), &events);
    }
    store.sync().unwrap();
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 2, "rotation did not produce sealed segments");
    let sealed = &segs[0];
    let pristine = fs::read(sealed).unwrap();

    // Record CRC damage in a sealed segment.
    let mut m = pristine.clone();
    let last = m.len() - 1;
    m[last] ^= 0x02;
    fs::write(sealed, &m).unwrap();
    assert!(matches!(
        Store::recover(&dir, None),
        Err(PersistError::CrcMismatch { .. }) | Err(PersistError::Corrupt { .. })
    ));

    // Truncated sealed segment.
    fs::write(sealed, &pristine[..pristine.len() - 3]).unwrap();
    assert!(Store::recover(&dir, None).is_err());

    // Missing sealed segment: sequence gap.
    fs::remove_file(sealed).unwrap();
    assert!(matches!(
        Store::recover(&dir, None),
        Err(PersistError::SequenceGap { .. })
    ));

    fs::write(sealed, &pristine).unwrap();
    assert!(Store::recover(&dir, None).is_ok());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_segment_header_fields_fail_typed() {
    let (dir, _) = store_with_batches("walhdr", 2);
    // Seal the segment by making it non-last: recovery treats the only
    // segment as the open one, so damage must be tested via read_wal on
    // a segment forced into sealed position — easiest is a second, later
    // segment created by reopening the store.
    let mut store = Store::open(&dir).unwrap();
    store.log_maintain().unwrap();
    store.sync().unwrap();
    drop(store);
    let mut segs: Vec<PathBuf> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "seg"))
        .collect();
    segs.sort();
    assert!(segs.len() >= 2);
    let sealed = &segs[0];
    let pristine = fs::read(sealed).unwrap();

    let mut m = pristine.clone();
    m[0] = b'Z';
    fs::write(sealed, &m).unwrap();
    assert!(matches!(
        read_wal(&dir, 0),
        Err(PersistError::BadMagic {
            kind: "WAL segment"
        })
    ));

    let mut m = pristine.clone();
    m[8..12].copy_from_slice(&7u32.to_le_bytes());
    fs::write(sealed, &m).unwrap();
    assert!(matches!(
        read_wal(&dir, 0),
        Err(PersistError::UnsupportedVersion { found: 7, .. })
    ));

    let mut m = pristine.clone();
    m[15] ^= 0x20; // first_seq field: header CRC catches it
    fs::write(sealed, &m).unwrap();
    assert!(matches!(
        read_wal(&dir, 0),
        Err(PersistError::CrcMismatch { .. })
    ));

    fs::write(sealed, &pristine).unwrap();
    assert!(read_wal(&dir, 0).is_ok());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn semantically_poisoned_wal_records_fail_replay_without_panicking() {
    // CRC-valid records whose content violates engine invariants must be
    // rejected by replay validation as Corrupt — these are exactly the
    // inputs that would otherwise panic inside Partition / GraphDelta.
    let make = |tag: &str| {
        let dir = temp_store_dir(tag);
        let (g, run, reduced) = small_stack(31);
        let mut store = Store::create(&dir, StoreOptions::default()).unwrap();
        store.checkpoint(&run, Some(&reduced)).unwrap();
        (dir, g, run, store)
    };
    // Replay recomputes the remap from the logged mutations, so the
    // poisoned batches can carry any placeholder.
    let remap = NodeRemap::identity(0);

    // Insert into a color that does not exist.
    let (dir, _, run, mut store) = make("poison-color");
    let k = run.partition().num_colors() as u32;
    store
        .log_node_batch(&NodeChurnBatch {
            inserted_colors: vec![k + 3],
            edge_events: vec![],
            removed: vec![],
            remap: remap.clone(),
        })
        .unwrap();
    store.sync().unwrap();
    assert!(matches!(
        Store::recover(&dir, None),
        Err(PersistError::Corrupt { .. })
    ));
    let _ = fs::remove_dir_all(&dir);

    // Remove every member of a color.
    let (dir, _, run, mut store) = make("poison-empty");
    let victims: Vec<u32> = run.partition().members(0).to_vec();
    store
        .log_node_batch(&NodeChurnBatch {
            inserted_colors: vec![],
            edge_events: vec![],
            removed: victims,
            remap: remap.clone(),
        })
        .unwrap();
    store.sync().unwrap();
    assert!(matches!(
        Store::recover(&dir, None),
        Err(PersistError::Corrupt { .. })
    ));
    let _ = fs::remove_dir_all(&dir);

    // Edge event with an out-of-range endpoint.
    let (dir, g, _, mut store) = make("poison-endpoint");
    store
        .log_edge_batch(&[qsc_graph::delta::EdgeEvent {
            source: g.num_nodes() as u32 + 5,
            target: 0,
            delta: 1.0,
        }])
        .unwrap();
    store.sync().unwrap();
    assert!(matches!(
        Store::recover(&dir, None),
        Err(PersistError::Corrupt { .. })
    ));
    let _ = fs::remove_dir_all(&dir);

    // Node removal out of range.
    let (dir, g, _, mut store) = make("poison-remove");
    store
        .log_node_batch(&NodeChurnBatch {
            inserted_colors: vec![],
            edge_events: vec![],
            removed: vec![g.num_nodes() as u32 + 9],
            remap,
        })
        .unwrap();
    store.sync().unwrap();
    assert!(matches!(
        Store::recover(&dir, None),
        Err(PersistError::Corrupt { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Mapped layout (version 2): the raw-pinned format must be exactly as
// hostile-byte-proof as the packed one, through both the owned decoder
// and the zero-copy `MappedStore` reader.
// ---------------------------------------------------------------------

fn mapped_checkpoint_bytes(seed: u64) -> Vec<u8> {
    let (g, run, reduced) = small_stack(seed);
    let data = CheckpointData {
        graph: g,
        config: run.config().clone(),
        run: run.snapshot(),
        reduced: Some(reduced.snapshot()),
        wal_seq: 7,
    };
    encode_checkpoint_with(&data, Layout::MappedRaw).0
}

/// A block's position inside a v2 file: (id, header offset, payload
/// offset, payload length).
fn v2_blocks(bytes: &[u8]) -> Vec<(u16, usize, usize, usize)> {
    const FILE_HEADER: usize = 20;
    const BLOCK_HEADER: usize = 28;
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(count);
    let mut at = FILE_HEADER;
    for _ in 0..count {
        let id = u16::from_le_bytes(bytes[at..at + 2].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 12..at + 20].try_into().unwrap()) as usize;
        out.push((id, at, at + BLOCK_HEADER, len));
        at += BLOCK_HEADER + len;
    }
    assert_eq!(at, bytes.len(), "header walk must cover the whole file");
    out
}

/// Recompute a v2 block's payload CRC and header CRC after a test
/// mutated its payload, isolating the structural check under test.
fn fix_v2_block_crcs(bytes: &mut [u8], header_at: usize) {
    let len =
        u64::from_le_bytes(bytes[header_at + 12..header_at + 20].try_into().unwrap()) as usize;
    let payload_at = header_at + 28;
    let pcrc = qsc_persist::codec::crc32(&bytes[payload_at..payload_at + len]);
    bytes[header_at + 20..header_at + 24].copy_from_slice(&pcrc.to_le_bytes());
    let hcrc = qsc_persist::codec::crc32(&bytes[header_at..header_at + 24]);
    bytes[header_at + 24..header_at + 28].copy_from_slice(&hcrc.to_le_bytes());
}

/// Write `bytes` as a checkpoint file in a fresh temp dir, returning the
/// dir and file path.
fn mapped_file_with(tag: &str, bytes: &[u8]) -> (PathBuf, PathBuf) {
    let dir = temp_store_dir(tag);
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(qsc_persist::CHECKPOINT_FILE);
    fs::write(&path, bytes).unwrap();
    (dir, path)
}

fn zero_copy_available() -> bool {
    qsc_core::mmap::MappedFile::zero_copy_eligible()
}

#[test]
fn every_mapped_checkpoint_bit_flip_is_detected_or_inert() {
    let bytes = mapped_checkpoint_bytes(3);
    let baseline = encode_checkpoint_with(&decode_checkpoint(&bytes).unwrap(), Layout::MappedRaw).0;
    assert_eq!(baseline, bytes, "decode→encode must be the identity");
    for i in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[i] ^= 1 << bit;
            if let Ok(data) = decode_checkpoint(&mutated) {
                assert_eq!(
                    encode_checkpoint_with(&data, Layout::MappedRaw).0,
                    baseline,
                    "byte {i} bit {bit}: flip decoded Ok to a different state"
                );
            }
        }
    }
}

#[test]
fn every_mapped_checkpoint_truncation_fails_typed() {
    let bytes = mapped_checkpoint_bytes(4);
    for len in 0..bytes.len() {
        let err = decode_checkpoint(&bytes[..len]).expect_err("strict prefix must not decode");
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::Corrupt { .. }
                    | PersistError::CrcMismatch { .. }
                    | PersistError::BadMagic { .. }
            ),
            "truncation to {len} gave unexpected error {err}"
        );
    }
}

#[test]
fn mapped_store_rejects_truncated_maps_typed() {
    if !zero_copy_available() {
        return;
    }
    let bytes = mapped_checkpoint_bytes(6);
    // Every header-walk boundary plus a sample of interior cuts: open
    // must fail typed, never panic and never hand out a short column.
    let mut cuts: Vec<usize> = v2_blocks(&bytes)
        .iter()
        .flat_map(|&(_, h, p, len)| [h, h + 1, p, p + 1, p + len - 1])
        .collect();
    cuts.extend([0, 1, 8, 12, 19]);
    cuts.retain(|&c| c < bytes.len());
    for cut in cuts {
        let (dir, path) = mapped_file_with("trunc", &bytes[..cut]);
        let err = MappedStore::open(&path).expect_err("truncated map must not open");
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. }
                    | PersistError::Corrupt { .. }
                    | PersistError::CrcMismatch { .. }
                    | PersistError::BadMagic { .. }
                    | PersistError::Io { .. }
            ),
            "truncation to {cut} gave unexpected error {err}"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn mapped_store_surfaces_payload_damage_on_first_touch() {
    if !zero_copy_available() {
        return;
    }
    let bytes = mapped_checkpoint_bytes(8);
    let blocks = v2_blocks(&bytes);

    // Damage the partition members payload (id 5): open succeeds (lazy
    // payload validation), the coloring query that touches it fails.
    let (_, header_at, payload_at, len) = *blocks.iter().find(|b| b.0 == 5).unwrap();
    assert!(len > 0);
    let mut m = bytes.clone();
    m[payload_at + len / 2] ^= 0x04;
    let (dir, path) = mapped_file_with("flip-members", &m);
    let store = MappedStore::open(&path).expect("payload damage must not fail open");
    assert!(matches!(
        store.coloring(),
        Err(PersistError::CrcMismatch { .. })
    ));
    drop(store);
    let _ = fs::remove_dir_all(&dir);

    // Damage the graph targets payload (id 2): queries that never touch
    // the CSR still answer; full assembly fails on first touch.
    let (_, _, tpayload_at, tlen) = *blocks.iter().find(|b| b.0 == 2).unwrap();
    let mut m = bytes.clone();
    m[tpayload_at + tlen / 2] ^= 0x80;
    let (dir, path) = mapped_file_with("flip-targets", &m);
    let store = MappedStore::open(&path).expect("payload damage must not fail open");
    store
        .coloring()
        .expect("undamaged columns must still serve");
    assert!(matches!(
        store.checkpoint_data(),
        Err(PersistError::CrcMismatch { .. })
    ));
    drop(store);
    let _ = fs::remove_dir_all(&dir);

    // Damage a header byte instead: caught eagerly at open.
    let mut m = bytes;
    m[header_at + 4] ^= 0x01; // count field of the members block
    let (dir, path) = mapped_file_with("flip-header", &m);
    assert!(matches!(
        MappedStore::open(&path),
        Err(PersistError::CrcMismatch { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

/// Grow one padding block by `extra` zero bytes (fixing its header and
/// CRCs) so every later payload shifts by `extra`.
fn grow_pad(bytes: &[u8], extra: usize) -> Vec<u8> {
    let blocks = v2_blocks(bytes);
    let &(_, header_at, payload_at, len) = blocks
        .iter()
        .find(|b| b.0 == 0xFFFF)
        .expect("v2 file must contain a padding block");
    let mut out = Vec::with_capacity(bytes.len() + extra);
    out.extend_from_slice(&bytes[..payload_at + len]);
    out.extend(std::iter::repeat_n(0u8, extra));
    out.extend_from_slice(&bytes[payload_at + len..]);
    let new_len = (len + extra) as u64;
    out[header_at + 4..header_at + 12].copy_from_slice(&new_len.to_le_bytes());
    out[header_at + 12..header_at + 20].copy_from_slice(&new_len.to_le_bytes());
    fix_v2_block_crcs(&mut out, header_at);
    out
}

#[test]
fn mapped_misaligned_payload_is_rejected() {
    let bytes = mapped_checkpoint_bytes(9);
    // Growing a pad by one byte shifts the next mappable payload off its
    // 64-byte boundary: both readers must answer Misaligned, proving the
    // alignment contract is checked rather than assumed.
    let skewed = grow_pad(&bytes, 1);
    assert!(matches!(
        decode_checkpoint(&skewed),
        Err(PersistError::Misaligned { .. })
    ));
    if zero_copy_available() {
        let (dir, path) = mapped_file_with("misaligned", &skewed);
        assert!(matches!(
            MappedStore::open(&path),
            Err(PersistError::Misaligned { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
    // Growing by a full alignment quantum keeps every payload aligned:
    // the file stays readable and decodes to the identical state.
    let padded = grow_pad(&bytes, 64);
    let data = decode_checkpoint(&padded).expect("aligned growth must stay readable");
    assert_eq!(encode_checkpoint_with(&data, Layout::MappedRaw).0, bytes);
}

#[test]
fn mapped_nonzero_padding_is_rejected() {
    let bytes = mapped_checkpoint_bytes(10);
    let blocks = v2_blocks(&bytes);
    let &(_, header_at, payload_at, len) = blocks
        .iter()
        .find(|b| b.0 == 0xFFFF && b.3 > 0)
        .expect("v2 file must contain a non-empty padding block");
    let mut m = bytes.clone();
    m[payload_at + len - 1] = 1;
    fix_v2_block_crcs(&mut m, header_at); // CRC-valid, semantically bad
    assert!(matches!(
        decode_checkpoint(&m),
        Err(PersistError::Corrupt { .. })
    ));
    if zero_copy_available() {
        let (dir, path) = mapped_file_with("nonzero-pad", &m);
        assert!(matches!(
            MappedStore::open(&path),
            Err(PersistError::Corrupt { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn mapped_store_rejects_packed_files_and_vice_versa() {
    if !zero_copy_available() {
        return;
    }
    // A v1 (packed) file through MappedStore: typed Mismatch, not a
    // misparse.
    let packed = checkpoint_bytes(12);
    let (dir, path) = mapped_file_with("packed-as-mapped", &packed);
    assert!(matches!(
        MappedStore::open(&path),
        Err(PersistError::Mismatch { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
    // The owned decoder accepts both layouts and agrees on the state.
    let mapped = mapped_checkpoint_bytes(12);
    let a = decode_checkpoint(&packed).unwrap();
    let b = decode_checkpoint(&mapped).unwrap();
    assert_eq!(encode_checkpoint(&a).0, encode_checkpoint(&b).0);
}
