//! Randomized churn equivalence suite for the dynamic-graph maintenance
//! path.
//!
//! Interleaved edge insert/delete/reweight batches flow through
//! `GraphDelta` → `IncrementalDegrees::apply_edge_batch` /
//! `ReducedDelta::apply_edge_batch` / `RothkoRun::apply_edge_batch`, and
//! every maintained state is compared against a from-scratch recomputation
//! on the **compacted** graph: `DegreeMatrices` + fresh accumulators
//! (`verify_against`), fresh `RothkoRun`s resumed from the same coloring,
//! and the dense re-emitted reduced instance. Weights are multiples of 0.5
//! so all sums are exact and equalities are required bit-for-bit, across
//! dense / sparse (degrees-only) / symmetric engine modes and thread
//! counts 1 and 4.

use qsc_core::q_error::IncrementalDegrees;
use qsc_core::reduced::{quotient_matrix, PatchedReducedGraph, ReducedDelta};
use qsc_core::rothko::{NodeChurnBatch, Rothko, RothkoConfig};
use qsc_core::sweep::ColoringSweep;
use qsc_core::Partition;
use qsc_graph::delta::EdgeEvent;
use qsc_graph::{Graph, GraphBuilder, GraphDelta};
use rand::prelude::*;

/// Random graph with exactly representable weights (multiples of 0.5).
fn random_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            let w = (rng.random_range(1u32..9) as f64) * 0.5;
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

/// Tracks the live edge set alongside a `GraphDelta` so random deletes and
/// reweights can pick existing edges.
struct Churner {
    delta: GraphDelta,
    edges: Vec<(u32, u32)>,
    rng: StdRng,
}

impl Churner {
    fn new(g: Graph, seed: u64) -> Self {
        let edges: Vec<(u32, u32)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
        Churner {
            delta: GraphDelta::new(g),
            edges,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Apply `ops` random insert/delete/reweight mutations and return the
    /// drained event batch.
    fn batch(&mut self, ops: usize) -> Vec<EdgeEvent> {
        let n = self.delta.num_nodes();
        for _ in 0..ops {
            match self.rng.random_range(0..3u32) {
                0 => {
                    // Insert a fresh edge (occasionally a self-loop).
                    for _ in 0..20 {
                        let u = self.rng.random_range(0..n) as u32;
                        let v = if self.rng.random_range(0..8u32) == 0 {
                            u
                        } else {
                            self.rng.random_range(0..n) as u32
                        };
                        if !self.delta.has_edge(u, v) {
                            let w = (self.rng.random_range(1u32..9) as f64) * 0.5;
                            self.delta.insert_edge(u, v, w).unwrap();
                            self.edges.push((u, v));
                            break;
                        }
                    }
                }
                1 => {
                    if self.edges.is_empty() {
                        continue;
                    }
                    let i = self.rng.random_range(0..self.edges.len());
                    let (u, v) = self.edges.swap_remove(i);
                    self.delta.delete_edge(u, v).unwrap();
                }
                _ => {
                    if self.edges.is_empty() {
                        continue;
                    }
                    let i = self.rng.random_range(0..self.edges.len());
                    let (u, v) = self.edges[i];
                    let w = (self.rng.random_range(1u32..9) as f64) * 0.5;
                    self.delta.reweight_edge(u, v, w).unwrap();
                }
            }
        }
        self.delta.drain_events()
    }
}

/// Split a random color of `p`, mirroring the split into every engine via
/// the returned event.
fn random_split(p: &mut Partition, rng: &mut StdRng) -> Option<qsc_core::SplitEvent> {
    let k = p.num_colors();
    let candidates: Vec<u32> = (0..k as u32).filter(|&c| p.size(c) >= 2).collect();
    let &c = candidates.as_slice().choose(rng)?;
    let members: Vec<u32> = p.members(c).to_vec();
    let pivot = members[rng.random_range(0..members.len())];
    p.split_color(c, |v| v >= pivot && v != members[0])
}

#[test]
fn engine_churn_matches_scratch_across_modes_and_threads() {
    for (directed, seed) in [(false, 5u64), (true, 23)] {
        let g = random_graph(60, 260, directed, seed);
        let mut p = Partition::unit(60);
        let mut dense1 = IncrementalDegrees::new_with_threads(&g, &p, 1);
        let mut dense4 = IncrementalDegrees::new_with_threads(&g, &p, 4);
        dense4.set_parallel_thresholds(1, 1);
        let mut sparse = IncrementalDegrees::new_degrees_only(&g, &p);
        let mut churner = Churner::new(g, seed ^ 0xc0ffee);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
        let mut current = churner.delta.compact();
        for round in 0..6 {
            // A couple of splits between batches keeps the interleaving
            // honest (churn over a refined coloring, not just k = 1).
            for _ in 0..2 {
                if let Some(ev) = random_split(&mut p, &mut rng) {
                    dense1.apply_split(&current, &p, &ev);
                    dense4.apply_split(&current, &p, &ev);
                    sparse.apply_split(&current, &p, &ev);
                }
            }
            let events = churner.batch(14);
            dense1.apply_edge_batch(&p, &events);
            dense4.apply_edge_batch(&p, &events);
            sparse.apply_edge_batch(&p, &events);
            current = churner.delta.compact();
            assert_eq!(dense1.verify_against(&current, &p), Ok(()), "round {round}");
            assert_eq!(dense4.verify_against(&current, &p), Ok(()), "round {round}");
            assert_eq!(sparse.verify_against(&current, &p), Ok(()), "round {round}");
            // Witness state: bit-identical across thread counts and to a
            // freshly built engine on the compacted graph.
            dense1.refresh(&p, 1.0);
            dense4.refresh(&p, 1.0);
            let mut fresh = IncrementalDegrees::new(&current, &p);
            fresh.refresh(&p, 1.0);
            assert_eq!(dense1.max_error().to_bits(), fresh.max_error().to_bits());
            assert_eq!(dense4.max_error().to_bits(), fresh.max_error().to_bits());
            assert_eq!(dense1.pick_witness(&p, 1.0), fresh.pick_witness(&p, 1.0));
            assert_eq!(dense4.pick_witness(&p, 1.0), fresh.pick_witness(&p, 1.0));
        }
    }
}

#[test]
fn maintained_run_equals_fresh_run_on_compacted_graph() {
    for (directed, seed) in [(false, 11u64), (true, 41)] {
        // The same churn schedule replayed at both thread counts: the
        // maintained colorings must match a fresh run resumed from the
        // pre-batch coloring on the compacted graph — and each other —
        // bit-for-bit, at every round.
        let mut per_thread: Vec<Vec<Vec<u32>>> = Vec::new();
        for threads in [1usize, 4] {
            let g = random_graph(120, 520, directed, seed);
            let config = RothkoConfig {
                max_colors: 60,
                target_error: 3.0,
                threads: Some(threads),
                ..Default::default()
            };
            let mut run = Rothko::new(config.clone()).start(&g);
            run.maintain();
            let mut churner = Churner::new(g.clone(), seed ^ 0xfeed);
            let mut assignments = Vec::new();
            for round in 0..4 {
                let events = churner.batch(16);
                let compacted = churner.delta.compact();
                run.apply_edge_batch(compacted.clone(), &events);
                let before = run.partition().clone();
                let splits = run.maintain();
                // The (q, k) invariant holds again unless the color budget
                // is exhausted.
                let err = run.exact_max_error();
                assert!(
                    err <= 3.0 || run.partition().num_colors() == 60,
                    "round {round}: error {err} above target with colors to spare"
                );
                // A fresh run resumed from the pre-batch coloring on the
                // compacted graph performs the identical splits.
                let fresh_config = RothkoConfig {
                    initial: Some(before),
                    ..config.clone()
                };
                let mut fresh = Rothko::new(fresh_config).start(&compacted);
                let fresh_splits = fresh.maintain();
                assert_eq!(splits, fresh_splits, "round {round} split count");
                assert!(
                    run.partition().same_as(fresh.partition()),
                    "round {round}: maintained coloring differs from fresh run (threads {threads})"
                );
                assert_eq!(
                    run.exact_max_error().to_bits(),
                    fresh.exact_max_error().to_bits()
                );
                assignments.push(run.partition().canonical_assignment());
            }
            per_thread.push(assignments);
        }
        assert_eq!(
            per_thread[0], per_thread[1],
            "thread counts diverged (directed={directed}, seed={seed})"
        );
    }
}

#[test]
fn reduced_delta_and_patched_emission_survive_churn() {
    for (directed, seed) in [(false, 7u64), (true, 31)] {
        let g = random_graph(80, 400, directed, seed);
        let config = RothkoConfig::default();
        let mut sweep = ColoringSweep::new(&g, config);
        let mut delta = ReducedDelta::new(&g, sweep.partition());
        let weighting =
            |i: usize, j: usize, sum: f64, _: usize, _: usize| if i == j { 0.0 } else { sum };
        let mut emitter = PatchedReducedGraph::new(&mut delta, weighting);
        let mut churner = Churner::new(g.clone(), seed ^ 0xabba);
        let mut current = churner.delta.compact();
        for (round, budget) in [6usize, 11, 17, 24].into_iter().enumerate() {
            // Refine toward the next budget in lockstep...
            let graph_for_closure = current.clone();
            sweep.advance_to(budget, |p, ev| delta.apply_split(&graph_for_closure, p, ev));
            // ...then churn the graph and thread the same events through
            // the sweep and the reduction layer.
            let events = churner.batch(12);
            current = churner.delta.compact();
            delta.apply_edge_batch(sweep.partition(), &events);
            sweep.apply_edge_batch(current.clone(), &events);
            assert_eq!(
                delta.verify_against(&current, sweep.partition()),
                Ok(()),
                "round {round}"
            );
            // Exact weights: the maintained quotient matrix is bit-identical.
            assert_eq!(
                delta.quotient_matrix(),
                quotient_matrix(&current, sweep.partition()),
                "round {round}"
            );
            // The patched emission equals the dense re-emission.
            emitter.sync(&mut delta);
            let patched = emitter.to_graph();
            let dense = delta.reduced_graph_with(weighting);
            assert_eq!(patched.num_nodes(), dense.num_nodes(), "round {round}");
            assert_eq!(patched.num_arcs(), dense.num_arcs(), "round {round}");
            let a: Vec<_> = patched.arcs().collect();
            let b: Vec<_> = dense.arcs().collect();
            assert_eq!(a, b, "round {round}");
        }
    }
}

#[test]
fn degrees_only_churn_keeps_sparse_rows_exact() {
    // Sparse-row engines under heavy churn, including full cancellation
    // (delete then re-insert) — rows must stay exactly synchronized.
    for (directed, seed) in [(false, 3u64), (true, 17)] {
        let g = random_graph(50, 200, directed, seed);
        let mut p = Partition::unit(50);
        let mut engine = IncrementalDegrees::new_degrees_only(&g, &p);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut churner = Churner::new(g, seed ^ 0x5eed);
        let mut current = churner.delta.compact();
        for _ in 0..8 {
            if let Some(ev) = random_split(&mut p, &mut rng) {
                engine.apply_split(&current, &p, &ev);
            }
            let events = churner.batch(10);
            engine.apply_edge_batch(&p, &events);
            current = churner.delta.compact();
            assert_eq!(engine.verify_against(&current, &p), Ok(()));
        }
    }
}

/// One round of random node churn with exactly representable edge weights,
/// through the shared driver the dynamic bench also uses
/// ([`qsc_bench::random_node_churn`]).
fn node_churn_round(
    delta: &mut GraphDelta,
    p: &Partition,
    rng: &mut StdRng,
    inserts: usize,
    removes: usize,
    wire: usize,
) -> (NodeChurnBatch, Graph) {
    qsc_bench::random_node_churn(delta, p, rng, inserts, removes, wire, |rng| {
        (rng.random_range(1u32..9) as f64) * 0.5
    })
}

#[test]
fn node_churn_maintained_run_equals_fresh_run() {
    for (directed, seed) in [(false, 19u64), (true, 61)] {
        let mut per_thread: Vec<Vec<Vec<u32>>> = Vec::new();
        for threads in [1usize, 4] {
            let g = random_graph(100, 420, directed, seed);
            let config = RothkoConfig {
                max_colors: 50,
                target_error: 3.0,
                threads: Some(threads),
                coarsen: true,
                ..Default::default()
            };
            let mut run = Rothko::new(config.clone()).start(&g);
            run.maintain();
            let mut delta = GraphDelta::new(g.clone());
            let mut rng = StdRng::seed_from_u64(seed ^ 0x0DE5);
            let mut assignments = Vec::new();
            for round in 0..4 {
                let (batch, compacted) =
                    node_churn_round(&mut delta, run.partition(), &mut rng, 4, 3, 3);
                run.apply_node_batch(compacted.clone(), &batch);
                let checkpoint = run.partition().clone();
                let ops = run.maintain();
                let err = run.exact_max_error();
                assert!(
                    err <= 3.0 || run.partition().num_colors() == 50,
                    "round {round}: error {err} above target with colors to spare"
                );
                // A fresh run resumed from the post-batch coloring on the
                // compacted graph performs identical operations.
                let fresh_config = RothkoConfig {
                    initial: Some(checkpoint),
                    ..config.clone()
                };
                let mut fresh = Rothko::new(fresh_config).start(&compacted);
                let fresh_ops = fresh.maintain();
                assert_eq!(ops, fresh_ops, "round {round} operation count");
                assert!(
                    run.partition().same_as(fresh.partition()),
                    "round {round}: maintained coloring differs (threads {threads})"
                );
                assignments.push(run.partition().canonical_assignment());
            }
            per_thread.push(assignments);
        }
        assert_eq!(
            per_thread[0], per_thread[1],
            "thread counts diverged (directed={directed}, seed={seed})"
        );
    }
}

#[test]
fn reduced_delta_mirrors_node_churn() {
    // Drive a ReducedDelta (and its patched emitter) through node churn by
    // hand: inserts as size bumps, the edge batch over the grown id space,
    // removals as size drops — the quotient matrix itself is untouched by
    // isolated-node churn, but the size-dependent weightings must follow.
    for (directed, seed) in [(false, 37u64), (true, 71)] {
        let g = random_graph(70, 300, directed, seed);
        let mut p = Partition::unit(70);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEAD);
        for _ in 0..5 {
            random_split(&mut p, &mut rng);
        }
        let mut delta = ReducedDelta::new(&g, &p);
        let weighting =
            |_: usize, _: usize, sum: f64, si: usize, sj: usize| sum / ((si * sj) as f64).sqrt();
        let mut emitter = PatchedReducedGraph::new(&mut delta, weighting);
        let mut gd = GraphDelta::new(g);
        for round in 0..5 {
            let (batch, compacted) = node_churn_round(&mut gd, &p, &mut rng, 3, 2, 3);
            // Mirror into the partition and the reduction layer in batch
            // order: inserts, edges, removals + renumbering.
            for &c in &batch.inserted_colors {
                p.insert_node(c);
                delta.apply_node_insert(c);
            }
            delta.apply_edge_batch(&p, &batch.edge_events);
            for &v in &batch.removed {
                delta.apply_node_removal(p.color_of(v));
            }
            p.apply_node_remap(&batch.remap);
            assert_eq!(
                delta.verify_against(&compacted, &p),
                Ok(()),
                "round {round}"
            );
            emitter.sync(&mut delta);
            let patched = emitter.to_graph();
            let dense = delta.reduced_graph_with(weighting);
            let a: Vec<_> = patched.arcs().collect();
            let b: Vec<_> = dense.arcs().collect();
            assert_eq!(a, b, "round {round}");
        }
    }
}

#[test]
fn run_survives_repeated_batches_without_splits() {
    // Batches that do not disturb the error past the target must leave the
    // coloring untouched (maintain performs zero splits) — reweighting an
    // edge to its own weight class keeps everything within target.
    let g = random_graph(80, 300, false, 13);
    let config = RothkoConfig {
        max_colors: usize::MAX,
        target_error: 20.0, // generous: initial coloring already satisfies it
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let colors_before = run.partition().num_colors();
    let mut delta = GraphDelta::new(g.clone());
    delta
        .reweight_edge(
            delta.base().edges()[0].0,
            delta.base().edges()[0].1,
            delta.base().edges()[0].2,
        )
        .unwrap_or(()); // same weight: no event
    delta
        .reweight_edge(delta.base().edges()[1].0, delta.base().edges()[1].1, 0.5)
        .unwrap();
    let events = delta.drain_events();
    let compacted = delta.compact();
    run.apply_edge_batch(compacted, &events);
    let splits = run.maintain();
    assert_eq!(splits, 0, "tiny reweight within target forced splits");
    assert_eq!(run.partition().num_colors(), colors_before);
}
