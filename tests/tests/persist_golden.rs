//! Format-compatibility canary: a tiny checkpoint checked into the repo
//! must keep decoding **and** re-encoding to the exact same bytes.
//!
//! The fixture is built from a fully deterministic stack (hand-coded
//! graph, single thread, fixed config), so any byte difference means the
//! on-disk format itself changed. That is only allowed together with a
//! `CHECKPOINT_VERSION` bump and a reader for the old version — see the
//! versioning policy in the `qsc_persist` crate docs. Regenerate with
//! `QSC_REGEN_GOLDEN=1 cargo test -p qsc-tests --test persist_golden`.

use std::fs;
use std::path::PathBuf;

use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_graph::GraphBuilder;
use qsc_persist::{
    decode_checkpoint, encode_checkpoint, encode_checkpoint_with, CheckpointData, Layout,
    CHECKPOINT_VERSION, CHECKPOINT_VERSION_MAPPED,
};

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/golden_checkpoint_v1.ckpt")
}

fn fixture_path_v2() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures/golden_checkpoint_v2_raw.ckpt")
}

/// Deterministic miniature stack: two weighted cliques joined by a
/// bridge, maintained at a single thread.
fn golden_data() -> CheckpointData {
    let mut b = GraphBuilder::new_undirected(10);
    for c in [0u32, 5] {
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                b.add_edge(c + i, c + j, 1.5);
            }
        }
    }
    b.add_edge(4, 5, 0.5);
    b.add_edge(0, 9, 0.5);
    let g = b.build();
    let config = RothkoConfig {
        max_colors: 6,
        target_error: 1.0,
        threads: Some(1),
        ..Default::default()
    };
    let mut run = Rothko::new(config.clone()).start(&g);
    run.maintain();
    let reduced = ReducedDelta::new(&g, run.partition());
    let snap = run.snapshot();
    drop(run);
    CheckpointData {
        graph: g,
        config,
        run: snap,
        reduced: Some(reduced.snapshot()),
        wal_seq: 3,
    }
}

#[test]
fn golden_checkpoint_stays_byte_stable() {
    assert_eq!(CHECKPOINT_VERSION, 1, "version bump requires a new fixture");
    let data = golden_data();
    let (bytes, stats) = encode_checkpoint(&data);
    let path = fixture_path();
    if std::env::var_os("QSC_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &bytes).unwrap();
    }
    let golden = fs::read(&path).expect(
        "golden fixture missing — regenerate with QSC_REGEN_GOLDEN=1 \
         cargo test -p qsc-tests --test persist_golden",
    );
    assert_eq!(
        bytes, golden,
        "checkpoint encoding diverged from the checked-in fixture: the \
         on-disk format changed. If intentional, bump CHECKPOINT_VERSION, \
         keep a reader for version 1, and regenerate the fixture."
    );
    // The checked-in bytes stay readable and round-trip losslessly.
    let decoded = decode_checkpoint(&golden).expect("fixture no longer decodes");
    assert_eq!(encode_checkpoint(&decoded).0, golden);
    assert_eq!(decoded.wal_seq, 3);
    assert_eq!(decoded.graph.num_nodes(), 10);
    assert!(stats.compression_ratio() > 1.0, "fixture should compress");
}

#[test]
fn golden_mapped_checkpoint_stays_byte_stable() {
    assert_eq!(
        CHECKPOINT_VERSION_MAPPED, 2,
        "version bump requires a new fixture"
    );
    let data = golden_data();
    let (bytes, _stats) = encode_checkpoint_with(&data, Layout::MappedRaw);
    let path = fixture_path_v2();
    if std::env::var_os("QSC_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(&path, &bytes).unwrap();
    }
    let golden = fs::read(&path).expect(
        "golden v2 fixture missing — regenerate with QSC_REGEN_GOLDEN=1 \
         cargo test -p qsc-tests --test persist_golden",
    );
    assert_eq!(
        bytes, golden,
        "mapped-layout encoding diverged from the checked-in fixture: the \
         on-disk format changed. If intentional, bump the mapped version, \
         keep a reader for version 2, and regenerate the fixture."
    );
    // The mapped bytes decode through the owned path and re-encode
    // byte-stably in both layouts; the packed rendering of the same state
    // must match the v1 fixture exactly (layouts differ only in bytes,
    // never in meaning).
    let decoded = decode_checkpoint(&golden).expect("v2 fixture no longer decodes");
    assert_eq!(
        encode_checkpoint_with(&decoded, Layout::MappedRaw).0,
        golden
    );
    assert_eq!(
        encode_checkpoint(&decoded).0,
        fs::read(fixture_path()).expect("v1 fixture missing"),
        "v2 fixture decodes to a different state than the v1 fixture"
    );
    assert_eq!(decoded.wal_seq, 3);
    assert_eq!(decoded.graph.num_nodes(), 10);
}
