//! Fixture suite for the `qsc-audit` lint engine: one violating and one
//! clean snippet per rule, the suppression machinery (mandatory
//! justifications, unknown rules, unused suppressions, doc-comment
//! immunity), scope routing by path, and test-region skipping.
//!
//! Every fixture lives in a raw string, so this file itself stays
//! invisible to the lint pass that scans the real tree (rules never look
//! inside string literals). The final test runs the real `audit_tree`
//! over the workspace and asserts the merged tree is audit-clean.

use qsc_audit::{audit_tree, find_workspace_root, lint_source, Finding, Level};
use std::path::Path;

/// Unsuppressed findings for `rule` in `findings`.
fn hits<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
    findings
        .iter()
        .filter(|f| f.rule == rule && !f.suppressed)
        .collect()
}

const CORE_PATH: &str = "crates/core/src/fixture.rs";
const PERSIST_PATH: &str = "crates/persist/src/fixture.rs";

// ---------------------------------------------------------------------------
// unsafe-safety-comment
// ---------------------------------------------------------------------------

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = r#"
pub unsafe fn poke(p: *mut u8) {
    unsafe { *p = 0 };
}
"#;
    let f = lint_source(CORE_PATH, src);
    let found = hits(&f, "unsafe-safety-comment");
    assert_eq!(found.len(), 2, "both unsafe tokens are uncovered: {f:?}");
    assert_eq!(found[0].line, 2);
    assert_eq!(found[0].level, Level::Error);
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    let src = r#"
// SAFETY: the caller hands us a valid, exclusive pointer.
pub unsafe fn poke(p: *mut u8) {
    // SAFETY: validity delegated to the fn contract above.
    unsafe { *p = 0 };
}
"#;
    let f = lint_source(CORE_PATH, src);
    assert!(hits(&f, "unsafe-safety-comment").is_empty(), "{f:?}");
}

#[test]
fn unsafe_rule_applies_even_inside_test_regions() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let x = 0u8;
        let p = &x as *const u8;
        let _ = unsafe { *p };
    }
}
"#;
    let f = lint_source(CORE_PATH, src);
    assert_eq!(hits(&f, "unsafe-safety-comment").len(), 1, "{f:?}");
}

// ---------------------------------------------------------------------------
// hash-iter-determinism
// ---------------------------------------------------------------------------

#[test]
fn hash_iteration_fires_in_scope() {
    let src = r#"
use std::collections::HashMap;
fn leak() -> Vec<u32> {
    let mut m: HashMap<u32, f64> = HashMap::new();
    m.insert(1, 2.0);
    let mut out = Vec::new();
    for (k, _v) in &m {
        out.push(*k);
    }
    out.extend(m.keys());
    out
}
"#;
    let f = lint_source(CORE_PATH, src);
    let found = hits(&f, "hash-iter-determinism");
    // Three: the for-loop, `.keys()`, and `extend(` each report (the last
    // line deliberately trips both the method and the extend pattern).
    assert_eq!(found.len(), 3, "{f:?}");
    assert_eq!(found[0].line, 7);
}

#[test]
fn hash_point_queries_are_clean() {
    let src = r#"
use std::collections::HashMap;
fn fine(m: &mut HashMap<u32, f64>) -> Option<f64> {
    m.insert(7, 1.0);
    if m.contains_key(&7) {
        m.get(&1).copied()
    } else {
        None
    }
}
"#;
    let f = lint_source(CORE_PATH, src);
    assert!(hits(&f, "hash-iter-determinism").is_empty(), "{f:?}");
}

#[test]
fn hash_rule_is_scoped_to_result_feeding_crates() {
    let src = r#"
use std::collections::HashSet;
fn report(s: HashSet<u32>) {
    for x in &s {
        println!("{x}");
    }
}
"#;
    // Same source: flagged in a coloring-feeding crate, ignored elsewhere.
    assert_eq!(
        hits(&lint_source(CORE_PATH, src), "hash-iter-determinism").len(),
        1
    );
    let elsewhere = lint_source("crates/centrality/src/fixture.rs", src);
    assert!(hits(&elsewhere, "hash-iter-determinism").is_empty());
}

// ---------------------------------------------------------------------------
// canonical-float-sum
// ---------------------------------------------------------------------------

#[test]
fn raw_float_sums_fire() {
    let src = r#"
fn reductions(xs: &[f64]) -> f64 {
    let a = xs.iter().sum::<f64>();
    let b: f64 = xs.iter().copied().sum();
    let c = xs.iter().fold(0.0, |acc, x| acc + x);
    a + b + c
}
"#;
    let f = lint_source(CORE_PATH, src);
    let found = hits(&f, "canonical-float-sum");
    assert_eq!(found.len(), 3, "turbofish, typed bare sum, fold: {f:?}");
}

#[test]
fn non_additive_and_integer_reductions_are_clean() {
    let src = r#"
fn fine(xs: &[f64], ns: &[u64]) -> (f64, u64) {
    let hi = xs.iter().copied().fold(0.0, f64::max);
    let n = ns.iter().sum::<u64>();
    (hi, n)
}
"#;
    let f = lint_source(CORE_PATH, src);
    assert!(hits(&f, "canonical-float-sum").is_empty(), "{f:?}");
}

#[test]
fn lanes_module_is_the_sanctioned_exception() {
    let src = r#"
pub fn sum(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}
"#;
    let f = lint_source("crates/linalg/src/lanes.rs", src);
    assert!(hits(&f, "canonical-float-sum").is_empty(), "{f:?}");
    // The same code anywhere else in linalg is a violation.
    let f = lint_source("crates/linalg/src/dense.rs", src);
    assert_eq!(hits(&f, "canonical-float-sum").len(), 1);
}

// ---------------------------------------------------------------------------
// no-wallclock-in-results
// ---------------------------------------------------------------------------

#[test]
fn wallclock_reads_fire_outside_bench() {
    let src = r#"
fn jittery() -> f64 {
    let t = std::time::Instant::now();
    let _epoch = std::time::SystemTime::UNIX_EPOCH;
    t.elapsed().as_secs_f64()
}
"#;
    let f = lint_source(CORE_PATH, src);
    assert_eq!(hits(&f, "no-wallclock-in-results").len(), 2, "{f:?}");
}

#[test]
fn wallclock_is_fine_in_bench_and_use_statements() {
    let clean = r#"
use std::time::Instant;
fn shape() -> usize {
    1
}
"#;
    let f = lint_source(CORE_PATH, clean);
    assert!(hits(&f, "no-wallclock-in-results").is_empty(), "{f:?}");

    let timed = r#"
fn timed() -> f64 {
    std::time::Instant::now().elapsed().as_secs_f64()
}
"#;
    let f = lint_source("crates/bench/src/fixture.rs", timed);
    assert!(hits(&f, "no-wallclock-in-results").is_empty(), "{f:?}");
}

// ---------------------------------------------------------------------------
// no-panic-on-input
// ---------------------------------------------------------------------------

#[test]
fn panics_in_parser_modules_fire() {
    let src = r#"
fn decode(b: &[u8]) -> u32 {
    if b.is_empty() {
        panic!("empty input");
    }
    let arr: [u8; 4] = b[0..4].try_into().unwrap();
    u32::from_le_bytes(arr)
}
"#;
    let f = lint_source(PERSIST_PATH, src);
    assert_eq!(hits(&f, "no-panic-on-input").len(), 2, "{f:?}");
}

#[test]
fn typed_errors_in_parser_modules_are_clean() {
    let src = r#"
fn decode(b: &[u8]) -> Result<u32, &'static str> {
    let arr: [u8; 4] = b.get(0..4).and_then(|s| s.try_into().ok()).ok_or("short")?;
    Ok(u32::from_le_bytes(arr))
}
"#;
    let f = lint_source(PERSIST_PATH, src);
    assert!(hits(&f, "no-panic-on-input").is_empty(), "{f:?}");
}

#[test]
fn panic_rule_is_scoped_to_parser_modules() {
    let src = r#"
fn internal() -> u32 {
    let v = vec![1u32];
    v.first().copied().unwrap()
}
"#;
    // Engine-internal unwraps are the compiler-checked-invariant idiom and
    // stay legal outside IO/parser modules.
    let f = lint_source(CORE_PATH, src);
    assert!(hits(&f, "no-panic-on-input").is_empty(), "{f:?}");
}

#[test]
fn result_feeding_rules_skip_test_regions() {
    let src = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let xs = [1.0f64, 2.0];
        let s = xs.iter().sum::<f64>();
        let v: Vec<u32> = Vec::new();
        assert_eq!(v.first().copied().unwrap_or(0) as f64 + s, 3.0);
        let _ = std::time::Instant::now();
    }
}
"#;
    let f = lint_source(PERSIST_PATH, src);
    assert!(hits(&f, "canonical-float-sum").is_empty(), "{f:?}");
    assert!(hits(&f, "no-wallclock-in-results").is_empty(), "{f:?}");
    assert!(hits(&f, "no-panic-on-input").is_empty(), "{f:?}");
}

// ---------------------------------------------------------------------------
// Suppression machinery
// ---------------------------------------------------------------------------

/// A persist-scope snippet with one unwrap, prefixed by `comment`.
fn suppressible(comment: &str) -> String {
    format!(
        "fn decode(b: &[u8]) -> u32 {{\n    {comment}\n    let arr: [u8; 4] = \
         b[0..4].try_into().unwrap();\n    u32::from_le_bytes(arr)\n}}\n"
    )
}

#[test]
fn suppression_with_justification_silences_the_finding() {
    let src = suppressible(
        "// qsc-audit: allow(no-panic-on-input) -- fixture: guarded by a length check upstream",
    );
    let f = lint_source(PERSIST_PATH, &src);
    assert!(hits(&f, "no-panic-on-input").is_empty(), "{f:?}");
    let suppressed: Vec<_> = f.iter().filter(|x| x.suppressed).collect();
    assert_eq!(suppressed.len(), 1);
    assert_eq!(
        suppressed[0].justification.as_deref(),
        Some("fixture: guarded by a length check upstream")
    );
    assert!(hits(&f, "suppression-syntax").is_empty());
    assert!(hits(&f, "unused-suppression").is_empty());
}

#[test]
fn suppression_without_justification_is_an_error() {
    let src = suppressible("// qsc-audit: allow(no-panic-on-input)");
    let f = lint_source(PERSIST_PATH, &src);
    // The malformed suppression is rejected AND the finding stays live.
    assert_eq!(hits(&f, "suppression-syntax").len(), 1, "{f:?}");
    assert_eq!(hits(&f, "no-panic-on-input").len(), 1, "{f:?}");
}

#[test]
fn suppression_with_empty_justification_is_an_error() {
    let src = suppressible("// qsc-audit: allow(no-panic-on-input) -- ");
    let f = lint_source(PERSIST_PATH, &src);
    assert_eq!(hits(&f, "suppression-syntax").len(), 1, "{f:?}");
    assert_eq!(hits(&f, "no-panic-on-input").len(), 1, "{f:?}");
}

#[test]
fn suppression_naming_unknown_rule_is_an_error() {
    let src = suppressible("// qsc-audit: allow(not-a-rule) -- misdirected");
    let f = lint_source(PERSIST_PATH, &src);
    assert_eq!(hits(&f, "suppression-syntax").len(), 1, "{f:?}");
    assert_eq!(hits(&f, "no-panic-on-input").len(), 1, "{f:?}");
}

#[test]
fn meta_rules_are_not_suppressible() {
    // `suppression-syntax` is not in RULE_IDS, so naming it is itself a
    // syntax error — the meta rules cannot be allowed away.
    let src = suppressible("// qsc-audit: allow(suppression-syntax) -- nice try");
    let f = lint_source(PERSIST_PATH, &src);
    assert_eq!(hits(&f, "suppression-syntax").len(), 1, "{f:?}");
}

#[test]
fn unused_suppression_warns() {
    let src = "// qsc-audit: allow(no-panic-on-input) -- nothing here to silence\n\
               fn fine() -> u32 {\n    7\n}\n";
    let f = lint_source(PERSIST_PATH, src);
    let found = hits(&f, "unused-suppression");
    assert_eq!(found.len(), 1, "{f:?}");
    assert_eq!(found[0].level, Level::Warning);
}

#[test]
fn doc_comments_never_carry_suppressions() {
    let src = suppressible("/// qsc-audit: allow(no-panic-on-input) -- docs only quote the syntax");
    let f = lint_source(PERSIST_PATH, &src);
    // Neither a suppression nor a syntax error: doc comments are inert.
    assert_eq!(hits(&f, "no-panic-on-input").len(), 1, "{f:?}");
    assert!(hits(&f, "suppression-syntax").is_empty(), "{f:?}");
    assert!(hits(&f, "unused-suppression").is_empty(), "{f:?}");
}

#[test]
fn violations_inside_string_literals_are_invisible() {
    let src = r##"
fn render() -> &'static str {
    r#"
    let x = xs.iter().sum::<f64>();
    unsafe { boom() }
    "#
}
"##;
    let f = lint_source(CORE_PATH, src);
    assert!(f.is_empty(), "strings are data, not code: {f:?}");
}

// ---------------------------------------------------------------------------
// The merged tree is audit-clean
// ---------------------------------------------------------------------------

#[test]
fn workspace_tree_is_audit_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("workspace root above tests/");
    let report = audit_tree(&root).expect("scan workspace sources");
    assert!(report.files_scanned > 50, "scan looks truncated");
    let live: Vec<_> = report.findings.iter().filter(|f| !f.suppressed).collect();
    assert!(
        live.is_empty(),
        "unsuppressed audit findings in the tree:\n{}",
        live.iter()
            .map(|f| format!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
