//! Merge/refine round-trip suite for the bidirectional event algebra.
//!
//! Coarsening (merges picked by the post-merge q-error bound) composed
//! with re-refinement must stay on the deterministic path: a maintained
//! run that coarsens and then resplits is bit-identical to a fresh run
//! started from the resulting partition, across thread counts {1, 4}, and
//! every incremental consumer (engine, reduced delta, patched emitters)
//! mirrors the merges exactly. Weights are multiples of 0.5 so all sums
//! are exact and equalities are required bit-for-bit.

use qsc_core::q_error::IncrementalDegrees;
use qsc_core::reduced::ReducedDelta;
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::{Partition, PartitionEvent};
use qsc_graph::{Graph, GraphBuilder, GraphDelta};
use rand::prelude::*;

/// Random graph with exactly representable weights (multiples of 0.5).
fn random_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = if directed {
        GraphBuilder::new_directed(n)
    } else {
        GraphBuilder::new_undirected(n)
    };
    for _ in 0..edges {
        let u = rng.random_range(0..n) as u32;
        let v = rng.random_range(0..n) as u32;
        if u != v {
            let w = (rng.random_range(1u32..9) as f64) * 0.5;
            b.add_edge(u, v, w);
        }
    }
    b.build()
}

#[test]
fn coarsen_then_resplit_is_bit_identical_to_fresh_run() {
    for (directed, seed) in [(false, 9u64), (true, 47)] {
        // The same schedule at both thread counts: (1) refine to the
        // target, (2) delete edges until maintenance coarsens, (3) insert
        // edges so maintenance resplits — comparing against a fresh run
        // started from the same checkpoint at every stage.
        let mut per_thread: Vec<Vec<Vec<u32>>> = Vec::new();
        for threads in [1usize, 4] {
            let g = random_graph(100, 420, directed, seed);
            let config = RothkoConfig {
                max_colors: 50,
                target_error: 4.0,
                threads: Some(threads),
                coarsen: true,
                ..Default::default()
            };
            let mut run = Rothko::new(config.clone()).start(&g);
            run.maintain();
            let mut assignments = vec![run.partition().canonical_assignment()];
            let mut delta = GraphDelta::new(g.clone());
            let mut edges: Vec<(u32, u32)> = g.edges().iter().map(|&(u, v, _)| (u, v)).collect();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);

            // Stage 2: delete 60% of the edges — churn that lowers the
            // error, so a coarsening maintenance can shrink k.
            let keep = edges.len() * 2 / 5;
            while edges.len() > keep {
                let i = rng.random_range(0..edges.len());
                let (u, v) = edges.swap_remove(i);
                delta.delete_edge(u, v).unwrap();
            }
            let events = delta.drain_events();
            let compacted = delta.compact();
            run.apply_edge_batch(compacted.clone(), &events);
            let checkpoint = run.partition().clone();
            let k_before = checkpoint.num_colors();
            run.maintain();
            let merges_after_deletes = run.merges();
            // Cross-check against a fresh run from the checkpoint.
            let fresh_config = RothkoConfig {
                initial: Some(checkpoint),
                ..config.clone()
            };
            let mut fresh = Rothko::new(fresh_config).start(&compacted);
            fresh.maintain();
            assert!(
                run.partition().same_as(fresh.partition()),
                "post-coarsen coloring differs from fresh run (threads {threads})"
            );
            assert_eq!(fresh.merges(), merges_after_deletes);
            assert!(
                run.partition().num_colors() <= k_before,
                "coarsening must not grow k"
            );
            assignments.push(run.partition().canonical_assignment());

            // Stage 3: insert fresh edges — churn that raises the error,
            // so maintenance resplits.
            for _ in 0..edges.len() / 2 {
                loop {
                    let u = rng.random_range(0..100) as u32;
                    let v = rng.random_range(0..100) as u32;
                    if u != v && !delta.has_edge(u, v) {
                        let w = (rng.random_range(4u32..9) as f64) * 0.5;
                        delta.insert_edge(u, v, w).unwrap();
                        edges.push((u, v));
                        break;
                    }
                }
            }
            let events = delta.drain_events();
            let compacted = delta.compact();
            run.apply_edge_batch(compacted.clone(), &events);
            let checkpoint = run.partition().clone();
            run.maintain();
            let fresh_config = RothkoConfig {
                initial: Some(checkpoint),
                ..config.clone()
            };
            let mut fresh = Rothko::new(fresh_config).start(&compacted);
            fresh.maintain();
            assert!(
                run.partition().same_as(fresh.partition()),
                "post-resplit coloring differs from fresh run (threads {threads})"
            );
            let err = run.exact_max_error();
            assert!(
                err <= 4.0 || run.partition().num_colors() == 50,
                "error {err} above target with colors to spare"
            );
            assignments.push(run.partition().canonical_assignment());
            per_thread.push(assignments);
        }
        assert_eq!(
            per_thread[0], per_thread[1],
            "thread counts diverged (directed={directed}, seed={seed})"
        );
    }
}

#[test]
fn deleting_every_edge_coarsens_to_one_color() {
    // The extreme coarsening round: with no edges left every pair's
    // post-merge bound is zero, so a coarsening maintenance must collapse
    // the coloring to a single color — k demonstrably shrinks on a churn
    // round that lowers the error.
    let g = random_graph(60, 260, false, 21);
    let config = RothkoConfig {
        max_colors: 40,
        target_error: 3.0,
        coarsen: true,
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    run.maintain();
    let k_before = run.partition().num_colors();
    assert!(k_before > 1);
    let mut delta = GraphDelta::new(g.clone());
    for &(u, v, _) in &g.edges() {
        delta.delete_edge(u, v).unwrap();
    }
    let events = delta.drain_events();
    let compacted = delta.compact();
    run.apply_edge_batch(compacted, &events);
    let ops = run.maintain();
    assert_eq!(run.partition().num_colors(), 1, "empty graph: one color");
    assert_eq!(run.merges(), k_before - 1);
    assert_eq!(ops, k_before - 1, "all operations were merges");
    assert_eq!(run.exact_max_error(), 0.0);
}

#[test]
fn maintain_with_drives_reduced_delta_through_merges() {
    // The PartitionEvent visitor keeps a ReducedDelta in lockstep through
    // a maintenance pass that both merges and splits.
    let g = random_graph(80, 340, false, 33);
    let config = RothkoConfig {
        max_colors: 40,
        target_error: 4.0,
        coarsen: true,
        ..Default::default()
    };
    let mut run = Rothko::new(config).start(&g);
    let mut delta = ReducedDelta::new(&g, run.partition());
    let graph = g.clone();
    run.maintain_with(|p, ev| match ev {
        PartitionEvent::Split(s) => delta.apply_split(&graph, p, s),
        PartitionEvent::Merge(m) => delta.apply_merge(m),
        _ => unreachable!("no node churn in this pass"),
    });
    assert_eq!(delta.verify_against(&g, run.partition()), Ok(()));
    // Drop every edge: coarsening is guaranteed (all bounds zero) and the
    // visitor must see each merge in lockstep.
    let mut gd = GraphDelta::new(g.clone());
    for &(u, v, _) in &g.edges() {
        gd.delete_edge(u, v).unwrap();
    }
    let events = gd.drain_events();
    let compacted = gd.compact();
    run.apply_edge_batch(compacted.clone(), &events);
    delta.apply_edge_batch(run.partition(), &events);
    let mut saw_merge = false;
    run.maintain_with(|p, ev| {
        match ev {
            PartitionEvent::Split(s) => delta.apply_split(&compacted, p, s),
            PartitionEvent::Merge(m) => {
                saw_merge = true;
                delta.apply_merge(m);
            }
            _ => unreachable!("no node churn in this pass"),
        }
        assert_eq!(delta.num_colors(), p.num_colors(), "lockstep violated");
    });
    assert_eq!(delta.verify_against(&compacted, run.partition()), Ok(()));
    assert!(saw_merge && run.merges() > 0);
    assert_eq!(run.partition().num_colors(), 1);

    // Re-wire the empty graph: maintenance resplits, the visitor sees the
    // splits, and the delta stays synchronized end to end.
    let mut gd = GraphDelta::new(compacted);
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for _ in 0..200 {
        let u = rng.random_range(0..80) as u32;
        let v = rng.random_range(0..80) as u32;
        if u != v && !gd.has_edge(u, v) {
            gd.insert_edge(u, v, (rng.random_range(1u32..9) as f64) * 0.5)
                .unwrap();
        }
    }
    let events = gd.drain_events();
    let rewired = gd.compact();
    run.apply_edge_batch(rewired.clone(), &events);
    delta.apply_edge_batch(run.partition(), &events);
    let mut saw_split = false;
    run.maintain_with(|p, ev| match ev {
        PartitionEvent::Split(s) => {
            saw_split = true;
            delta.apply_split(&rewired, p, s);
        }
        PartitionEvent::Merge(m) => delta.apply_merge(m),
        _ => unreachable!("no node churn in this pass"),
    });
    assert!(saw_split, "re-wiring an empty graph must force splits");
    assert_eq!(delta.verify_against(&rewired, run.partition()), Ok(()));
}

#[test]
fn coarsening_chains_collapse_with_arbitrary_bound_order() {
    // Regression test for the batched coarsening round's slot tracking: a
    // huge error target makes every pair a candidate with *varied* bounds,
    // so the round merges in bound order (not winner-0-first) and builds
    // transitive chains — colors merged into a winner whose slot is later
    // merged or relabeled itself. The round must keep its map transitive
    // (stale slots once caused wrong pairs or out-of-range panics), the
    // coloring must collapse to one color, and a fresh run from the same
    // checkpoint must reproduce it exactly.
    for (directed, seed) in [(false, 27u64), (true, 83)] {
        let g = random_graph(90, 380, directed, seed);
        let config = RothkoConfig {
            max_colors: 40,
            target_error: 1e6,
            coarsen: true,
            ..Default::default()
        };
        // Refine first (huge target would never split), then coarsen.
        let refine = RothkoConfig {
            target_error: 0.0,
            coarsen: false,
            ..config.clone()
        };
        let mut pre = Rothko::new(refine).start(&g);
        pre.maintain();
        let checkpoint = pre.partition().clone();
        assert!(checkpoint.num_colors() == 40);
        let with_initial = RothkoConfig {
            initial: Some(checkpoint.clone()),
            ..config.clone()
        };
        let mut run = Rothko::new(with_initial.clone()).start(&g);
        let ops = run.maintain();
        assert_eq!(
            run.partition().num_colors(),
            1,
            "an unbounded band must collapse the coloring"
        );
        assert_eq!(run.merges(), 39);
        assert_eq!(ops, 39);
        let mut fresh = Rothko::new(with_initial).start(&g);
        fresh.maintain();
        assert!(run.partition().same_as(fresh.partition()));
    }
}

#[test]
fn sharded_merge_paths_match_serial_engine() {
    // Force the pool thresholds to zero so merges exercise the sharded
    // member-axis rebuilds and entry rescans, and pin bit-identity to the
    // serial engine.
    for (directed, seed) in [(false, 15u64), (true, 55)] {
        let g = random_graph(70, 320, directed, seed);
        let mut p = Partition::unit(70);
        let mut serial = IncrementalDegrees::new_with_threads(&g, &p, 1);
        let mut sharded = IncrementalDegrees::new_with_threads(&g, &p, 4);
        sharded.set_parallel_thresholds(1, 1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xACE);
        for _ in 0..10 {
            let k = p.num_colors();
            let candidates: Vec<u32> = (0..k as u32).filter(|&c| p.size(c) >= 2).collect();
            let Some(&c) = candidates.as_slice().choose(&mut rng) else {
                break;
            };
            let members: Vec<u32> = p.members(c).to_vec();
            let pivot = members[rng.random_range(0..members.len())];
            if let Some(ev) = p.split_color(c, |v| v >= pivot && v != members[0]) {
                serial.apply_split(&g, &p, &ev);
                sharded.apply_split(&g, &p, &ev);
            }
        }
        while p.num_colors() > 1 {
            let cand = serial.pick_merge(f64::INFINITY).expect("pairs remain");
            assert_eq!(cand, sharded.pick_merge(f64::INFINITY).expect("pairs"));
            let ev = p.merge_colors(cand.winner, cand.loser);
            serial.apply_merge(&g, &p, &ev);
            sharded.apply_merge(&g, &p, &ev);
            assert_eq!(serial.verify_against(&g, &p), Ok(()));
            assert_eq!(sharded.verify_against(&g, &p), Ok(()));
            serial.refresh(&p, 1.0);
            sharded.refresh(&p, 1.0);
            assert_eq!(serial.max_error().to_bits(), sharded.max_error().to_bits());
            assert_eq!(serial.pick_witness(&p, 1.0), sharded.pick_witness(&p, 1.0));
        }
    }
}
