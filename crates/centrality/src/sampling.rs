//! The Riondato–Kornaropoulos sampling baseline [WSDM 2014], used in
//! Table 1 (top) of the paper's evaluation.
//!
//! The estimator samples `r` shortest paths uniformly at random (pick a
//! random pair `(s, t)`, then a uniformly random shortest path between them)
//! and adds `1/r` to every interior vertex of each sampled path. With
//!
//! ```text
//! r = (c / ε²) · (⌊log₂(VD − 2)⌋ + 1 + ln(1/δ))
//! ```
//!
//! samples, where `VD` is the vertex diameter, every estimate is within `ε`
//! of the normalized betweenness with probability `1 − δ`.

use qsc_graph::traversal::{approx_diameter, shortest_path_dag};
use qsc_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration of the sampling estimator.
#[derive(Clone, Debug)]
pub struct SamplingConfig {
    /// Additive error target `ε` on the *normalized* betweenness.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// The universal constant `c` of the VC bound (0.5 in the original
    /// paper).
    pub constant: f64,
    /// RNG seed.
    pub seed: u64,
    /// Optional hard cap on the number of samples.
    pub max_samples: Option<usize>,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            epsilon: 0.05,
            delta: 0.1,
            constant: 0.5,
            seed: 0,
            max_samples: None,
        }
    }
}

impl SamplingConfig {
    /// Configuration targeting an additive error `ε` (with default `δ`).
    pub fn with_epsilon(epsilon: f64) -> Self {
        SamplingConfig {
            epsilon,
            ..Default::default()
        }
    }
}

/// Number of samples prescribed by the VC-dimension bound for a graph with
/// approximate vertex diameter `vd`.
pub fn sample_size(config: &SamplingConfig, vd: usize) -> usize {
    let vd = vd.max(3) as f64;
    let r = (config.constant / (config.epsilon * config.epsilon))
        * ((vd - 2.0).log2().floor() + 1.0 + (1.0 / config.delta).ln());
    let r = r.ceil().max(1.0) as usize;
    match config.max_samples {
        Some(cap) => r.min(cap),
        None => r,
    }
}

/// Estimate betweenness centrality by sampling shortest paths. Returns
/// *unnormalized* scores scaled to the same ordered-pair convention as
/// [`crate::brandes::betweenness`] so the two can be compared directly.
pub fn betweenness_sampling(g: &Graph, config: &SamplingConfig) -> Vec<f64> {
    let n = g.num_nodes();
    let mut scores = vec![0.0f64; n];
    if n < 3 {
        return scores;
    }
    let vd = approx_diameter(g);
    let r = sample_size(config, vd);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut successes = 0usize;
    let mut attempts = 0usize;
    while successes < r && attempts < 20 * r {
        attempts += 1;
        let s = rng.random_range(0..n) as NodeId;
        let t = rng.random_range(0..n) as NodeId;
        if s == t {
            continue;
        }
        let dag = shortest_path_dag(g, s);
        if dag.sigma[t as usize] == 0.0 {
            continue; // t unreachable from s
        }
        successes += 1;
        // Walk back from t choosing each predecessor with probability
        // sigma(pred)/sigma(current): this samples a shortest path uniformly.
        let mut v = t;
        let mut sigma_buf: Vec<f64> = Vec::new();
        while v != s {
            let preds = &dag.preds[v as usize];
            sigma_buf.clear();
            sigma_buf.extend(preds.iter().map(|&p| dag.sigma[p as usize]));
            let total = qsc_linalg::lanes::sum(&sigma_buf);
            let mut pick = rng.random::<f64>() * total;
            let mut chosen = preds[0];
            for &p in preds {
                pick -= dag.sigma[p as usize];
                if pick <= 0.0 {
                    chosen = p;
                    break;
                }
            }
            if chosen != s {
                scores[chosen as usize] += 1.0;
            }
            v = chosen;
        }
    }
    if successes == 0 {
        return scores;
    }
    // Each sample contributes 1/r to the normalized betweenness estimate;
    // rescale to the unnormalized ordered-pair scale n(n-1).
    let scale = (n as f64) * (n as f64 - 1.0) / successes as f64;
    for s in scores.iter_mut() {
        *s *= scale;
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brandes;
    use crate::correlation::spearman;
    use qsc_graph::generators;

    #[test]
    fn sample_size_grows_with_precision() {
        let loose = sample_size(&SamplingConfig::with_epsilon(0.1), 10);
        let tight = sample_size(&SamplingConfig::with_epsilon(0.02), 10);
        assert!(tight > loose);
        let capped = sample_size(
            &SamplingConfig {
                max_samples: Some(100),
                ..SamplingConfig::with_epsilon(0.001)
            },
            10,
        );
        assert_eq!(capped, 100);
    }

    #[test]
    fn star_graph_estimates_center() {
        let mut b = qsc_graph::GraphBuilder::new_undirected(12);
        for leaf in 1..12 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let est = betweenness_sampling(&g, &SamplingConfig::with_epsilon(0.05));
        // The center must dominate every leaf.
        for leaf in 1..12 {
            assert!(est[0] > est[leaf]);
        }
    }

    #[test]
    fn correlates_with_exact_on_karate() {
        let g = generators::karate_club();
        let exact = brandes::betweenness(&g);
        let est = betweenness_sampling(
            &g,
            &SamplingConfig {
                epsilon: 0.03,
                seed: 7,
                ..Default::default()
            },
        );
        let rho = spearman(&exact, &est);
        assert!(rho > 0.7, "sampling correlation too low: {rho}");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::barabasi_albert(100, 2, 3);
        let cfg = SamplingConfig {
            epsilon: 0.1,
            seed: 42,
            ..Default::default()
        };
        assert_eq!(
            betweenness_sampling(&g, &cfg),
            betweenness_sampling(&g, &cfg)
        );
    }

    #[test]
    fn tiny_graph_returns_zeros() {
        let g = qsc_graph::Graph::empty(2, false);
        let est = betweenness_sampling(&g, &SamplingConfig::default());
        assert_eq!(est, vec![0.0, 0.0]);
    }
}
