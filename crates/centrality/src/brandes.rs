//! Brandes' algorithm for exact betweenness centrality (the paper's exact
//! baseline [Brandes 2001]).

use qsc_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Exact betweenness centrality of every node (unweighted shortest paths,
/// following out-edges).
///
/// For undirected graphs (stored as symmetric directed graphs) this computes
/// the standard undirected betweenness in which each unordered pair `{s, t}`
/// is counted twice (once per direction), matching the convention of
/// Eq. (9), which sums over ordered pairs.
pub fn betweenness(g: &Graph) -> Vec<f64> {
    let n = g.num_nodes();
    let mut centrality = vec![0.0f64; n];
    let mut scratch = BrandesScratch::new(n);
    for s in 0..n as NodeId {
        accumulate_from_source(g, s, 1.0, &mut centrality, &mut scratch);
    }
    centrality
}

/// Betweenness restricted to a subset of source nodes, each weighted by a
/// multiplier. Used by the coloring-based stratified approximation (one
/// representative per color, weighted by the color size) and by plain
/// source-sampling approximations (weight `n / |sources|`).
pub fn betweenness_from_sources(g: &Graph, sources: &[(NodeId, f64)]) -> Vec<f64> {
    let n = g.num_nodes();
    let mut centrality = vec![0.0f64; n];
    let mut scratch = BrandesScratch::new(n);
    for &(s, weight) in sources {
        accumulate_from_source(g, s, weight, &mut centrality, &mut scratch);
    }
    centrality
}

/// Reusable per-source working memory for Brandes' accumulation.
struct BrandesScratch {
    dist: Vec<i64>,
    sigma: Vec<f64>,
    delta: Vec<f64>,
    preds: Vec<Vec<NodeId>>,
    order: Vec<NodeId>,
    queue: VecDeque<NodeId>,
}

impl BrandesScratch {
    fn new(n: usize) -> Self {
        BrandesScratch {
            dist: vec![-1; n],
            sigma: vec![0.0; n],
            delta: vec![0.0; n],
            preds: vec![Vec::new(); n],
            order: Vec::with_capacity(n),
            queue: VecDeque::new(),
        }
    }

    fn reset(&mut self) {
        for d in self.dist.iter_mut() {
            *d = -1;
        }
        for s in self.sigma.iter_mut() {
            *s = 0.0;
        }
        for d in self.delta.iter_mut() {
            *d = 0.0;
        }
        for p in self.preds.iter_mut() {
            p.clear();
        }
        self.order.clear();
        self.queue.clear();
    }
}

fn accumulate_from_source(
    g: &Graph,
    s: NodeId,
    weight: f64,
    centrality: &mut [f64],
    scratch: &mut BrandesScratch,
) {
    scratch.reset();
    scratch.dist[s as usize] = 0;
    scratch.sigma[s as usize] = 1.0;
    scratch.queue.push_back(s);
    while let Some(u) = scratch.queue.pop_front() {
        scratch.order.push(u);
        let du = scratch.dist[u as usize];
        for (v, _) in g.out_edges(u) {
            if scratch.dist[v as usize] < 0 {
                scratch.dist[v as usize] = du + 1;
                scratch.queue.push_back(v);
            }
            if scratch.dist[v as usize] == du + 1 {
                scratch.sigma[v as usize] += scratch.sigma[u as usize];
                scratch.preds[v as usize].push(u);
            }
        }
    }
    // Dependency accumulation in reverse BFS order.
    for &w in scratch.order.iter().rev() {
        let coeff = (1.0 + scratch.delta[w as usize]) / scratch.sigma[w as usize];
        for &v in &scratch.preds[w as usize] {
            scratch.delta[v as usize] += scratch.sigma[v as usize] * coeff;
        }
        if w != s {
            centrality[w as usize] += weight * scratch.delta[w as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::{generators, GraphBuilder};

    fn path(n: usize) -> Graph {
        let mut b = GraphBuilder::new_undirected(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, (i + 1) as u32, 1.0);
        }
        b.build()
    }

    #[test]
    fn path_graph_centralities() {
        // Path 0-1-2-3-4 (ordered-pair convention): node 2 lies on the
        // shortest paths of {0,1}x{3,4} and {0}x{... } => g(2) = 2*|{(0,3),
        // (0,4),(1,3),(1,4)}| = 8; node 1: pairs (0,*) for * in {2,3,4} => 6.
        let g = path(5);
        let c = betweenness(&g);
        assert_eq!(c[0], 0.0);
        assert_eq!(c[4], 0.0);
        assert!((c[1] - 6.0).abs() < 1e-9);
        assert!((c[2] - 8.0).abs() < 1e-9);
        assert!((c[3] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn star_center_dominates() {
        let mut b = GraphBuilder::new_undirected(6);
        for leaf in 1..6 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let c = betweenness(&g);
        // Center lies on all 5*4 = 20 ordered leaf pairs.
        assert!((c[0] - 20.0).abs() < 1e-9);
        for &score in &c[1..6] {
            assert_eq!(score, 0.0);
        }
    }

    #[test]
    fn cycle_all_equal() {
        let mut b = GraphBuilder::new_undirected(6);
        for i in 0..6 {
            b.add_edge(i, (i + 1) % 6, 1.0);
        }
        let g = b.build();
        let c = betweenness(&g);
        for &v in &c {
            assert!((v - c[0]).abs() < 1e-9);
        }
        assert!(c[0] > 0.0);
    }

    #[test]
    fn fractional_credit_on_diamond() {
        // 0 - {1,2} - 3: node 1 and node 2 each get half the credit of the
        // (0,3) and (3,0) pairs.
        let mut b = GraphBuilder::new_undirected(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 3, 1.0);
        let g = b.build();
        let c = betweenness(&g);
        assert!((c[1] - 1.0).abs() < 1e-9);
        assert!((c[2] - 1.0).abs() < 1e-9);
        assert_eq!(c[0], c[3]);
    }

    #[test]
    fn karate_leaders_have_highest_centrality() {
        let g = generators::karate_club();
        let c = betweenness(&g);
        let mut ranked: Vec<usize> = (0..34).collect();
        ranked.sort_by(|&a, &b| c[b].partial_cmp(&c[a]).unwrap());
        // Node 0 (instructor) and node 33 (president) plus node 32 are the
        // classic top-betweenness vertices; node 0 is the global maximum.
        assert_eq!(ranked[0], 0);
        assert!(ranked[1..4].contains(&33));
    }

    #[test]
    fn sources_subset_matches_full_run_when_all_sources_used() {
        let g = generators::karate_club();
        let full = betweenness(&g);
        let sources: Vec<(u32, f64)> = (0..34).map(|v| (v, 1.0)).collect();
        let via_sources = betweenness_from_sources(&g, &sources);
        for v in 0..34 {
            assert!((full[v] - via_sources[v]).abs() < 1e-9);
        }
    }
}
