//! Spearman's rank correlation coefficient, the accuracy metric used for the
//! centrality experiments (Sec. 6.1).

/// Spearman's rank correlation between two equal-length value vectors.
/// Ties receive their average rank. Returns 1.0 for constant identical
/// vectors and 0.0 if either vector is constant while the other is not.
pub fn spearman(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    if a.is_empty() {
        return 1.0;
    }
    let ra = ranks(a);
    let rb = ranks(b);
    pearson(&ra, &rb)
}

/// Average ranks (1-based) with ties sharing the mean of their positions.
fn ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        values[i]
            .partial_cmp(&values[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j share the average rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[order[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Pearson correlation of two vectors.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 1.0;
    }
    let mean_a = qsc_linalg::lanes::sum(a) / n;
    let mean_b = qsc_linalg::lanes::sum(b) / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for i in 0..a.len() {
        let da = a[i] - mean_a;
        let db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if var_a == 0.0 && var_b == 0.0 {
        return 1.0;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_correlation() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((spearman(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_transform_invariance() {
        // Spearman only depends on ranks.
        let a = [1.0f64, 5.0, 2.0, 9.0];
        let b: Vec<f64> = a.iter().map(|&x| x.powi(3) + 7.0).collect();
        assert!((spearman(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[2.0, 1.0, 2.0]);
        assert_eq!(r, vec![2.5, 1.0, 2.5]);
    }

    #[test]
    fn constant_vector_edge_cases() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman(&a, &b), 0.0);
        assert_eq!(spearman(&a, &a), 1.0);
    }

    #[test]
    fn known_value() {
        // Classic example: one discordant pair among 5.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 2.0, 3.0, 5.0, 4.0];
        let rho = spearman(&a, &b);
        assert!((rho - 0.9).abs() < 1e-12, "got {rho}");
    }
}
