//! # qsc-centrality
//!
//! Betweenness centrality substrate and the centrality application of
//! quasi-stable coloring (Sec. 4.3 of the paper).
//!
//! * [`brandes`] — exact betweenness centrality (the paper's exact baseline).
//! * [`approx`] — coloring-based approximation (stratified per-color
//!   sampling and reduced-graph lifting).
//! * [`sampling`] — the Riondato–Kornaropoulos shortest-path-sampling
//!   baseline of Table 1.
//! * [`correlation`] — Spearman's rank correlation, the accuracy metric.
//!
//! ## Example
//!
//! ```
//! use qsc_graph::generators::karate_club;
//! use qsc_centrality::{brandes, approx, correlation};
//!
//! let g = karate_club();
//! let exact = brandes::betweenness(&g);
//! let estimate = approx::approximate(
//!     &g,
//!     &approx::CentralityApproxConfig::with_max_colors(12),
//! );
//! let rho = correlation::spearman(&exact, &estimate.scores);
//! assert!(rho > 0.7);
//! ```

#![forbid(unsafe_code)]

pub mod approx;
pub mod brandes;
pub mod correlation;
pub mod sampling;

pub use approx::{approximate, ApproxCentrality, ApproxMethod, CentralityApproxConfig};
pub use brandes::betweenness;
pub use correlation::spearman;
pub use sampling::{betweenness_sampling, SamplingConfig};
