//! Coloring-based betweenness-centrality approximation (Sec. 4.3 / 6.1).
//!
//! The approximation colors the graph with the Rothko algorithm (the paper
//! uses witness weights `α = β = 1` for centrality) and then assumes that
//! nodes of the same color have similar centrality. Two estimators are
//! provided:
//!
//! * [`stratified`] — pick one representative per color and run a Brandes
//!   single-source accumulation from each, weighting its contribution by the
//!   color size. This is an `O(k · m)` stratified source-sampling estimate
//!   whose strata are the colors (the paper's "compute Eq. (9) once per
//!   color" strategy).
//! * [`reduced_graph`] — compute betweenness on the reduced multigraph and
//!   lift each color's score to its members. This only touches the `k`-node
//!   reduced graph after coloring and is the cheapest option.

use crate::brandes;
use qsc_core::reduced::{lift_color_values, reduced_graph, ReductionWeighting};
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::Partition;
use qsc_graph::Graph;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which coloring-based estimator to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ApproxMethod {
    /// One weighted Brandes source per color (recommended).
    #[default]
    Stratified,
    /// Betweenness of the reduced graph lifted back to the nodes.
    ReducedGraph,
}

/// Configuration of the coloring-based approximation.
#[derive(Clone, Debug)]
pub struct CentralityApproxConfig {
    /// Color budget.
    pub max_colors: usize,
    /// Estimator.
    pub method: ApproxMethod,
    /// Seed for choosing color representatives.
    pub seed: u64,
    /// Number of representatives sampled per color by the stratified
    /// estimator (capped at the color size). More representatives reduce the
    /// within-color sampling variance at a proportional cost in
    /// single-source Brandes passes.
    pub representatives_per_color: usize,
}

impl CentralityApproxConfig {
    /// Default configuration with the given color budget.
    pub fn with_max_colors(max_colors: usize) -> Self {
        CentralityApproxConfig {
            max_colors,
            method: ApproxMethod::Stratified,
            seed: 0,
            representatives_per_color: 4,
        }
    }
}

/// Result of the approximation.
#[derive(Clone, Debug)]
pub struct ApproxCentrality {
    /// Estimated betweenness per node.
    pub scores: Vec<f64>,
    /// The coloring used.
    pub partition: Partition,
    /// Maximum q-error of the coloring.
    pub max_q_error: f64,
}

/// Approximate betweenness centrality of every node using a quasi-stable
/// coloring computed by Rothko.
pub fn approximate(g: &Graph, config: &CentralityApproxConfig) -> ApproxCentrality {
    let coloring = Rothko::new(RothkoConfig::for_centrality(config.max_colors)).run(g);
    approximate_with_partition(g, coloring.partition, coloring.max_q_error, config)
}

/// Approximate betweenness with a caller-supplied coloring.
pub fn approximate_with_partition(
    g: &Graph,
    partition: Partition,
    max_q_error: f64,
    config: &CentralityApproxConfig,
) -> ApproxCentrality {
    let scores = match config.method {
        ApproxMethod::Stratified => stratified_with(
            g,
            &partition,
            config.seed,
            config.representatives_per_color.max(1),
        ),
        ApproxMethod::ReducedGraph => reduced_graph_scores(g, &partition),
    };
    ApproxCentrality {
        scores,
        partition,
        max_q_error,
    }
}

/// Stratified estimator with one representative per color (see
/// [`stratified_with`] for the multi-representative variant).
pub fn stratified(g: &Graph, partition: &Partition, seed: u64) -> Vec<f64> {
    stratified_with(g, partition, seed, 1)
}

/// Stratified estimator: up to `reps` random representatives per color, each
/// weighted by `|color| / #representatives`, accumulated with Brandes
/// single-source passes. With `reps >= |color|` for every color this is
/// exact Brandes.
pub fn stratified_with(g: &Graph, partition: &Partition, seed: u64, reps: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sources = Vec::with_capacity(partition.num_colors() * reps);
    for c in 0..partition.num_colors() as u32 {
        let members = partition.members(c);
        if members.is_empty() {
            continue;
        }
        let take = reps.min(members.len());
        let mut chosen: Vec<qsc_graph::NodeId> = members.to_vec();
        // Partial Fisher–Yates: choose `take` distinct representatives.
        for i in 0..take {
            let j = rng.random_range(i..chosen.len());
            chosen.swap(i, j);
        }
        let weight = members.len() as f64 / take as f64;
        for &v in &chosen[..take] {
            sources.push((v, weight));
        }
    }
    brandes::betweenness_from_sources(g, &sources)
}

/// Reduced-graph estimator: betweenness of the reduced graph, lifted to the
/// original nodes (each node receives its color's score).
pub fn reduced_graph_scores(g: &Graph, partition: &Partition) -> Vec<f64> {
    let reduced = reduced_graph(g, partition, ReductionWeighting::Sum);
    let color_scores = brandes::betweenness(&reduced);
    lift_color_values(partition, &color_scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correlation::spearman;
    use qsc_graph::generators;

    #[test]
    fn stratified_with_singleton_colors_is_exact() {
        // When every node is its own color the stratified estimator is exact
        // Brandes.
        let g = generators::karate_club();
        let exact = brandes::betweenness(&g);
        let partition = Partition::discrete(34);
        let approx = stratified(&g, &partition, 3);
        for v in 0..34 {
            assert!((exact[v] - approx[v]).abs() < 1e-9);
        }
    }

    #[test]
    fn karate_correlation_is_high() {
        let g = generators::karate_club();
        let exact = brandes::betweenness(&g);
        let approx = approximate(&g, &CentralityApproxConfig::with_max_colors(12));
        let rho = spearman(&exact, &approx.scores);
        assert!(rho > 0.75, "Spearman correlation too low: {rho}");
        assert!(approx.partition.num_colors() <= 12);
    }

    #[test]
    fn more_colors_improve_correlation_on_scale_free_graph() {
        let g = generators::barabasi_albert(400, 3, 11);
        let exact = brandes::betweenness(&g);
        let coarse = approximate(&g, &CentralityApproxConfig::with_max_colors(5));
        let fine = approximate(&g, &CentralityApproxConfig::with_max_colors(60));
        let rho_coarse = spearman(&exact, &coarse.scores);
        let rho_fine = spearman(&exact, &fine.scores);
        assert!(
            rho_fine + 0.05 >= rho_coarse,
            "more colors should not hurt much: coarse {rho_coarse}, fine {rho_fine}"
        );
        assert!(rho_fine > 0.8, "fine correlation too low: {rho_fine}");
    }

    #[test]
    fn reduced_graph_method_produces_scores() {
        let g = generators::barabasi_albert(200, 3, 5);
        let config = CentralityApproxConfig {
            method: ApproxMethod::ReducedGraph,
            seed: 1,
            ..CentralityApproxConfig::with_max_colors(20)
        };
        let approx = approximate(&g, &config);
        assert_eq!(approx.scores.len(), 200);
        // Scores are non-negative and not all zero.
        assert!(approx.scores.iter().all(|&s| s >= 0.0));
        assert!(approx.scores.iter().any(|&s| s > 0.0));
        // Nodes in the same color share the same score.
        let p = &approx.partition;
        for c in 0..p.num_colors() as u32 {
            let members = p.members(c);
            for w in members.windows(2) {
                assert_eq!(approx.scores[w[0] as usize], approx.scores[w[1] as usize]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::barabasi_albert(150, 2, 9);
        let config = CentralityApproxConfig::with_max_colors(15);
        let a = approximate(&g, &config);
        let b = approximate(&g, &config);
        assert_eq!(a.scores, b.scores);
    }
}
