//! # qsc-core
//!
//! Quasi-stable coloring for graph compression — the primary contribution of
//! Kayali & Suciu, *"Quasi-stable Coloring for Graph Compression:
//! Approximating Max-Flow, Linear Programs, and Centrality"* (VLDB 2022).
//!
//! A *coloring* of a graph is a partition of its nodes. A coloring is
//! *stable* (the classical 1-WL / color-refinement fixpoint) when any two
//! nodes of the same color have identical weights towards every color. The
//! paper relaxes this: a coloring is *q-stable* when those weights may differ
//! by at most `q`. Relaxation lets real graphs compress by orders of
//! magnitude while the reduced graph still approximates linear programs,
//! max-flow and betweenness centrality.
//!
//! The crate provides:
//!
//! * [`Partition`] — colorings with split/meet/refinement operations
//!   (splits emit [`SplitEvent`]s for incremental consumers).
//! * [`IncrementalDegrees`] — the incremental refinement engine: degree
//!   matrices and witness candidates maintained in `O(touched)` per split
//!   instead of recomputed from the graph; both Rothko and the stable
//!   coloring drive their refinement through it. Multi-threaded engines
//!   shard the update phases across a fork-join pool with bit-identical
//!   results (see [`q_error`]'s "Parallel sharded refinement"). The same
//!   engine absorbs *graph* deltas: `apply_edge_batch` patches its state
//!   for batched edge insert/delete/reweight events without touching the
//!   graph, and [`RothkoRun::apply_edge_batch`] + `maintain` keep a
//!   running (q, k) coloring valid under churn instead of recomputing.
//! * [`kernels`] — the lane-kernel substrate under the engine's hot
//!   paths: blocked f64 folds, min/max scans with first-attainer
//!   witnesses, grouped gathers, and blocked sums over the canonical
//!   reduction tree (shared with `qsc_linalg::lanes`, so the LP solvers
//!   reduce through the same code). See the module's determinism notes
//!   and [`q_error`]'s "Lane-kernel hot paths" for measured numbers.
//! * [`parallel`] — the minimal persistent fork-join pool behind the
//!   sharded engine (`QSC_THREADS` sets the default worker count).
//! * [`similarity`] — the `∼` relations of Definition 1 (exact, absolute `q`,
//!   relative `ε`, bisimulation, clamped congruence).
//! * [`stable::stable_coloring`] — classical color refinement (1-WL).
//! * [`rothko`] — the paper's heuristic Algorithm 1 (anytime, witness-driven
//!   splitting), producing q-stable colorings with a target number of colors
//!   or target maximum error; supports batched witness rounds (`B` splits
//!   per synchronization point) on top of the strict greedy order.
//! * [`q_error`] — exact evaluation of how (quasi-)stable a coloring is.
//! * [`reduced`] — reduced-graph construction with the weightings used by
//!   the three applications, plus [`ReducedDelta`]: the quotient matrix
//!   maintained across splits and edge batches in `O(touched)` instead of
//!   rebuilt per use, and [`reduced::PatchedReducedGraph`]: the emitted
//!   reduced instance patched in place from the delta's dirty colors.
//! * [`sweep`] — warm-started budget sweeps: one monotone refinement
//!   checkpointed at every color budget, with split events handed to
//!   incremental consumers in lockstep (the coloring layer of the sweep
//!   pipeline; `qsc-flow` and `qsc-lp` add the solver layers).
//! * [`stats`] — compression statistics (Table 4 / Sec. 6.2).
//!
//! ## Architecture: the layered event pipeline
//!
//! Every maintained structure in the workspace sits on one event pipeline.
//! Graph mutations and partition changes are expressed as *events*, and
//! each layer patches its own state from them in `O(touched)` instead of
//! rebuilding — from the CSR overlay at the bottom to the warm solvers at
//! the top:
//!
//! ```text
//!   qsc_graph::GraphDelta                      (mutable overlay over the CSR)
//!     │  EdgeEvent batches        insert/delete/reweight, signed weight deltas
//!     │  NodeEvent + NodeRemap    node insert/remove, renumbering compaction
//!     ▼
//!   IncrementalDegrees                         (accumulators + pair summaries
//!     │                                         + witness/merge selection)
//!     │  PartitionEvent           Split · Merge · NodeInsert · NodeRemove
//!     │                           (emitted by RothkoRun / Partition ops)
//!     ▼
//!   ReducedDelta / qsc_lp::ReducedLpDelta      (quotient matrix, LP aggregates)
//!     │  dirty colors             every changed entry is indexed by one;
//!     │                           ids ≥ k mark colors removed by merges
//!     ▼
//!   PatchedReducedGraph / PatchedReducedLp     (the *emitted* reduced instance,
//!     │                                         patched rows in place)
//!     ▼
//!   qsc_flow::WarmFlowSolver / qsc_lp::solve_warm   (preflow / basis reuse)
//! ```
//!
//! The event vocabulary is **bidirectional**: [`SplitEvent`] refines,
//! [`MergeEvent`] coarsens (the dual — the loser's members join the
//! winner, the ex-last color relabels into the freed slot so color ids
//! stay dense), and node insert/remove events grow and compact the node
//! axis (removals are always preceded by deletes of the node's incident
//! edges, so only isolated nodes are ever removed; renumbering travels as
//! a `NodeRemap` alongside the events). [`RothkoRun::maintain`] drives
//! the algebra from both sides: splits where churn pushed the error above
//! the target, merges (with [`RothkoConfig::coarsen`]) where it dropped
//! the error enough that the merged pair's provable post-merge bound fits
//! back inside the target.
//!
//! **Storage tiers.** The engine at the pipeline's center keeps its
//! per-node accumulator rows in one of two layouts, chosen by
//! [`RothkoConfig::storage`] ([`StorageMode`]) at construction: dense
//! `n × cap` matrices (8 bytes per slot, one strided load per member
//! probe) or tiered sparse rows ([`storage::RowRep`] — sorted nonzero
//! `(color, weight)` vectors at 16 bytes per nonzero, hot rows promoted
//! to plain slot arrays). Both run the same fold contract through
//! [`kernels`]' sparse gather variants, so modes are bit-identical under
//! the full event algebra; only footprint and wall time differ. Measured
//! on the `bench_memory` BA ladder (m = 10, k = 200): an average row
//! holds ~20 nonzeros, ≈ 330 bytes per node sparse against 2 KiB dense —
//! 4.2× less engine memory at 10k nodes, 7.4× at 100k, 11× at the
//! 1M-node / 10⁷-edge headline where the dense 1.93 GiB accumulator is
//! the memory wall this tier removes. Dense stays ahead on wall time
//! while the matrix is cache-resident (~1.6× faster at 10k); sparse wins
//! both memory *and* time from ~100k up (0.4× dense wall). The default
//! `Auto` picks per engine along exactly that crossover (projected dense
//! footprint vs density), so existing small-scale callers keep dense
//! behavior bit for bit.
//!
//! **Persistence layer.** Everything the pipeline maintains is also
//! *checkpointable*: [`IncrementalDegrees::snapshot`],
//! [`RothkoRun::snapshot`], [`ReducedDelta::snapshot`] (and
//! `qsc_lp::sweep::ReducedLpDelta::snapshot`) capture each layer's exact
//! logical state — accumulators, pair summaries with their witnesses,
//! partition member order, pending dirty sets — as plain columnar
//! structs, and the matching `from_snapshot` constructors rebuild the
//! layer bit-identically (derived caches restart dirty and are
//! recomputed; strides and thread pools are reconstructed, neither is
//! observable). The `qsc-persist` crate turns those snapshots into an
//! on-disk format: a columnar checkpoint (delta+varint encoded,
//! CRC-guarded blocks) plus a write-ahead log of the *input* event
//! batches ([`qsc_graph::delta::EdgeEvent`] / node churn / maintain
//! calls) appended as they are applied. A warm restart loads the
//! checkpoint columns straight back into `Graph` / [`Partition`] /
//! [`IncrementalDegrees`] / [`ReducedDelta`] state and replays the WAL
//! tail through the same public API the writer used — the determinism
//! contract below is what makes the replayed state bit-identical to the
//! writer's, so restart skips the full build at the cost of reading a
//! file.
//!
//! **Borrowed columns.** The restore path does not even have to *read*
//! the file eagerly: every `Graph` column and the engine's persisted
//! accumulator planes are [`qsc_graph::ColumnBuf`]s — owned `Vec`s for
//! built graphs, or shared views into a checkpoint mapped by this
//! crate's [`mmap`] module (`MappedFile` wraps the raw
//! `mmap`/`munmap`/`madvise` syscalls behind a safe API; `MappedSlice`
//! implements [`qsc_graph::SharedColumn`], carrying the map's lifetime
//! in an `Arc`). `qsc-persist`'s raw-layout checkpoints pin aligned
//! uncompressed encodings for exactly these columns, so a warm restart
//! borrows the CSR and `dout`/`din` planes in place and the OS page
//! cache — not the heap — bounds the working set: graphs whose CSR
//! exceeds RAM still open in O(1). Owned and mapped stacks run the same
//! code paths (`Deref<Target = [T]>`) and are bit-identical at every
//! thread count; the engine hints paging (`advise`) ahead of whole-axis
//! sweeps and touched-list scans, and the first mutation after a mapped
//! restart compacts to owned columns at the `GraphStore` swap boundary
//! (copy-on-write), leaving the mutation path untouched.
//!
//! **Determinism contract.** Every event consumer must uphold what the
//! engine guarantees: applying an event sequence leaves state *bit
//! identical* (for exactly representable weights; up to float
//! associativity otherwise) to a fresh rebuild on the resulting
//! graph/partition, for every thread count. Concretely: shard merges use
//! exact min/max/or/sum reductions in shard order; witness and merge-pair
//! selection break ties lexicographically; member and touched orderings
//! are pure functions of the input (never of the thread count); and
//! color/node renumbering is the fixed relabel-last/order-preserving rule
//! above. Floating-point *sums* follow one canonical blocked reduction
//! tree (`qsc_linalg::lanes::sum` — fixed lane count, fixed combine
//! order, independent of thread count and hardware), so "up to float
//! associativity" never means "up to whatever the optimizer felt like":
//! the only reassociating variants are the explicit `*_fast` kernels
//! behind the opt-in `RothkoConfig::fast_math`. This is what lets maintained runs be cross-checked against
//! fresh-from-checkpoint runs at every churn round
//! (`tests/tests/dynamic_graph.rs`, `tests/tests/merge_refine.rs`) and
//! lets warm sweeps stay bit-identical to cold re-emission
//! (`tests/tests/sweep_equivalence.rs`).
//!
//! ## Checked invariants
//!
//! The determinism and unsafety contracts above are *mechanically
//! enforced*, not aspirational:
//!
//! * **Statically** — the workspace's own lint pass (`cargo run -p
//!   qsc-audit`) scans every crate for contract violations: `unsafe`
//!   without an adjacent `// SAFETY:` argument, iteration over hash
//!   containers in result-feeding crates (ordering leaks), raw f64 sums
//!   outside `qsc_linalg::lanes` (reduction-tree leaks), wall-clock reads
//!   outside bench/report code, and panicking input handling in
//!   IO/parser modules. CI runs it with `--deny-warnings`; exceptions
//!   require an inline `// qsc-audit: allow(<rule>) -- <justification>`
//!   with a written justification.
//! * **Dynamically** — with the `audit` feature enabled, every
//!   [`parallel::SyncSliceMut`] claim is published to a lock-free
//!   interval log and cross-thread overlapping claims abort the process
//!   with both call sites. The ordinary parallel test suites, run with
//!   `--features audit`, thereby double as soundness tests for the
//!   "shards write provably disjoint index sets" arguments.
//! * This crate and `qsc-linalg` set `#![deny(unsafe_op_in_unsafe_fn)]`;
//!   every other workspace crate is `#![forbid(unsafe_code)]`. The only
//!   unsafe in the tree is this crate's fork-join pool and
//!   [`parallel::SyncSliceMut`].
//!
//! ## Quick example
//!
//! ```
//! use qsc_graph::generators::karate_club;
//! use qsc_core::rothko::{Rothko, RothkoConfig};
//!
//! let g = karate_club();
//! // Color the karate club with at most 6 colors (Fig. 1b of the paper).
//! let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
//! assert_eq!(coloring.partition.num_colors(), 6);
//! // The resulting coloring has a small maximum q-error.
//! assert!(coloring.max_q_error <= 6.0);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

#[cfg(feature = "audit")]
mod audit;
pub mod kernels;
pub mod mmap;
pub mod parallel;
pub mod partition;
pub mod q_error;
pub mod reduced;
pub mod rothko;
pub mod similarity;
pub mod stable;
pub mod stats;
pub mod storage;
pub mod sweep;

pub use partition::{MergeEvent, Partition, PartitionEvent, SplitEvent};
pub use q_error::{
    max_q_error, mean_q_error, EngineSnapshot, IncrementalDegrees, MergeCandidate, QErrorReport,
    RowsSnapshot, WitnessCandidate,
};
pub use reduced::{
    reduced_graph, PatchedReducedGraph, ReducedDelta, ReducedSnapshot, ReductionWeighting,
};
pub use rothko::{Coloring, NodeChurnBatch, Rothko, RothkoConfig, RothkoRun, RunSnapshot};
pub use similarity::{Absolute, Bisimulation, Clamped, Exact, Relative, Similarity};
pub use stable::stable_coloring;
pub use stats::{coloring_stats, ColoringStats};
pub use storage::StorageMode;
pub use sweep::{ColoringSweep, SweepCheckpoint};
