//! # qsc-core
//!
//! Quasi-stable coloring for graph compression — the primary contribution of
//! Kayali & Suciu, *"Quasi-stable Coloring for Graph Compression:
//! Approximating Max-Flow, Linear Programs, and Centrality"* (VLDB 2022).
//!
//! A *coloring* of a graph is a partition of its nodes. A coloring is
//! *stable* (the classical 1-WL / color-refinement fixpoint) when any two
//! nodes of the same color have identical weights towards every color. The
//! paper relaxes this: a coloring is *q-stable* when those weights may differ
//! by at most `q`. Relaxation lets real graphs compress by orders of
//! magnitude while the reduced graph still approximates linear programs,
//! max-flow and betweenness centrality.
//!
//! The crate provides:
//!
//! * [`Partition`] — colorings with split/meet/refinement operations
//!   (splits emit [`SplitEvent`]s for incremental consumers).
//! * [`IncrementalDegrees`] — the incremental refinement engine: degree
//!   matrices and witness candidates maintained in `O(touched)` per split
//!   instead of recomputed from the graph; both Rothko and the stable
//!   coloring drive their refinement through it. Multi-threaded engines
//!   shard the update phases across a fork-join pool with bit-identical
//!   results (see [`q_error`]'s "Parallel sharded refinement"). The same
//!   engine absorbs *graph* deltas: `apply_edge_batch` patches its state
//!   for batched edge insert/delete/reweight events without touching the
//!   graph, and [`RothkoRun::apply_edge_batch`] + `maintain` keep a
//!   running (q, k) coloring valid under churn instead of recomputing.
//! * [`parallel`] — the minimal persistent fork-join pool behind the
//!   sharded engine (`QSC_THREADS` sets the default worker count).
//! * [`similarity`] — the `∼` relations of Definition 1 (exact, absolute `q`,
//!   relative `ε`, bisimulation, clamped congruence).
//! * [`stable::stable_coloring`] — classical color refinement (1-WL).
//! * [`rothko`] — the paper's heuristic Algorithm 1 (anytime, witness-driven
//!   splitting), producing q-stable colorings with a target number of colors
//!   or target maximum error; supports batched witness rounds (`B` splits
//!   per synchronization point) on top of the strict greedy order.
//! * [`q_error`] — exact evaluation of how (quasi-)stable a coloring is.
//! * [`reduced`] — reduced-graph construction with the weightings used by
//!   the three applications, plus [`ReducedDelta`]: the quotient matrix
//!   maintained across splits and edge batches in `O(touched)` instead of
//!   rebuilt per use, and [`reduced::PatchedReducedGraph`]: the emitted
//!   reduced instance patched in place from the delta's dirty colors.
//! * [`sweep`] — warm-started budget sweeps: one monotone refinement
//!   checkpointed at every color budget, with split events handed to
//!   incremental consumers in lockstep (the coloring layer of the sweep
//!   pipeline; `qsc-flow` and `qsc-lp` add the solver layers).
//! * [`stats`] — compression statistics (Table 4 / Sec. 6.2).
//!
//! ## Quick example
//!
//! ```
//! use qsc_graph::generators::karate_club;
//! use qsc_core::rothko::{Rothko, RothkoConfig};
//!
//! let g = karate_club();
//! // Color the karate club with at most 6 colors (Fig. 1b of the paper).
//! let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
//! assert_eq!(coloring.partition.num_colors(), 6);
//! // The resulting coloring has a small maximum q-error.
//! assert!(coloring.max_q_error <= 6.0);
//! ```

pub mod parallel;
pub mod partition;
pub mod q_error;
pub mod reduced;
pub mod rothko;
pub mod similarity;
pub mod stable;
pub mod stats;
pub mod sweep;

pub use partition::{Partition, SplitEvent};
pub use q_error::{max_q_error, mean_q_error, IncrementalDegrees, QErrorReport, WitnessCandidate};
pub use reduced::{reduced_graph, PatchedReducedGraph, ReducedDelta, ReductionWeighting};
pub use rothko::{Coloring, Rothko, RothkoConfig, RothkoRun};
pub use similarity::{Absolute, Bisimulation, Clamped, Exact, Relative, Similarity};
pub use stable::stable_coloring;
pub use stats::{coloring_stats, ColoringStats};
pub use sweep::{ColoringSweep, SweepCheckpoint};
