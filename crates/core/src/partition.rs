//! Colorings (node partitions), their lattice operations, and the
//! bidirectional **partition event algebra**.
//!
//! Refinement emits [`SplitEvent`]s; coarsening emits [`MergeEvent`]s (the
//! exact dual: the loser's members join the winner, and the last color is
//! renumbered into the freed slot so ids stay dense); node churn emits
//! per-node insert/remove records. [`PartitionEvent`] packages all of them
//! for consumers that mirror a maintained partition
//! ([`crate::q_error::IncrementalDegrees`], [`crate::reduced::ReducedDelta`],
//! the patched reduced emitters) — each event carries exactly the
//! information needed to patch per-color state in `O(touched)` instead of
//! rebuilding it.

use qsc_graph::delta::NodeRemap;
use qsc_graph::NodeId;

/// Identifier of a color (a class of the partition).
pub type ColorId = u32;

/// The record of one split: color `parent` lost `moved_nodes`, which now form
/// the fresh color `child` (always appended at the end of the partition, so
/// `child == k - 1` after the split).
///
/// Split events are the currency of the incremental refinement engine
/// ([`crate::q_error::IncrementalDegrees`]): consumers that maintain
/// per-color state apply the event instead of rescanning the whole graph,
/// touching only work proportional to `moved_nodes` and their incident edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitEvent {
    /// The color that was split (it keeps the non-ejected members).
    pub parent: ColorId,
    /// The newly created color holding the ejected members.
    pub child: ColorId,
    /// The nodes that moved from `parent` to `child`.
    pub moved_nodes: Vec<NodeId>,
}

/// The record of one merge — the dual of [`SplitEvent`]: color `loser`'s
/// members (`moved_nodes`) joined color `winner` (appended after the
/// winner's retained members, so member order stays deterministic), and the
/// then-last color was renumbered into the freed `loser` slot to keep color
/// ids dense (`relabeled` names it; `None` when the loser *was* the last
/// color). `winner < loser` always holds, so the winner is never the
/// relabeled color.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MergeEvent {
    /// The surviving color (absorbs the loser's members, keeps its id).
    pub winner: ColorId,
    /// The removed color's old id — after the merge this slot holds the
    /// relabeled ex-last color (or nothing, if the loser was last).
    pub loser: ColorId,
    /// The loser's former members, in their member order.
    pub moved_nodes: Vec<NodeId>,
    /// The old id (`k - 1` before the merge) of the color renumbered into
    /// the `loser` slot, or `None` when `loser == k - 1`.
    pub relabeled: Option<ColorId>,
}

/// One event of the bidirectional partition algebra: the full vocabulary a
/// maintained coloring can change by. Split/merge change the color
/// structure over a fixed node set; the node events change the node set
/// over a fixed color structure (node *renumbering* after removals is a
/// representation change communicated separately, via
/// [`qsc_graph::delta::NodeRemap`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PartitionEvent {
    /// A refinement step: see [`SplitEvent`].
    Split(SplitEvent),
    /// A coarsening step: see [`MergeEvent`].
    Merge(MergeEvent),
    /// A fresh isolated node joined color `color`.
    NodeInsert {
        /// The inserted node's id (always the next free id).
        node: NodeId,
        /// The color the node was assigned to.
        color: ColorId,
    },
    /// An isolated node left the partition (its incident edges were already
    /// deleted by the preceding edge events).
    NodeRemove {
        /// The removed node's (pre-renumbering) id.
        node: NodeId,
        /// The color the node belonged to.
        color: ColorId,
    },
}

/// A coloring `P = {P_1, ..., P_k}` of nodes `0..n`.
///
/// Stored redundantly as both a `node -> color` map and `color -> members`
/// buckets so that splitting a color and iterating a color's members are both
/// cheap.
#[derive(Clone, Debug)]
pub struct Partition {
    color_of: Vec<ColorId>,
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// The coarsest partition: all `n` nodes in a single color (no colors at
    /// all when `n == 0`).
    pub fn unit(n: usize) -> Self {
        if n == 0 {
            return Partition {
                color_of: Vec::new(),
                members: Vec::new(),
            };
        }
        Partition {
            color_of: vec![0; n],
            members: vec![(0..n as NodeId).collect()],
        }
    }

    /// The finest partition `P_⊥`: every node in its own color.
    pub fn discrete(n: usize) -> Self {
        Partition {
            color_of: (0..n as ColorId).collect(),
            members: (0..n as NodeId).map(|v| vec![v]).collect(),
        }
    }

    /// Build from a `node -> color` assignment; colors are compacted to
    /// `0..k` preserving the order of first appearance.
    pub fn from_assignment(assignment: &[u32]) -> Self {
        let n = assignment.len();
        let mut remap: std::collections::HashMap<u32, ColorId> = std::collections::HashMap::new();
        let mut color_of = vec![0 as ColorId; n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for (v, &raw) in assignment.iter().enumerate() {
            let next_id = members.len() as ColorId;
            let c = *remap.entry(raw).or_insert(next_id);
            if c as usize == members.len() {
                members.push(Vec::new());
            }
            color_of[v] = c;
            members[c as usize].push(v as NodeId);
        }
        Partition { color_of, members }
    }

    /// Build from explicit color classes. Panics if the classes are not a
    /// partition of `0..n`.
    pub fn from_classes(n: usize, classes: Vec<Vec<NodeId>>) -> Self {
        let mut color_of = vec![u32::MAX; n];
        for (c, class) in classes.iter().enumerate() {
            for &v in class {
                assert!(
                    color_of[v as usize] == u32::MAX,
                    "node {v} appears in more than one class"
                );
                color_of[v as usize] = c as ColorId;
            }
        }
        assert!(
            color_of.iter().all(|&c| c != u32::MAX),
            "classes do not cover all nodes"
        );
        Partition {
            color_of,
            members: classes,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.color_of.len()
    }

    /// Number of colors `k`.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.members.len()
    }

    /// The color of node `v`.
    #[inline]
    pub fn color_of(&self, v: NodeId) -> ColorId {
        self.color_of[v as usize]
    }

    /// The full `node -> color` assignment.
    #[inline]
    pub fn assignment(&self) -> &[ColorId] {
        &self.color_of
    }

    /// Members of color `c`.
    #[inline]
    pub fn members(&self, c: ColorId) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Size of color `c`.
    #[inline]
    pub fn size(&self, c: ColorId) -> usize {
        self.members[c as usize].len()
    }

    /// Sizes of all colors.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.len()).collect()
    }

    /// Iterate `(color, members)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (ColorId, &[NodeId])> {
        self.members
            .iter()
            .enumerate()
            .map(|(c, m)| (c as ColorId, m.as_slice()))
    }

    /// Split color `c`: members for which `eject(v)` is true move to a new
    /// color (appended at the end). Returns the [`SplitEvent`] describing the
    /// split, or `None` if the split would leave either side empty (in which
    /// case nothing changes).
    pub fn split_color<F: FnMut(NodeId) -> bool>(
        &mut self,
        c: ColorId,
        mut eject: F,
    ) -> Option<SplitEvent> {
        let old = std::mem::take(&mut self.members[c as usize]);
        let (ejected, retained): (Vec<NodeId>, Vec<NodeId>) =
            old.into_iter().partition(|&v| eject(v));
        if ejected.is_empty() || retained.is_empty() {
            // Undo: put everything back.
            let mut all = retained;
            all.extend(ejected);
            all.sort_unstable();
            self.members[c as usize] = all;
            return None;
        }
        let new_color = self.members.len() as ColorId;
        for &v in &ejected {
            self.color_of[v as usize] = new_color;
        }
        self.members[c as usize] = retained;
        let event = SplitEvent {
            parent: c,
            child: new_color,
            moved_nodes: ejected.clone(),
        };
        self.members.push(ejected);
        Some(event)
    }

    /// Merge color `loser` into color `winner` (`winner < loser` required):
    /// the loser's members are appended to the winner's member list in
    /// their member order, and the last color is renumbered into the freed
    /// `loser` slot so color ids stay dense. Returns the [`MergeEvent`]
    /// describing the merge — the exact dual of [`Self::split_color`].
    pub fn merge_colors(&mut self, winner: ColorId, loser: ColorId) -> MergeEvent {
        assert!(
            winner < loser,
            "merge_colors requires winner < loser (got {winner} >= {loser})"
        );
        assert!((loser as usize) < self.members.len(), "loser out of range");
        let moved = std::mem::take(&mut self.members[loser as usize]);
        for &v in &moved {
            self.color_of[v as usize] = winner;
        }
        self.members[winner as usize].extend_from_slice(&moved);
        let last = (self.members.len() - 1) as ColorId;
        let relabeled = if loser != last {
            let moved_class = self.members.pop().expect("non-empty partition");
            for &v in &moved_class {
                self.color_of[v as usize] = loser;
            }
            self.members[loser as usize] = moved_class;
            Some(last)
        } else {
            self.members.pop();
            None
        };
        MergeEvent {
            winner,
            loser,
            moved_nodes: moved,
            relabeled,
        }
    }

    /// Append a fresh node (id `num_nodes()`) to color `color` and return
    /// its id. The dual of a removal; the node joins at the end of the
    /// color's member list, keeping member order deterministic.
    pub fn insert_node(&mut self, color: ColorId) -> NodeId {
        assert!((color as usize) < self.members.len(), "color out of range");
        let v = self.color_of.len() as NodeId;
        self.color_of.push(color);
        self.members[color as usize].push(v);
        v
    }

    /// Drop the removed nodes and renumber the survivors through `remap`
    /// (the mapping [`qsc_graph::delta::GraphDelta::compact_renumber`]
    /// produced), preserving member order. Panics if a removal would empty
    /// a color — callers must merge colors away (or pick removal victims
    /// from colors with at least two members) before compacting.
    pub fn apply_node_remap(&mut self, remap: &NodeRemap) {
        assert_eq!(remap.old_len(), self.color_of.len(), "remap size mismatch");
        let mut color_of = Vec::with_capacity(remap.new_len());
        for (v, &c) in self.color_of.iter().enumerate() {
            if !remap.is_removed(v as NodeId) {
                color_of.push(c);
            }
        }
        for (c, class) in self.members.iter_mut().enumerate() {
            class.retain(|&v| !remap.is_removed(v));
            for v in class.iter_mut() {
                *v = remap.map(*v).expect("retained member is live");
            }
            assert!(
                !class.is_empty(),
                "node removal emptied color {c}; merge it away first"
            );
        }
        self.color_of = color_of;
    }

    /// Greatest lower bound (common refinement) `P ∧ Q`: the partition whose
    /// classes are the non-empty intersections `P_i ∩ Q_j`.
    pub fn meet(&self, other: &Partition) -> Partition {
        assert_eq!(self.num_nodes(), other.num_nodes());
        let n = self.num_nodes();
        let mut key_to_color: std::collections::HashMap<(ColorId, ColorId), ColorId> =
            std::collections::HashMap::new();
        let mut assignment = vec![0 as ColorId; n];
        for (v, slot) in assignment.iter_mut().enumerate() {
            let key = (self.color_of[v], other.color_of[v]);
            let next = key_to_color.len() as ColorId;
            *slot = *key_to_color.entry(key).or_insert(next);
        }
        Partition::from_assignment(&assignment)
    }

    /// Whether `self` is a refinement of `other` (`self ⊆ other`): every
    /// class of `self` is contained in some class of `other`.
    pub fn is_refinement_of(&self, other: &Partition) -> bool {
        if self.num_nodes() != other.num_nodes() {
            return false;
        }
        for class in &self.members {
            if class.is_empty() {
                continue;
            }
            let target = other.color_of(class[0]);
            if !class.iter().all(|&v| other.color_of(v) == target) {
                return false;
            }
        }
        true
    }

    /// Whether two partitions define the same equivalence classes (ignoring
    /// color numbering).
    pub fn same_as(&self, other: &Partition) -> bool {
        self.is_refinement_of(other) && other.is_refinement_of(self)
    }

    /// A canonical `node -> color` assignment where colors are numbered by
    /// the smallest node they contain; useful for hashing/comparison.
    pub fn canonical_assignment(&self) -> Vec<ColorId> {
        let mut first_seen: std::collections::HashMap<ColorId, ColorId> =
            std::collections::HashMap::new();
        let mut out = vec![0 as ColorId; self.num_nodes()];
        for (v, slot) in out.iter_mut().enumerate() {
            let c = self.color_of[v];
            let next = first_seen.len() as ColorId;
            *slot = *first_seen.entry(c).or_insert(next);
        }
        out
    }

    /// Number of singleton colors.
    pub fn singleton_count(&self) -> usize {
        self.members.iter().filter(|m| m.len() == 1).count()
    }

    /// Validate internal consistency (every node in exactly one class, class
    /// lists match `color_of`). Intended for tests and debug assertions.
    pub fn validate(&self) -> bool {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        for (c, class) in self.members.iter().enumerate() {
            for &v in class {
                if v as usize >= n || seen[v as usize] || self.color_of[v as usize] != c as ColorId
                {
                    return false;
                }
                seen[v as usize] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_discrete() {
        let u = Partition::unit(5);
        assert_eq!(u.num_colors(), 1);
        assert_eq!(u.size(0), 5);
        assert!(u.validate());

        let d = Partition::discrete(5);
        assert_eq!(d.num_colors(), 5);
        assert_eq!(d.singleton_count(), 5);
        assert!(d.validate());
        assert!(d.is_refinement_of(&u));
        assert!(!u.is_refinement_of(&d));
    }

    #[test]
    fn from_assignment_compacts() {
        let p = Partition::from_assignment(&[7, 7, 3, 7, 3]);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.members(0), &[0, 1, 3]);
        assert_eq!(p.members(1), &[2, 4]);
        assert!(p.validate());
    }

    #[test]
    fn from_classes_checks_partition() {
        let p = Partition::from_classes(4, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(p.color_of(2), 0);
        assert_eq!(p.color_of(3), 1);
    }

    #[test]
    #[should_panic]
    fn from_classes_rejects_overlap() {
        Partition::from_classes(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic]
    fn from_classes_rejects_missing() {
        Partition::from_classes(3, vec![vec![0, 1]]);
    }

    #[test]
    fn split_color_moves_members() {
        let mut p = Partition::unit(6);
        let event = p.split_color(0, |v| v >= 3).unwrap();
        assert_eq!(event.parent, 0);
        assert_eq!(event.child, 1);
        assert_eq!(event.moved_nodes, vec![3, 4, 5]);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.members(0), &[0, 1, 2]);
        assert_eq!(p.members(1), &[3, 4, 5]);
        assert!(p.validate());
    }

    #[test]
    fn split_color_rejects_trivial() {
        let mut p = Partition::unit(4);
        assert!(p.split_color(0, |_| true).is_none());
        assert!(p.split_color(0, |_| false).is_none());
        assert_eq!(p.num_colors(), 1);
        assert!(p.validate());
    }

    #[test]
    fn merge_colors_relabels_last() {
        let mut p = Partition::from_classes(6, vec![vec![0, 1], vec![2, 3], vec![4], vec![5]]);
        let ev = p.merge_colors(0, 1);
        assert_eq!(ev.winner, 0);
        assert_eq!(ev.loser, 1);
        assert_eq!(ev.moved_nodes, vec![2, 3]);
        assert_eq!(ev.relabeled, Some(3));
        assert_eq!(p.num_colors(), 3);
        assert_eq!(p.members(0), &[0, 1, 2, 3]);
        assert_eq!(p.members(1), &[5], "ex-last color relabeled into slot 1");
        assert_eq!(p.members(2), &[4]);
        assert!(p.validate());
        // Merging with the last color needs no relabel.
        let ev = p.merge_colors(1, 2);
        assert_eq!(ev.relabeled, None);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.members(1), &[5, 4]);
        assert!(p.validate());
    }

    #[test]
    fn merge_undoes_split() {
        let mut p = Partition::unit(6);
        p.split_color(0, |v| v >= 3).unwrap();
        let ev = p.merge_colors(0, 1);
        assert_eq!(ev.moved_nodes, vec![3, 4, 5]);
        assert_eq!(p.num_colors(), 1);
        assert!(p.same_as(&Partition::unit(6)));
    }

    #[test]
    fn insert_and_remove_nodes() {
        use qsc_graph::GraphBuilder;
        let mut p = Partition::from_classes(4, vec![vec![0, 1], vec![2, 3]]);
        let v = p.insert_node(1);
        assert_eq!(v, 4);
        assert_eq!(p.members(1), &[2, 3, 4]);
        assert!(p.validate());
        // Remove node 1 via a delta remap (nodes shift down).
        let mut d = qsc_graph::GraphDelta::new(GraphBuilder::new_undirected(5).build());
        d.remove_node(1).unwrap();
        let (_, remap) = d.compact_renumber();
        p.apply_node_remap(&remap);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.members(0), &[0]);
        assert_eq!(p.members(1), &[1, 2, 3]);
        assert!(p.validate());
    }

    #[test]
    #[should_panic]
    fn remap_rejects_emptied_color() {
        use qsc_graph::GraphBuilder;
        let mut p = Partition::from_classes(3, vec![vec![0], vec![1, 2]]);
        let mut d = qsc_graph::GraphDelta::new(GraphBuilder::new_undirected(3).build());
        d.remove_node(0).unwrap();
        let (_, remap) = d.compact_renumber();
        p.apply_node_remap(&remap);
    }

    #[test]
    fn meet_is_common_refinement() {
        let p = Partition::from_assignment(&[0, 0, 1, 1]);
        let q = Partition::from_assignment(&[0, 1, 0, 1]);
        let m = p.meet(&q);
        assert_eq!(m.num_colors(), 4);
        assert!(m.is_refinement_of(&p));
        assert!(m.is_refinement_of(&q));
    }

    #[test]
    fn same_as_ignores_numbering() {
        let p = Partition::from_assignment(&[0, 0, 1, 2]);
        let q = Partition::from_assignment(&[5, 5, 9, 1]);
        assert!(p.same_as(&q));
        assert_eq!(p.canonical_assignment(), q.canonical_assignment());
    }

    #[test]
    fn refinement_detects_non_refinement() {
        let p = Partition::from_assignment(&[0, 0, 1, 1]);
        let q = Partition::from_assignment(&[0, 1, 1, 1]);
        assert!(!p.is_refinement_of(&q));
        assert!(!q.is_refinement_of(&p));
    }
}
