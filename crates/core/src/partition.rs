//! Colorings (node partitions) and their lattice operations.

use qsc_graph::NodeId;

/// Identifier of a color (a class of the partition).
pub type ColorId = u32;

/// The record of one split: color `parent` lost `moved_nodes`, which now form
/// the fresh color `child` (always appended at the end of the partition, so
/// `child == k - 1` after the split).
///
/// Split events are the currency of the incremental refinement engine
/// ([`crate::q_error::IncrementalDegrees`]): consumers that maintain
/// per-color state apply the event instead of rescanning the whole graph,
/// touching only work proportional to `moved_nodes` and their incident edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitEvent {
    /// The color that was split (it keeps the non-ejected members).
    pub parent: ColorId,
    /// The newly created color holding the ejected members.
    pub child: ColorId,
    /// The nodes that moved from `parent` to `child`.
    pub moved_nodes: Vec<NodeId>,
}

/// A coloring `P = {P_1, ..., P_k}` of nodes `0..n`.
///
/// Stored redundantly as both a `node -> color` map and `color -> members`
/// buckets so that splitting a color and iterating a color's members are both
/// cheap.
#[derive(Clone, Debug)]
pub struct Partition {
    color_of: Vec<ColorId>,
    members: Vec<Vec<NodeId>>,
}

impl Partition {
    /// The coarsest partition: all `n` nodes in a single color (no colors at
    /// all when `n == 0`).
    pub fn unit(n: usize) -> Self {
        if n == 0 {
            return Partition {
                color_of: Vec::new(),
                members: Vec::new(),
            };
        }
        Partition {
            color_of: vec![0; n],
            members: vec![(0..n as NodeId).collect()],
        }
    }

    /// The finest partition `P_⊥`: every node in its own color.
    pub fn discrete(n: usize) -> Self {
        Partition {
            color_of: (0..n as ColorId).collect(),
            members: (0..n as NodeId).map(|v| vec![v]).collect(),
        }
    }

    /// Build from a `node -> color` assignment; colors are compacted to
    /// `0..k` preserving the order of first appearance.
    pub fn from_assignment(assignment: &[u32]) -> Self {
        let n = assignment.len();
        let mut remap: std::collections::HashMap<u32, ColorId> = std::collections::HashMap::new();
        let mut color_of = vec![0 as ColorId; n];
        let mut members: Vec<Vec<NodeId>> = Vec::new();
        for (v, &raw) in assignment.iter().enumerate() {
            let next_id = members.len() as ColorId;
            let c = *remap.entry(raw).or_insert(next_id);
            if c as usize == members.len() {
                members.push(Vec::new());
            }
            color_of[v] = c;
            members[c as usize].push(v as NodeId);
        }
        Partition { color_of, members }
    }

    /// Build from explicit color classes. Panics if the classes are not a
    /// partition of `0..n`.
    pub fn from_classes(n: usize, classes: Vec<Vec<NodeId>>) -> Self {
        let mut color_of = vec![u32::MAX; n];
        for (c, class) in classes.iter().enumerate() {
            for &v in class {
                assert!(
                    color_of[v as usize] == u32::MAX,
                    "node {v} appears in more than one class"
                );
                color_of[v as usize] = c as ColorId;
            }
        }
        assert!(
            color_of.iter().all(|&c| c != u32::MAX),
            "classes do not cover all nodes"
        );
        Partition {
            color_of,
            members: classes,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.color_of.len()
    }

    /// Number of colors `k`.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.members.len()
    }

    /// The color of node `v`.
    #[inline]
    pub fn color_of(&self, v: NodeId) -> ColorId {
        self.color_of[v as usize]
    }

    /// The full `node -> color` assignment.
    #[inline]
    pub fn assignment(&self) -> &[ColorId] {
        &self.color_of
    }

    /// Members of color `c`.
    #[inline]
    pub fn members(&self, c: ColorId) -> &[NodeId] {
        &self.members[c as usize]
    }

    /// Size of color `c`.
    #[inline]
    pub fn size(&self, c: ColorId) -> usize {
        self.members[c as usize].len()
    }

    /// Sizes of all colors.
    pub fn sizes(&self) -> Vec<usize> {
        self.members.iter().map(|m| m.len()).collect()
    }

    /// Iterate `(color, members)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (ColorId, &[NodeId])> {
        self.members
            .iter()
            .enumerate()
            .map(|(c, m)| (c as ColorId, m.as_slice()))
    }

    /// Split color `c`: members for which `eject(v)` is true move to a new
    /// color (appended at the end). Returns the [`SplitEvent`] describing the
    /// split, or `None` if the split would leave either side empty (in which
    /// case nothing changes).
    pub fn split_color<F: FnMut(NodeId) -> bool>(
        &mut self,
        c: ColorId,
        mut eject: F,
    ) -> Option<SplitEvent> {
        let old = std::mem::take(&mut self.members[c as usize]);
        let (ejected, retained): (Vec<NodeId>, Vec<NodeId>) =
            old.into_iter().partition(|&v| eject(v));
        if ejected.is_empty() || retained.is_empty() {
            // Undo: put everything back.
            let mut all = retained;
            all.extend(ejected);
            all.sort_unstable();
            self.members[c as usize] = all;
            return None;
        }
        let new_color = self.members.len() as ColorId;
        for &v in &ejected {
            self.color_of[v as usize] = new_color;
        }
        self.members[c as usize] = retained;
        let event = SplitEvent {
            parent: c,
            child: new_color,
            moved_nodes: ejected.clone(),
        };
        self.members.push(ejected);
        Some(event)
    }

    /// Greatest lower bound (common refinement) `P ∧ Q`: the partition whose
    /// classes are the non-empty intersections `P_i ∩ Q_j`.
    pub fn meet(&self, other: &Partition) -> Partition {
        assert_eq!(self.num_nodes(), other.num_nodes());
        let n = self.num_nodes();
        let mut key_to_color: std::collections::HashMap<(ColorId, ColorId), ColorId> =
            std::collections::HashMap::new();
        let mut assignment = vec![0 as ColorId; n];
        for (v, slot) in assignment.iter_mut().enumerate() {
            let key = (self.color_of[v], other.color_of[v]);
            let next = key_to_color.len() as ColorId;
            *slot = *key_to_color.entry(key).or_insert(next);
        }
        Partition::from_assignment(&assignment)
    }

    /// Whether `self` is a refinement of `other` (`self ⊆ other`): every
    /// class of `self` is contained in some class of `other`.
    pub fn is_refinement_of(&self, other: &Partition) -> bool {
        if self.num_nodes() != other.num_nodes() {
            return false;
        }
        for class in &self.members {
            if class.is_empty() {
                continue;
            }
            let target = other.color_of(class[0]);
            if !class.iter().all(|&v| other.color_of(v) == target) {
                return false;
            }
        }
        true
    }

    /// Whether two partitions define the same equivalence classes (ignoring
    /// color numbering).
    pub fn same_as(&self, other: &Partition) -> bool {
        self.is_refinement_of(other) && other.is_refinement_of(self)
    }

    /// A canonical `node -> color` assignment where colors are numbered by
    /// the smallest node they contain; useful for hashing/comparison.
    pub fn canonical_assignment(&self) -> Vec<ColorId> {
        let mut first_seen: std::collections::HashMap<ColorId, ColorId> =
            std::collections::HashMap::new();
        let mut out = vec![0 as ColorId; self.num_nodes()];
        for (v, slot) in out.iter_mut().enumerate() {
            let c = self.color_of[v];
            let next = first_seen.len() as ColorId;
            *slot = *first_seen.entry(c).or_insert(next);
        }
        out
    }

    /// Number of singleton colors.
    pub fn singleton_count(&self) -> usize {
        self.members.iter().filter(|m| m.len() == 1).count()
    }

    /// Validate internal consistency (every node in exactly one class, class
    /// lists match `color_of`). Intended for tests and debug assertions.
    pub fn validate(&self) -> bool {
        let n = self.num_nodes();
        let mut seen = vec![false; n];
        for (c, class) in self.members.iter().enumerate() {
            for &v in class {
                if v as usize >= n || seen[v as usize] || self.color_of[v as usize] != c as ColorId
                {
                    return false;
                }
                seen[v as usize] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_and_discrete() {
        let u = Partition::unit(5);
        assert_eq!(u.num_colors(), 1);
        assert_eq!(u.size(0), 5);
        assert!(u.validate());

        let d = Partition::discrete(5);
        assert_eq!(d.num_colors(), 5);
        assert_eq!(d.singleton_count(), 5);
        assert!(d.validate());
        assert!(d.is_refinement_of(&u));
        assert!(!u.is_refinement_of(&d));
    }

    #[test]
    fn from_assignment_compacts() {
        let p = Partition::from_assignment(&[7, 7, 3, 7, 3]);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.members(0), &[0, 1, 3]);
        assert_eq!(p.members(1), &[2, 4]);
        assert!(p.validate());
    }

    #[test]
    fn from_classes_checks_partition() {
        let p = Partition::from_classes(4, vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(p.color_of(2), 0);
        assert_eq!(p.color_of(3), 1);
    }

    #[test]
    #[should_panic]
    fn from_classes_rejects_overlap() {
        Partition::from_classes(3, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic]
    fn from_classes_rejects_missing() {
        Partition::from_classes(3, vec![vec![0, 1]]);
    }

    #[test]
    fn split_color_moves_members() {
        let mut p = Partition::unit(6);
        let event = p.split_color(0, |v| v >= 3).unwrap();
        assert_eq!(event.parent, 0);
        assert_eq!(event.child, 1);
        assert_eq!(event.moved_nodes, vec![3, 4, 5]);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.members(0), &[0, 1, 2]);
        assert_eq!(p.members(1), &[3, 4, 5]);
        assert!(p.validate());
    }

    #[test]
    fn split_color_rejects_trivial() {
        let mut p = Partition::unit(4);
        assert!(p.split_color(0, |_| true).is_none());
        assert!(p.split_color(0, |_| false).is_none());
        assert_eq!(p.num_colors(), 1);
        assert!(p.validate());
    }

    #[test]
    fn meet_is_common_refinement() {
        let p = Partition::from_assignment(&[0, 0, 1, 1]);
        let q = Partition::from_assignment(&[0, 1, 0, 1]);
        let m = p.meet(&q);
        assert_eq!(m.num_colors(), 4);
        assert!(m.is_refinement_of(&p));
        assert!(m.is_refinement_of(&q));
    }

    #[test]
    fn same_as_ignores_numbering() {
        let p = Partition::from_assignment(&[0, 0, 1, 2]);
        let q = Partition::from_assignment(&[5, 5, 9, 1]);
        assert!(p.same_as(&q));
        assert_eq!(p.canonical_assignment(), q.canonical_assignment());
    }

    #[test]
    fn refinement_detects_non_refinement() {
        let p = Partition::from_assignment(&[0, 0, 1, 1]);
        let q = Partition::from_assignment(&[0, 1, 1, 1]);
        assert!(!p.is_refinement_of(&q));
        assert!(!q.is_refinement_of(&p));
    }
}
