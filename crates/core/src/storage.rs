//! Tiered accumulator storage for the incremental engine.
//!
//! The summary-tracking [`crate::q_error::IncrementalDegrees`] engine
//! historically kept dense `n × k` accumulator matrices (`dout`/`din`):
//! 8 bytes per (node, color) slot whether or not the node has any weight
//! toward that color. On sparse graphs a node touches at most `deg(v)`
//! colors, so at `k = 200` colors and average degree 20 over 90% of those
//! bytes are zeros — and the dense layout is what decides how large a
//! resident graph can get (see the ROADMAP persistence item).
//!
//! This module provides the alternative: per-node **tiered rows**.
//!
//! * [`RowRep::Sparse`] — a sorted `(color, weight)` vector holding only
//!   the nonzero entries, generalizing the degrees-only sparse rows from
//!   PR 3. Reads binary-search; writes insert/remove to keep the vector
//!   sorted and exact-zero-free. 16 bytes per *nonzero* entry.
//! * [`RowRep::Dense`] — a plain slot array for **hot rows**: once a
//!   row's nonzero count reaches half the live color count (and the color
//!   count is large enough for the trade to matter, [`PROMOTE_MIN_K`]),
//!   the sparse form would cost more bytes *and* more work per access
//!   than dense slots, so the row is promoted in place. Promotion is a
//!   pure function of the row's mutation history and the engine's color
//!   count — never of the thread count — so tiering cannot perturb the
//!   determinism contract. Rows are not demoted: a row that was hot
//!   stays dense (demotion would add churn on the exact rows that are
//!   mutated most, for a bounded and already-paid memory cost).
//!
//! Which tier a fresh engine starts every row in is selected by
//! [`StorageMode`], the `RothkoConfig::storage` knob. Values stored in
//! either representation are bit-identical: both apply the same scalar
//! `old + delta` update, and a missing sparse entry reads as exactly
//! `+0.0` — the same value a dense engine stores explicitly. (A dense
//! slot can in principle hold `-0.0` where the sparse row dropped the
//! entry; `-0.0 == 0.0` in every compare and subtraction the engine
//! performs, so no observable output distinguishes them.)

/// Accumulator storage policy for the summary-tracking engine
/// (`RothkoConfig::storage`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum StorageMode {
    /// Dense `n × k` matrices — the PR 1 layout. Fastest per access at
    /// small `n · k`; memory grows as `n · k · 8` bytes per direction.
    Dense,
    /// Tiered per-node rows (sorted sparse vectors + a dense tier for
    /// hot rows). Memory grows with the number of *nonzero* (node,
    /// color) pairs, bounded by the arc count.
    Sparse,
    /// Choose per engine at construction: sparse when the projected
    /// dense footprint is large **and** the graph is sparse relative to
    /// the color budget; dense otherwise. The heuristic is a pure
    /// function of `(n, arcs, color hint, directedness)`, so it is
    /// deterministic across runs and thread counts.
    #[default]
    Auto,
}

impl StorageMode {
    /// Resolve `Auto` into a concrete tier for an engine over `n` nodes
    /// and `arcs` stored arcs, with `hint_cap` pre-reserved color
    /// capacity and `dirs` tracked directions (1 when symmetric, 2 when
    /// directed).
    ///
    /// The gate is deliberately conservative: dense rows win on every
    /// workload that fits comfortably in memory, so `Auto` only flips to
    /// sparse when the projected dense accumulator footprint exceeds
    /// [`AUTO_DENSE_BYTES`] **and** the average row would stay under a
    /// quarter of the capacity (dense graphs gain nothing from sparse
    /// rows — they promote straight back to the dense tier).
    #[must_use]
    pub fn resolve(self, n: usize, arcs: usize, hint_cap: usize, dirs: usize) -> ResolvedStorage {
        match self {
            StorageMode::Dense => ResolvedStorage::Dense,
            StorageMode::Sparse => ResolvedStorage::Sparse,
            StorageMode::Auto => {
                let dense_bytes = n
                    .saturating_mul(hint_cap)
                    .saturating_mul(8)
                    .saturating_mul(dirs.max(1));
                let avg_row_nnz = arcs / n.max(1);
                if dense_bytes > AUTO_DENSE_BYTES && avg_row_nnz.saturating_mul(4) <= hint_cap {
                    ResolvedStorage::Sparse
                } else {
                    ResolvedStorage::Dense
                }
            }
        }
    }
}

/// A [`StorageMode`] with `Auto` already decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResolvedStorage {
    /// Dense `n × k` matrices.
    Dense,
    /// Tiered per-node rows.
    Sparse,
}

/// Projected dense accumulator bytes above which `Auto` considers the
/// sparse tier (256 MiB).
pub const AUTO_DENSE_BYTES: usize = 256 << 20;

/// Minimum live color count before a sparse row is promoted to the
/// dense tier. Below this, rows are tiny either way and promotion would
/// just churn allocations (the degenerate case is the unit partition,
/// `k = 1`, where every row trivially has `nnz · 2 ≥ k`).
pub const PROMOTE_MIN_K: usize = 64;

/// Sparse rows at or below this entry count are probed with a forward
/// linear scan instead of a binary search: the scan's exit branch
/// mispredicts once while a binary search mispredicts on most of its
/// `log nnz` probes, and the scan walks sequential cache lines. Above
/// the cutoff the search wins again.
const LINEAR_PROBE_MAX: usize = 32;

/// Index of the first entry in a sorted-by-color row with key `>=
/// color` (the binary-search insertion point), via the hybrid probe.
#[inline(always)]
fn lower_bound(entries: &[(u32, f64)], color: u32) -> usize {
    if entries.len() <= LINEAR_PROBE_MAX {
        let mut i = 0;
        while i < entries.len() && entries[i].0 < color {
            i += 1;
        }
        i
    } else {
        entries.partition_point(|&(c, _)| c < color)
    }
}

/// One node's accumulator row in tiered storage: weight toward each
/// color, with absent entries reading as exactly `0.0`.
#[derive(Clone, Debug)]
pub enum RowRep {
    /// Sorted-by-color nonzero entries.
    Sparse(Vec<(u32, f64)>),
    /// Dense slots for a promoted (hot) row. The slot array's length is
    /// independent of the engine's color capacity: columns past the end
    /// read `0.0` and the array grows geometrically on first write.
    Dense(Box<[f64]>),
}

impl Default for RowRep {
    fn default() -> Self {
        RowRep::Sparse(Vec::new())
    }
}

impl RowRep {
    /// An empty (all-zero) row.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a row from entries already sorted by color with no
    /// duplicates and no exact zeros, promoting immediately when the
    /// density bar is met (`promote_k` as in [`RowRep::add`]).
    #[must_use]
    pub fn from_sorted(entries: Vec<(u32, f64)>, promote_k: usize) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(entries.iter().all(|&(_, w)| w != 0.0));
        let mut row = RowRep::Sparse(entries);
        row.maybe_promote(promote_k);
        row
    }

    /// Rebuild a *promoted* (dense-tier) row from its nonzero entries —
    /// the checkpoint restore path, which records each row's tier so a
    /// restored engine keeps the writer's representation (tier choice is
    /// unobservable in values, but it is what the resident-bytes
    /// accounting and access constants reflect). The slot width follows
    /// the same rule as promotion under the *current* color count; a row
    /// promoted long ago under a smaller `k` may get a different width,
    /// which only changes when the array next grows.
    #[must_use]
    pub fn dense_from_sorted(entries: &[(u32, f64)], promote_k: usize) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let width = promote_k.next_power_of_two();
        let top = entries.last().map_or(0, |&(c, _)| c as usize + 1);
        let mut slots = vec![0.0f64; width.max(top.next_power_of_two()).max(4)].into_boxed_slice();
        for &(c, w) in entries {
            slots[c as usize] = w;
        }
        RowRep::Dense(slots)
    }

    /// Whether this row lives in the promoted dense tier.
    #[must_use]
    pub fn is_dense(&self) -> bool {
        matches!(self, RowRep::Dense(_))
    }

    /// Append this row's nonzero entries to `out` in ascending color order
    /// (the serialization sweep; dense rows scan their slots). Exact `0.0`
    /// slots of a dense row are skipped — by the module's read semantics
    /// they are indistinguishable from absent entries.
    pub fn push_nonzero_entries(&self, out: &mut Vec<(u32, f64)>) {
        match self {
            RowRep::Sparse(entries) => out.extend_from_slice(entries),
            RowRep::Dense(slots) => {
                out.extend(
                    slots
                        .iter()
                        .enumerate()
                        .filter(|&(_, &w)| w != 0.0)
                        .map(|(c, &w)| (c as u32, w)),
                );
            }
        }
    }

    /// Weight toward `color` (`0.0` when absent).
    #[inline]
    #[must_use]
    pub fn get(&self, color: u32) -> f64 {
        match self {
            RowRep::Sparse(entries) => {
                let i = lower_bound(entries, color);
                match entries.get(i) {
                    Some(&(c, w)) if c == color => w,
                    _ => 0.0,
                }
            }
            RowRep::Dense(slots) => slots.get(color as usize).copied().unwrap_or(0.0),
        }
    }

    /// Add `delta` to the weight toward `color`, returning `(old, new)`.
    ///
    /// The arithmetic is the same scalar `old + delta` a dense matrix
    /// slot would perform, so stored values are bit-identical across
    /// representations. Sparse entries that land on exactly `0.0` are
    /// removed (matching the "explicit zero = absent" read semantics);
    /// afterwards the row is promoted to the dense tier when its nonzero
    /// count reaches `promote_k / 2` (and `promote_k ≥`
    /// [`PROMOTE_MIN_K`]). Pass `promote_k = 0` to disable promotion —
    /// the degrees-only engine does, preserving its PR 3 behavior.
    #[inline]
    pub fn add(&mut self, color: u32, delta: f64, promote_k: usize) -> (f64, f64) {
        let result = match self {
            RowRep::Dense(slots) => {
                let idx = color as usize;
                if idx >= slots.len() {
                    if delta == 0.0 {
                        return (0.0, 0.0);
                    }
                    Self::grow_slots(slots, idx + 1);
                }
                let old = slots[idx];
                let new = old + delta;
                slots[idx] = new;
                return (old, new);
            }
            RowRep::Sparse(entries) => {
                let i = lower_bound(entries, color);
                if entries.get(i).is_some_and(|&(c, _)| c == color) {
                    let old = entries[i].1;
                    let new = old + delta;
                    if new == 0.0 {
                        entries.remove(i);
                    } else {
                        entries[i].1 = new;
                    }
                    (old, new)
                } else {
                    if delta != 0.0 {
                        entries.insert(i, (color, delta));
                    }
                    (0.0, delta)
                }
            }
        };
        self.maybe_promote(promote_k);
        result
    }

    /// Shift `delta` of this row's weight from color `from` to a
    /// **brand-new** color `to` that is strictly greater than every color
    /// the row currently holds (a split's freshly minted child). Exactly
    /// the arithmetic of `add(from, -delta, ..)` then `add(to, delta, ..)`
    /// — the new-color precondition just lets the child entry append to
    /// the sorted vector instead of paying a second binary search.
    /// Returns `(old_from, new_from, new_to)`.
    #[inline]
    pub fn split_shift(
        &mut self,
        from: u32,
        to: u32,
        delta: f64,
        promote_k: usize,
    ) -> (f64, f64, f64) {
        if let RowRep::Sparse(entries) = self {
            debug_assert!(entries.last().is_none_or(|&(c, _)| c < to));
            let i = lower_bound(entries, from);
            let (old, new) = if entries.get(i).is_some_and(|&(c, _)| c == from) {
                let old = entries[i].1;
                let new = old - delta;
                if new == 0.0 {
                    entries.remove(i);
                } else {
                    entries[i].1 = new;
                }
                (old, new)
            } else {
                if delta != 0.0 {
                    entries.insert(i, (from, -delta));
                }
                (0.0, -delta)
            };
            if delta != 0.0 {
                entries.push((to, delta));
            }
            self.maybe_promote(promote_k);
            (old, new, delta)
        } else {
            let (old, new) = self.add(from, -delta, promote_k);
            let (_, to_val) = self.add(to, delta, promote_k);
            (old, new, to_val)
        }
    }

    /// Move this row's weight at color `from` to color `to` (the
    /// relabel-last-color step after a merge). The caller guarantees the
    /// row holds no weight at `to` — in the engine, `to` is the merged-
    /// away loser's column, zeroed by the merge fold.
    pub fn relabel(&mut self, from: u32, to: u32) {
        let w = self.get(from);
        if w != 0.0 || matches!(self, RowRep::Dense(_)) {
            // Dense rows clear the `from` slot even when it held 0.0 so
            // the slot array never carries stale columns past `k`.
            self.add(from, -w, 0);
            if w != 0.0 {
                self.add(to, w, 0);
            }
        }
    }

    /// Number of entries holding a nonzero weight.
    #[must_use]
    pub fn nonzero_count(&self) -> usize {
        match self {
            RowRep::Sparse(entries) => entries.len(),
            RowRep::Dense(slots) => slots.iter().filter(|&&w| w != 0.0).count(),
        }
    }

    /// True when every column reads `0.0`.
    #[must_use]
    pub fn is_all_zero(&self) -> bool {
        match self {
            RowRep::Sparse(entries) => entries.is_empty(),
            RowRep::Dense(slots) => slots.iter().all(|&w| w == 0.0),
        }
    }

    /// Heap bytes owned by this row (the engine's resident-memory
    /// accounting; excludes the enum's own inline size).
    #[must_use]
    pub fn heap_bytes(&self) -> usize {
        match self {
            RowRep::Sparse(entries) => entries.capacity() * std::mem::size_of::<(u32, f64)>(),
            RowRep::Dense(slots) => slots.len() * std::mem::size_of::<f64>(),
        }
    }

    /// Promote to the dense tier when the density bar is met.
    #[inline]
    fn maybe_promote(&mut self, promote_k: usize) {
        if promote_k < PROMOTE_MIN_K {
            return;
        }
        let RowRep::Sparse(entries) = self else {
            return;
        };
        if entries.len() * 2 < promote_k {
            return;
        }
        let width = promote_k.next_power_of_two();
        let top = entries.last().map_or(0, |&(c, _)| c as usize + 1);
        let mut slots = vec![0.0f64; width.max(top.next_power_of_two())].into_boxed_slice();
        for &(c, w) in entries.iter() {
            slots[c as usize] = w;
        }
        *self = RowRep::Dense(slots);
    }

    fn grow_slots(slots: &mut Box<[f64]>, needed: usize) {
        let new_len = needed.next_power_of_two().max(slots.len() * 2).max(4);
        let mut grown = vec![0.0f64; new_len];
        grown[..slots.len()].copy_from_slice(slots);
        *slots = grown.into_boxed_slice();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip_and_zero_removal() {
        let mut row = RowRep::new();
        assert_eq!(row.get(3), 0.0);
        assert_eq!(row.add(3, 1.5, 0), (0.0, 1.5));
        assert_eq!(row.add(1, 0.5, 0), (0.0, 0.5));
        assert_eq!(row.get(3), 1.5);
        assert_eq!(row.add(3, -1.5, 0), (1.5, 0.0));
        assert_eq!(row.get(3), 0.0);
        match &row {
            RowRep::Sparse(e) => assert_eq!(e.as_slice(), &[(1, 0.5)]),
            RowRep::Dense(_) => panic!("promotion disabled"),
        }
        assert_eq!(row.nonzero_count(), 1);
        assert!(!row.is_all_zero());
    }

    #[test]
    fn promotion_fires_at_half_density_and_grows() {
        let k = PROMOTE_MIN_K;
        let mut row = RowRep::new();
        for c in 0..(k as u32 / 2 - 1) {
            row.add(c, 1.0, k);
            assert!(matches!(row, RowRep::Sparse(_)));
        }
        row.add(1000, 2.0, k);
        assert!(matches!(row, RowRep::Dense(_)));
        assert_eq!(row.get(1000), 2.0);
        assert_eq!(row.get(0), 1.0);
        // Writes past the slot array grow it; reads past it are 0.0.
        assert_eq!(row.get(1 << 20), 0.0);
        row.add(4096, 3.0, k);
        assert_eq!(row.get(4096), 3.0);
    }

    #[test]
    fn relabel_moves_weight() {
        for promote_k in [0, PROMOTE_MIN_K] {
            let mut row = RowRep::new();
            for c in 0..64u32 {
                row.add(c, 0.5 + f64::from(c), promote_k);
            }
            let w = row.get(63);
            row.relabel(63, 7 /* engine guarantees slot 7 is free */);
            assert_eq!(row.get(63), 0.0);
            // 7 previously held 7.5; relabel is only called with a free slot,
            // so emulate that by checking the arithmetic sum here.
            assert_eq!(row.get(7), 7.5 + w);
        }
    }

    #[test]
    fn auto_resolution_is_conservative() {
        // 10k × 256 × 8 × 1 = 20 MiB — stays dense.
        assert_eq!(
            StorageMode::Auto.resolve(10_000, 200_000, 256, 1),
            ResolvedStorage::Dense
        );
        // 1M × 256 × 8 = 2 GiB and avg degree 20 ≪ 256/4 — goes sparse.
        assert_eq!(
            StorageMode::Auto.resolve(1_000_000, 20_000_000, 256, 1),
            ResolvedStorage::Sparse
        );
        // Same size but dense graph (avg row ≈ cap) — stays dense.
        assert_eq!(
            StorageMode::Auto.resolve(1_000_000, 200_000_000, 256, 1),
            ResolvedStorage::Dense
        );
        assert_eq!(
            StorageMode::Dense.resolve(1, 1, 4, 2),
            ResolvedStorage::Dense
        );
        assert_eq!(
            StorageMode::Sparse.resolve(1, 1, 4, 2),
            ResolvedStorage::Sparse
        );
    }
}
