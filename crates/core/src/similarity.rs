//! The similarity relations `∼` of Definition 1.
//!
//! A similarity relation is a reflexive, symmetric (not necessarily
//! transitive) relation on the reals. A coloring is *`∼`-quasi-stable* when,
//! for every pair of colors `(P_i, P_j)`, the bipartite graph between them is
//! `∼`-regular: all outgoing weights from `P_i` to `P_j` are pairwise
//! similar, and all incoming weights into `P_j` from `P_i` are pairwise
//! similar.

/// A reflexive and symmetric relation on `f64` values.
pub trait Similarity {
    /// Whether `u ∼ v`.
    fn similar(&self, u: f64, v: f64) -> bool;

    /// Human-readable name for reports.
    fn name(&self) -> String;
}

/// Equality: `u ∼ v` iff `u == v`. `=`-quasi-stable colorings are exactly
/// the classical stable colorings.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Exact;

impl Similarity for Exact {
    fn similar(&self, u: f64, v: f64) -> bool {
        u == v
    }
    fn name(&self) -> String {
        "exact".to_string()
    }
}

/// Absolute error bound: `u ∼_q v` iff `|u − v| ≤ q`. The paper's `q`-stable
/// colorings.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Absolute {
    /// Maximum allowed absolute difference.
    pub q: f64,
}

impl Absolute {
    /// Create a `q`-similarity. Panics if `q < 0`.
    pub fn new(q: f64) -> Self {
        assert!(
            q >= 0.0 && q.is_finite(),
            "q must be a finite non-negative number"
        );
        Absolute { q }
    }
}

impl Similarity for Absolute {
    fn similar(&self, u: f64, v: f64) -> bool {
        (u - v).abs() <= self.q
    }
    fn name(&self) -> String {
        format!("absolute(q={})", self.q)
    }
}

/// Relative error bound: `u ∼_ε v` iff `u · e^{−ε} ≤ v ≤ u · e^{ε}`.
/// Note zero is similar only to itself under this relation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Relative {
    /// Maximum allowed log-ratio.
    pub eps: f64,
}

impl Relative {
    /// Create an `ε`-relative similarity. Panics if `eps < 0`.
    pub fn new(eps: f64) -> Self {
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "eps must be a finite non-negative number"
        );
        Relative { eps }
    }
}

impl Similarity for Relative {
    fn similar(&self, u: f64, v: f64) -> bool {
        if u == 0.0 || v == 0.0 {
            return u == v;
        }
        if u.signum() != v.signum() {
            return false;
        }
        let (a, b) = (u.abs(), v.abs());
        b <= a * self.eps.exp() && b >= a * (-self.eps).exp()
    }
    fn name(&self) -> String {
        format!("relative(eps={})", self.eps)
    }
}

/// Bisimulation: `u ≡ v` iff both are zero or both are non-zero. A
/// `≡`-quasi-stable coloring is a bisimulation on the graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Bisimulation;

impl Similarity for Bisimulation {
    fn similar(&self, u: f64, v: f64) -> bool {
        (u == 0.0) == (v == 0.0)
    }
    fn name(&self) -> String {
        "bisimulation".to_string()
    }
}

/// Clamped congruence: `u ∼ v` iff `min(u, c) == min(v, c)`. This is a
/// congruence w.r.t. addition restricted to non-negative reals and therefore
/// (Theorem 12 (1)) admits a unique maximum quasi-stable coloring. With
/// `c = 1` it coincides with bisimulation on 0/1 weights; with `c = ∞` it is
/// exact equality.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Clamped {
    /// Clamp value.
    pub c: f64,
}

impl Clamped {
    /// Create a clamped congruence. Panics if `c < 0` or `c` is NaN.
    pub fn new(c: f64) -> Self {
        assert!(c >= 0.0 && !c.is_nan(), "clamp must be non-negative");
        Clamped { c }
    }
}

impl Similarity for Clamped {
    fn similar(&self, u: f64, v: f64) -> bool {
        u.min(self.c) == v.min(self.c)
    }
    fn name(&self) -> String {
        format!("clamped(c={})", self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_reflexive_symmetric<S: Similarity>(s: &S, values: &[f64]) {
        for &u in values {
            assert!(s.similar(u, u), "{} not reflexive at {u}", s.name());
            for &v in values {
                assert_eq!(
                    s.similar(u, v),
                    s.similar(v, u),
                    "{} not symmetric at ({u}, {v})",
                    s.name()
                );
            }
        }
    }

    const SAMPLE: &[f64] = &[0.0, 0.5, 1.0, 2.0, 3.5, 10.0, 100.0];

    #[test]
    fn exact_is_equality() {
        let s = Exact;
        check_reflexive_symmetric(&s, SAMPLE);
        assert!(s.similar(2.0, 2.0));
        assert!(!s.similar(2.0, 2.0001));
    }

    #[test]
    fn absolute_threshold() {
        let s = Absolute::new(2.0);
        check_reflexive_symmetric(&s, SAMPLE);
        assert!(s.similar(1.0, 3.0));
        assert!(s.similar(3.0, 1.0));
        assert!(!s.similar(1.0, 3.5));
        // Not transitive: 0 ~ 2 and 2 ~ 4 but 0 !~ 4.
        assert!(s.similar(0.0, 2.0) && s.similar(2.0, 4.0) && !s.similar(0.0, 4.0));
    }

    #[test]
    fn relative_threshold() {
        let s = Relative::new(0.1);
        check_reflexive_symmetric(&s, SAMPLE);
        assert!(s.similar(100.0, 105.0));
        assert!(!s.similar(100.0, 120.0));
        // Zero is similar only to itself.
        assert!(s.similar(0.0, 0.0));
        assert!(!s.similar(0.0, 0.001));
    }

    #[test]
    fn bisimulation_zero_pattern() {
        let s = Bisimulation;
        check_reflexive_symmetric(&s, SAMPLE);
        assert!(s.similar(3.0, 900.0));
        assert!(!s.similar(0.0, 900.0));
        assert!(s.similar(0.0, 0.0));
    }

    #[test]
    fn clamped_congruence() {
        let s = Clamped::new(3.0);
        check_reflexive_symmetric(&s, SAMPLE);
        assert!(s.similar(5.0, 17.0)); // both clamp to 3
        assert!(!s.similar(2.0, 5.0));
        assert!(s.similar(1.0, 1.0));
        // Congruence property: x ~ y => x + z ~ y + z (on a few samples).
        for &(x, y) in &[(5.0, 17.0), (1.0, 1.0), (4.0, 8.0)] {
            if s.similar(x, y) {
                for &z in &[0.0, 1.0, 2.5] {
                    assert!(s.similar(x + z, y + z));
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn absolute_rejects_negative_q() {
        Absolute::new(-1.0);
    }
}
