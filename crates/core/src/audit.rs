//! Dynamic disjointness checker for [`SyncSliceMut`] claims (the runtime
//! half of the `qsc-audit` contract tooling; the static half is the
//! `qsc-audit` crate's lint pass).
//!
//! [`SyncSliceMut`]'s accessors are `unsafe` because their soundness rests
//! on a *value-level* argument — "each touched node appears in exactly one
//! shard" — that neither the borrow checker nor the lint pass can see.
//! With the `audit` feature enabled, this module checks that argument at
//! runtime: every `get_mut` / `slice_mut` call publishes the claimed byte
//! range into a global lock-free interval log, and a claim that overlaps a
//! live claim from a *different* thread aborts the process with both call
//! sites in the message. The existing parallel suites then double as
//! soundness tests: run them with `--features audit` and any sharding bug
//! that produces aliased `&mut`s dies loudly instead of corrupting floats.
//!
//! Scoping: claims live for the duration of a fork-join *region*
//! ([`ThreadPool::run`] bumps a global epoch at entry, and the join
//! barrier guarantees worker references are dead by return), so only
//! same-epoch claims are compared. Same-thread overlapping claims are
//! deliberately exempt: sequential re-borrows from one thread (claim,
//! drop, claim again) are the common legitimate pattern and are
//! indistinguishable from genuine same-thread aliasing without tracking
//! reference lifetimes.
//!
//! The checker is best-effort by design — publish-then-scan over a
//! fixed-size ring means detection is guaranteed only while a region's
//! claim count stays within [`LOG_LEN`] (engine regions make one claim
//! per worker slot, so the ring is ~64× oversized in practice) — but it
//! never false-positives: entries are seqlock-validated, so a torn read
//! is discarded, not reported.
//!
//! [`SyncSliceMut`]: crate::parallel::SyncSliceMut
//! [`ThreadPool::run`]: crate::parallel::ThreadPool::run

use std::cell::Cell;
use std::panic::Location;
use std::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};

/// Ring capacity. Detection is exhaustive while at most this many claims
/// are made per region; engine regions make one per worker slot.
const LOG_LEN: usize = 256;

/// One published claim. `meta` packs `(epoch << 32) | thread_token` and is
/// written last / read first (seqlock): a scanner re-reads `meta` after
/// `lo` / `hi` / `loc` and discards the entry if it changed underneath.
struct Entry {
    meta: AtomicU64,
    lo: AtomicU64,
    hi: AtomicU64,
    loc: AtomicPtr<Location<'static>>,
}

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY: Entry = Entry {
    meta: AtomicU64::new(0),
    lo: AtomicU64::new(0),
    hi: AtomicU64::new(0),
    loc: AtomicPtr::new(std::ptr::null_mut()),
};

static LOG: [Entry; LOG_LEN] = [EMPTY; LOG_LEN];
/// Next ring slot; monotonically increasing, wrapped mod [`LOG_LEN`].
static CURSOR: AtomicU64 = AtomicU64::new(0);
/// Current fork-join region epoch. Starts at 1 so a packed `meta` of 0
/// always means "slot never written". Stored truncated to 32 bits in
/// `meta`; a stale entry masquerading as current needs 2³² intervening
/// regions *and* a surviving ring slot, which the 256-slot ring recycles
/// after 256 claims.
static REGION_EPOCH: AtomicU64 = AtomicU64::new(1);
/// Thread-token allocator; 0 is reserved for "not yet assigned".
static NEXT_TOKEN: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static TOKEN: Cell<u32> = const { Cell::new(0) };
}

fn thread_token() -> u32 {
    TOKEN.with(|t| {
        let mut tok = t.get();
        if tok == 0 {
            tok = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
            t.set(tok);
        }
        tok
    })
}

/// Start a new fork-join region: claims published before this call are no
/// longer live and stop participating in overlap checks. Called by
/// [`ThreadPool::run`](crate::parallel::ThreadPool::run) on entry; the
/// join barrier it returns through is what makes the retired claims'
/// references provably dead.
pub(crate) fn begin_region() {
    REGION_EPOCH.fetch_add(1, Ordering::SeqCst);
}

/// Publish a claim over the byte range `[lo, hi)` and abort if it overlaps
/// a live same-epoch claim from a different thread.
///
/// Publish-then-scan with `SeqCst` metadata stores gives two genuinely
/// concurrent overlapping claims a total order: whichever publishes second
/// is guaranteed to observe the first during its scan, so a real overlap
/// cannot slip through the check-then-record window.
#[track_caller]
pub(crate) fn claim(lo: u64, hi: u64) {
    if lo >= hi {
        return; // empty ranges cannot alias anything
    }
    let here: &'static Location<'static> = Location::caller();
    let tok = thread_token();
    let epoch32 = REGION_EPOCH.load(Ordering::SeqCst) as u32;
    let meta = (u64::from(epoch32) << 32) | u64::from(tok);

    // Publish first (see above).
    let slot = (CURSOR.fetch_add(1, Ordering::Relaxed) as usize) % LOG_LEN;
    let own = &LOG[slot];
    own.meta.store(0, Ordering::SeqCst);
    own.lo.store(lo, Ordering::Relaxed);
    own.hi.store(hi, Ordering::Relaxed);
    own.loc.store(
        here as *const Location<'static> as *mut _,
        Ordering::Relaxed,
    );
    own.meta.store(meta, Ordering::SeqCst);

    for (i, entry) in LOG.iter().enumerate() {
        if i == slot {
            continue;
        }
        let m = entry.meta.load(Ordering::SeqCst);
        if m == 0 || (m >> 32) as u32 != epoch32 || (m & 0xffff_ffff) as u32 == tok {
            continue; // empty, retired epoch, or our own thread
        }
        let (other_lo, other_hi) = (
            entry.lo.load(Ordering::Relaxed),
            entry.hi.load(Ordering::Relaxed),
        );
        let other_loc = entry.loc.load(Ordering::Relaxed);
        if entry.meta.load(Ordering::SeqCst) != m {
            continue; // torn read: the slot was recycled mid-scan
        }
        if other_lo < hi && lo < other_hi {
            // SAFETY-critical diagnostic path: two threads hold (or are
            // about to hold) `&mut`s over intersecting bytes. Unwinding
            // could let the aliased references keep running; die instead.
            let other_site = if other_loc.is_null() {
                "<unknown>".to_string()
            } else {
                // SAFETY: non-null `loc` values are only ever stored from
                // `Location::caller()`, which yields `&'static Location`,
                // and the seqlock re-check above proved the slot was not
                // recycled between the loads.
                unsafe { (*other_loc).to_string() }
            };
            eprintln!(
                "qsc-audit: overlapping claim: bytes [{lo:#x}, {hi:#x}) claimed at {here} \
                 overlap live claim [{other_lo:#x}, {other_hi:#x}) from another thread \
                 at {other_site}; SyncSliceMut shards must be pairwise disjoint \
                 within a parallel region"
            );
            std::process::abort();
        }
    }
}
