//! Minimal memory-mapped file support for zero-copy checkpoint reads.
//!
//! This module is the **only** place in the workspace that talks to the
//! kernel's memory-mapping interface, keeping `unsafe` confined to
//! `qsc-core` per the audit contract. The build environment vendors no
//! `libc`, so on Linux the three syscalls we need (`mmap`, `munmap`,
//! `madvise`) are issued directly via `core::arch::asm!` on x86_64 and
//! aarch64; every other platform (and any mapping failure) falls back to
//! reading the file into a 64-byte-aligned heap buffer, so callers get
//! identical semantics everywhere — only paging behavior differs.
//! [`MappedFile::is_mapped`] reports which backing is live so benches can
//! record it honestly.
//!
//! The public surface is safe:
//!
//! * [`MappedFile`] — a read-only byte image of a file, `mmap`'d
//!   (`PROT_READ`, `MAP_PRIVATE`) or heap-loaded, unmapped on drop. The
//!   base address is page-aligned when mapped and 64-byte-aligned when
//!   heap-backed, so any payload offset that is 64-byte-aligned in the
//!   file is at least 64-byte-aligned in memory.
//! * [`MappedSlice<T>`] — a typed `&[T]` view into an `Arc<MappedFile>`
//!   with bounds, alignment, and size checked at construction. `T` is
//!   restricted to the sealed [`Pod`] plain-old-data set (`u32`, `u64`,
//!   `f64`, `usize`), for which any bit pattern is a valid value, making
//!   the transmute-by-view sound. It implements
//!   [`qsc_graph::SharedColumn`], so a [`qsc_graph::ColumnBuf`] can sit
//!   directly on mapped checkpoint bytes (see `qsc-persist`'s
//!   `MappedStore` for the format-validation layer on top).
//!
//! Typed views additionally require a little-endian target: the
//! checkpoint format stores native little-endian words, and reinterpreting
//! them on a big-endian machine would read garbage. Construction fails
//! cleanly there ([`MapError::Unsupported`]) and callers fall back to the
//! owned decode path.

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

/// Why a mapping or typed view could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// Offset/length out of bounds of the mapped file.
    OutOfBounds {
        /// Requested byte offset.
        offset: usize,
        /// Requested byte length.
        len: usize,
        /// Total mapped bytes.
        mapped: usize,
    },
    /// The view's base address is not aligned for the element type.
    Misaligned {
        /// Requested byte offset.
        offset: usize,
        /// Required alignment in bytes.
        align: usize,
    },
    /// The byte length is not a multiple of the element size.
    BadLength {
        /// Requested byte length.
        len: usize,
        /// Element size in bytes.
        elem: usize,
    },
    /// The target cannot support typed mapped views (e.g. big-endian, or
    /// `usize` narrower than the stored 8-byte words).
    Unsupported,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::OutOfBounds {
                offset,
                len,
                mapped,
            } => write!(
                f,
                "mapped view {offset}..+{len} out of bounds of {mapped} mapped bytes"
            ),
            MapError::Misaligned { offset, align } => {
                write!(f, "mapped view at offset {offset} not {align}-byte aligned")
            }
            MapError::BadLength { len, elem } => {
                write!(f, "mapped view length {len} not a multiple of {elem}")
            }
            MapError::Unsupported => write!(f, "typed mapped views unsupported on this target"),
        }
    }
}

impl std::error::Error for MapError {}

/// Paging advice constants, mirroring `MADV_*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Advice {
    Normal = 0,
    Sequential = 2,
    WillNeed = 3,
}

// ---------------------------------------------------------------------------
// Raw syscalls. Linux-only; numbers come from the kernel's per-arch tables
// (arch/x86/entry/syscalls/syscall_64.tbl, include/uapi/asm-generic/unistd.h).
// ---------------------------------------------------------------------------

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "x86_64")]
    const SYS_MADVISE: usize = 28;

    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;
    #[cfg(target_arch = "aarch64")]
    const SYS_MADVISE: usize = 233;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// Issue a raw 6-argument Linux syscall.
    ///
    /// # Safety
    /// The caller must pass arguments valid for the requested syscall
    /// number; the asm block itself only moves values into the registers
    /// the kernel ABI names and touches no memory.
    #[cfg(target_arch = "x86_64")]
    #[inline]
    // SAFETY: soundness is delegated to the caller's contract above.
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: register assignments follow the x86_64 syscall ABI
        // exactly (number in rax, args in rdi/rsi/rdx/r10/r8/r9, return
        // in rax, rcx/r11 clobbered by `syscall`); the caller's contract
        // covers argument validity.
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    /// Issue a raw 6-argument Linux syscall.
    ///
    /// # Safety
    /// As for the x86_64 variant: arguments must be valid for the syscall
    /// number; registers follow the aarch64 `svc #0` convention (number
    /// in x8, args in x0..x5, return in x0).
    #[cfg(target_arch = "aarch64")]
    #[inline]
    // SAFETY: soundness is delegated to the caller's contract above.
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        // SAFETY: register assignments follow the aarch64 syscall ABI
        // exactly; the asm touches no memory itself.
        unsafe {
            core::arch::asm!(
                "svc #0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Map `len` bytes of the open file `fd` read-only. Returns the
    /// mapped base address or `None` on any kernel error.
    pub(super) fn mmap_file(fd: i32, len: usize) -> Option<*const u8> {
        if len == 0 {
            return None;
        }
        // SAFETY: mmap with addr=0 lets the kernel pick a free range;
        // PROT_READ|MAP_PRIVATE over a file descriptor we hold open
        // cannot alias any Rust-visible memory. A failed call returns a
        // small negative errno which is rejected below.
        let ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        if ret < 0 || !(ret as usize).is_multiple_of(4096) {
            return None;
        }
        Some(ret as *const u8)
    }

    /// Unmap a range previously returned by [`mmap_file`].
    ///
    /// # Safety
    /// `(ptr, len)` must be exactly a live mapping produced by
    /// [`mmap_file`], with no outstanding references into it.
    // SAFETY: soundness is delegated to the caller's contract above.
    pub(super) unsafe fn munmap(ptr: *const u8, len: usize) {
        // SAFETY: per this function's contract the range is a live
        // private mapping owned by the caller; unmapping it only
        // invalidates addresses the caller promised are unreferenced.
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }

    /// Best-effort `madvise` over a subrange of a live mapping; kernel
    /// errors are ignored (advice is only a hint).
    pub(super) fn madvise(ptr: *const u8, len: usize, advice: usize) {
        if len == 0 {
            return;
        }
        // madvise requires a page-aligned start: align down and widen.
        let addr = ptr as usize;
        let page_off = addr % 4096;
        // SAFETY: the range lies within a mapping the caller keeps alive
        // for the duration of the call (MappedFile owns it); madvise
        // never writes user memory, and failure only drops the hint.
        let _ = unsafe {
            syscall6(
                SYS_MADVISE,
                addr - page_off,
                len + page_off,
                advice,
                0,
                0,
                0,
            )
        };
    }
}

/// How the file image is held in memory.
enum Backing {
    /// A live kernel mapping: `(base, len)` to `munmap` on drop.
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    Mapped { ptr: *const u8, len: usize },
    /// Read-whole-file fallback, 64-byte-aligned via a `u64` allocation.
    Heap { buf: Vec<u64>, len: usize },
}

/// A read-only image of a file: memory-mapped where the platform allows,
/// heap-loaded otherwise. See the module docs for the full story.
pub struct MappedFile {
    backing: Backing,
}

// SAFETY: the backing memory is immutable for the life of the value — a
// PROT_READ private mapping or an owned heap buffer nobody writes — so
// shared references from any thread are sound, and Drop (munmap) requires
// only that the value itself is no longer referenced.
unsafe impl Send for MappedFile {}
// SAFETY: as above; all access is through `&self` returning `&[u8]`.
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Open `path` read-only and map (or load) its entire contents.
    pub fn open(path: &Path) -> std::io::Result<MappedFile> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large to map on this target",
            ));
        }
        let len = len as usize;
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        {
            use std::os::fd::AsRawFd;
            if len > 0 {
                if let Some(ptr) = sys::mmap_file(file.as_raw_fd(), len) {
                    // The fd can close now; the mapping keeps the pages.
                    return Ok(MappedFile {
                        backing: Backing::Mapped { ptr, len },
                    });
                }
            }
        }
        // Fallback: read the whole file into a 64-byte-aligned buffer
        // (Vec<u64> guarantees 8-byte alignment; its allocations from the
        // global allocator are at least 16-byte aligned in practice, but
        // we only *promise* what we check: MappedSlice re-validates the
        // actual address alignment at construction).
        let words = len.div_ceil(8);
        let mut buf = vec![0u64; words];
        {
            // View the u64 buffer as bytes for reading. This is the one
            // place the heap fallback needs unsafe; the buffer is freshly
            // owned and exactly `words * 8 >= len` bytes.
            // SAFETY: `buf` owns `words * 8` initialized bytes; casting
            // *mut u64 to *mut u8 only loosens alignment. The slice is
            // dropped before `buf` moves.
            let bytes =
                unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<u8>(), len) };
            file.read_exact(bytes)?;
        }
        Ok(MappedFile {
            backing: Backing::Heap { buf, len },
        })
    }

    /// The file contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `(ptr, len)` is the live PROT_READ mapping owned
                // by this value; it stays valid until Drop, and nothing
                // ever writes through it.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Backing::Heap { buf, len } => {
                // SAFETY: `buf` owns at least `len` initialized bytes
                // (allocated as ceil(len/8) u64 words); casting to bytes
                // only loosens alignment.
                unsafe { std::slice::from_raw_parts(buf.as_ptr().cast::<u8>(), *len) }
            }
        }
    }

    /// Whether a real kernel mapping is live (vs. the heap fallback).
    #[inline]
    pub fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            Backing::Mapped { .. } => true,
            Backing::Heap { .. } => false,
        }
    }

    /// Whether this target can hand out typed little-endian 8-byte-word
    /// views at all (little-endian, 64-bit `usize`).
    #[inline]
    #[must_use]
    pub fn zero_copy_eligible() -> bool {
        cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8
    }

    fn advise_bytes(&self, offset: usize, len: usize, advice: Advice) {
        let _ = (offset, len, advice);
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backing::Mapped { ptr, len: total } = &self.backing {
            if offset < *total {
                let len = len.min(*total - offset);
                // SAFETY-adjacent note: sys::madvise is a safe fn; range
                // validity is guaranteed by the bounds clamp above.
                sys::madvise(ptr.wrapping_add(offset), len, advice as usize);
            }
        }
    }

    /// Advise sequential access over the whole file (aggressive
    /// read-ahead, early page reclaim behind the scan). Best-effort.
    pub fn advise_sequential(&self) {
        self.advise_bytes(0, usize::MAX, Advice::Sequential);
    }

    /// Advise that `offset..offset + len` (bytes) will be needed soon,
    /// starting fault-ahead now. Best-effort.
    pub fn advise_willneed(&self, offset: usize, len: usize) {
        self.advise_bytes(offset, len, Advice::WillNeed);
    }

    /// Reset paging behavior to the default over the whole file.
    pub fn advise_normal(&self) {
        self.advise_bytes(0, usize::MAX, Advice::Normal);
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if let Backing::Mapped { ptr, len } = &self.backing {
            // SAFETY: we are in Drop, so no references into the mapping
            // remain (MappedSlice holds the Arc that keeps us alive), and
            // `(ptr, len)` is exactly the mapping mmap_file returned.
            unsafe { sys::munmap(*ptr, *len) };
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.bytes().len())
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for f64 {}
    impl Sealed for usize {}
}

/// Plain-old-data element types for typed mapped views: every bit pattern
/// is a valid value and the on-disk representation is the native
/// little-endian layout. Sealed — the soundness of [`MappedSlice`] rests
/// on this list staying exactly these types.
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl Pod for u32 {}
impl Pod for u64 {}
impl Pod for f64 {}
impl Pod for usize {}

/// A typed read-only view into an [`Arc<MappedFile>`]: `len` elements of
/// `T` starting `offset` bytes into the file. Bounds, alignment, and
/// element-size divisibility are checked at construction; the `Arc` keeps
/// the mapping alive for the view's lifetime, so the view is `'static`.
#[derive(Clone)]
pub struct MappedSlice<T: Pod> {
    file: Arc<MappedFile>,
    offset: usize,
    len: usize,
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Pod> MappedSlice<T> {
    /// Create a view of `len` elements at byte `offset`. Fails with a
    /// typed [`MapError`] (never panics) if the range is out of bounds,
    /// misaligned for `T`, or the target cannot support typed views
    /// (big-endian, or `usize` narrower than 8 bytes when `T = usize`).
    pub fn new(file: Arc<MappedFile>, offset: usize, len: usize) -> Result<Self, MapError> {
        if !cfg!(target_endian = "little") {
            return Err(MapError::Unsupported);
        }
        let elem = std::mem::size_of::<T>();
        // The checkpoint format stores usize columns as 8-byte words; a
        // 32-bit target must take the owned decode path instead.
        if std::any::TypeId::of::<T>() == std::any::TypeId::of::<usize>() && elem != 8 {
            return Err(MapError::Unsupported);
        }
        let bytes = file.bytes();
        let byte_len = len
            .checked_mul(elem)
            .ok_or(MapError::BadLength { len, elem })?;
        if offset > bytes.len() || byte_len > bytes.len() - offset {
            return Err(MapError::OutOfBounds {
                offset,
                len: byte_len,
                mapped: bytes.len(),
            });
        }
        let align = std::mem::align_of::<T>();
        if !(bytes.as_ptr() as usize + offset).is_multiple_of(align) {
            return Err(MapError::Misaligned { offset, align });
        }
        Ok(MappedSlice {
            file,
            offset,
            len,
            _marker: std::marker::PhantomData,
        })
    }

    /// The elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        let bytes = self.file.bytes();
        // SAFETY: construction checked that `offset..offset + len *
        // size_of::<T>()` is in bounds of the immutable file image and
        // that the base address is aligned for `T`; `T: Pod` guarantees
        // every bit pattern is a valid `T`, and the Arc keeps the backing
        // alive for the lifetime of `self` (and thus of the borrow).
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().add(self.offset).cast::<T>(), self.len) }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing file.
    #[inline]
    pub fn file(&self) -> &Arc<MappedFile> {
        &self.file
    }
}

impl<T: Pod> std::ops::Deref for MappedSlice<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for MappedSlice<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSlice")
            .field("offset", &self.offset)
            .field("len", &self.len)
            .finish()
    }
}

impl<T: Pod> qsc_graph::SharedColumn<T> for MappedSlice<T> {
    fn as_slice(&self) -> &[T] {
        self.as_slice()
    }

    fn advise(&self, advice: qsc_graph::ColumnAdvice) {
        self.advise_range(advice, 0, self.len);
    }

    fn advise_range(&self, advice: qsc_graph::ColumnAdvice, lo: usize, hi: usize) {
        let elem = std::mem::size_of::<T>();
        let lo = lo.min(self.len);
        let hi = hi.min(self.len);
        if lo >= hi {
            return;
        }
        let (off, len) = (self.offset + lo * elem, (hi - lo) * elem);
        match advice {
            qsc_graph::ColumnAdvice::Normal => self.file.advise_bytes(off, len, Advice::Normal),
            qsc_graph::ColumnAdvice::Sequential => {
                self.file.advise_bytes(off, len, Advice::Sequential);
            }
            qsc_graph::ColumnAdvice::WillNeed => self.file.advise_willneed(off, len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("qsc-mmap-{}-{tag}", std::process::id()));
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn maps_and_reads_back() {
        let data: Vec<u8> = (0..=255u8).collect();
        let path = temp_file("basic", &data);
        let f = MappedFile::open(&path).unwrap();
        assert_eq!(f.bytes(), &data[..]);
        f.advise_sequential();
        f.advise_willneed(0, 64);
        f.advise_normal();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn typed_views_check_bounds_and_alignment() {
        let mut data = Vec::new();
        for i in 0..8u64 {
            data.extend_from_slice(&(i * 3).to_le_bytes());
        }
        let path = temp_file("typed", &data);
        let f = Arc::new(MappedFile::open(&path).unwrap());
        let v = MappedSlice::<u64>::new(Arc::clone(&f), 0, 8).unwrap();
        assert_eq!(&v[..], &[0, 3, 6, 9, 12, 15, 18, 21]);
        // Out of bounds.
        assert!(matches!(
            MappedSlice::<u64>::new(Arc::clone(&f), 0, 9),
            Err(MapError::OutOfBounds { .. })
        ));
        assert!(matches!(
            MappedSlice::<u64>::new(Arc::clone(&f), 64, 1),
            Err(MapError::OutOfBounds { .. })
        ));
        // Misaligned offset for u64.
        assert!(matches!(
            MappedSlice::<u64>::new(Arc::clone(&f), 4, 1),
            Err(MapError::Misaligned { .. })
        ));
        // u32 view of the same bytes is fine at offset 4.
        let v32 = MappedSlice::<u32>::new(Arc::clone(&f), 4, 2).unwrap();
        assert_eq!(&v32[..], &[0, 3]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn slice_keeps_file_alive() {
        let data = 7u64.to_le_bytes().to_vec();
        let path = temp_file("alive", &data);
        let f = Arc::new(MappedFile::open(&path).unwrap());
        let v = MappedSlice::<u64>::new(f, 0, 1).unwrap();
        // The original Arc is gone; the slice's clone keeps the map live.
        assert_eq!(v[0], 7);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_file_heap_backed() {
        let path = temp_file("empty", &[]);
        let f = MappedFile::open(&path).unwrap();
        assert!(f.bytes().is_empty());
        let v = MappedSlice::<f64>::new(Arc::new(f), 0, 0).unwrap();
        assert!(v.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shared_column_impl_feeds_columnbuf() {
        use qsc_graph::{ColumnAdvice, ColumnBuf, SharedColumn};
        let mut data = Vec::new();
        for x in [1.5f64, -0.0, f64::INFINITY] {
            data.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        let path = temp_file("column", &data);
        let f = Arc::new(MappedFile::open(&path).unwrap());
        let v = MappedSlice::<f64>::new(f, 0, 3).unwrap();
        let col: ColumnBuf<f64> = ColumnBuf::Shared(Arc::new(v) as Arc<dyn SharedColumn<f64>>);
        assert_eq!(col[0], 1.5);
        assert!(col[1] == 0.0 && col[1].is_sign_negative());
        assert!(col[2].is_infinite());
        col.advise(ColumnAdvice::WillNeed);
        col.advise_range(ColumnAdvice::Sequential, 0, 2);
        let _ = std::fs::remove_file(&path);
    }
}
