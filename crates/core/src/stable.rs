//! Classical stable coloring (color refinement / 1-WL).
//!
//! Starting from an initial coloring (by default the single-color partition),
//! repeatedly refine: two nodes keep the same color only if, for every color
//! `P_j`, they have the same total outgoing weight into `P_j` and the same
//! total incoming weight from `P_j`. The fixpoint is the coarsest stable
//! coloring that refines the initial coloring.
//!
//! In the paper's lattice view stable coloring is the `ε = 0` special case
//! of quasi-stable coloring, and the implementation says so literally: it
//! drives the same incremental refinement engine
//! ([`crate::q_error::IncrementalDegrees`], in its degrees-only mode) as
//! Rothko. Each round derives every node's sparse per-color weight
//! signature — candidate colors from the node's edges, values from the
//! engine's accumulators — and ejects the disagreeing groups via
//! [`Partition::split_color`], feeding each
//! [`crate::partition::SplitEvent`] back into the engine so the
//! accumulators stay exact in `O(deg(moved))` per split. A round costs
//! `O(m log Δ)` plus the split updates (even when `k → n`), and the number
//! of rounds is at most `n`. This matches the behaviour (though not the
//! `O((n + m) log n)` bound) of the optimized partition-refinement
//! algorithms cited by the paper [Paige–Tarjan 1987, Berkholz et al. 2017];
//! it is more than fast enough for the laptop-scale datasets used in this
//! reproduction.

use crate::partition::Partition;
use crate::q_error::IncrementalDegrees;
use qsc_graph::Graph;
use std::collections::HashMap;

/// Options for [`stable_coloring_with`].
#[derive(Clone, Debug, Default)]
pub struct StableOptions {
    /// Initial coloring to refine; `None` means the single-color partition.
    pub initial: Option<Partition>,
    /// Stop after at most this many refinement rounds (`None` = until
    /// fixpoint). Mainly useful to emulate a bounded number of WL rounds.
    pub max_rounds: Option<usize>,
}

/// Compute the (coarsest) stable coloring of `g`.
pub fn stable_coloring(g: &Graph) -> Partition {
    stable_coloring_with(g, &StableOptions::default())
}

/// Compute a stable coloring with explicit options.
pub fn stable_coloring_with(g: &Graph, opts: &StableOptions) -> Partition {
    let n = g.num_nodes();
    if n == 0 {
        return Partition::unit(0);
    }
    let mut partition = match &opts.initial {
        Some(p) => {
            assert_eq!(p.num_nodes(), n, "initial partition size mismatch");
            p.clone()
        }
        None => Partition::unit(n),
    };
    // Degrees-only engine: stable refinement reads accumulator rows for
    // signatures and never asks for pair errors, so the O(k²) summary
    // machinery is skipped — splits cost O(deg(moved)) even as k → n.
    let mut engine = IncrementalDegrees::new_degrees_only(g, &partition);
    let mut round = 0usize;
    loop {
        if let Some(max) = opts.max_rounds {
            if round >= max {
                break;
            }
        }
        round += 1;
        if refine_round(g, &mut partition, &mut engine) == 0 {
            break;
        }
        if partition.num_colors() == n {
            break;
        }
    }
    partition
}

/// Sparse per-node weight signature: sorted `(color, weight-bits)` pairs for
/// the colors the node has non-zero weight towards/from. Weights are keyed
/// by their bit patterns (weights in the evaluation graphs are small
/// integers, so summation order is not an issue in practice).
type Signature = Vec<(u32, u64)>;

/// One round of refinement w.r.t. the round-start partition: group each
/// color's members by their engine accumulator rows and eject every
/// disagreeing group as a new color. Returns the number of splits performed.
fn refine_round(g: &Graph, p: &mut Partition, engine: &mut IncrementalDegrees) -> usize {
    let n = p.num_nodes();
    let k = p.num_colors();

    // Group nodes by (round-start color, out-signature, in-signature). The
    // candidate colors come from each node's edges (so a node costs
    // O(deg log deg), keeping a round O(m log) even when k → n) while the
    // weight values are read from the engine's accumulators, which hold
    // exactly the per-(node, color) sums a from-scratch pass over the edges
    // would produce.
    let symmetric = engine.is_symmetric();
    let mut sig_to_group: HashMap<(u32, Signature, Signature), u32> = HashMap::new();
    let mut group_of = vec![0u32; n];
    let mut stamp = vec![0u32; k];
    let mut colors: Vec<u32> = Vec::new();
    for v in 0..n as u32 {
        let sig_from = |incoming: bool, stamp: &mut [u32], colors: &mut Vec<u32>| {
            // Distinct stamp markers for the out- and in-passes of the same
            // node, so the second pass doesn't mistake the first pass's
            // stamps for its own.
            let marker = 2 * v + if incoming { 2 } else { 1 };
            colors.clear();
            let neighbors: Box<dyn Iterator<Item = (u32, f64)>> = if incoming {
                Box::new(g.in_edges(v))
            } else {
                Box::new(g.out_edges(v))
            };
            for (u, _) in neighbors {
                let c = p.color_of(u) as usize;
                if stamp[c] != marker {
                    stamp[c] = marker;
                    colors.push(c as u32);
                }
            }
            colors.sort_unstable();
            colors
                .iter()
                .filter_map(|&c| {
                    let w = if incoming {
                        engine.in_degree_of(v, c)
                    } else {
                        engine.out_degree_of(v, c)
                    };
                    (w != 0.0).then_some((c, w.to_bits()))
                })
                .collect::<Signature>()
        };
        let out_sig = sig_from(false, &mut stamp, &mut colors);
        // For undirected graphs the in-signature equals the out-signature
        // for every node, so a constant placeholder groups identically.
        let in_sig = if symmetric {
            Signature::new()
        } else {
            sig_from(true, &mut stamp, &mut colors)
        };
        let key = (p.color_of(v), out_sig, in_sig);
        let next = sig_to_group.len() as u32;
        group_of[v as usize] = *sig_to_group.entry(key).or_insert(next);
    }

    // Apply the grouping color by color: the first-seen group keeps the
    // color id, every other group is ejected as a fresh color and the split
    // event is pushed into the engine.
    let mut splits = 0usize;
    let mut groups: Vec<u32> = Vec::new();
    let mut seen: HashMap<u32, ()> = HashMap::new();
    for c in 0..k as u32 {
        groups.clear();
        seen.clear();
        for &v in p.members(c) {
            let gid = group_of[v as usize];
            if seen.insert(gid, ()).is_none() {
                groups.push(gid);
            }
        }
        for &gid in groups.iter().skip(1) {
            let event = p
                .split_color(c, |v| group_of[v as usize] == gid)
                .expect("signature groups are non-empty and proper");
            engine.apply_split(g, p, &event);
            splits += 1;
        }
    }
    splits
}

/// Whether `p` is a stable coloring of `g` (exact equality of weights).
pub fn is_stable(g: &Graph, p: &Partition) -> bool {
    crate::q_error::max_q_error(g, p) == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn path_graph_stable_coloring() {
        // Path 0-1-2-3-4: stable coloring distinguishes by distance to the
        // ends: {0,4}, {1,3}, {2}.
        let mut b = GraphBuilder::new_undirected(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 3);
        assert_eq!(p.color_of(0), p.color_of(4));
        assert_eq!(p.color_of(1), p.color_of(3));
        assert_ne!(p.color_of(0), p.color_of(2));
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn regular_graph_single_color() {
        // A cycle is 2-regular: stable coloring is the unit partition.
        let mut b = GraphBuilder::new_undirected(6);
        for i in 0..6 {
            b.add_edge(i, (i + 1) % 6, 1.0);
        }
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 1);
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn star_graph_two_colors() {
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.size(p.color_of(1)), 4);
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn karate_club_has_27_colors() {
        // The paper (Fig. 1a) reports 27 colors for the stable coloring of
        // the karate club graph.
        let g = generators::karate_club();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 27);
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn colored_regular_graph_compresses() {
        // The Fig. 2 synthetic graph has a stable coloring with at most
        // `groups` colors by construction.
        let g = generators::colored_regular(20, 10, 4, 3, 1);
        let p = stable_coloring(&g);
        assert!(p.num_colors() <= 20, "got {} colors", p.num_colors());
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn initial_partition_is_refined() {
        let g = generators::karate_club();
        let init = Partition::from_assignment(
            &(0..34)
                .map(|v| if v < 17 { 0 } else { 1 })
                .collect::<Vec<_>>(),
        );
        let opts = StableOptions {
            initial: Some(init.clone()),
            max_rounds: None,
        };
        let p = stable_coloring_with(&g, &opts);
        assert!(p.is_refinement_of(&init));
        assert!(is_stable(&g, &p));
        // Refining a non-trivial initial partition can only produce at least
        // as many colors as refining the unit partition.
        assert!(p.num_colors() >= stable_coloring(&g).num_colors());
    }

    #[test]
    fn max_rounds_limits_refinement() {
        let g = generators::karate_club();
        let opts = StableOptions {
            initial: None,
            max_rounds: Some(1),
        };
        let p1 = stable_coloring_with(&g, &opts);
        // One round distinguishes only by degree.
        let degrees: std::collections::HashSet<usize> =
            g.nodes().map(|v| g.out_degree(v)).collect();
        assert_eq!(p1.num_colors(), degrees.len());
    }

    #[test]
    fn directed_graph_uses_both_directions() {
        // 0 -> 1, 2 -> 1: nodes 0 and 2 both have out-degree 1 / in-degree 0,
        // and node 1 is distinguished.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.color_of(0), p.color_of(2));
        // Now make the in-weights differ: 0 -> 1 with weight 2.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 2.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 3);
    }

    #[test]
    fn stable_coloring_is_coarsest() {
        // For the karate club, the stable coloring should be refined by the
        // discrete partition and refine the unit partition (sanity on the
        // lattice ordering).
        let g = generators::karate_club();
        let p = stable_coloring(&g);
        assert!(Partition::discrete(34).is_refinement_of(&p));
        assert!(p.is_refinement_of(&Partition::unit(34)));
    }

    #[test]
    fn agrees_with_rothko_at_zero_error() {
        // The ε = 0 special case through the shared engine must land on the
        // same fixpoint cardinality the q = 0 Rothko run refines towards.
        use crate::rothko::{Rothko, RothkoConfig};
        let g = generators::barabasi_albert(150, 3, 5);
        let stable = stable_coloring(&g);
        assert!(is_stable(&g, &stable));
        let rothko = Rothko::new(RothkoConfig::with_target_error(0.0)).run(&g);
        assert_eq!(rothko.max_q_error, 0.0);
        assert!(rothko.partition.num_colors() >= stable.num_colors());
    }
}
