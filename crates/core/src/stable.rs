//! Classical stable coloring (color refinement / 1-WL).
//!
//! Starting from an initial coloring (by default the single-color partition),
//! repeatedly refine: two nodes keep the same color only if, for every color
//! `P_j`, they have the same total outgoing weight into `P_j` and the same
//! total incoming weight from `P_j`. The fixpoint is the coarsest stable
//! coloring that refines the initial coloring.
//!
//! The implementation hashes per-node signatures each round; each round costs
//! `O(n + m)` (plus sorting per-node signature entries), and the number of
//! rounds is at most `n`. This matches the behaviour (though not the
//! `O((n + m) log n)` bound) of the optimized partition-refinement algorithms
//! cited by the paper [Paige–Tarjan 1987, Berkholz et al. 2017]; it is more
//! than fast enough for the laptop-scale datasets used in this reproduction.

use crate::partition::Partition;
use qsc_graph::Graph;
use std::collections::HashMap;

/// Options for [`stable_coloring_with`].
#[derive(Clone, Debug, Default)]
pub struct StableOptions {
    /// Initial coloring to refine; `None` means the single-color partition.
    pub initial: Option<Partition>,
    /// Stop after at most this many refinement rounds (`None` = until
    /// fixpoint). Mainly useful to emulate a bounded number of WL rounds.
    pub max_rounds: Option<usize>,
}

/// Compute the (coarsest) stable coloring of `g`.
pub fn stable_coloring(g: &Graph) -> Partition {
    stable_coloring_with(g, &StableOptions::default())
}

/// Compute a stable coloring with explicit options.
pub fn stable_coloring_with(g: &Graph, opts: &StableOptions) -> Partition {
    let n = g.num_nodes();
    if n == 0 {
        return Partition::unit(0);
    }
    let mut partition = match &opts.initial {
        Some(p) => {
            assert_eq!(p.num_nodes(), n, "initial partition size mismatch");
            p.clone()
        }
        None => Partition::unit(n),
    };
    let mut round = 0usize;
    loop {
        if let Some(max) = opts.max_rounds {
            if round >= max {
                break;
            }
        }
        round += 1;
        let refined = refine_once(g, &partition);
        if refined.num_colors() == partition.num_colors() {
            break;
        }
        partition = refined;
        if partition.num_colors() == n {
            break;
        }
    }
    partition
}

/// One round of refinement: split colors by (out-signature, in-signature).
fn refine_once(g: &Graph, p: &Partition) -> Partition {
    let n = g.num_nodes();
    // Signature of node v: current color, sorted (color, out-weight) pairs,
    // sorted (color, in-weight) pairs. Weights are aggregated per neighbour
    // color; f64 sums are keyed by their bit patterns (weights in the
    // evaluation graphs are small integers, so summation order is not an
    // issue in practice).
    let mut sig_to_color: HashMap<(u32, Vec<(u32, u64)>, Vec<(u32, u64)>), u32> = HashMap::new();
    let mut assignment = vec![0u32; n];
    let mut scratch: HashMap<u32, f64> = HashMap::new();
    for v in 0..n as u32 {
        scratch.clear();
        for (t, w) in g.out_edges(v) {
            *scratch.entry(p.color_of(t)).or_insert(0.0) += w;
        }
        let mut out_sig: Vec<(u32, u64)> =
            scratch.iter().map(|(&c, &w)| (c, w.to_bits())).collect();
        out_sig.sort_unstable();

        scratch.clear();
        for (s, w) in g.in_edges(v) {
            *scratch.entry(p.color_of(s)).or_insert(0.0) += w;
        }
        let mut in_sig: Vec<(u32, u64)> =
            scratch.iter().map(|(&c, &w)| (c, w.to_bits())).collect();
        in_sig.sort_unstable();

        let key = (p.color_of(v), out_sig, in_sig);
        let next = sig_to_color.len() as u32;
        let c = *sig_to_color.entry(key).or_insert(next);
        assignment[v as usize] = c;
    }
    Partition::from_assignment(&assignment)
}

/// Whether `p` is a stable coloring of `g` (exact equality of weights).
pub fn is_stable(g: &Graph, p: &Partition) -> bool {
    crate::q_error::max_q_error(g, p) == 0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn path_graph_stable_coloring() {
        // Path 0-1-2-3-4: stable coloring distinguishes by distance to the
        // ends: {0,4}, {1,3}, {2}.
        let mut b = GraphBuilder::new_undirected(5);
        for i in 0..4 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 3);
        assert_eq!(p.color_of(0), p.color_of(4));
        assert_eq!(p.color_of(1), p.color_of(3));
        assert_ne!(p.color_of(0), p.color_of(2));
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn regular_graph_single_color() {
        // A cycle is 2-regular: stable coloring is the unit partition.
        let mut b = GraphBuilder::new_undirected(6);
        for i in 0..6 {
            b.add_edge(i, (i + 1) % 6, 1.0);
        }
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 1);
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn star_graph_two_colors() {
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.size(p.color_of(1)), 4);
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn karate_club_has_27_colors() {
        // The paper (Fig. 1a) reports 27 colors for the stable coloring of
        // the karate club graph.
        let g = generators::karate_club();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 27);
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn colored_regular_graph_compresses() {
        // The Fig. 2 synthetic graph has a stable coloring with at most
        // `groups` colors by construction.
        let g = generators::colored_regular(20, 10, 4, 3, 1);
        let p = stable_coloring(&g);
        assert!(p.num_colors() <= 20, "got {} colors", p.num_colors());
        assert!(is_stable(&g, &p));
    }

    #[test]
    fn initial_partition_is_refined() {
        let g = generators::karate_club();
        let init = Partition::from_assignment(
            &(0..34).map(|v| if v < 17 { 0 } else { 1 }).collect::<Vec<_>>(),
        );
        let opts = StableOptions { initial: Some(init.clone()), max_rounds: None };
        let p = stable_coloring_with(&g, &opts);
        assert!(p.is_refinement_of(&init));
        assert!(is_stable(&g, &p));
        // Refining a non-trivial initial partition can only produce at least
        // as many colors as refining the unit partition.
        assert!(p.num_colors() >= stable_coloring(&g).num_colors());
    }

    #[test]
    fn max_rounds_limits_refinement() {
        let g = generators::karate_club();
        let opts = StableOptions { initial: None, max_rounds: Some(1) };
        let p1 = stable_coloring_with(&g, &opts);
        // One round distinguishes only by degree.
        let degrees: std::collections::HashSet<usize> =
            g.nodes().map(|v| g.out_degree(v)).collect();
        assert_eq!(p1.num_colors(), degrees.len());
    }

    #[test]
    fn directed_graph_uses_both_directions() {
        // 0 -> 1, 2 -> 1: nodes 0 and 2 both have out-degree 1 / in-degree 0,
        // and node 1 is distinguished.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 2);
        assert_eq!(p.color_of(0), p.color_of(2));
        // Now make the in-weights differ: 0 -> 1 with weight 2.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 2.0);
        b.add_edge(2, 1, 1.0);
        let g = b.build();
        let p = stable_coloring(&g);
        assert_eq!(p.num_colors(), 3);
    }

    #[test]
    fn stable_coloring_is_coarsest() {
        // For the karate club, the stable coloring should be refined by the
        // discrete partition and refine the unit partition (sanity on the
        // lattice ordering).
        let g = generators::karate_club();
        let p = stable_coloring(&g);
        assert!(Partition::discrete(34).is_refinement_of(&p));
        assert!(p.is_refinement_of(&Partition::unit(34)));
    }
}
