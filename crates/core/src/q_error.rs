//! Measuring how (quasi-)stable a coloring is.
//!
//! For a coloring `P` of a weighted directed graph, the *q-error* of a pair
//! of colors `(P_i, P_j)` in the outgoing direction is
//! `max_{v ∈ P_i} w(v, P_j) − min_{v ∈ P_i} w(v, P_j)`; the incoming
//! direction is defined symmetrically over `w(P_i, v)` for `v ∈ P_j`.
//! A coloring is `q`-stable iff every such error is at most `q`, and stable
//! iff every error is exactly zero.

use crate::partition::Partition;
use crate::similarity::Similarity;
use qsc_graph::Graph;

/// Direction of a degree/error matrix entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Entry `(i, j)` talks about outgoing weights of nodes in `P_i` into `P_j`.
    Out,
    /// Entry `(i, j)` talks about incoming weights of nodes in `P_j` from `P_i`.
    In,
}

/// Per-color-pair degree summaries of a coloring: for every ordered pair of
/// colors `(i, j)`, the maximum, minimum and total weight from nodes of `P_i`
/// into `P_j` (outgoing view) and from `P_i` into nodes of `P_j` (incoming
/// view). This is the `U`/`L` pair of Algorithm 1.
#[derive(Clone, Debug)]
pub struct DegreeMatrices {
    /// Number of colors `k`. All matrices are `k × k`, row-major.
    pub k: usize,
    /// `out_max[i*k + j] = max_{v ∈ P_i} w(v, P_j)`.
    pub out_max: Vec<f64>,
    /// `out_min[i*k + j] = min_{v ∈ P_i} w(v, P_j)`.
    pub out_min: Vec<f64>,
    /// `in_max[i*k + j] = max_{v ∈ P_j} w(P_i, v)`.
    pub in_max: Vec<f64>,
    /// `in_min[i*k + j] = min_{v ∈ P_j} w(P_i, v)`.
    pub in_min: Vec<f64>,
    /// `sum[i*k + j] = w(P_i, P_j)`, the total weight between the colors.
    pub sum: Vec<f64>,
    /// `nonzero[i*k + j]`: number of nodes of `P_i` with non-zero weight into
    /// `P_j` (used to decide whether a pair has any edges at all).
    pub nonzero: Vec<u32>,
}

impl DegreeMatrices {
    /// Compute the degree matrices of `p` on `g`. `O(n + m + k²)` time and
    /// `O(k²)` memory.
    pub fn compute(g: &Graph, p: &Partition) -> Self {
        let n = g.num_nodes();
        assert_eq!(p.num_nodes(), n, "partition does not match graph");
        let k = p.num_colors();
        let mut out_max = vec![f64::NEG_INFINITY; k * k];
        let mut out_min = vec![f64::INFINITY; k * k];
        let mut in_max = vec![f64::NEG_INFINITY; k * k];
        let mut in_min = vec![f64::INFINITY; k * k];
        let mut sum = vec![0.0f64; k * k];
        let mut out_count = vec![0u32; k * k];
        let mut in_count = vec![0u32; k * k];

        let mut scratch = vec![0.0f64; k];
        let mut touched: Vec<u32> = Vec::with_capacity(k);

        for v in 0..n as u32 {
            let ci = p.color_of(v) as usize;
            // Outgoing.
            touched.clear();
            for (t, w) in g.out_edges(v) {
                let cj = p.color_of(t) as usize;
                if scratch[cj] == 0.0 && !touched.contains(&(cj as u32)) {
                    touched.push(cj as u32);
                }
                scratch[cj] += w;
            }
            for &cj in &touched {
                let cj = cj as usize;
                let w = scratch[cj];
                let idx = ci * k + cj;
                if w > out_max[idx] {
                    out_max[idx] = w;
                }
                if w < out_min[idx] {
                    out_min[idx] = w;
                }
                sum[idx] += w;
                out_count[idx] += 1;
                scratch[cj] = 0.0;
            }
            // Incoming.
            touched.clear();
            for (s, w) in g.in_edges(v) {
                let cj = p.color_of(s) as usize;
                if scratch[cj] == 0.0 && !touched.contains(&(cj as u32)) {
                    touched.push(cj as u32);
                }
                scratch[cj] += w;
            }
            for &cj in &touched {
                let cj = cj as usize;
                let w = scratch[cj];
                // Entry (cj, ci): weights from P_cj into node v of P_ci.
                let idx = cj * k + ci;
                if w > in_max[idx] {
                    in_max[idx] = w;
                }
                if w < in_min[idx] {
                    in_min[idx] = w;
                }
                in_count[idx] += 1;
                scratch[cj] = 0.0;
            }
        }

        // Account for nodes with zero weight towards a color: if not every
        // node of the source color touched the pair, the minimum weight is at
        // most 0 and the maximum at least 0. Pairs with no edges at all get
        // max = min = 0.
        for i in 0..k {
            let size_i = p.size(i as u32) as u32;
            for j in 0..k {
                let idx = i * k + j;
                if out_count[idx] == 0 {
                    out_max[idx] = 0.0;
                    out_min[idx] = 0.0;
                } else if out_count[idx] < size_i {
                    out_max[idx] = out_max[idx].max(0.0);
                    out_min[idx] = out_min[idx].min(0.0);
                }
                let size_j = p.size(j as u32) as u32;
                if in_count[idx] == 0 {
                    in_max[idx] = 0.0;
                    in_min[idx] = 0.0;
                } else if in_count[idx] < size_j {
                    in_max[idx] = in_max[idx].max(0.0);
                    in_min[idx] = in_min[idx].min(0.0);
                }
            }
        }

        DegreeMatrices {
            k,
            out_max,
            out_min,
            in_max,
            in_min,
            sum,
            nonzero: out_count,
        }
    }

    /// Outgoing error `U − L` at `(i, j)`.
    #[inline]
    pub fn out_error(&self, i: usize, j: usize) -> f64 {
        self.out_max[i * self.k + j] - self.out_min[i * self.k + j]
    }

    /// Incoming error at `(i, j)`.
    #[inline]
    pub fn in_error(&self, i: usize, j: usize) -> f64 {
        self.in_max[i * self.k + j] - self.in_min[i * self.k + j]
    }

    /// Outgoing *relative* error at `(i, j)`: the smallest `ε` such that all
    /// outgoing weights of `P_i` into `P_j` are pairwise `∼_ε`-similar
    /// (`ln(max/min)` for positive weights, `0` when all weights are equal,
    /// `+∞` when the weights mix zero/non-zero values or signs).
    pub fn out_relative_error(&self, i: usize, j: usize) -> f64 {
        relative_spread(self.out_min[i * self.k + j], self.out_max[i * self.k + j])
    }

    /// Incoming relative error at `(i, j)` (see [`Self::out_relative_error`]).
    pub fn in_relative_error(&self, i: usize, j: usize) -> f64 {
        relative_spread(self.in_min[i * self.k + j], self.in_max[i * self.k + j])
    }

    /// Maximum relative error over all pairs and both directions.
    pub fn max_relative_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.k {
            for j in 0..self.k {
                max = max
                    .max(self.out_relative_error(i, j))
                    .max(self.in_relative_error(i, j));
            }
        }
        max
    }

    /// Total weight `w(P_i, P_j)`.
    #[inline]
    pub fn pair_weight(&self, i: usize, j: usize) -> f64 {
        self.sum[i * self.k + j]
    }

    /// Maximum error over all pairs and both directions.
    pub fn max_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.k {
            for j in 0..self.k {
                max = max.max(self.out_error(i, j)).max(self.in_error(i, j));
            }
        }
        max
    }

    /// Mean error over pairs that have at least one edge (both directions).
    pub fn mean_error(&self) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for i in 0..self.k {
            for j in 0..self.k {
                if self.nonzero[i * self.k + j] > 0 {
                    total += self.out_error(i, j);
                    total += self.in_error(i, j);
                    count += 2;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// The smallest `ε` such that every value in `[min, max]`-spread data is
/// pairwise `∼_ε`-similar (Sec. 3.1, ε-relative coloring).
fn relative_spread(min: f64, max: f64) -> f64 {
    if min == max {
        return 0.0;
    }
    if min <= 0.0 && max >= 0.0 && (min != 0.0 || max != 0.0) {
        // A zero together with a non-zero value (or mixed signs) can never
        // be ε-similar.
        if min == 0.0 && max == 0.0 {
            return 0.0;
        }
        return f64::INFINITY;
    }
    let (lo, hi) = (min.abs().min(max.abs()), min.abs().max(max.abs()));
    if lo == 0.0 {
        return f64::INFINITY;
    }
    (hi / lo).ln()
}

/// Maximum ε-relative error of a coloring: the smallest `ε` such that `p` is
/// an ε-relative quasi-stable coloring of `g` (possibly `+∞`).
pub fn max_relative_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).max_relative_error()
}

/// A compact report of the quality of a coloring.
#[derive(Clone, Debug, PartialEq)]
pub struct QErrorReport {
    /// Maximum q-error over all color pairs and both directions.
    pub max_q: f64,
    /// Mean q-error over color pairs with at least one edge.
    pub mean_q: f64,
    /// Number of colors.
    pub num_colors: usize,
    /// The pair of colors and direction attaining the maximum error.
    pub worst_pair: Option<(u32, u32, Direction)>,
}

/// Compute a [`QErrorReport`] for a coloring.
pub fn q_error_report(g: &Graph, p: &Partition) -> QErrorReport {
    let m = DegreeMatrices::compute(g, p);
    let mut max_q = 0.0f64;
    let mut worst = None;
    for i in 0..m.k {
        for j in 0..m.k {
            let eo = m.out_error(i, j);
            if eo > max_q {
                max_q = eo;
                worst = Some((i as u32, j as u32, Direction::Out));
            }
            let ei = m.in_error(i, j);
            if ei > max_q {
                max_q = ei;
                worst = Some((i as u32, j as u32, Direction::In));
            }
        }
    }
    QErrorReport { max_q, mean_q: m.mean_error(), num_colors: m.k, worst_pair: worst }
}

/// Maximum q-error of the coloring: the smallest `q` for which `p` is a
/// `q`-stable coloring of `g`.
pub fn max_q_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).max_error()
}

/// Mean q-error of the coloring over color pairs with at least one edge.
pub fn mean_q_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).mean_error()
}

/// Exhaustively check Definition 1: is `p` a `∼`-quasi-stable coloring of
/// `g`? This performs pairwise similarity checks within every color (cost
/// `O(Σ_i |P_i|² · k)` in the worst case); it is intended for validation and
/// tests, not production use. For the absolute (`q`) relation prefer
/// [`max_q_error`].
pub fn is_quasi_stable<S: Similarity>(g: &Graph, p: &Partition, sim: &S) -> bool {
    let k = p.num_colors();
    let n = g.num_nodes();
    // Per node, accumulate weight to each color (out) and from each color
    // (in), then check pairwise within each color.
    for j in 0..k as u32 {
        // Outgoing weights into color j, grouped by source color.
        let mut per_node = vec![0.0f64; n];
        for &t in p.members(j) {
            for (s, w) in g.in_edges(t) {
                per_node[s as usize] += w;
            }
        }
        for i in 0..k as u32 {
            let members = p.members(i);
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let u = per_node[members[a] as usize];
                    let v = per_node[members[b] as usize];
                    if !sim.similar(u, v) {
                        return false;
                    }
                }
            }
        }
        // Incoming weights from color j, grouped by target color.
        let mut per_node_in = vec![0.0f64; n];
        for &s in p.members(j) {
            for (t, w) in g.out_edges(s) {
                per_node_in[t as usize] += w;
            }
        }
        for i in 0..k as u32 {
            let members = p.members(i);
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let u = per_node_in[members[a] as usize];
                    let v = per_node_in[members[b] as usize];
                    if !sim.similar(u, v) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Absolute, Exact};
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn discrete_partition_has_zero_error() {
        let g = generators::karate_club();
        let p = Partition::discrete(34);
        assert_eq!(max_q_error(&g, &p), 0.0);
        assert!(is_quasi_stable(&g, &p, &Exact));
    }

    #[test]
    fn unit_partition_error_is_degree_spread() {
        let g = generators::karate_club();
        let p = Partition::unit(34);
        // Max error = max degree - min degree = 17 - 1 = 16.
        assert_eq!(max_q_error(&g, &p), 16.0);
        assert!(!is_quasi_stable(&g, &p, &Exact));
        assert!(is_quasi_stable(&g, &p, &Absolute::new(16.0)));
        assert!(!is_quasi_stable(&g, &p, &Absolute::new(15.0)));
    }

    #[test]
    fn star_partition_errors() {
        // Star with center 0 and 4 leaves; partition {0},{1..4} is stable.
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let p = Partition::from_classes(5, vec![vec![0], vec![1, 2, 3, 4]]);
        assert_eq!(max_q_error(&g, &p), 0.0);
        // Putting the center together with leaves: error 4 - 1 = 3.
        let bad = Partition::unit(5);
        assert_eq!(max_q_error(&g, &bad), 3.0);
        let report = q_error_report(&g, &bad);
        assert_eq!(report.max_q, 3.0);
        assert_eq!(report.num_colors, 1);
        assert!(report.worst_pair.is_some());
    }

    #[test]
    fn degree_matrices_shape_and_sum() {
        let g = generators::karate_club();
        let p = Partition::from_assignment(
            &(0..34).map(|v| if v < 17 { 0 } else { 1 }).collect::<Vec<_>>(),
        );
        let m = DegreeMatrices::compute(&g, &p);
        assert_eq!(m.k, 2);
        // Total of the sum matrix equals total arc weight.
        let total: f64 = m.sum.iter().sum();
        assert_eq!(total, g.total_weight());
        // Cross-pair sums are symmetric for undirected graphs.
        assert_eq!(m.pair_weight(0, 1), m.pair_weight(1, 0));
    }

    #[test]
    fn directed_in_out_errors_differ() {
        // 0 -> 2, 1 -> 2, 1 -> 3  with colors {0,1}, {2,3}.
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        let g = b.build();
        let p = Partition::from_classes(4, vec![vec![0, 1], vec![2, 3]]);
        let m = DegreeMatrices::compute(&g, &p);
        // Outgoing from color 0 to color 1: node 0 has 1, node 1 has 2 => err 1.
        assert_eq!(m.out_error(0, 1), 1.0);
        // Incoming into color 1 from color 0: node 2 has 2, node 3 has 1 => err 1.
        assert_eq!(m.in_error(0, 1), 1.0);
        // No edges inside color 0.
        assert_eq!(m.out_error(0, 0), 0.0);
        assert_eq!(max_q_error(&g, &p), 1.0);
    }

    #[test]
    fn zero_degree_nodes_counted_in_min() {
        // Color {0,1} where only node 0 has an edge to color {2}: min is 0.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let p = Partition::from_classes(3, vec![vec![0, 1], vec![2]]);
        let m = DegreeMatrices::compute(&g, &p);
        assert_eq!(m.out_max[1], 5.0);
        assert_eq!(m.out_min[1], 0.0);
        assert_eq!(m.out_error(0, 1), 5.0);
    }

    #[test]
    fn mean_error_leq_max_error() {
        let g = generators::barabasi_albert(200, 3, 7);
        let p = Partition::from_assignment(
            &(0..200).map(|v| (v % 5) as u32).collect::<Vec<_>>(),
        );
        let report = q_error_report(&g, &p);
        assert!(report.mean_q <= report.max_q);
        assert!(report.mean_q >= 0.0);
    }

    #[test]
    fn relative_error_of_star_partition() {
        // Star with center 0 and 4 leaves, all nodes in one color: degrees
        // into the color are {4, 1, 1, 1, 1}, so the relative spread is
        // ln(4 / 1).
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let unit = Partition::unit(5);
        let m = DegreeMatrices::compute(&g, &unit);
        assert!((m.out_relative_error(0, 0) - 4.0f64.ln()).abs() < 1e-12);
        assert!((max_relative_error(&g, &unit) - 4.0f64.ln()).abs() < 1e-12);
        // The stable coloring {center}, {leaves} has zero relative error.
        let p = Partition::from_classes(5, vec![vec![0], vec![1, 2, 3, 4]]);
        assert_eq!(max_relative_error(&g, &p), 0.0);
    }

    #[test]
    fn relative_error_infinite_when_zero_mixes_with_nonzero() {
        // Node 1 has no edge into color {2}, node 0 does: zero is only
        // ε-similar to zero, so the relative error is infinite while the
        // absolute error is finite.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let p = Partition::from_classes(3, vec![vec![0, 1], vec![2]]);
        assert_eq!(max_q_error(&g, &p), 5.0);
        assert!(max_relative_error(&g, &p).is_infinite());
    }

    #[test]
    fn stable_coloring_has_zero_q() {
        let g = generators::colored_regular(10, 8, 4, 2, 3);
        let p = crate::stable::stable_coloring(&g);
        assert_eq!(max_q_error(&g, &p), 0.0);
        assert_eq!(mean_q_error(&g, &p), 0.0);
    }
}
