//! Measuring how (quasi-)stable a coloring is, and maintaining that
//! measurement incrementally while a coloring is refined.
//!
//! For a coloring `P` of a weighted directed graph, the *q-error* of a pair
//! of colors `(P_i, P_j)` in the outgoing direction is
//! `max_{v ∈ P_i} w(v, P_j) − min_{v ∈ P_i} w(v, P_j)`; the incoming
//! direction is defined symmetrically over `w(P_i, v)` for `v ∈ P_j`.
//! A coloring is `q`-stable iff every such error is at most `q`, and stable
//! iff every error is exactly zero.
//!
//! Two evaluators live here:
//!
//! * [`DegreeMatrices`] — the from-scratch `O(n + m + k²)` computation, used
//!   for one-shot reports and as the ground truth the incremental engine is
//!   cross-checked against.
//! * [`IncrementalDegrees`] — the incremental refinement engine. Built once,
//!   then updated after every [`SplitEvent`] in time proportional to the
//!   edges incident to the moved nodes (plus the two affected rows), instead
//!   of rescanning the whole graph. This is what makes
//!   [`crate::rothko::Rothko`] splits `O(touched)` rather than `O(graph)`
//!   and keeps the anytime loop's per-step latency interactive (Table 6 of
//!   the paper).
//!
//! # Incremental maintenance invariants
//!
//! `IncrementalDegrees` maintains, between any two calls of
//! [`IncrementalDegrees::apply_split`]:
//!
//! 1. **Accumulators.** For every node `v` and color `j < k`:
//!    `dout[v][j] = w(v, P_j)` and `din[v][j] = w(P_j, v)` — the per-node
//!    per-color weighted degrees. Nodes with no edges into a color hold an
//!    explicit `0.0`, so min/max over a color's members needs no implicit
//!    zero bookkeeping (unlike `DegreeMatrices`, which tracks non-zero
//!    counts instead of dense rows).
//! 2. **Pair summaries.** For every ordered color pair `(i, j)`:
//!    `out_min/out_max[i][j] = min/max_{u ∈ P_i} dout[u][j]` and
//!    `in_min/in_max[i][j] = min/max_{v ∈ P_j} din[v][i]` — numerically
//!    identical to `DegreeMatrices::compute` up to floating-point
//!    associativity (exactly identical for integer-valued weights).
//! 3. **Witness rows.** Per *split-candidate* color `s`, a lazily refreshed
//!    cache row over all entries whose split color is `s` (the out-entries
//!    `(s, ·)` and in-entries `(·, s)`): the row's maximum unweighted error
//!    and its best β-weighted witness candidate. A split marks dirty only
//!    the rows whose entries could have changed — the parent, the child,
//!    every color containing a neighbor of a moved node, and rows whose
//!    cached best pointed at the parent — so a
//!    [`IncrementalDegrees::refresh`] + witness pick costs
//!    `O(changed rows · k)`, not `O(k²)`.
//!
//! A split `P_c → (P_c, P_child)` updates state as follows. Accumulator
//! columns `c`/`child` change only for in/out-neighbors of the moved nodes
//! (weight conservation: `dout[u][c] + dout[u][child]` is invariant, and
//! symmetrically for `din`). Pair summaries split into three classes:
//! rows/columns of `c` and `child` over the *member* axis are rebuilt by
//! scanning the two colors' members (`O((|P_c| + |P_child|) · k)`); entries
//! `(i, c)`/`(c, j)` over *other* colors' member axes are patched from the
//! touched neighbors, falling back to a one-column rescan only when a
//! touched node was the entry's unique extremum; all remaining entries are
//! untouched by construction. Debug builds cross-check the full state
//! against `DegreeMatrices::compute` after every split
//! ([`IncrementalDegrees::verify_against`]).
//!
//! Two structural specializations keep the engine lean:
//!
//! * **Symmetric graphs.** For undirected graphs the in-direction state is
//!   an exact mirror of the out-direction (`din[v] == dout[v]`,
//!   `in_min/max[i][j] == out_min/max[j][i]`, bit-for-bit, because the CSR
//!   stores both adjacency directions in ascending neighbor order), so the
//!   engine skips it entirely — half the memory and per-split work with
//!   identical results.
//! * **Degrees-only mode** ([`IncrementalDegrees::new_degrees_only`]).
//!   Signature-based refiners (the stable coloring) read accumulator rows
//!   and never ask for pair errors; this mode maintains only invariant 1,
//!   making `apply_split` pure `O(deg(moved))` and skipping the `O(k²)`
//!   matrices, which keeps near-discrete colorings (`k → n`) affordable.

use crate::partition::{Partition, SplitEvent};
use crate::similarity::Similarity;
use qsc_graph::{Graph, NodeId};

/// Direction of a degree/error matrix entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Entry `(i, j)` talks about outgoing weights of nodes in `P_i` into `P_j`.
    Out,
    /// Entry `(i, j)` talks about incoming weights of nodes in `P_j` from `P_i`.
    In,
}

/// Per-color-pair degree summaries of a coloring: for every ordered pair of
/// colors `(i, j)`, the maximum, minimum and total weight from nodes of `P_i`
/// into `P_j` (outgoing view) and from `P_i` into nodes of `P_j` (incoming
/// view). This is the `U`/`L` pair of Algorithm 1.
#[derive(Clone, Debug)]
pub struct DegreeMatrices {
    /// Number of colors `k`. All matrices are `k × k`, row-major.
    pub k: usize,
    /// `out_max[i*k + j] = max_{v ∈ P_i} w(v, P_j)`.
    pub out_max: Vec<f64>,
    /// `out_min[i*k + j] = min_{v ∈ P_i} w(v, P_j)`.
    pub out_min: Vec<f64>,
    /// `in_max[i*k + j] = max_{v ∈ P_j} w(P_i, v)`.
    pub in_max: Vec<f64>,
    /// `in_min[i*k + j] = min_{v ∈ P_j} w(P_i, v)`.
    pub in_min: Vec<f64>,
    /// `sum[i*k + j] = w(P_i, P_j)`, the total weight between the colors.
    pub sum: Vec<f64>,
    /// `nonzero[i*k + j]`: number of nodes of `P_i` with non-zero weight into
    /// `P_j` (used to decide whether a pair has any edges at all).
    pub nonzero: Vec<u32>,
}

impl DegreeMatrices {
    /// Compute the degree matrices of `p` on `g`. `O(n + m + k²)` time and
    /// `O(k²)` memory.
    pub fn compute(g: &Graph, p: &Partition) -> Self {
        let n = g.num_nodes();
        assert_eq!(p.num_nodes(), n, "partition does not match graph");
        let k = p.num_colors();
        let mut out_max = vec![f64::NEG_INFINITY; k * k];
        let mut out_min = vec![f64::INFINITY; k * k];
        let mut in_max = vec![f64::NEG_INFINITY; k * k];
        let mut in_min = vec![f64::INFINITY; k * k];
        let mut sum = vec![0.0f64; k * k];
        let mut out_count = vec![0u32; k * k];
        let mut in_count = vec![0u32; k * k];

        let mut scratch = vec![0.0f64; k];
        let mut touched: Vec<u32> = Vec::with_capacity(k);

        for v in 0..n as u32 {
            let ci = p.color_of(v) as usize;
            // Outgoing.
            touched.clear();
            for (t, w) in g.out_edges(v) {
                let cj = p.color_of(t) as usize;
                if scratch[cj] == 0.0 && !touched.contains(&(cj as u32)) {
                    touched.push(cj as u32);
                }
                scratch[cj] += w;
            }
            for &cj in &touched {
                let cj = cj as usize;
                let w = scratch[cj];
                let idx = ci * k + cj;
                if w > out_max[idx] {
                    out_max[idx] = w;
                }
                if w < out_min[idx] {
                    out_min[idx] = w;
                }
                sum[idx] += w;
                out_count[idx] += 1;
                scratch[cj] = 0.0;
            }
            // Incoming.
            touched.clear();
            for (s, w) in g.in_edges(v) {
                let cj = p.color_of(s) as usize;
                if scratch[cj] == 0.0 && !touched.contains(&(cj as u32)) {
                    touched.push(cj as u32);
                }
                scratch[cj] += w;
            }
            for &cj in &touched {
                let cj = cj as usize;
                let w = scratch[cj];
                // Entry (cj, ci): weights from P_cj into node v of P_ci.
                let idx = cj * k + ci;
                if w > in_max[idx] {
                    in_max[idx] = w;
                }
                if w < in_min[idx] {
                    in_min[idx] = w;
                }
                in_count[idx] += 1;
                scratch[cj] = 0.0;
            }
        }

        // Account for nodes with zero weight towards a color: if not every
        // node of the source color touched the pair, the minimum weight is at
        // most 0 and the maximum at least 0. Pairs with no edges at all get
        // max = min = 0.
        for i in 0..k {
            let size_i = p.size(i as u32) as u32;
            for j in 0..k {
                let idx = i * k + j;
                if out_count[idx] == 0 {
                    out_max[idx] = 0.0;
                    out_min[idx] = 0.0;
                } else if out_count[idx] < size_i {
                    out_max[idx] = out_max[idx].max(0.0);
                    out_min[idx] = out_min[idx].min(0.0);
                }
                let size_j = p.size(j as u32) as u32;
                if in_count[idx] == 0 {
                    in_max[idx] = 0.0;
                    in_min[idx] = 0.0;
                } else if in_count[idx] < size_j {
                    in_max[idx] = in_max[idx].max(0.0);
                    in_min[idx] = in_min[idx].min(0.0);
                }
            }
        }

        DegreeMatrices {
            k,
            out_max,
            out_min,
            in_max,
            in_min,
            sum,
            nonzero: out_count,
        }
    }

    /// Outgoing error `U − L` at `(i, j)`.
    #[inline]
    pub fn out_error(&self, i: usize, j: usize) -> f64 {
        self.out_max[i * self.k + j] - self.out_min[i * self.k + j]
    }

    /// Incoming error at `(i, j)`.
    #[inline]
    pub fn in_error(&self, i: usize, j: usize) -> f64 {
        self.in_max[i * self.k + j] - self.in_min[i * self.k + j]
    }

    /// Outgoing *relative* error at `(i, j)`: the smallest `ε` such that all
    /// outgoing weights of `P_i` into `P_j` are pairwise `∼_ε`-similar
    /// (`ln(max/min)` for positive weights, `0` when all weights are equal,
    /// `+∞` when the weights mix zero/non-zero values or signs).
    pub fn out_relative_error(&self, i: usize, j: usize) -> f64 {
        relative_spread(self.out_min[i * self.k + j], self.out_max[i * self.k + j])
    }

    /// Incoming relative error at `(i, j)` (see [`Self::out_relative_error`]).
    pub fn in_relative_error(&self, i: usize, j: usize) -> f64 {
        relative_spread(self.in_min[i * self.k + j], self.in_max[i * self.k + j])
    }

    /// Maximum relative error over all pairs and both directions.
    pub fn max_relative_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.k {
            for j in 0..self.k {
                max = max
                    .max(self.out_relative_error(i, j))
                    .max(self.in_relative_error(i, j));
            }
        }
        max
    }

    /// Total weight `w(P_i, P_j)`.
    #[inline]
    pub fn pair_weight(&self, i: usize, j: usize) -> f64 {
        self.sum[i * self.k + j]
    }

    /// Maximum error over all pairs and both directions.
    pub fn max_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.k {
            for j in 0..self.k {
                max = max.max(self.out_error(i, j)).max(self.in_error(i, j));
            }
        }
        max
    }

    /// Mean error over pairs that have at least one edge (both directions).
    pub fn mean_error(&self) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for i in 0..self.k {
            for j in 0..self.k {
                if self.nonzero[i * self.k + j] > 0 {
                    total += self.out_error(i, j);
                    total += self.in_error(i, j);
                    count += 2;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// The smallest `ε` such that every value in `[min, max]`-spread data is
/// pairwise `∼_ε`-similar (Sec. 3.1, ε-relative coloring).
fn relative_spread(min: f64, max: f64) -> f64 {
    if min == max {
        return 0.0;
    }
    if min <= 0.0 && max >= 0.0 && (min != 0.0 || max != 0.0) {
        // A zero together with a non-zero value (or mixed signs) can never
        // be ε-similar.
        if min == 0.0 && max == 0.0 {
            return 0.0;
        }
        return f64::INFINITY;
    }
    let (lo, hi) = (min.abs().min(max.abs()), min.abs().max(max.abs()));
    if lo == 0.0 {
        return f64::INFINITY;
    }
    (hi / lo).ln()
}

/// Maximum ε-relative error of a coloring: the smallest `ε` such that `p` is
/// an ε-relative quasi-stable coloring of `g` (possibly `+∞`).
pub fn max_relative_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).max_relative_error()
}

/// A compact report of the quality of a coloring.
#[derive(Clone, Debug, PartialEq)]
pub struct QErrorReport {
    /// Maximum q-error over all color pairs and both directions.
    pub max_q: f64,
    /// Mean q-error over color pairs with at least one edge.
    pub mean_q: f64,
    /// Number of colors.
    pub num_colors: usize,
    /// The pair of colors and direction attaining the maximum error.
    pub worst_pair: Option<(u32, u32, Direction)>,
}

/// Compute a [`QErrorReport`] for a coloring.
pub fn q_error_report(g: &Graph, p: &Partition) -> QErrorReport {
    let m = DegreeMatrices::compute(g, p);
    let mut max_q = 0.0f64;
    let mut worst = None;
    for i in 0..m.k {
        for j in 0..m.k {
            let eo = m.out_error(i, j);
            if eo > max_q {
                max_q = eo;
                worst = Some((i as u32, j as u32, Direction::Out));
            }
            let ei = m.in_error(i, j);
            if ei > max_q {
                max_q = ei;
                worst = Some((i as u32, j as u32, Direction::In));
            }
        }
    }
    QErrorReport {
        max_q,
        mean_q: m.mean_error(),
        num_colors: m.k,
        worst_pair: worst,
    }
}

/// Maximum q-error of the coloring: the smallest `q` for which `p` is a
/// `q`-stable coloring of `g`.
pub fn max_q_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).max_error()
}

/// Mean q-error of the coloring over color pairs with at least one edge.
pub fn mean_q_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).mean_error()
}

/// Exhaustively check Definition 1: is `p` a `∼`-quasi-stable coloring of
/// `g`? This performs pairwise similarity checks within every color (cost
/// `O(Σ_i |P_i|² · k)` in the worst case); it is intended for validation and
/// tests, not production use. For the absolute (`q`) relation prefer
/// [`max_q_error`].
pub fn is_quasi_stable<S: Similarity>(g: &Graph, p: &Partition, sim: &S) -> bool {
    let k = p.num_colors();
    let n = g.num_nodes();
    // Per node, accumulate weight to each color (out) and from each color
    // (in), then check pairwise within each color.
    for j in 0..k as u32 {
        // Outgoing weights into color j, grouped by source color.
        let mut per_node = vec![0.0f64; n];
        for &t in p.members(j) {
            for (s, w) in g.in_edges(t) {
                per_node[s as usize] += w;
            }
        }
        for i in 0..k as u32 {
            let members = p.members(i);
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let u = per_node[members[a] as usize];
                    let v = per_node[members[b] as usize];
                    if !sim.similar(u, v) {
                        return false;
                    }
                }
            }
        }
        // Incoming weights from color j, grouped by target color.
        let mut per_node_in = vec![0.0f64; n];
        for &s in p.members(j) {
            for (t, w) in g.out_edges(s) {
                per_node_in[t as usize] += w;
            }
        }
        for i in 0..k as u32 {
            let members = p.members(i);
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let u = per_node_in[members[a] as usize];
                    let v = per_node_in[members[b] as usize];
                    if !sim.similar(u, v) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// A witness candidate produced by [`IncrementalDegrees::pick_witness`]: the
/// color pair and direction with the largest size-weighted error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WitnessCandidate {
    /// The color whose members disagree (the one to split).
    pub split_color: u32,
    /// The color the disagreeing degrees point towards / come from.
    pub other_color: u32,
    /// `true`: members of `split_color` differ in outgoing weight into
    /// `other_color`; `false`: they differ in incoming weight from it.
    pub outgoing: bool,
    /// The unweighted q-error of the pair.
    pub error: f64,
}

/// Per-row best witness candidate cached by the engine (weighted by the
/// target-size exponent β only; the source-size exponent α is applied at
/// pick time because the row's own size can change without invalidating the
/// row's internal ordering).
#[derive(Clone, Copy, Debug)]
struct RowBest {
    weighted: f64,
    other: u32,
    outgoing: bool,
    error: f64,
}

/// Per-color scratch record used while applying a split (one per color that
/// contains a neighbor of a moved node).
#[derive(Clone, Copy, Debug)]
struct TouchedColor {
    color: u32,
    /// Entry extrema at batch start (for detecting a lost extremum).
    orig_min: f64,
    orig_max: f64,
    /// Whether a touched node held the entry's unique extremum and moved
    /// inward, requiring a one-column rescan.
    rescan: bool,
    /// Distinct touched members of this color.
    count: usize,
    /// Min/max of the touched members' accumulator values in the child
    /// column.
    child_min: f64,
    child_max: f64,
}

/// The incremental refinement engine: degree matrices plus per-node degree
/// accumulators, kept in sync with a partition across [`SplitEvent`]s.
///
/// See the module documentation for the maintained invariants. Typical use:
///
/// ```
/// use qsc_core::q_error::{DegreeMatrices, IncrementalDegrees};
/// use qsc_core::Partition;
/// use qsc_graph::generators::karate_club;
///
/// let g = karate_club();
/// let mut p = Partition::unit(g.num_nodes());
/// let mut engine = IncrementalDegrees::new(&g, &p);
/// // Split off the high-degree nodes and update the engine in O(touched).
/// let event = p.split_color(0, |v| g.out_degree(v) > 5).unwrap();
/// engine.apply_split(&g, &p, &event);
/// assert_eq!(engine.verify_against(&g, &p), Ok(()));
/// let scratch = DegreeMatrices::compute(&g, &p);
/// assert_eq!(engine.out_error(0, 1), scratch.out_error(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalDegrees {
    n: usize,
    k: usize,
    /// Column capacity (stride) of the accumulators and matrices; grows
    /// geometrically as colors are added.
    cap: usize,
    /// `dout[v * cap + j] = w(v, P_j)`.
    dout: Vec<f64>,
    /// `din[v * cap + j] = w(P_j, v)`.
    din: Vec<f64>,
    /// `out_min/out_max[i * cap + j]` over `u ∈ P_i` of `dout[u][j]`.
    out_min: Vec<f64>,
    out_max: Vec<f64>,
    /// `in_min/in_max[i * cap + j]` over `v ∈ P_j` of `din[v][i]`.
    in_min: Vec<f64>,
    in_max: Vec<f64>,
    /// Whether the graph is undirected (stored as symmetric arcs). The
    /// in-direction state is then an exact mirror of the out-direction
    /// (`din[v] == dout[v]` and `in_min/max[i][j] == out_min/max[j][i]`,
    /// including floating-point operation order, since the CSR stores both
    /// adjacency directions in ascending neighbor order), so the engine
    /// skips it entirely: half the memory, half the per-split work,
    /// bit-identical results.
    symmetric: bool,
    /// Whether pair summaries and the witness cache are maintained. The
    /// degrees-only mode (`new_degrees_only`) keeps just the accumulators,
    /// which is all signature-based refiners like the stable coloring need;
    /// it makes `apply_split` pure `O(deg(moved))` and skips the `O(k²)`
    /// matrix storage entirely.
    track_summaries: bool,
    /// β exponent used by the last [`Self::refresh`]; negative values void
    /// the best-pointed-at-parent invalidation shortcut (shrinking a target
    /// color then *grows* candidate weights), so splits dirty every row.
    last_beta: f64,
    /// Witness-row cache (see module docs, invariant 3).
    row_max_err: Vec<f64>,
    row_best: Vec<Option<RowBest>>,
    row_dirty: Vec<bool>,
    /// Node-stamp scratch for deduplicating touched neighbors.
    node_stamp: Vec<u32>,
    node_delta: Vec<f64>,
    stamp_gen: u32,
    touched_nodes: Vec<NodeId>,
    /// Color-slot scratch for per-touched-color aggregation (self-validating
    /// indices into `touched_colors`).
    color_slot: Vec<u32>,
    touched_colors: Vec<TouchedColor>,
    /// Row-recompute scratch (4 × cap).
    row_scratch: Vec<f64>,
}

impl IncrementalDegrees {
    /// Build the full engine (accumulators + pair summaries + witness
    /// cache) for partition `p` on `g` in `O(n·k + m)` time.
    pub fn new(g: &Graph, p: &Partition) -> Self {
        Self::with_mode(g, p, true)
    }

    /// Build a degrees-only engine: per-node accumulators maintained in
    /// `O(deg(moved))` per split, no `O(k²)` pair summaries or witness
    /// cache. This is what signature-based refiners (the stable coloring)
    /// use — they read accumulator rows and never ask for errors, so
    /// near-discrete colorings (`k → n`) stay affordable.
    pub fn new_degrees_only(g: &Graph, p: &Partition) -> Self {
        Self::with_mode(g, p, false)
    }

    fn with_mode(g: &Graph, p: &Partition, track_summaries: bool) -> Self {
        let n = g.num_nodes();
        assert_eq!(p.num_nodes(), n, "partition does not match graph");
        let symmetric = !g.is_directed();
        let k = p.num_colors();
        let cap = k.next_power_of_two().max(4);
        let mat_cap = if track_summaries { cap } else { 0 };
        let in_cap = if symmetric { 0 } else { cap };
        let in_mat_cap = if symmetric { 0 } else { mat_cap };
        let mut engine = IncrementalDegrees {
            n,
            k,
            cap,
            dout: vec![0.0; n * cap],
            din: vec![0.0; n * in_cap],
            out_min: vec![0.0; mat_cap * mat_cap],
            out_max: vec![0.0; mat_cap * mat_cap],
            in_min: vec![0.0; in_mat_cap * in_mat_cap],
            in_max: vec![0.0; in_mat_cap * in_mat_cap],
            symmetric,
            track_summaries,
            last_beta: 0.0,
            row_max_err: vec![0.0; mat_cap],
            row_best: vec![None; mat_cap],
            row_dirty: vec![true; mat_cap],
            node_stamp: vec![0; n],
            node_delta: vec![0.0; n],
            stamp_gen: 0,
            touched_nodes: Vec::new(),
            color_slot: vec![0; mat_cap],
            touched_colors: Vec::new(),
            row_scratch: vec![0.0; 4 * mat_cap],
        };

        // Accumulators: one sweep over each adjacency direction.
        let (offs, tgts, wts) = g.out_adjacency();
        for v in 0..n {
            let base = v * cap;
            for e in offs[v]..offs[v + 1] {
                engine.dout[base + p.color_of(tgts[e]) as usize] += wts[e];
            }
        }
        if !symmetric {
            let (offs, srcs, wts) = g.in_adjacency();
            for v in 0..n {
                let base = v * cap;
                for e in offs[v]..offs[v + 1] {
                    engine.din[base + p.color_of(srcs[e]) as usize] += wts[e];
                }
            }
        }

        if track_summaries {
            // Pair summaries: scan each color's members once.
            for s in 0..k {
                engine.recompute_color_axis(p, s);
            }
        }
        engine
    }

    /// Number of colors currently tracked.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.k
    }

    /// Whether the graph is undirected, i.e. the in-direction state mirrors
    /// the out-direction exactly (see the module docs). Consumers can skip
    /// their own in-direction work when this holds.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// The maintained `w(v, P_j)` accumulator.
    #[inline]
    pub fn out_degree_of(&self, v: NodeId, color: u32) -> f64 {
        self.dout[v as usize * self.cap + color as usize]
    }

    /// The maintained `w(P_j, v)` accumulator.
    #[inline]
    pub fn in_degree_of(&self, v: NodeId, color: u32) -> f64 {
        if self.symmetric {
            return self.out_degree_of(v, color);
        }
        self.din[v as usize * self.cap + color as usize]
    }

    /// The full out-degree accumulator row of `v` (length `k`).
    #[inline]
    pub fn out_row(&self, v: NodeId) -> &[f64] {
        let base = v as usize * self.cap;
        &self.dout[base..base + self.k]
    }

    /// The full in-degree accumulator row of `v` (length `k`).
    #[inline]
    pub fn in_row(&self, v: NodeId) -> &[f64] {
        if self.symmetric {
            return self.out_row(v);
        }
        let base = v as usize * self.cap;
        &self.din[base..base + self.k]
    }

    /// Outgoing error `U − L` at `(i, j)` (same convention as
    /// [`DegreeMatrices::out_error`]).
    #[inline]
    pub fn out_error(&self, i: usize, j: usize) -> f64 {
        debug_assert!(
            self.track_summaries,
            "pair summaries not tracked by this engine"
        );
        self.out_max[i * self.cap + j] - self.out_min[i * self.cap + j]
    }

    /// Incoming error at `(i, j)` (same convention as
    /// [`DegreeMatrices::in_error`]).
    #[inline]
    pub fn in_error(&self, i: usize, j: usize) -> f64 {
        debug_assert!(
            self.track_summaries,
            "pair summaries not tracked by this engine"
        );
        if self.symmetric {
            return self.out_error(j, i);
        }
        self.in_max[i * self.cap + j] - self.in_min[i * self.cap + j]
    }

    /// Apply a split performed on the partition. `p` must be the partition
    /// *after* the split and `event.child` must be the next color id (splits
    /// are applied in order).
    ///
    /// Cost: `O(deg(moved) + (|parent| + |child|)·k)` plus a one-column
    /// member rescan for each pair summary whose unique extremum moved.
    pub fn apply_split(&mut self, g: &Graph, p: &Partition, event: &SplitEvent) {
        let c = event.parent as usize;
        let child = event.child as usize;
        assert_eq!(child, self.k, "split events must be applied in order");
        assert_eq!(
            p.num_colors(),
            self.k + 1,
            "partition out of sync with engine"
        );
        self.ensure_capacity(self.k + 1);
        self.k += 1;
        let cap = self.cap;
        let track = self.track_summaries;

        if track {
            // Fresh row/column for the child: "no edges" until proven
            // otherwise.
            for i in 0..self.k {
                self.out_min[i * cap + child] = 0.0;
                self.out_max[i * cap + child] = 0.0;
                self.out_min[child * cap + i] = 0.0;
                self.out_max[child * cap + i] = 0.0;
                if !self.symmetric {
                    self.in_min[i * cap + child] = 0.0;
                    self.in_max[i * cap + child] = 0.0;
                    self.in_min[child * cap + i] = 0.0;
                    self.in_max[child * cap + i] = 0.0;
                }
            }
            self.row_max_err[child] = 0.0;
            self.row_best[child] = None;
        }

        // ---- Out side: sources with edges into the moved nodes. Their
        // dout mass shifts from column `parent` to column `child`.
        self.collect_touched(g, &event.moved_nodes, true);
        let touched = std::mem::take(&mut self.touched_nodes);
        self.begin_color_batch();
        for &u in &touched {
            let d = self.node_delta[u as usize];
            let base = u as usize * cap;
            let old = self.dout[base + c];
            let new = old - d;
            self.dout[base + c] = new;
            self.dout[base + child] += d;
            if !track {
                continue;
            }
            let i = p.color_of(u) as usize;
            if i == c || i == child {
                continue; // both color axes are rebuilt below
            }
            let child_val = self.dout[base + child];
            self.patch_entry(EntryKind::OutCol, i, c, old, new, child_val);
        }
        let batch = std::mem::take(&mut self.touched_colors);
        for t in &batch {
            let i = t.color as usize;
            if t.rescan {
                self.rescan_out_entry(p, i, c);
            }
            let (mut mn, mut mx) = (t.child_min, t.child_max);
            if t.count < p.size(t.color) {
                mn = mn.min(0.0);
                mx = mx.max(0.0);
            }
            self.out_min[i * cap + child] = mn;
            self.out_max[i * cap + child] = mx;
            self.row_dirty[i] = true;
        }
        self.touched_colors = batch;
        self.touched_nodes = touched;

        // ---- In side: targets of the moved nodes' out-edges. Their din
        // mass shifts from column `parent` to column `child`. (Skipped for
        // undirected graphs, where the in-state mirrors the out-state.)
        if !self.symmetric {
            self.in_side_split_update(g, p, event, c, child);
        }
        if track {
            // ---- Member axes of child and parent. The child is rebuilt
            // from its members' (now final) accumulator rows; the parent's
            // entries over unchanged columns only shrank in membership, so
            // they keep their value unless the departed child attained the
            // old extremum (then a one-column member rescan re-derives it).
            self.recompute_color_axis(p, child);
            self.recompute_parent_axis(p, c, child);

            // ---- Witness-row invalidation: rows recomputed above are
            // dirty, and any cached best that pointed at the parent saw its
            // target size or error change. A negative β voids that
            // shortcut: shrinking a target color *raises* candidate
            // weights, so stale non-best candidates can overtake silently —
            // dirty everything.
            self.row_dirty[c] = true;
            self.row_dirty[child] = true;
            if self.last_beta < 0.0 {
                self.row_dirty[..self.k].fill(true);
            } else {
                for s in 0..self.k {
                    if let Some(best) = &self.row_best[s] {
                        if best.other as usize == c {
                            self.row_dirty[s] = true;
                        }
                    }
                }
            }
        }

        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                self.verify_against(g, p),
                Ok(()),
                "incremental state diverged from scratch recomputation"
            );
        }
    }

    /// The in-direction half of [`Self::apply_split`]: shift din mass of
    /// the moved nodes' out-neighbors from the parent column to the child
    /// column, patching the affected in-entries. Not called for undirected
    /// graphs (the in-state mirrors the out-state there).
    fn in_side_split_update(
        &mut self,
        g: &Graph,
        p: &Partition,
        event: &SplitEvent,
        c: usize,
        child: usize,
    ) {
        let cap = self.cap;
        let track = self.track_summaries;
        self.collect_touched(g, &event.moved_nodes, false);
        let touched = std::mem::take(&mut self.touched_nodes);
        self.begin_color_batch();
        for &t in &touched {
            let d = self.node_delta[t as usize];
            let base = t as usize * cap;
            let old = self.din[base + c];
            let new = old - d;
            self.din[base + c] = new;
            self.din[base + child] += d;
            if !track {
                continue;
            }
            let j = p.color_of(t) as usize;
            if j == c || j == child {
                continue;
            }
            let child_val = self.din[base + child];
            self.patch_entry(EntryKind::InRow, c, j, old, new, child_val);
        }
        let batch = std::mem::take(&mut self.touched_colors);
        for t in &batch {
            let j = t.color as usize;
            if t.rescan {
                self.rescan_in_entry(p, c, j);
            }
            let (mut mn, mut mx) = (t.child_min, t.child_max);
            if t.count < p.size(t.color) {
                mn = mn.min(0.0);
                mx = mx.max(0.0);
            }
            self.in_min[child * cap + j] = mn;
            self.in_max[child * cap + j] = mx;
            self.row_dirty[j] = true;
        }
        self.touched_colors = batch;
        self.touched_nodes = touched;
    }

    /// Rebuild the parent's member-axis entries after a split: out-entries
    /// `(c, j)` and in-entries `(j, c)`. Columns `c`/`child` saw their
    /// accumulator values change and are always rescanned; for every other
    /// column the values are untouched and membership only shrank, so the
    /// old extremum stands unless the child color attained it.
    /// Cost: `O(k)` comparisons plus `O(|parent|)` per rescanned column.
    fn recompute_parent_axis(&mut self, p: &Partition, c: usize, child: usize) {
        let cap = self.cap;
        for j in 0..self.k {
            if j == c || j == child {
                self.rescan_out_entry(p, c, j);
                if !self.symmetric {
                    // In-entry over the parent's member axis with the
                    // changed column as first index: (c, c) for j == c,
                    // (child, c) for j == child.
                    self.rescan_in_entry(p, j, c);
                }
                continue;
            }
            let out_idx = c * cap + j;
            let out_child = child * cap + j;
            if self.out_min[out_child] == self.out_min[out_idx]
                || self.out_max[out_child] == self.out_max[out_idx]
            {
                self.rescan_out_entry(p, c, j);
            }
            if self.symmetric {
                continue;
            }
            let in_idx = j * cap + c;
            let in_child = j * cap + child;
            if self.in_min[in_child] == self.in_min[in_idx]
                || self.in_max[in_child] == self.in_max[in_idx]
            {
                self.rescan_in_entry(p, j, c);
            }
        }
    }

    /// Recompute the dirty witness rows. `beta` is the target-size exponent
    /// of the witness weighting (the paper's β); it must be the same value
    /// across calls for a given run, since clean rows keep their cached
    /// β-weighted bests.
    pub fn refresh(&mut self, p: &Partition, beta: f64) {
        assert!(
            self.track_summaries,
            "refresh requires a summary-tracking engine"
        );
        if beta != self.last_beta {
            // Clean rows cached their bests under the old weighting; a
            // changed β makes those stale, so rebuild everything.
            self.row_dirty[..self.k].fill(true);
            self.last_beta = beta;
        }
        for s in 0..self.k {
            if !self.row_dirty[s] {
                continue;
            }
            self.row_dirty[s] = false;
            let mut max_err = 0.0f64;
            let mut best: Option<RowBest> = None;
            let splittable = p.size(s as u32) >= 2;
            let mut consider = |weighted: f64, error: f64, other: u32, outgoing: bool| match &best {
                Some(b) if b.weighted >= weighted => {}
                _ => {
                    best = Some(RowBest {
                        weighted,
                        other,
                        outgoing,
                        error,
                    })
                }
            };
            for j in 0..self.k {
                let e = self.out_error(s, j);
                if e > max_err {
                    max_err = e;
                }
                if splittable && e > 0.0 {
                    consider(e * size_pow(p.size(j as u32), beta), e, j as u32, true);
                }
            }
            if !self.symmetric {
                // For undirected graphs the in-entries (i, s) mirror the
                // out-entries (s, i) already scanned above (equal error and
                // weight, and the out candidate wins the tie), so this loop
                // only runs for directed graphs.
                for i in 0..self.k {
                    let e = self.in_error(i, s);
                    if e > max_err {
                        max_err = e;
                    }
                    if splittable && e > 0.0 {
                        consider(e * size_pow(p.size(i as u32), beta), e, i as u32, false);
                    }
                }
            }
            self.row_max_err[s] = max_err;
            self.row_best[s] = best;
        }
    }

    /// Maximum q-error over all pairs and directions. Requires
    /// [`Self::refresh`] since the last split.
    pub fn max_error(&self) -> f64 {
        debug_assert!(
            self.row_dirty[..self.k].iter().all(|d| !d),
            "max_error called with dirty witness rows; call refresh() first"
        );
        self.row_max_err[..self.k]
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// The witness with the largest `error · |P_split|^α · |P_other|^β`
    /// weight among splittable colors (size ≥ 2), or `None` when every
    /// remaining error sits inside singleton colors or the coloring is
    /// stable. Requires [`Self::refresh`] since the last split (with the
    /// same `beta`).
    pub fn pick_witness(&self, p: &Partition, alpha: f64) -> Option<WitnessCandidate> {
        debug_assert!(
            self.row_dirty[..self.k].iter().all(|d| !d),
            "pick_witness called with dirty witness rows; call refresh() first"
        );
        let mut best: Option<(f64, WitnessCandidate)> = None;
        for s in 0..self.k {
            let Some(row) = &self.row_best[s] else {
                continue;
            };
            let weighted = row.weighted * size_pow(p.size(s as u32), alpha);
            match &best {
                Some((bw, _)) if *bw >= weighted => {}
                _ => {
                    best = Some((
                        weighted,
                        WitnessCandidate {
                            split_color: s as u32,
                            other_color: row.other,
                            outgoing: row.outgoing,
                            error: row.error,
                        },
                    ))
                }
            }
        }
        best.map(|(_, w)| w)
    }

    /// Cross-check the full maintained state against a from-scratch
    /// [`DegreeMatrices::compute`] (and freshly recomputed accumulators),
    /// with a small tolerance for floating-point associativity. Returns a
    /// description of the first mismatch. Intended for tests and the debug
    /// assertion inside [`Self::apply_split`].
    pub fn verify_against(&self, g: &Graph, p: &Partition) -> Result<(), String> {
        if p.num_colors() != self.k {
            return Err(format!(
                "color count {} != engine {}",
                p.num_colors(),
                self.k
            ));
        }
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
        if self.track_summaries {
            let scratch = DegreeMatrices::compute(g, p);
            for i in 0..self.k {
                for j in 0..self.k {
                    let idx = i * self.cap + j;
                    let sidx = i * self.k + j;
                    let (in_min_ours, in_max_ours) = if self.symmetric {
                        (
                            self.out_min[j * self.cap + i],
                            self.out_max[j * self.cap + i],
                        )
                    } else {
                        (self.in_min[idx], self.in_max[idx])
                    };
                    for (name, ours, theirs) in [
                        ("out_min", self.out_min[idx], scratch.out_min[sidx]),
                        ("out_max", self.out_max[idx], scratch.out_max[sidx]),
                        ("in_min", in_min_ours, scratch.in_min[sidx]),
                        ("in_max", in_max_ours, scratch.in_max[sidx]),
                    ] {
                        if !close(ours, theirs) {
                            return Err(format!(
                                "{name}[{i}][{j}]: incremental {ours} vs scratch {theirs}"
                            ));
                        }
                    }
                }
            }
        }
        // Accumulators, recomputed fresh.
        for v in 0..self.n as NodeId {
            let mut fresh = vec![0.0f64; self.k];
            for (t, w) in g.out_edges(v) {
                fresh[p.color_of(t) as usize] += w;
            }
            for (j, &expected) in fresh.iter().enumerate() {
                if !close(self.out_degree_of(v, j as u32), expected) {
                    return Err(format!(
                        "dout[{v}][{j}]: incremental {} vs fresh {}",
                        self.out_degree_of(v, j as u32),
                        expected
                    ));
                }
            }
            let mut fresh = vec![0.0f64; self.k];
            for (s, w) in g.in_edges(v) {
                fresh[p.color_of(s) as usize] += w;
            }
            for (j, &expected) in fresh.iter().enumerate() {
                if !close(self.in_degree_of(v, j as u32), expected) {
                    return Err(format!(
                        "din[{v}][{j}]: incremental {} vs fresh {}",
                        self.in_degree_of(v, j as u32),
                        expected
                    ));
                }
            }
        }
        Ok(())
    }

    // ---- internals ----

    /// Rebuild every pair summary indexed along color `s`'s member axis:
    /// out-entries `(s, j)` and in-entries `(j, s)` for all `j`, by scanning
    /// the accumulator rows of `P_s`'s members. `O(|P_s| · k)`.
    fn recompute_color_axis(&mut self, p: &Partition, s: usize) {
        let k = self.k;
        let cap = self.cap;
        let (omin, rest) = self.row_scratch.split_at_mut(cap);
        let (omax, rest) = rest.split_at_mut(cap);
        let (imin, imax) = rest.split_at_mut(cap);
        omin[..k].fill(f64::INFINITY);
        omax[..k].fill(f64::NEG_INFINITY);
        imin[..k].fill(f64::INFINITY);
        imax[..k].fill(f64::NEG_INFINITY);
        if self.symmetric {
            for &u in p.members(s as u32) {
                let base = u as usize * cap;
                for j in 0..k {
                    let o = self.dout[base + j];
                    if o < omin[j] {
                        omin[j] = o;
                    }
                    if o > omax[j] {
                        omax[j] = o;
                    }
                }
            }
            for j in 0..k {
                self.out_min[s * cap + j] = omin[j];
                self.out_max[s * cap + j] = omax[j];
            }
        } else {
            for &u in p.members(s as u32) {
                let base = u as usize * cap;
                for j in 0..k {
                    let o = self.dout[base + j];
                    if o < omin[j] {
                        omin[j] = o;
                    }
                    if o > omax[j] {
                        omax[j] = o;
                    }
                    let i = self.din[base + j];
                    if i < imin[j] {
                        imin[j] = i;
                    }
                    if i > imax[j] {
                        imax[j] = i;
                    }
                }
            }
            for j in 0..k {
                self.out_min[s * cap + j] = omin[j];
                self.out_max[s * cap + j] = omax[j];
                self.in_min[j * cap + s] = imin[j];
                self.in_max[j * cap + s] = imax[j];
            }
        }
        self.row_dirty[s] = true;
    }

    /// Collect the distinct neighbors of `moved` (sources of their in-edges
    /// when `incoming`, targets of their out-edges otherwise) into
    /// `touched_nodes`, accumulating per-neighbor weight deltas in
    /// `node_delta`.
    fn collect_touched(&mut self, g: &Graph, moved: &[NodeId], incoming: bool) {
        self.stamp_gen = self.stamp_gen.wrapping_add(1);
        if self.stamp_gen == 0 {
            self.node_stamp.fill(0);
            self.stamp_gen = 1;
        }
        self.touched_nodes.clear();
        for &v in moved {
            let (nbrs, wts) = if incoming {
                g.in_arcs(v)
            } else {
                g.out_arcs(v)
            };
            for (idx, &u) in nbrs.iter().enumerate() {
                if self.node_stamp[u as usize] != self.stamp_gen {
                    self.node_stamp[u as usize] = self.stamp_gen;
                    self.node_delta[u as usize] = 0.0;
                    self.touched_nodes.push(u);
                }
                self.node_delta[u as usize] += wts[idx];
            }
        }
    }

    fn begin_color_batch(&mut self) {
        // Slot lookups self-validate (a stored index is live only if the
        // record at that index names the same color), so clearing the
        // record list is all the reset a new batch needs.
        self.touched_colors.clear();
    }

    /// Patch one pair summary entry for a touched node whose accumulator
    /// moved from `old` to `new`, and record the node's `child`-column value
    /// for the batch finalization. `row`/`col` index the entry in the
    /// affected matrix (`EntryKind` chooses which); the *batched* color is
    /// the one whose member axis the entry ranges over.
    fn patch_entry(
        &mut self,
        kind: EntryKind,
        row: usize,
        col: usize,
        old: f64,
        new: f64,
        child_val: f64,
    ) {
        let idx = row * self.cap + col;
        let (cur_min, cur_max) = match kind {
            EntryKind::OutCol => (self.out_min[idx], self.out_max[idx]),
            EntryKind::InRow => (self.in_min[idx], self.in_max[idx]),
        };
        let batched_color = match kind {
            EntryKind::OutCol => row as u32,
            EntryKind::InRow => col as u32,
        };
        let slot = self.color_slot[batched_color as usize] as usize;
        let slot = if slot < self.touched_colors.len()
            && self.touched_colors[slot].color == batched_color
        {
            slot
        } else {
            let fresh = self.touched_colors.len();
            self.color_slot[batched_color as usize] = fresh as u32;
            self.touched_colors.push(TouchedColor {
                color: batched_color,
                orig_min: cur_min,
                orig_max: cur_max,
                rescan: false,
                count: 0,
                child_min: f64::INFINITY,
                child_max: f64::NEG_INFINITY,
            });
            fresh
        };
        let record = &mut self.touched_colors[slot];
        // A touched node that held the batch-start extremum and moved
        // strictly inward may leave the entry without its extremum.
        if (old == record.orig_max && new < old) || (old == record.orig_min && new > old) {
            record.rescan = true;
        }
        record.count += 1;
        if child_val < record.child_min {
            record.child_min = child_val;
        }
        if child_val > record.child_max {
            record.child_max = child_val;
        }
        let (emn, emx) = match kind {
            EntryKind::OutCol => (&mut self.out_min[idx], &mut self.out_max[idx]),
            EntryKind::InRow => (&mut self.in_min[idx], &mut self.in_max[idx]),
        };
        if new < *emn {
            *emn = new;
        }
        if new > *emx {
            *emx = new;
        }
    }

    /// Recompute out-entry `(i, j)` from `P_i`'s members.
    fn rescan_out_entry(&mut self, p: &Partition, i: usize, j: usize) {
        let cap = self.cap;
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for &u in p.members(i as u32) {
            let x = self.dout[u as usize * cap + j];
            if x < mn {
                mn = x;
            }
            if x > mx {
                mx = x;
            }
        }
        self.out_min[i * cap + j] = mn;
        self.out_max[i * cap + j] = mx;
    }

    /// Recompute in-entry `(i, j)` from `P_j`'s members.
    fn rescan_in_entry(&mut self, p: &Partition, i: usize, j: usize) {
        let cap = self.cap;
        let mut mn = f64::INFINITY;
        let mut mx = f64::NEG_INFINITY;
        for &v in p.members(j as u32) {
            let x = self.din[v as usize * cap + i];
            if x < mn {
                mn = x;
            }
            if x > mx {
                mx = x;
            }
        }
        self.in_min[i * cap + j] = mn;
        self.in_max[i * cap + j] = mx;
    }

    /// Grow the column capacity to hold `needed` colors (amortized).
    fn ensure_capacity(&mut self, needed: usize) {
        if needed <= self.cap {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let old_cap = self.cap;
        let regrow = |data: &mut Vec<f64>, rows: usize| {
            let mut grown = vec![0.0; rows * new_cap];
            for r in 0..rows {
                grown[r * new_cap..r * new_cap + old_cap]
                    .copy_from_slice(&data[r * old_cap..(r + 1) * old_cap]);
            }
            *data = grown;
        };
        regrow(&mut self.dout, self.n);
        if !self.symmetric {
            regrow(&mut self.din, self.n);
        }
        if self.track_summaries {
            regrow(&mut self.out_min, old_cap);
            regrow(&mut self.out_max, old_cap);
            self.out_min.resize(new_cap * new_cap, 0.0);
            self.out_max.resize(new_cap * new_cap, 0.0);
            if !self.symmetric {
                regrow(&mut self.in_min, old_cap);
                regrow(&mut self.in_max, old_cap);
                self.in_min.resize(new_cap * new_cap, 0.0);
                self.in_max.resize(new_cap * new_cap, 0.0);
            }
            self.row_max_err.resize(new_cap, 0.0);
            self.row_best.resize(new_cap, None);
            self.row_dirty.resize(new_cap, true);
            self.color_slot.resize(new_cap, u32::MAX);
            self.row_scratch.resize(4 * new_cap, 0.0);
        }
        self.cap = new_cap;
    }
}

/// Witness selection over from-scratch [`DegreeMatrices`], mirroring the
/// engine's row-ordered scan — including its floating-point operation order
/// and first-strictly-greater tie-breaking — exactly. This is what the
/// non-incremental reference stepper ([`crate::rothko::Rothko::run_reference`])
/// uses, so the incremental and from-scratch paths pick identical witnesses
/// whenever the underlying matrices are numerically identical.
pub fn pick_witness_scratch(
    m: &DegreeMatrices,
    p: &Partition,
    alpha: f64,
    beta: f64,
) -> Option<WitnessCandidate> {
    let k = m.k;
    let mut best: Option<(f64, WitnessCandidate)> = None;
    for s in 0..k {
        if p.size(s as u32) < 2 {
            continue;
        }
        let mut row_best: Option<RowBest> = None;
        let mut consider = |weighted: f64, error: f64, other: u32, outgoing: bool| match &row_best {
            Some(b) if b.weighted >= weighted => {}
            _ => {
                row_best = Some(RowBest {
                    weighted,
                    other,
                    outgoing,
                    error,
                })
            }
        };
        for j in 0..k {
            let e = m.out_error(s, j);
            if e > 0.0 {
                consider(e * size_pow(p.size(j as u32), beta), e, j as u32, true);
            }
        }
        for i in 0..k {
            let e = m.in_error(i, s);
            if e > 0.0 {
                consider(e * size_pow(p.size(i as u32), beta), e, i as u32, false);
            }
        }
        if let Some(row) = row_best {
            let weighted = row.weighted * size_pow(p.size(s as u32), alpha);
            match &best {
                Some((bw, _)) if *bw >= weighted => {}
                _ => {
                    best = Some((
                        weighted,
                        WitnessCandidate {
                            split_color: s as u32,
                            other_color: row.other,
                            outgoing: row.outgoing,
                            error: row.error,
                        },
                    ))
                }
            }
        }
    }
    best.map(|(_, w)| w)
}

/// Which matrix a [`IncrementalDegrees::patch_entry`] call updates.
#[derive(Clone, Copy, Debug)]
enum EntryKind {
    /// Out-matrix entry `(i, c)`: the batched color is the row `i`.
    OutCol,
    /// In-matrix entry `(c, j)`: the batched color is the column `j`.
    InRow,
}

/// `size^exponent` with the paper's convention that an exponent of zero
/// disables the weighting entirely (including for empty products).
#[inline]
pub(crate) fn size_pow(size: usize, exponent: f64) -> f64 {
    if exponent == 0.0 {
        1.0
    } else {
        (size as f64).powf(exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Absolute, Exact};
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn discrete_partition_has_zero_error() {
        let g = generators::karate_club();
        let p = Partition::discrete(34);
        assert_eq!(max_q_error(&g, &p), 0.0);
        assert!(is_quasi_stable(&g, &p, &Exact));
    }

    #[test]
    fn unit_partition_error_is_degree_spread() {
        let g = generators::karate_club();
        let p = Partition::unit(34);
        // Max error = max degree - min degree = 17 - 1 = 16.
        assert_eq!(max_q_error(&g, &p), 16.0);
        assert!(!is_quasi_stable(&g, &p, &Exact));
        assert!(is_quasi_stable(&g, &p, &Absolute::new(16.0)));
        assert!(!is_quasi_stable(&g, &p, &Absolute::new(15.0)));
    }

    #[test]
    fn star_partition_errors() {
        // Star with center 0 and 4 leaves; partition {0},{1..4} is stable.
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let p = Partition::from_classes(5, vec![vec![0], vec![1, 2, 3, 4]]);
        assert_eq!(max_q_error(&g, &p), 0.0);
        // Putting the center together with leaves: error 4 - 1 = 3.
        let bad = Partition::unit(5);
        assert_eq!(max_q_error(&g, &bad), 3.0);
        let report = q_error_report(&g, &bad);
        assert_eq!(report.max_q, 3.0);
        assert_eq!(report.num_colors, 1);
        assert!(report.worst_pair.is_some());
    }

    #[test]
    fn degree_matrices_shape_and_sum() {
        let g = generators::karate_club();
        let p = Partition::from_assignment(
            &(0..34)
                .map(|v| if v < 17 { 0 } else { 1 })
                .collect::<Vec<_>>(),
        );
        let m = DegreeMatrices::compute(&g, &p);
        assert_eq!(m.k, 2);
        // Total of the sum matrix equals total arc weight.
        let total: f64 = m.sum.iter().sum();
        assert_eq!(total, g.total_weight());
        // Cross-pair sums are symmetric for undirected graphs.
        assert_eq!(m.pair_weight(0, 1), m.pair_weight(1, 0));
    }

    #[test]
    fn directed_in_out_errors_differ() {
        // 0 -> 2, 1 -> 2, 1 -> 3  with colors {0,1}, {2,3}.
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        let g = b.build();
        let p = Partition::from_classes(4, vec![vec![0, 1], vec![2, 3]]);
        let m = DegreeMatrices::compute(&g, &p);
        // Outgoing from color 0 to color 1: node 0 has 1, node 1 has 2 => err 1.
        assert_eq!(m.out_error(0, 1), 1.0);
        // Incoming into color 1 from color 0: node 2 has 2, node 3 has 1 => err 1.
        assert_eq!(m.in_error(0, 1), 1.0);
        // No edges inside color 0.
        assert_eq!(m.out_error(0, 0), 0.0);
        assert_eq!(max_q_error(&g, &p), 1.0);
    }

    #[test]
    fn zero_degree_nodes_counted_in_min() {
        // Color {0,1} where only node 0 has an edge to color {2}: min is 0.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let p = Partition::from_classes(3, vec![vec![0, 1], vec![2]]);
        let m = DegreeMatrices::compute(&g, &p);
        assert_eq!(m.out_max[1], 5.0);
        assert_eq!(m.out_min[1], 0.0);
        assert_eq!(m.out_error(0, 1), 5.0);
    }

    #[test]
    fn mean_error_leq_max_error() {
        let g = generators::barabasi_albert(200, 3, 7);
        let p = Partition::from_assignment(&(0..200).map(|v| (v % 5) as u32).collect::<Vec<_>>());
        let report = q_error_report(&g, &p);
        assert!(report.mean_q <= report.max_q);
        assert!(report.mean_q >= 0.0);
    }

    #[test]
    fn relative_error_of_star_partition() {
        // Star with center 0 and 4 leaves, all nodes in one color: degrees
        // into the color are {4, 1, 1, 1, 1}, so the relative spread is
        // ln(4 / 1).
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let unit = Partition::unit(5);
        let m = DegreeMatrices::compute(&g, &unit);
        assert!((m.out_relative_error(0, 0) - 4.0f64.ln()).abs() < 1e-12);
        assert!((max_relative_error(&g, &unit) - 4.0f64.ln()).abs() < 1e-12);
        // The stable coloring {center}, {leaves} has zero relative error.
        let p = Partition::from_classes(5, vec![vec![0], vec![1, 2, 3, 4]]);
        assert_eq!(max_relative_error(&g, &p), 0.0);
    }

    #[test]
    fn relative_error_infinite_when_zero_mixes_with_nonzero() {
        // Node 1 has no edge into color {2}, node 0 does: zero is only
        // ε-similar to zero, so the relative error is infinite while the
        // absolute error is finite.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let p = Partition::from_classes(3, vec![vec![0, 1], vec![2]]);
        assert_eq!(max_q_error(&g, &p), 5.0);
        assert!(max_relative_error(&g, &p).is_infinite());
    }

    #[test]
    fn stable_coloring_has_zero_q() {
        let g = generators::colored_regular(10, 8, 4, 2, 3);
        let p = crate::stable::stable_coloring(&g);
        assert_eq!(max_q_error(&g, &p), 0.0);
        assert_eq!(mean_q_error(&g, &p), 0.0);
    }
}
