//! Measuring how (quasi-)stable a coloring is, and maintaining that
//! measurement incrementally while a coloring is refined.
//!
//! For a coloring `P` of a weighted directed graph, the *q-error* of a pair
//! of colors `(P_i, P_j)` in the outgoing direction is
//! `max_{v ∈ P_i} w(v, P_j) − min_{v ∈ P_i} w(v, P_j)`; the incoming
//! direction is defined symmetrically over `w(P_i, v)` for `v ∈ P_j`.
//! A coloring is `q`-stable iff every such error is at most `q`, and stable
//! iff every error is exactly zero.
//!
//! Two evaluators live here:
//!
//! * [`DegreeMatrices`] — the from-scratch `O(n + m + k²)` computation, used
//!   for one-shot reports and as the ground truth the incremental engine is
//!   cross-checked against.
//! * [`IncrementalDegrees`] — the incremental refinement engine. Built once,
//!   then updated after every [`SplitEvent`] in time proportional to the
//!   edges incident to the moved nodes (plus the two affected rows), instead
//!   of rescanning the whole graph. This is what makes
//!   [`crate::rothko::Rothko`] splits `O(touched)` rather than `O(graph)`
//!   and keeps the anytime loop's per-step latency interactive (Table 6 of
//!   the paper).
//!
//! # Incremental maintenance invariants
//!
//! `IncrementalDegrees` maintains, between any two calls of
//! [`IncrementalDegrees::apply_split`]:
//!
//! 1. **Accumulators.** For every node `v` and color `j < k`:
//!    `dout[v][j] = w(v, P_j)` and `din[v][j] = w(P_j, v)` — the per-node
//!    per-color weighted degrees. Nodes with no edges into a color hold an
//!    explicit `0.0`, so min/max over a color's members needs no implicit
//!    zero bookkeeping (unlike `DegreeMatrices`, which tracks non-zero
//!    counts instead of dense rows).
//! 2. **Pair summaries.** For every ordered color pair `(i, j)`:
//!    `out_min/out_max[i][j] = min/max_{u ∈ P_i} dout[u][j]` and
//!    `in_min/in_max[i][j] = min/max_{v ∈ P_j} din[v][i]` — numerically
//!    identical to `DegreeMatrices::compute` up to floating-point
//!    associativity (exactly identical for integer-valued weights).
//! 3. **Witness rows.** Per *split-candidate* color `s`, a lazily refreshed
//!    cache row over all entries whose split color is `s` (the out-entries
//!    `(s, ·)` and in-entries `(·, s)`): the row's maximum unweighted error
//!    and its best β-weighted witness candidate. The two caches have
//!    *separate* staleness flags: a split marks error-dirty only the rows
//!    whose entries actually changed — the parent, the child, every color
//!    containing a neighbor of a moved node — while rows whose cached best
//!    merely pointed at the parent (its *size* changed, its errors did
//!    not) go best-dirty only, and a β change alone (β-weighted bests
//!    stale, row maxima β-independent) dirties no error state at all. A
//!    [`IncrementalDegrees::refresh`] + witness pick therefore costs
//!    `O(stale rows · k)`, not `O(k²)`, and
//!    [`IncrementalDegrees::max_error`] stays valid across β changes
//!    without any rescan.
//! 4. **Extremum witnesses and nonzero counts.** Every pair summary entry
//!    also tracks *which* member attains its min/max (or an explicit
//!    "unknown" sentinel) and how many members have a non-zero value.
//!    These never influence entry values — they only decide whether a
//!    one-column member rescan is needed when members change: an entry
//!    whose tracked attainer neither moved nor departed provably keeps its
//!    extremum, and a `min == 0` entry keeps its minimum while any member
//!    value stays exactly zero (the dominant case on sparse graphs, where
//!    ties at zero used to force a rescan storm). Unknown attainers fall
//!    back to the conservative value-equality heuristic.
//!
//! A split `P_c → (P_c, P_child)` updates state as follows. Accumulator
//! columns `c`/`child` change only for in/out-neighbors of the moved nodes
//! (weight conservation: `dout[u][c] + dout[u][child]` is invariant, and
//! symmetrically for `din`). Pair summaries split into three classes:
//! rows/columns of `c` and `child` over the *member* axis are rebuilt by
//! scanning the two colors' members (`O((|P_c| + |P_child|) · k)`); entries
//! `(i, c)`/`(c, j)` over *other* colors' member axes are patched from the
//! touched neighbors, falling back to a one-column rescan only when a
//! touched node was the entry's unique extremum; all remaining entries are
//! untouched by construction. Debug builds cross-check the full state
//! against `DegreeMatrices::compute` after every split
//! ([`IncrementalDegrees::verify_against`]).
//!
//! # Edge-event maintenance (dynamic graphs)
//!
//! Splits are one half of the delta vocabulary; the other is *edge churn*.
//! [`IncrementalDegrees::apply_edge_batch`] patches the same state for a
//! batch of [`EdgeEvent`]s (signed weight changes of logical edges, the
//! currency of `qsc_graph::delta::GraphDelta`) without touching the graph
//! at all: an event `(u, v, Δ)` adds `Δ` to `dout[u][color(v)]` (and to
//! `din[v][color(u)]`, or the mirrored out-entry on undirected graphs),
//! then folds the change into the affected pair-summary entry with exactly
//! the split path's machinery — inline outward extension with attainers,
//! exact lost-extremum detection via the tracked attainer, the `min == 0`
//! zero-member skip rule, and a one-column member rescan only when an
//! extremum was provably lost. Cost per batch:
//! `O(events + touched entries)` plus those rescans — the "O(endpoints'
//! colors + touched entries)" the dynamic-graph maintenance path needs.
//! Witness rows of touched entries go error-dirty, so the next
//! [`IncrementalDegrees::refresh`] re-derives `max_error` and the cached
//! bests; color sizes are untouched, so no β bookkeeping is disturbed.
//! The partition must be unchanged by the batch (`p.num_colors()` equals
//! the engine's color count): graph updates and coloring updates are
//! separate deltas, sequenced by the caller
//! (`crate::rothko::RothkoRun::apply_edge_batch` patches the engine, swaps
//! the graph, and then re-establishes the (q, k) invariant by splitting).
//!
//! # Merge and node-churn maintenance (bidirectional events)
//!
//! Splits and edge events only ever *refine* or *perturb*; two more event
//! kinds complete the bidirectional algebra:
//!
//! * **Merges** ([`IncrementalDegrees::apply_merge`]). The dual of a split:
//!   the loser color's members join the winner, accumulator columns fold
//!   (`dout[u][winner] += dout[u][loser]` for the in-neighbors of the
//!   moved members — `O(touched)`, no other node changes), entries over
//!   other colors' member axes are patched with the split path's exact
//!   lost-extremum machinery, the winner's member axis is rebuilt from the
//!   merged member list, and the last color is relabeled into the freed
//!   slot (`O(touched + k)` row/column copies). Merge *selection*
//!   ([`IncrementalDegrees::pick_merge`]) is the dual of the witness rule:
//!   among all color pairs it picks the one minimizing the **post-merge
//!   q-error bound** — exact for the merged member-axis rows
//!   (`min`/`max` over a union is the `min`/`max` of the parts) and an
//!   upper bound for the folded columns (the spread of a sum is at most
//!   the sum of the spreads) — so a maintained run can coarsen while
//!   provably staying within its error target.
//! * **Node churn** ([`IncrementalDegrees::apply_node_inserts`] /
//!   [`IncrementalDegrees::apply_node_removals`]). The accumulators are
//!   *growable* (fresh isolated nodes append all-zero rows and extend
//!   their color's pair summaries inline with explicit zero attainers) and
//!   *compactable* (after removals — legal only for isolated nodes, whose
//!   incident edges were already deleted by the preceding edge batch — the
//!   node axis is renumbered through the `GraphDelta` remap, extremum
//!   witnesses are remapped, and only the colors that lost members rebuild
//!   their member axes).
//!
//! Both paths preserve the engine-wide determinism contract: the patched
//! state equals a freshly built engine on the resulting graph/partition
//! (bit-for-bit for exactly representable weights), so maintained and
//! fresh-from-checkpoint runs pick identical witnesses *and* identical
//! merge pairs.
//!
//! Two structural specializations keep the engine lean:
//!
//! * **Symmetric graphs.** For undirected graphs the in-direction state is
//!   an exact mirror of the out-direction (`din[v] == dout[v]`,
//!   `in_min/max[i][j] == out_min/max[j][i]`, bit-for-bit, because the CSR
//!   stores both adjacency directions in ascending neighbor order), so the
//!   engine skips it entirely — half the memory and per-split work with
//!   identical results.
//! * **Degrees-only mode** ([`IncrementalDegrees::new_degrees_only`]).
//!   Signature-based refiners (the stable coloring) read accumulator
//!   values and never ask for pair errors; this mode maintains only
//!   invariant 1 — and it does so with *sparse* per-node rows (sorted
//!   non-zero `(color, weight)` pairs) instead of dense `n × k` storage,
//!   making `apply_split` pure `O(deg(moved) · log deg)` and the whole
//!   engine `O(m)` memory, which keeps near-discrete colorings (`k → n`)
//!   affordable in both time and space.
//!
//! # Storage tiers
//!
//! The summary-tracking engine's invariant-1 accumulators themselves come
//! in two layouts, selected per engine by `RothkoConfig::storage`
//! ([`crate::storage::StorageMode`]) and resolved once at construction:
//!
//! * **Dense** — the historical `n × cap` matrices (`dout`/`din`), 8
//!   bytes per (node, color) slot. Unbeatable per probe when the matrix
//!   is cache-resident: a member scan is one strided load per row.
//! * **Sparse** — per-node tiered rows ([`crate::storage::RowRep`]):
//!   sorted nonzero `(color, weight)` vectors at 16 bytes per *nonzero*
//!   entry, with rows that reach half the color capacity promoted to
//!   plain slot arrays (hot rows keep dense probe cost). All apply paths
//!   (split/merge/node-churn/edge-batch, serial and sharded), the member
//!   scans, emission reads and `q_report()` go through
//!   [`crate::kernels`]' sparse gather variants, which preserve the
//!   member-order/first-attainer fold contract — so both layouts produce
//!   bit-identical colorings, witnesses and error bits at every thread
//!   count (`tests/tests/storage_modes.rs` pins this over mixed traces).
//!
//! Measured on the `bench_memory` BA ladder (m = 10, k = 200, engine
//! resident bytes, avg row ≈ 20 nonzeros ≈ 330 B/node sparse vs 2 KiB
//! dense):
//!
//! | n    | sparse    | dense      | reduction | step+maintain    |
//! |------|-----------|------------|-----------|------------------|
//! | 10k  | 5.1 MiB   | 21.6 MiB   | 4.2×      | ~1.6× dense      |
//! | 100k | 27 MiB    | 199 MiB    | 7.4×      | **0.4× dense**   |
//! | 1M   | 180 MiB   | 1.93 GiB*  | **11×**   | dense infeasible |
//!
//! (*analytic projection, validated within 5% against real dense engines
//! on the smaller rungs.) The wall-time crossover is why the default
//! `Auto` mode gates on projected dense footprint: below ~256 MiB the
//! dense matrix is what caches were built for and `Auto` resolves dense;
//! past it the sparse tier is both the memory wall's fix *and* faster.
//!
//! # Parallel sharded refinement
//!
//! Engines built with more than one thread
//! ([`IncrementalDegrees::new_with_threads`]) shard the four data-parallel
//! phases of a split across a persistent fork-join pool
//! ([`crate::parallel::ThreadPool`]):
//!
//! * **Touched collection** — the moved-node list is cut into fixed-size
//!   chunks (chunk size = the touched threshold, *never* the thread
//!   count); each chunk is deduped with a generation-stamped seen-bitmap
//!   into a `(neighbor, chunk-local delta)` list, the chunks fan out
//!   across the pool round-robin, and the lists merge in chunk order.
//!   Chunk boundaries and merge order are pure functions of the input, so
//!   both the touched ordering and the accumulated weight deltas are
//!   bit-identical for every thread count — on arbitrary float weights.
//! * **Accumulator deltas** — the touched-node list is chunked
//!   contiguously; each worker applies its nodes' parent→child mass shifts
//!   (each node appears in exactly one chunk, so the row writes are
//!   disjoint) and folds per-color partial aggregates (counts, zero
//!   crossings, extension min/max with attainers, child-column min/max,
//!   lost-extremum flags) into shard-local records.
//! * **Member-axis scans** — the child color's axis rebuild chunks the
//!   member list, each worker folding a full `k`-column min/max row.
//! * **Entry rescans** — queued lost-extremum columns are distributed
//!   whole-entry-per-worker.
//! * **Witness refresh** — stale rows are independent `O(k)` scans writing
//!   disjoint cache slots.
//!
//! At every join the caller merges shard results *in shard order* using
//! only exact reductions — min/max (selections, no arithmetic), sums of
//! disjoint counts, logical or — and strict comparisons keep the
//! first-shard attainer on ties, which equals the serial first-member
//! attainer. Results are therefore **bit-identical for every thread
//! count**, witness sequence included; `tests/tests/parallel_engine.rs`
//! pins this across thread counts {1, 2, 8} and batch sizes {1, 4}, and
//! the per-split debug cross-check ([`IncrementalDegrees::verify_against`])
//! covers the sharded paths too. Small regions run inline — the dispatch
//! thresholds ([`IncrementalDegrees::set_parallel_thresholds`]) only trade
//! scheduling, never semantics.
//!
//! # Witness-cache profiling
//!
//! The ROADMAP asked whether a binary heap over the cached row bests beats
//! [`IncrementalDegrees::pick_witness`]'s `O(k)` scan at large `k`. The
//! `witness_cache` micro-benchmark (in `qsc-bench`) measured both on the
//! reference container (1 × 2.7 GHz core), mean per pick:
//!
//! | k      | linear scan | heapify + pop |
//! |--------|-------------|---------------|
//! | 10²    | 0.15 µs     | 2.4 µs        |
//! | 10³    | 1.5 µs      | 21 µs         |
//! | 10⁴    | 15 µs       | 200 µs        |
//!
//! The scan wins by ~13–16× at every size (and the real-engine pick at
//! `k ∈ {10², 10³}` matches the synthetic scan numbers): the α size
//! weighting depends on current color sizes, so a heap would have to be
//! rebuilt per pick, and one `O(k)` heapify plus allocation can never beat
//! one cache-friendly `O(k)` scan. The scan stays.
//!
//! # Lane-kernel hot paths
//!
//! The engine's inner loops route through [`crate::kernels`] (blocked,
//! autovectorization-friendly f64 lane work with *exact sequential scan
//! semantics* — see the module's determinism notes). On the 10k-node
//! Barabási–Albert / 200-color headline run (serial, 1 × 2.7 GHz core,
//! `bench_kernels`), the full step loop went from 0.0426 s pre-kernel to
//! 0.0320 s (1.33×); the isolated member-axis rescan kernel
//! ([`crate::kernels::fold_minmax_row`]) measures 2.4–3.4× over the
//! scalar loop it replaced. What the rewire actually changed, in
//! decreasing order of measured profit:
//!
//! * **Member-axis rescans** fold whole accumulator rows through
//!   `fold_minmax_row` (dense serial, sharded workers, and the sparse
//!   degrees-only rebuild share it).
//! * **Witness-row scans** at β = 0 collapse to one contiguous
//!   max-spread pass ([`crate::kernels::row_err_argmax`]) instead of the
//!   per-column weighted compare.
//! * **Final report**: [`crate::rothko::RothkoRun::finish`] reads
//!   [`IncrementalDegrees::q_report`] off the live summaries (`O(k²)`)
//!   instead of recomputing [`DegreeMatrices`] from the graph
//!   (`O(n·k + m)`) — worth ~4 ms of the 32 ms headline alone.
//! * **Parent-axis repair** batches the queued one-column rescans of one
//!   member axis into a single member pass
//!   ([`crate::kernels::scan_gather_columns`]), loading each accumulator
//!   row once instead of once per column.
//! * **Split apply** walks the touched list with explicit L1 prefetch
//!   ([`crate::kernels::prefetch_read`]) and reads the per-node deltas
//!   positionally from `touched_deltas` (collected index-parallel to the
//!   touched list) instead of re-gathering a per-node array.
//!
//! The strided entry *gather* itself (`scan_gather_column`) is memory
//! bound and gains nothing from lane form (measured 1.0×) — the wins
//! above all come from removing passes or folding them wider, not from
//! prettier arithmetic. Single-core wall-clock on the reference container
//! swings ±15 % with host load; `bench_kernels` warms the frequency
//! governor and reports best-of-5 with raw rounds recorded.

use crate::kernels;
use crate::parallel::{chunk_range, default_threads, SyncSliceMut, ThreadPool};
use crate::partition::{MergeEvent, Partition, SplitEvent};
use crate::similarity::Similarity;
use crate::storage::{ResolvedStorage, RowRep, StorageMode};
use qsc_graph::delta::{EdgeEvent, NodeRemap};
use qsc_graph::{ColumnAdvice, ColumnBuf, Graph, NodeId};
use std::collections::HashMap;
use std::sync::Arc;

/// Sentinel for "extremum attainer unknown" in the pair-summary witness
/// arrays (forces the conservative rescan heuristic for that entry).
/// Shared with the lane kernels in [`crate::kernels`].
pub(crate) use crate::kernels::NO_ARG;

/// Direction of a degree/error matrix entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Entry `(i, j)` talks about outgoing weights of nodes in `P_i` into `P_j`.
    Out,
    /// Entry `(i, j)` talks about incoming weights of nodes in `P_j` from `P_i`.
    In,
}

/// Per-color-pair degree summaries of a coloring: for every ordered pair of
/// colors `(i, j)`, the maximum, minimum and total weight from nodes of `P_i`
/// into `P_j` (outgoing view) and from `P_i` into nodes of `P_j` (incoming
/// view). This is the `U`/`L` pair of Algorithm 1.
#[derive(Clone, Debug)]
pub struct DegreeMatrices {
    /// Number of colors `k`. All matrices are `k × k`, row-major.
    pub k: usize,
    /// `out_max[i*k + j] = max_{v ∈ P_i} w(v, P_j)`.
    pub out_max: Vec<f64>,
    /// `out_min[i*k + j] = min_{v ∈ P_i} w(v, P_j)`.
    pub out_min: Vec<f64>,
    /// `in_max[i*k + j] = max_{v ∈ P_j} w(P_i, v)`.
    pub in_max: Vec<f64>,
    /// `in_min[i*k + j] = min_{v ∈ P_j} w(P_i, v)`.
    pub in_min: Vec<f64>,
    /// `sum[i*k + j] = w(P_i, P_j)`, the total weight between the colors.
    pub sum: Vec<f64>,
    /// `nonzero[i*k + j]`: number of nodes of `P_i` with non-zero weight into
    /// `P_j` (used to decide whether a pair has any edges at all).
    pub nonzero: Vec<u32>,
}

impl DegreeMatrices {
    /// Compute the degree matrices of `p` on `g`. `O(n + m + k²)` time and
    /// `O(k²)` memory.
    pub fn compute(g: &Graph, p: &Partition) -> Self {
        let n = g.num_nodes();
        assert_eq!(p.num_nodes(), n, "partition does not match graph");
        let k = p.num_colors();
        let mut out_max = vec![f64::NEG_INFINITY; k * k];
        let mut out_min = vec![f64::INFINITY; k * k];
        let mut in_max = vec![f64::NEG_INFINITY; k * k];
        let mut in_min = vec![f64::INFINITY; k * k];
        let mut sum = vec![0.0f64; k * k];
        let mut out_count = vec![0u32; k * k];
        let mut in_count = vec![0u32; k * k];

        let mut scratch = vec![0.0f64; k];
        let mut touched: Vec<u32> = Vec::with_capacity(k);

        for v in 0..n as u32 {
            let ci = p.color_of(v) as usize;
            // Outgoing.
            touched.clear();
            for (t, w) in g.out_edges(v) {
                let cj = p.color_of(t) as usize;
                if scratch[cj] == 0.0 && !touched.contains(&(cj as u32)) {
                    touched.push(cj as u32);
                }
                scratch[cj] += w;
            }
            for &cj in &touched {
                let cj = cj as usize;
                let w = scratch[cj];
                let idx = ci * k + cj;
                if w > out_max[idx] {
                    out_max[idx] = w;
                }
                if w < out_min[idx] {
                    out_min[idx] = w;
                }
                sum[idx] += w;
                out_count[idx] += 1;
                scratch[cj] = 0.0;
            }
            // Incoming.
            touched.clear();
            for (s, w) in g.in_edges(v) {
                let cj = p.color_of(s) as usize;
                if scratch[cj] == 0.0 && !touched.contains(&(cj as u32)) {
                    touched.push(cj as u32);
                }
                scratch[cj] += w;
            }
            for &cj in &touched {
                let cj = cj as usize;
                let w = scratch[cj];
                // Entry (cj, ci): weights from P_cj into node v of P_ci.
                let idx = cj * k + ci;
                if w > in_max[idx] {
                    in_max[idx] = w;
                }
                if w < in_min[idx] {
                    in_min[idx] = w;
                }
                in_count[idx] += 1;
                scratch[cj] = 0.0;
            }
        }

        // Account for nodes with zero weight towards a color: if not every
        // node of the source color touched the pair, the minimum weight is at
        // most 0 and the maximum at least 0. Pairs with no edges at all get
        // max = min = 0.
        for i in 0..k {
            let size_i = p.size(i as u32) as u32;
            for j in 0..k {
                let idx = i * k + j;
                if out_count[idx] == 0 {
                    out_max[idx] = 0.0;
                    out_min[idx] = 0.0;
                } else if out_count[idx] < size_i {
                    out_max[idx] = out_max[idx].max(0.0);
                    out_min[idx] = out_min[idx].min(0.0);
                }
                let size_j = p.size(j as u32) as u32;
                if in_count[idx] == 0 {
                    in_max[idx] = 0.0;
                    in_min[idx] = 0.0;
                } else if in_count[idx] < size_j {
                    in_max[idx] = in_max[idx].max(0.0);
                    in_min[idx] = in_min[idx].min(0.0);
                }
            }
        }

        DegreeMatrices {
            k,
            out_max,
            out_min,
            in_max,
            in_min,
            sum,
            nonzero: out_count,
        }
    }

    /// Outgoing error `U − L` at `(i, j)`.
    #[inline]
    pub fn out_error(&self, i: usize, j: usize) -> f64 {
        self.out_max[i * self.k + j] - self.out_min[i * self.k + j]
    }

    /// Incoming error at `(i, j)`.
    #[inline]
    pub fn in_error(&self, i: usize, j: usize) -> f64 {
        self.in_max[i * self.k + j] - self.in_min[i * self.k + j]
    }

    /// Outgoing *relative* error at `(i, j)`: the smallest `ε` such that all
    /// outgoing weights of `P_i` into `P_j` are pairwise `∼_ε`-similar
    /// (`ln(max/min)` for positive weights, `0` when all weights are equal,
    /// `+∞` when the weights mix zero/non-zero values or signs).
    pub fn out_relative_error(&self, i: usize, j: usize) -> f64 {
        relative_spread(self.out_min[i * self.k + j], self.out_max[i * self.k + j])
    }

    /// Incoming relative error at `(i, j)` (see [`Self::out_relative_error`]).
    pub fn in_relative_error(&self, i: usize, j: usize) -> f64 {
        relative_spread(self.in_min[i * self.k + j], self.in_max[i * self.k + j])
    }

    /// Maximum relative error over all pairs and both directions.
    pub fn max_relative_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.k {
            for j in 0..self.k {
                max = max
                    .max(self.out_relative_error(i, j))
                    .max(self.in_relative_error(i, j));
            }
        }
        max
    }

    /// Total weight `w(P_i, P_j)`.
    #[inline]
    pub fn pair_weight(&self, i: usize, j: usize) -> f64 {
        self.sum[i * self.k + j]
    }

    /// Maximum error over all pairs and both directions.
    pub fn max_error(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.k {
            for j in 0..self.k {
                max = max.max(self.out_error(i, j)).max(self.in_error(i, j));
            }
        }
        max
    }

    /// Mean error over pairs that have at least one edge (both directions).
    pub fn mean_error(&self) -> f64 {
        let mut total = 0.0f64;
        let mut count = 0usize;
        for i in 0..self.k {
            for j in 0..self.k {
                if self.nonzero[i * self.k + j] > 0 {
                    total += self.out_error(i, j);
                    total += self.in_error(i, j);
                    count += 2;
                }
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }
}

/// The smallest `ε` such that every value in `[min, max]`-spread data is
/// pairwise `∼_ε`-similar (Sec. 3.1, ε-relative coloring).
fn relative_spread(min: f64, max: f64) -> f64 {
    if min == max {
        return 0.0;
    }
    if min <= 0.0 && max >= 0.0 && (min != 0.0 || max != 0.0) {
        // A zero together with a non-zero value (or mixed signs) can never
        // be ε-similar.
        if min == 0.0 && max == 0.0 {
            return 0.0;
        }
        return f64::INFINITY;
    }
    let (lo, hi) = (min.abs().min(max.abs()), min.abs().max(max.abs()));
    if lo == 0.0 {
        return f64::INFINITY;
    }
    (hi / lo).ln()
}

/// Maximum ε-relative error of a coloring: the smallest `ε` such that `p` is
/// an ε-relative quasi-stable coloring of `g` (possibly `+∞`).
pub fn max_relative_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).max_relative_error()
}

/// A compact report of the quality of a coloring.
#[derive(Clone, Debug, PartialEq)]
pub struct QErrorReport {
    /// Maximum q-error over all color pairs and both directions.
    pub max_q: f64,
    /// Mean q-error over color pairs with at least one edge.
    pub mean_q: f64,
    /// Number of colors.
    pub num_colors: usize,
    /// The pair of colors and direction attaining the maximum error.
    pub worst_pair: Option<(u32, u32, Direction)>,
}

/// Compute a [`QErrorReport`] for a coloring.
pub fn q_error_report(g: &Graph, p: &Partition) -> QErrorReport {
    let m = DegreeMatrices::compute(g, p);
    let mut max_q = 0.0f64;
    let mut worst = None;
    for i in 0..m.k {
        for j in 0..m.k {
            let eo = m.out_error(i, j);
            if eo > max_q {
                max_q = eo;
                worst = Some((i as u32, j as u32, Direction::Out));
            }
            let ei = m.in_error(i, j);
            if ei > max_q {
                max_q = ei;
                worst = Some((i as u32, j as u32, Direction::In));
            }
        }
    }
    QErrorReport {
        max_q,
        mean_q: m.mean_error(),
        num_colors: m.k,
        worst_pair: worst,
    }
}

/// Maximum q-error of the coloring: the smallest `q` for which `p` is a
/// `q`-stable coloring of `g`.
pub fn max_q_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).max_error()
}

/// Mean q-error of the coloring over color pairs with at least one edge.
pub fn mean_q_error(g: &Graph, p: &Partition) -> f64 {
    DegreeMatrices::compute(g, p).mean_error()
}

/// Exhaustively check Definition 1: is `p` a `∼`-quasi-stable coloring of
/// `g`? This performs pairwise similarity checks within every color (cost
/// `O(Σ_i |P_i|² · k)` in the worst case); it is intended for validation and
/// tests, not production use. For the absolute (`q`) relation prefer
/// [`max_q_error`].
pub fn is_quasi_stable<S: Similarity>(g: &Graph, p: &Partition, sim: &S) -> bool {
    let k = p.num_colors();
    let n = g.num_nodes();
    // Per node, accumulate weight to each color (out) and from each color
    // (in), then check pairwise within each color.
    for j in 0..k as u32 {
        // Outgoing weights into color j, grouped by source color.
        let mut per_node = vec![0.0f64; n];
        for &t in p.members(j) {
            for (s, w) in g.in_edges(t) {
                per_node[s as usize] += w;
            }
        }
        for i in 0..k as u32 {
            let members = p.members(i);
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let u = per_node[members[a] as usize];
                    let v = per_node[members[b] as usize];
                    if !sim.similar(u, v) {
                        return false;
                    }
                }
            }
        }
        // Incoming weights from color j, grouped by target color.
        let mut per_node_in = vec![0.0f64; n];
        for &s in p.members(j) {
            for (t, w) in g.out_edges(s) {
                per_node_in[t as usize] += w;
            }
        }
        for i in 0..k as u32 {
            let members = p.members(i);
            for a in 0..members.len() {
                for b in (a + 1)..members.len() {
                    let u = per_node_in[members[a] as usize];
                    let v = per_node_in[members[b] as usize];
                    if !sim.similar(u, v) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// A witness candidate produced by [`IncrementalDegrees::pick_witness`]: the
/// color pair and direction with the largest size-weighted error.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WitnessCandidate {
    /// The color whose members disagree (the one to split).
    pub split_color: u32,
    /// The color the disagreeing degrees point towards / come from.
    pub other_color: u32,
    /// `true`: members of `split_color` differ in outgoing weight into
    /// `other_color`; `false`: they differ in incoming weight from it.
    pub outgoing: bool,
    /// The unweighted q-error of the pair.
    pub error: f64,
}

/// A coarsening candidate produced by [`IncrementalDegrees::pick_merge`]:
/// the color pair whose merge has the smallest provable post-merge q-error
/// bound (the dual of the split-witness rule).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MergeCandidate {
    /// The surviving color (always the smaller id).
    pub winner: u32,
    /// The color to merge away.
    pub loser: u32,
    /// Upper bound on the maximum q-error of the partition after the merge
    /// (exact on the merged member-axis rows, a sum-of-spreads bound on the
    /// folded columns).
    pub bound: f64,
}

/// Read-only min/max access shared by the incremental and from-scratch
/// merge-bound computations, so both evaluate the identical operation
/// sequence (the engine/scratch pick-equivalence contract, as with witness
/// selection).
trait PairMinMax {
    /// `(min, max)` of out-entry `(i, j)`.
    fn out_mm(&self, i: usize, j: usize) -> (f64, f64);
    /// `(min, max)` of in-entry `(i, j)`.
    fn in_mm(&self, i: usize, j: usize) -> (f64, f64);
}

/// Upper bound on the maximum q-error after merging colors `a` and `b`
/// (`a < b`), from the pair summaries alone:
///
/// * merged member-axis rows are exact (`min`/`max` over the union of two
///   member sets is the `min`/`max` of the per-set extrema);
/// * folded columns (`dout[v][a] + dout[v][b]`) use the sum-of-spreads
///   bound `spread(x + y) <= spread(x) + spread(y)`;
/// * the merged self entry combines both rules.
///
/// Returns `f64::INFINITY` as soon as the running bound exceeds `cap`
/// (the early exit never changes which pairs pass a `<= cap` test or the
/// bound reported for passing pairs, so selections stay deterministic) —
/// this is what keeps the coarsening scans cheap: for most pairs the very
/// first columns already blow the budget.
fn merge_bound<V: PairMinMax>(view: &V, k: usize, a: usize, b: usize, cap: f64) -> f64 {
    let mut bound = 0.0f64;
    // Merged self entry (ab, ab), out: `dout[v][a] + dout[v][b]` over the
    // union — per-column union extrema, then the interval sum.
    let (aam, aax) = view.out_mm(a, a);
    let (bam, bax) = view.out_mm(b, a);
    let (abm, abx) = view.out_mm(a, b);
    let (bbm, bbx) = view.out_mm(b, b);
    bound = bound.max((aax.max(bax) + abx.max(bbx)) - (aam.min(bam) + abm.min(bbm)));
    // And the in-direction self entry.
    let (iaam, iaax) = view.in_mm(a, a);
    let (iabm, iabx) = view.in_mm(a, b);
    let (ibam, ibax) = view.in_mm(b, a);
    let (ibbm, ibbx) = view.in_mm(b, b);
    bound = bound.max((iaax.max(iabx) + ibax.max(ibbx)) - (iaam.min(iabm) + ibam.min(ibbm)));
    if bound > cap {
        return f64::INFINITY;
    }
    // Column sweep in blocks of `LANES`: the early exit coarsens to block
    // granularity, which never changes the result (the max-fold only
    // grows, and INFINITY is returned iff the final bound exceeds `cap`),
    // and the branch-free block body lets the per-column loads pipeline
    // and vectorize. The `j ∈ {a, b}` columns are masked to `0.0` instead
    // of skipped — every unmasked contribution is nonnegative (spreads and
    // sums of spreads of nonempty member sets), so `0.0` is the identity
    // under the max-fold.
    let mut j0 = 0;
    while j0 < k {
        let hi = (j0 + kernels::LANES).min(k);
        let mut block_max = 0.0f64;
        for j in j0..hi {
            // Merged row (ab, j): union member axis — exact.
            let (amn, amx) = view.out_mm(a, j);
            let (bmn, bmx) = view.out_mm(b, j);
            let mut c = amx.max(bmx) - amn.min(bmn);
            // Folded column (j, ab): per-member sums — sum of spreads.
            let (jam, jax) = view.out_mm(j, a);
            let (jbm, jbx) = view.out_mm(j, b);
            c = c.max((jax - jam) + (jbx - jbm));
            // In-direction: (j, ab) ranges over the union member axis — exact.
            let (iam, iax) = view.in_mm(j, a);
            let (ibm, ibx) = view.in_mm(j, b);
            c = c.max(iax.max(ibx) - iam.min(ibm));
            // In-direction folded source (ab, j): sums over P_j's members.
            let (ajm, ajx) = view.in_mm(a, j);
            let (bjm, bjx) = view.in_mm(b, j);
            c = c.max((ajx - ajm) + (bjx - bjm));
            let masked = if j == a || j == b { 0.0 } else { c };
            block_max = if masked > block_max {
                masked
            } else {
                block_max
            };
        }
        bound = bound.max(block_max);
        if bound > cap {
            return f64::INFINITY;
        }
        j0 = hi;
    }
    bound
}

/// Scan all color pairs for the merge with the smallest post-merge bound
/// that stays at or below `max_bound`. Ascending `(a, b)` iteration with a
/// strict improvement test keeps the lexicographically smallest pair on
/// ties — the deterministic dual of the witness tie-break. The running
/// best tightens the per-pair evaluation cap (branch-and-bound; ties at
/// the cap still evaluate fully, so the selection equals the exhaustive
/// scan's).
fn pick_merge_view<V: PairMinMax>(view: &V, k: usize, max_bound: f64) -> Option<MergeCandidate> {
    let mut best: Option<MergeCandidate> = None;
    for a in 0..k {
        for b in (a + 1)..k {
            let cap = best.as_ref().map_or(max_bound, |c| c.bound.min(max_bound));
            let bound = merge_bound(view, k, a, b, cap);
            if bound <= max_bound && best.as_ref().is_none_or(|c| bound < c.bound) {
                best = Some(MergeCandidate {
                    winner: a as u32,
                    loser: b as u32,
                    bound,
                });
            }
        }
    }
    best
}

/// Per-row best witness candidate cached by the engine (weighted by the
/// target-size exponent β only; the source-size exponent α is applied at
/// pick time because the row's own size can change without invalidating the
/// row's internal ordering).
#[derive(Clone, Copy, Debug)]
struct RowBest {
    weighted: f64,
    other: u32,
    outgoing: bool,
    error: f64,
}

/// Per-color scratch record used while applying a split (one per color that
/// contains a neighbor of a moved node).
#[derive(Clone, Copy, Debug)]
struct TouchedColor {
    color: u32,
    /// Entry extrema at batch start (for detecting a lost extremum).
    orig_min: f64,
    orig_max: f64,
    /// Whether the entry's tracked min/max attainer moved inward (or an
    /// attainer is unknown and a touched node left the batch-start
    /// extremum). The finalize step downgrades a flagged side to "no
    /// rescan" when the zero-count rule proves the extremum stands.
    rescan_min: bool,
    rescan_max: bool,
    /// Distinct touched members of this color.
    count: usize,
    /// Net change to the entry's nonzero-member count (values crossing
    /// zero).
    nz_delta: i64,
    /// Touched members with a non-zero child-column value.
    child_nonzero: u32,
    /// Min/max of the touched members' accumulator values in the child
    /// column, with their attainers.
    child_min: f64,
    child_max: f64,
    child_min_arg: u32,
    child_max_arg: u32,
}

impl TouchedColor {
    fn fresh(color: u32, orig_min: f64, orig_max: f64) -> Self {
        TouchedColor {
            color,
            orig_min,
            orig_max,
            rescan_min: false,
            rescan_max: false,
            count: 0,
            nz_delta: 0,
            child_nonzero: 0,
            child_min: f64::INFINITY,
            child_max: f64::NEG_INFINITY,
            child_min_arg: NO_ARG,
            child_max_arg: NO_ARG,
        }
    }
}

/// Per-entry scratch record of an edge batch: one per pair-summary entry
/// whose member values changed, tracking the batch-start extrema (for
/// lost-extremum detection), the queued rescan flags, and the net
/// zero-crossing count — the edge-path analogue of [`TouchedColor`].
#[derive(Clone, Copy, Debug)]
struct EdgeEntryPatch {
    row: u32,
    col: u32,
    orig_min: f64,
    orig_max: f64,
    rescan_min: bool,
    rescan_max: bool,
    nz_delta: i64,
}

/// The incremental refinement engine: degree matrices plus per-node degree
/// accumulators, kept in sync with a partition across [`SplitEvent`]s.
///
/// See the module documentation for the maintained invariants. Typical use:
///
/// ```
/// use qsc_core::q_error::{DegreeMatrices, IncrementalDegrees};
/// use qsc_core::Partition;
/// use qsc_graph::generators::karate_club;
///
/// let g = karate_club();
/// let mut p = Partition::unit(g.num_nodes());
/// let mut engine = IncrementalDegrees::new(&g, &p);
/// // Split off the high-degree nodes and update the engine in O(touched).
/// let event = p.split_color(0, |v| g.out_degree(v) > 5).unwrap();
/// engine.apply_split(&g, &p, &event);
/// assert_eq!(engine.verify_against(&g, &p), Ok(()));
/// let scratch = DegreeMatrices::compute(&g, &p);
/// assert_eq!(engine.out_error(0, 1), scratch.out_error(0, 1));
/// ```
#[derive(Debug)]
pub struct IncrementalDegrees {
    n: usize,
    k: usize,
    /// Column capacity (stride) of the accumulators and matrices; grows
    /// geometrically as colors are added.
    cap: usize,
    /// `dout[v * cap + j] = w(v, P_j)` (dense rows; dense-storage summary
    /// mode only — empty when `sparse_accum`).
    dout: Vec<f64>,
    /// `din[v * cap + j] = w(P_j, v)` (dense rows; dense-storage summary
    /// mode only — empty when `sparse_accum`).
    din: Vec<f64>,
    /// Tiered accumulator rows ([`RowRep`]) — the storage of the
    /// degrees-only mode *and* of sparse-storage summary engines: per
    /// node, sorted non-zero `(color, weight)` pairs, with hot rows
    /// promoted to a dense slot tier (summary mode only; degrees-only
    /// rows never promote, preserving their `O(deg(v))` bound).
    /// `O(deg(v))` per node instead of a dense `k`-column row, which
    /// keeps near-discrete colorings (`k → n`) and large sparse graphs
    /// at `O(m)` memory instead of `O(n·k)`.
    sparse_out: Vec<RowRep>,
    sparse_in: Vec<RowRep>,
    /// True when the accumulators live in `sparse_out`/`sparse_in`
    /// (degrees-only engines and sparse-storage summary engines); false
    /// when they live in the dense `dout`/`din` matrices. Pure storage —
    /// every maintained *value* is bit-identical between the two.
    sparse_accum: bool,
    /// Whether sparse rows may promote to their dense tier (summary-mode
    /// sparse engines; degrees-only engines never promote). The hint
    /// passed to [`RowRep::add`] is the live color count `k` when
    /// enabled, `0` otherwise — see [`Self::promote_k`].
    promote: bool,
    /// `out_min/out_max[i * cap + j]` over `u ∈ P_i` of `dout[u][j]`.
    out_min: Vec<f64>,
    out_max: Vec<f64>,
    /// `in_min/in_max[i * cap + j]` over `v ∈ P_j` of `din[v][i]`.
    in_min: Vec<f64>,
    in_max: Vec<f64>,
    /// Extremum witnesses: `out_min_arg[i * cap + j]` is a member of `P_i`
    /// attaining `out_min[i * cap + j]` (and so on), or [`NO_ARG`] when the
    /// attainer is unknown. Splits consult these to decide whether a pair
    /// summary actually lost its extremum — an exact `O(1)` test that
    /// replaces the tie-prone "value equals extremum" heuristic and its
    /// rescan storm on integer-weighted graphs. Witness choice never
    /// affects entry *values* (a rescan recomputes the same exact min/max a
    /// skipped rescan preserves), so results stay bit-identical.
    out_min_arg: Vec<u32>,
    out_max_arg: Vec<u32>,
    in_min_arg: Vec<u32>,
    in_max_arg: Vec<u32>,
    /// Per-entry nonzero-member counts: `out_nz[i * cap + j]` is the number
    /// of members of `P_i` with `dout[u][j] != 0.0` (and `in_nz[i * cap +
    /// j]` the members of `P_j` with `din[v][i] != 0.0`). A `min == 0.0`
    /// entry whose count stays below the color size provably keeps its
    /// minimum when members depart — the dominant skip rule on sparse
    /// graphs, where almost every pair summary has zero-valued members.
    out_nz: Vec<u32>,
    in_nz: Vec<u32>,
    /// Whether the graph is undirected (stored as symmetric arcs). The
    /// in-direction state is then an exact mirror of the out-direction
    /// (`din[v] == dout[v]` and `in_min/max[i][j] == out_min/max[j][i]`,
    /// including floating-point operation order, since the CSR stores both
    /// adjacency directions in ascending neighbor order), so the engine
    /// skips it entirely: half the memory, half the per-split work,
    /// bit-identical results.
    symmetric: bool,
    /// Whether pair summaries and the witness cache are maintained. The
    /// degrees-only mode (`new_degrees_only`) keeps just the accumulators,
    /// which is all signature-based refiners like the stable coloring need;
    /// it makes `apply_split` pure `O(deg(moved))` and skips the `O(k²)`
    /// matrix storage entirely.
    track_summaries: bool,
    /// β exponent used by the last [`Self::refresh`]; negative values void
    /// the best-pointed-at-parent invalidation shortcut (shrinking a target
    /// color then *grows* candidate weights), so splits dirty every row's
    /// cached best.
    last_beta: f64,
    /// Witness-row cache (see module docs, invariant 3). The two staleness
    /// flags are split because they have different triggers: `row_err_dirty`
    /// means the row's *entries* changed (max error and best both stale),
    /// while `row_best_dirty` alone means only the cached β-weighted best is
    /// stale (a color size or β itself changed) — `row_max_err` is
    /// β-independent, so a β-only rebuild skips the error bookkeeping
    /// entirely and [`Self::max_error`] stays valid across β changes.
    row_max_err: Vec<f64>,
    row_best: Vec<Option<RowBest>>,
    row_err_dirty: Vec<bool>,
    row_best_dirty: Vec<bool>,
    /// Node-stamp scratch for deduplicating touched neighbors.
    node_stamp: Vec<u32>,
    node_delta: Vec<f64>,
    stamp_gen: u32,
    /// Packed per-node dedupe mark for the touched collection: generation
    /// stamp in the low half, index into `touched_nodes` in the high half.
    /// One cache line per probe covers both "seen this round?" and "where
    /// does its delta accumulate?", so the split hot loop can read deltas
    /// *positionally* from `touched_deltas` instead of re-gathering a
    /// per-node array.
    node_mark: Vec<u64>,
    mark_gen: u32,
    touched_nodes: Vec<NodeId>,
    /// Accumulated weight delta of `touched_nodes[i]`, index-parallel.
    touched_deltas: Vec<f64>,
    /// Color-slot scratch for per-touched-color aggregation (self-validating
    /// indices into `touched_colors`).
    color_slot: Vec<u32>,
    touched_colors: Vec<TouchedColor>,
    /// Row-recompute scratch (4 × cap values + 4 × cap witnesses + 2 × cap
    /// nonzero counts).
    row_scratch: Vec<f64>,
    row_arg_scratch: Vec<u32>,
    row_nz_scratch: Vec<u32>,
    /// Fork-join pool for the sharded split/refresh phases (`None` in serial
    /// engines). Shared scheduling only — every parallel region reduces
    /// per-shard summaries with exact operations, so results are
    /// bit-identical across thread counts (see the module docs).
    pool: Option<Arc<ThreadPool>>,
    /// Per-worker shard scratch for the parallel phases (empty in serial
    /// engines).
    shard_scratch: Vec<ShardScratch>,
    /// Parallel-dispatch thresholds (see [`Self::set_parallel_thresholds`]).
    par_min_touched: usize,
    par_min_scan_work: usize,
    /// Reusable per-split scratch lists (queued rescans per direction, and
    /// the refresh's stale-row list) — kept on the engine so the split
    /// path stays allocation-free.
    entry_scratch_out: Vec<(u32, u32)>,
    entry_scratch_in: Vec<(u32, u32)>,
    dirty_scratch: Vec<u32>,
    /// Edge-batch scratch: per-direction patched-entry records and their
    /// entry-index → record-slot maps, plus the per-(node, column)
    /// combined-delta lists (capacity reused across batches).
    edge_patches_out: Vec<EdgeEntryPatch>,
    edge_patches_in: Vec<EdgeEntryPatch>,
    edge_slot_out: HashMap<usize, usize>,
    edge_slot_in: HashMap<usize, usize>,
    edge_acc_out: Vec<(NodeId, u32, f64)>,
    edge_acc_in: Vec<(NodeId, u32, f64)>,
    edge_acc_slot_out: HashMap<(NodeId, u32), usize>,
    edge_acc_slot_in: HashMap<(NodeId, u32), usize>,
    /// Per-chunk `(node, chunk-local delta)` lists of the canonical
    /// chunked touched-collection (capacity reused across splits).
    chunk_out: Vec<Vec<(NodeId, f64)>>,
    /// Merge-fold capture lists (out and in direction): `(node, old, new)`
    /// winner-column values of the touched nodes, recorded before the
    /// relabel so entry patches can run in the post-relabel id space
    /// (capacity reused across merges).
    merge_scratch: Vec<(NodeId, f64, f64)>,
    merge_scratch_in: Vec<(NodeId, f64, f64)>,
}

/// One direction's tiered accumulator rows in columnar form — the shape
/// [`IncrementalDegrees::snapshot`] emits and the checkpoint writer
/// serializes directly (per-field arrays, no per-row framing). Row `v`'s
/// nonzero `(color, weight)` entries, ascending by color, occupy
/// `offsets[v]..offsets[v + 1]` of the parallel `colors`/`weights`
/// arrays; `dense[v]` records whether the row lives in the promoted
/// dense tier. All fields are empty for engines whose accumulators are
/// dense matrices instead.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RowsSnapshot {
    /// `n + 1` entry offsets (empty when this direction has no tiered
    /// rows).
    pub offsets: Vec<usize>,
    /// Entry colors, concatenated across rows.
    pub colors: Vec<u32>,
    /// Entry weights, index-parallel to `colors`.
    pub weights: Vec<f64>,
    /// Per-row promoted-tier flag.
    pub dense: Vec<bool>,
}

impl RowsSnapshot {
    /// Whether this direction holds any rows (false for dense-storage
    /// engines and for the in direction of symmetric engines).
    #[must_use]
    pub fn is_present(&self) -> bool {
        !self.offsets.is_empty()
    }
}

/// The engine's complete *logical* state, captured by
/// [`IncrementalDegrees::snapshot`] and restored bit-exactly by
/// [`IncrementalDegrees::from_snapshot`] — the persistence layer's view
/// of the engine.
///
/// What is **included**: the accumulators (exact `f64` bits, tight
/// `n × k` for dense engines, columnar tiered rows for sparse ones), the
/// pair-summary min/max matrices with their extremum witnesses and
/// nonzero-member counts (tight `k × k`), and the mode flags + `last_beta`.
/// The nonzero counts are semantic (they drive the dominant rescan-skip
/// rule), so they are serialized exactly rather than recomputed.
///
/// What is deliberately **excluded** (derivable, so restoring it would
/// only bloat checkpoints): the witness-row caches (`row_max_err` /
/// `row_best`), which a restored engine marks all-dirty — the next
/// [`IncrementalDegrees::refresh`] recomputes them from the summary
/// entries, a pure function, so the recomputed values are bit-identical
/// to the writer's; every per-event scratch buffer; and the thread pool
/// (rebuilt from the restore-time thread count — the determinism
/// contract makes results independent of it).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Node count.
    pub n: usize,
    /// Live color count.
    pub k: usize,
    /// Whether the graph is undirected (in-direction state omitted — it
    /// mirrors the out direction exactly; see the module docs).
    pub symmetric: bool,
    /// Whether pair summaries are maintained (false for degrees-only
    /// engines).
    pub track_summaries: bool,
    /// Whether the accumulators are tiered rows (true) or dense matrices
    /// (false).
    pub sparse_accum: bool,
    /// Whether sparse rows may promote (always `track_summaries &&
    /// sparse_accum`; recorded for validation).
    pub promote: bool,
    /// β exponent of the last refresh (voids the best-pointed-at-parent
    /// shortcut when negative; see the field docs).
    pub last_beta: f64,
    /// Dense out-accumulators, tight `n × k` row-major (empty when
    /// `sparse_accum`). A [`ColumnBuf`] so a mapped-layout checkpoint
    /// restore can hand the plane in as a borrowed view of the file;
    /// [`IncrementalDegrees::from_snapshot`] reads it exactly once.
    pub dout: ColumnBuf<f64>,
    /// Dense in-accumulators (empty when `sparse_accum` or `symmetric`).
    pub din: ColumnBuf<f64>,
    /// Tiered out rows (empty when `!sparse_accum`).
    pub rows_out: RowsSnapshot,
    /// Tiered in rows (empty when `!sparse_accum` or `symmetric`).
    pub rows_in: RowsSnapshot,
    /// Pair-summary matrices, tight `k × k` row-major (empty when
    /// `!track_summaries`; the `in_*` halves also when `symmetric`).
    pub out_min: Vec<f64>,
    /// See [`Self::out_min`].
    pub out_max: Vec<f64>,
    /// See [`Self::out_min`].
    pub in_min: Vec<f64>,
    /// See [`Self::out_min`].
    pub in_max: Vec<f64>,
    /// Extremum witnesses, tight `k × k` ([`NO_ARG`] = unknown attainer).
    pub out_min_arg: Vec<u32>,
    /// See [`Self::out_min_arg`].
    pub out_max_arg: Vec<u32>,
    /// See [`Self::out_min_arg`].
    pub in_min_arg: Vec<u32>,
    /// See [`Self::out_min_arg`].
    pub in_max_arg: Vec<u32>,
    /// Nonzero-member counts, tight `k × k`.
    pub out_nz: Vec<u32>,
    /// See [`Self::out_nz`].
    pub in_nz: Vec<u32>,
}

/// Per-worker scratch used by the parallel split/refresh phases.
#[derive(Clone, Debug, Default)]
struct ShardScratch {
    /// Self-validating `color -> record index` slots (mirrors `color_slot`).
    slot: Vec<u32>,
    /// Per-touched-color partial aggregates produced by this shard.
    records: Vec<ShardRecord>,
    /// Member-axis min/max merge rows (4 × cap), their witnesses, and the
    /// per-column nonzero counts (2 × cap).
    axis: Vec<f64>,
    axis_arg: Vec<u32>,
    axis_nz: Vec<u32>,
    /// Chunked touched-collection worker state: a generation-stamped
    /// seen-bitmap (lazily sized to `n`) and per-node partial weight
    /// deltas, reused across the chunks this worker processes.
    seen_stamp: Vec<u32>,
    seen_gen: u32,
    delta: Vec<f64>,
}

/// One shard's partial aggregate for a touched color during the parallel
/// accumulator phase. Merged at the join with exact min/max/or/sum
/// reductions, so the merged result is independent of the shard count.
#[derive(Clone, Copy, Debug)]
struct ShardRecord {
    color: u32,
    /// Distinct touched members of this color seen by this shard.
    count: usize,
    /// Min/max over the shard's *new* parent-column values, with attainers
    /// (extension candidates for the entry extrema).
    ext_min: f64,
    ext_max: f64,
    ext_min_arg: u32,
    ext_max_arg: u32,
    /// Min/max over the shard's child-column values, with attainers.
    child_min: f64,
    child_max: f64,
    child_min_arg: u32,
    child_max_arg: u32,
    /// Net zero-crossing count change and non-zero child values seen.
    nz_delta: i64,
    child_nonzero: u32,
    /// Whether this shard observed a lost-extremum condition on either
    /// side (see [`TouchedColor::rescan_min`]), evaluated against the
    /// batch-start entry state.
    rescan_min: bool,
    rescan_max: bool,
}

/// Minimum number of touched nodes before a split's accumulator phase is
/// sharded across the pool (smaller batches run serially — the fork-join
/// handshake would cost more than the work).
const PAR_MIN_TOUCHED: usize = 2048;

/// Minimum total scan work (entries × members, or rows × colors) before a
/// member-scan or witness-refresh batch is sharded.
const PAR_MIN_SCAN_WORK: usize = 16384;

/// A read-only view of the pair-summary matrices, so the witness-refresh
/// scans can run from worker threads while the caller holds the row caches
/// mutably.
struct SummaryView<'a> {
    k: usize,
    cap: usize,
    symmetric: bool,
    out_min: &'a [f64],
    out_max: &'a [f64],
    in_min: &'a [f64],
    in_max: &'a [f64],
}

impl PairMinMax for SummaryView<'_> {
    #[inline]
    fn out_mm(&self, i: usize, j: usize) -> (f64, f64) {
        let idx = i * self.cap + j;
        (self.out_min[idx], self.out_max[idx])
    }

    #[inline]
    fn in_mm(&self, i: usize, j: usize) -> (f64, f64) {
        if self.symmetric {
            return self.out_mm(j, i);
        }
        let idx = i * self.cap + j;
        (self.in_min[idx], self.in_max[idx])
    }
}

impl PairMinMax for DegreeMatrices {
    #[inline]
    fn out_mm(&self, i: usize, j: usize) -> (f64, f64) {
        let idx = i * self.k + j;
        (self.out_min[idx], self.out_max[idx])
    }

    #[inline]
    fn in_mm(&self, i: usize, j: usize) -> (f64, f64) {
        let idx = i * self.k + j;
        (self.in_min[idx], self.in_max[idx])
    }
}

/// The merge pick over from-scratch [`DegreeMatrices`] — the reference-mode
/// counterpart of [`IncrementalDegrees::pick_merge`], sharing the bound
/// computation operation-for-operation so the two paths select identical
/// pairs whenever the matrices are numerically identical.
pub fn pick_merge_scratch(m: &DegreeMatrices, max_bound: f64) -> Option<MergeCandidate> {
    if m.k < 2 {
        return None;
    }
    pick_merge_view(m, m.k, max_bound)
}

impl SummaryView<'_> {
    #[inline]
    fn out_error(&self, i: usize, j: usize) -> f64 {
        self.out_max[i * self.cap + j] - self.out_min[i * self.cap + j]
    }

    #[inline]
    fn in_error(&self, i: usize, j: usize) -> f64 {
        if self.symmetric {
            return self.out_error(j, i);
        }
        self.in_max[i * self.cap + j] - self.in_min[i * self.cap + j]
    }

    /// One witness row scan: the row's maximum unweighted error and its
    /// best β-weighted candidate. This is *the* row scan — serial refresh,
    /// sharded refresh and the reference stepper all route through the same
    /// operation order, which is what keeps their picks bit-identical.
    fn scan_row(&self, p: &Partition, s: usize, beta: f64) -> (f64, Option<RowBest>) {
        let splittable = p.size(s as u32) >= 2;
        // β = 0 (the default weighting) makes every candidate's weight its
        // raw error, so the whole out-side scan collapses to "max spread
        // and its first attainer" over one contiguous summary row — the
        // vectorized kernel. Same value, same attainer, same tie-breaks as
        // the general loop below (pinned by the kernel property suite).
        if beta == 0.0 {
            let base = s * self.cap;
            let (mut max_err, arg) = crate::kernels::row_err_argmax(
                &self.out_max[base..base + self.k],
                &self.out_min[base..base + self.k],
            );
            let mut best = if splittable && max_err > 0.0 {
                Some(RowBest {
                    weighted: max_err,
                    other: arg,
                    outgoing: true,
                    error: max_err,
                })
            } else {
                None
            };
            if !self.symmetric {
                // Directed in-side: a strided column, scanned scalar. The
                // out candidate wins weight ties, as in the general loop.
                for i in 0..self.k {
                    let e = self.in_error(i, s);
                    if e > max_err {
                        max_err = e;
                    }
                    if splittable && e > 0.0 {
                        match &best {
                            Some(b) if b.weighted >= e => {}
                            _ => {
                                best = Some(RowBest {
                                    weighted: e,
                                    other: i as u32,
                                    outgoing: false,
                                    error: e,
                                })
                            }
                        }
                    }
                }
            }
            return (max_err, best);
        }
        let mut max_err = 0.0f64;
        let mut best: Option<RowBest> = None;
        let mut consider = |weighted: f64, error: f64, other: u32, outgoing: bool| match &best {
            Some(b) if b.weighted >= weighted => {}
            _ => {
                best = Some(RowBest {
                    weighted,
                    other,
                    outgoing,
                    error,
                })
            }
        };
        for j in 0..self.k {
            let e = self.out_error(s, j);
            if e > max_err {
                max_err = e;
            }
            if splittable && e > 0.0 {
                consider(e * size_pow(p.size(j as u32), beta), e, j as u32, true);
            }
        }
        if !self.symmetric {
            // For undirected graphs the in-entries (i, s) mirror the
            // out-entries (s, i) already scanned above (equal error and
            // weight, and the out candidate wins the tie), so this loop
            // only runs for directed graphs.
            for i in 0..self.k {
                let e = self.in_error(i, s);
                if e > max_err {
                    max_err = e;
                }
                if splittable && e > 0.0 {
                    consider(e * size_pow(p.size(i as u32), beta), e, i as u32, false);
                }
            }
        }
        (max_err, best)
    }
}

impl ShardScratch {
    /// Fold one touched node into this shard's per-color aggregates during
    /// the sharded accumulator phase. `orig_*`/`arg_*` are the entry's
    /// batch-start extrema and tracked attainers (entries are only mutated
    /// at the join, so workers read a consistent snapshot).
    #[allow(clippy::too_many_arguments)]
    fn fold(
        &mut self,
        color: u32,
        u: NodeId,
        old: f64,
        new: f64,
        child_val: f64,
        orig_min: f64,
        orig_max: f64,
        arg_min: u32,
        arg_max: u32,
    ) {
        let slot = self.slot[color as usize] as usize;
        let slot = if slot < self.records.len() && self.records[slot].color == color {
            slot
        } else {
            let fresh = self.records.len();
            self.slot[color as usize] = fresh as u32;
            self.records.push(ShardRecord::fresh(color));
            fresh
        };
        let r = &mut self.records[slot];
        r.count += 1;
        if (old == 0.0) != (new == 0.0) {
            r.nz_delta += if new != 0.0 { 1 } else { -1 };
        }
        if child_val != 0.0 {
            r.child_nonzero += 1;
        }
        if new < r.ext_min {
            r.ext_min = new;
            r.ext_min_arg = u;
        }
        if new > r.ext_max {
            r.ext_max = new;
            r.ext_max_arg = u;
        }
        if child_val < r.child_min {
            r.child_min = child_val;
            r.child_min_arg = u;
        }
        if child_val > r.child_max {
            r.child_max = child_val;
            r.child_max_arg = u;
        }
        if new < old {
            if old == orig_max && (arg_max == NO_ARG || arg_max == u) {
                r.rescan_max = true;
            }
        } else if new > old && old == orig_min && (arg_min == NO_ARG || arg_min == u) {
            r.rescan_min = true;
        }
    }
}

impl ShardRecord {
    fn fresh(color: u32) -> Self {
        ShardRecord {
            color,
            count: 0,
            ext_min: f64::INFINITY,
            ext_max: f64::NEG_INFINITY,
            ext_min_arg: NO_ARG,
            ext_max_arg: NO_ARG,
            child_min: f64::INFINITY,
            child_max: f64::NEG_INFINITY,
            child_min_arg: NO_ARG,
            child_max_arg: NO_ARG,
            nz_delta: 0,
            child_nonzero: 0,
            rescan_min: false,
            rescan_max: false,
        }
    }
}

impl Clone for IncrementalDegrees {
    /// Clones share no thread pool: each clone gets its own (same slot
    /// count), since a pool's fork-join handshake serves one engine at a
    /// time.
    fn clone(&self) -> Self {
        IncrementalDegrees {
            n: self.n,
            k: self.k,
            cap: self.cap,
            dout: self.dout.clone(),
            din: self.din.clone(),
            sparse_out: self.sparse_out.clone(),
            sparse_in: self.sparse_in.clone(),
            sparse_accum: self.sparse_accum,
            promote: self.promote,
            out_min: self.out_min.clone(),
            out_max: self.out_max.clone(),
            in_min: self.in_min.clone(),
            in_max: self.in_max.clone(),
            out_min_arg: self.out_min_arg.clone(),
            out_max_arg: self.out_max_arg.clone(),
            in_min_arg: self.in_min_arg.clone(),
            in_max_arg: self.in_max_arg.clone(),
            out_nz: self.out_nz.clone(),
            in_nz: self.in_nz.clone(),
            symmetric: self.symmetric,
            track_summaries: self.track_summaries,
            last_beta: self.last_beta,
            row_max_err: self.row_max_err.clone(),
            row_best: self.row_best.clone(),
            row_err_dirty: self.row_err_dirty.clone(),
            row_best_dirty: self.row_best_dirty.clone(),
            node_stamp: self.node_stamp.clone(),
            node_delta: self.node_delta.clone(),
            stamp_gen: self.stamp_gen,
            node_mark: self.node_mark.clone(),
            mark_gen: self.mark_gen,
            touched_nodes: self.touched_nodes.clone(),
            touched_deltas: self.touched_deltas.clone(),
            color_slot: self.color_slot.clone(),
            touched_colors: self.touched_colors.clone(),
            row_scratch: self.row_scratch.clone(),
            row_arg_scratch: self.row_arg_scratch.clone(),
            row_nz_scratch: self.row_nz_scratch.clone(),
            pool: self
                .pool
                .as_ref()
                .map(|p| Arc::new(ThreadPool::new(p.slots()))),
            shard_scratch: self.shard_scratch.clone(),
            par_min_touched: self.par_min_touched,
            par_min_scan_work: self.par_min_scan_work,
            entry_scratch_out: self.entry_scratch_out.clone(),
            entry_scratch_in: self.entry_scratch_in.clone(),
            dirty_scratch: self.dirty_scratch.clone(),
            edge_patches_out: self.edge_patches_out.clone(),
            edge_patches_in: self.edge_patches_in.clone(),
            edge_slot_out: self.edge_slot_out.clone(),
            edge_slot_in: self.edge_slot_in.clone(),
            edge_acc_out: self.edge_acc_out.clone(),
            edge_acc_in: self.edge_acc_in.clone(),
            edge_acc_slot_out: self.edge_acc_slot_out.clone(),
            edge_acc_slot_in: self.edge_acc_slot_in.clone(),
            chunk_out: self.chunk_out.clone(),
            merge_scratch: self.merge_scratch.clone(),
            merge_scratch_in: self.merge_scratch_in.clone(),
        }
    }
}

impl IncrementalDegrees {
    /// Build the full engine (accumulators + pair summaries + witness
    /// cache) for partition `p` on `g` in `O(n·k + m)` time. The number of
    /// worker threads for the sharded split/refresh phases defaults to the
    /// `QSC_THREADS` environment variable (1 when unset); see
    /// [`Self::new_with_threads`] for explicit control.
    pub fn new(g: &Graph, p: &Partition) -> Self {
        Self::with_mode(g, p, true, default_threads(), ResolvedStorage::Dense)
    }

    /// Build the full engine with an explicit worker count for the sharded
    /// split/refresh phases. `threads <= 1` builds a serial engine. Results
    /// are bit-identical for every thread count — the shards reduce with
    /// exact min/max/or merges (see the module docs).
    pub fn new_with_threads(g: &Graph, p: &Partition, threads: usize) -> Self {
        Self::with_mode(g, p, true, threads, ResolvedStorage::Dense)
    }

    /// Build the full engine with an explicit accumulator [`StorageMode`]
    /// (the `RothkoConfig::storage` knob). `Auto` resolves here, from the
    /// graph's size and density and `color_hint` — the color budget the
    /// refinement is expected to reach (the engine pre-reserves capacity
    /// for it, so the projected dense footprint is computed against the
    /// same capacity a dense engine would actually allocate). All storage
    /// modes maintain bit-identical state — sparse storage trades access
    /// constants for `O(n + m)` instead of `O(n·k)` accumulator memory
    /// (see the "Tiered accumulator storage" module notes).
    pub fn new_with_storage(
        g: &Graph,
        p: &Partition,
        threads: usize,
        storage: StorageMode,
        color_hint: usize,
    ) -> Self {
        let n = g.num_nodes();
        let k = p.num_colors();
        let hint_cap = color_hint.clamp(k, n.max(1)).next_power_of_two().max(4);
        let dirs = if g.is_directed() { 2 } else { 1 };
        let resolved = storage.resolve(n, g.num_arcs(), hint_cap, dirs);
        Self::with_mode(g, p, true, threads, resolved)
    }

    /// Build a degrees-only engine: per-node *sparse* accumulator rows
    /// maintained in `O(deg(moved))` per split, no `O(k²)` pair summaries
    /// or witness cache, and `O(m)` memory instead of `O(n·k)`. This is
    /// what signature-based refiners (the stable coloring) use — they read
    /// accumulator values and never ask for errors, so near-discrete
    /// colorings (`k → n`) stay affordable in both time and memory.
    pub fn new_degrees_only(g: &Graph, p: &Partition) -> Self {
        Self::with_mode(g, p, false, 1, ResolvedStorage::Sparse)
    }

    fn with_mode(
        g: &Graph,
        p: &Partition,
        track_summaries: bool,
        threads: usize,
        storage: ResolvedStorage,
    ) -> Self {
        let n = g.num_nodes();
        assert_eq!(p.num_nodes(), n, "partition does not match graph");
        let symmetric = !g.is_directed();
        let k = p.num_colors();
        let cap = k.next_power_of_two().max(4);
        let sparse_accum = !track_summaries || storage == ResolvedStorage::Sparse;
        let mat_cap = if track_summaries { cap } else { 0 };
        let dense_cap = if track_summaries && !sparse_accum {
            cap
        } else {
            0
        };
        let in_cap = if symmetric { 0 } else { dense_cap };
        let in_mat_cap = if symmetric { 0 } else { mat_cap };
        let threads = threads.max(1);
        let mut engine = IncrementalDegrees {
            n,
            k,
            cap,
            dout: vec![0.0; n * dense_cap],
            din: vec![0.0; n * in_cap],
            sparse_out: Vec::new(),
            sparse_in: Vec::new(),
            sparse_accum,
            promote: track_summaries && sparse_accum,
            out_min: vec![0.0; mat_cap * mat_cap],
            out_max: vec![0.0; mat_cap * mat_cap],
            in_min: vec![0.0; in_mat_cap * in_mat_cap],
            in_max: vec![0.0; in_mat_cap * in_mat_cap],
            out_min_arg: vec![NO_ARG; mat_cap * mat_cap],
            out_max_arg: vec![NO_ARG; mat_cap * mat_cap],
            in_min_arg: vec![NO_ARG; in_mat_cap * in_mat_cap],
            in_max_arg: vec![NO_ARG; in_mat_cap * in_mat_cap],
            out_nz: vec![0; mat_cap * mat_cap],
            in_nz: vec![0; in_mat_cap * in_mat_cap],
            symmetric,
            track_summaries,
            last_beta: 0.0,
            row_max_err: vec![0.0; mat_cap],
            row_best: vec![None; mat_cap],
            row_err_dirty: vec![true; mat_cap],
            row_best_dirty: vec![true; mat_cap],
            node_stamp: vec![0; n],
            node_delta: vec![0.0; n],
            stamp_gen: 0,
            node_mark: vec![0; n],
            mark_gen: 0,
            touched_nodes: Vec::new(),
            touched_deltas: Vec::new(),
            color_slot: vec![0; mat_cap],
            touched_colors: Vec::new(),
            row_scratch: vec![0.0; 4 * mat_cap],
            row_arg_scratch: vec![NO_ARG; 4 * mat_cap],
            row_nz_scratch: vec![0; 2 * mat_cap],
            pool: (track_summaries && threads > 1).then(|| Arc::new(ThreadPool::new(threads))),
            shard_scratch: if track_summaries && threads > 1 {
                vec![ShardScratch::default(); threads]
            } else {
                Vec::new()
            },
            par_min_touched: PAR_MIN_TOUCHED,
            par_min_scan_work: PAR_MIN_SCAN_WORK,
            entry_scratch_out: Vec::new(),
            entry_scratch_in: Vec::new(),
            dirty_scratch: Vec::new(),
            edge_patches_out: Vec::new(),
            edge_patches_in: Vec::new(),
            edge_slot_out: HashMap::new(),
            edge_slot_in: HashMap::new(),
            edge_acc_out: Vec::new(),
            edge_acc_in: Vec::new(),
            edge_acc_slot_out: HashMap::new(),
            edge_acc_slot_in: HashMap::new(),
            chunk_out: Vec::new(),
            merge_scratch: Vec::new(),
            merge_scratch_in: Vec::new(),
        };

        // Whole-axis initialization sweeps every arc front to back; on a
        // mapped graph let the kernel stream the cold pages in ahead of
        // the scan instead of faulting them one miss at a time.
        g.advise(ColumnAdvice::Sequential);
        if sparse_accum {
            // Tiered accumulator rows: per node, sum the arc weights by
            // color in arc order (a stable sort preserves that order within
            // a color, so the sums are bit-identical to the dense
            // accumulation) and keep the non-zero pairs; summary engines
            // promote rows that already meet the density bar.
            let promote_k = if engine.promote { k } else { 0 };
            engine.sparse_out = (0..n as NodeId)
                .map(|v| RowRep::from_sorted(sparse_row_from_arcs(g.out_arcs(v), p), promote_k))
                .collect();
            if !symmetric {
                engine.sparse_in = (0..n as NodeId)
                    .map(|v| RowRep::from_sorted(sparse_row_from_arcs(g.in_arcs(v), p), promote_k))
                    .collect();
            }
        } else {
            // Dense accumulators: one sweep over each adjacency direction.
            let (offs, tgts, wts) = g.out_adjacency();
            for v in 0..n {
                let base = v * cap;
                for e in offs[v]..offs[v + 1] {
                    engine.dout[base + p.color_of(tgts[e]) as usize] += wts[e];
                }
            }
            if !symmetric {
                let (offs, srcs, wts) = g.in_adjacency();
                for v in 0..n {
                    let base = v * cap;
                    for e in offs[v]..offs[v + 1] {
                        engine.din[base + p.color_of(srcs[e]) as usize] += wts[e];
                    }
                }
            }
        }
        if track_summaries {
            // Pair summaries: scan each color's members once.
            for s in 0..k {
                engine.recompute_color_axis(p, s);
            }
        }
        engine
    }

    /// Capture the engine's complete logical state for persistence.
    ///
    /// The snapshot holds *tight* columns — `n × k` accumulators and
    /// `k × k` summaries with the capacity padding stripped — so the
    /// on-disk size tracks the live state, not the power-of-two stride.
    /// [`Self::from_snapshot`] re-pads on load; the stride itself is
    /// unobservable (it is recomputed from `k` the same way
    /// construction computes it), so round-tripping through a snapshot
    /// is bit-exact. See [`EngineSnapshot`] for what is included vs.
    /// recomputed.
    #[must_use]
    pub fn snapshot(&self) -> EngineSnapshot {
        fn tight<T: Copy>(padded: &[T], rows: usize, cols: usize, stride: usize) -> Vec<T> {
            let mut out = Vec::with_capacity(rows * cols);
            for r in 0..rows {
                out.extend_from_slice(&padded[r * stride..r * stride + cols]);
            }
            out
        }
        fn rows_snapshot(rows: &[RowRep]) -> RowsSnapshot {
            if rows.is_empty() {
                // Absent direction (dense storage, symmetric in-side, or
                // an empty graph): all columns empty, `is_present` false.
                return RowsSnapshot::default();
            }
            let mut snap = RowsSnapshot {
                offsets: Vec::with_capacity(rows.len() + 1),
                colors: Vec::new(),
                weights: Vec::new(),
                dense: Vec::with_capacity(rows.len()),
            };
            snap.offsets.push(0);
            let mut buf = Vec::new();
            for row in rows {
                buf.clear();
                row.push_nonzero_entries(&mut buf);
                for &(c, w) in &buf {
                    snap.colors.push(c);
                    snap.weights.push(w);
                }
                snap.offsets.push(snap.colors.len());
                snap.dense.push(row.is_dense());
            }
            snap
        }
        let (n, k, cap) = (self.n, self.k, self.cap);
        EngineSnapshot {
            n,
            k,
            symmetric: self.symmetric,
            track_summaries: self.track_summaries,
            sparse_accum: self.sparse_accum,
            promote: self.promote,
            last_beta: self.last_beta,
            dout: tight(&self.dout, if self.dout.is_empty() { 0 } else { n }, k, cap).into(),
            din: tight(&self.din, if self.din.is_empty() { 0 } else { n }, k, cap).into(),
            rows_out: rows_snapshot(&self.sparse_out),
            rows_in: rows_snapshot(&self.sparse_in),
            out_min: tight(
                &self.out_min,
                if self.out_min.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            out_max: tight(
                &self.out_max,
                if self.out_max.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            in_min: tight(
                &self.in_min,
                if self.in_min.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            in_max: tight(
                &self.in_max,
                if self.in_max.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            out_min_arg: tight(
                &self.out_min_arg,
                if self.out_min_arg.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            out_max_arg: tight(
                &self.out_max_arg,
                if self.out_max_arg.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            in_min_arg: tight(
                &self.in_min_arg,
                if self.in_min_arg.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            in_max_arg: tight(
                &self.in_max_arg,
                if self.in_max_arg.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            out_nz: tight(
                &self.out_nz,
                if self.out_nz.is_empty() { 0 } else { k },
                k,
                cap,
            ),
            in_nz: tight(
                &self.in_nz,
                if self.in_nz.is_empty() { 0 } else { k },
                k,
                cap,
            ),
        }
    }

    /// Rebuild an engine from a snapshot, bit-identical to the one that
    /// produced it.
    ///
    /// The capacity stride, scratch buffers, and thread pool are
    /// reconstructed exactly as the engine constructor would build them;
    /// the witness-row caches start all-dirty and the first refresh
    /// recomputes them deterministically. `threads` may differ from the
    /// writer's — results do not depend on it.
    ///
    /// # Panics
    /// On snapshots whose column lengths are inconsistent with their
    /// header fields. The persistence layer validates untrusted bytes
    /// before constructing a snapshot; this is a backstop against
    /// programmer error, not a parser.
    #[must_use]
    pub fn from_snapshot(snap: &EngineSnapshot, threads: usize) -> Self {
        let EngineSnapshot {
            n,
            k,
            symmetric,
            track_summaries,
            sparse_accum,
            promote,
            ..
        } = *snap;
        assert_eq!(
            promote,
            track_summaries && sparse_accum,
            "snapshot promote flag inconsistent with its mode flags"
        );
        let cap = k.next_power_of_two().max(4);
        let mat_cap = if track_summaries { cap } else { 0 };
        let dense_cap = if track_summaries && !sparse_accum {
            cap
        } else {
            0
        };
        let in_cap = if symmetric { 0 } else { dense_cap };
        let in_mat_cap = if symmetric { 0 } else { mat_cap };
        let threads = threads.max(1);

        // Re-pad a tight rows×cols column back into the full strided
        // buffer construction would allocate (`alloc_rows × stride`;
        // matrices are `cap × cap`, so rows `k..cap` exist and hold
        // background values — splits that grow `k` within capacity index
        // them before writing). `alloc_rows == 0` marks an absent buffer.
        fn pad<T: Copy>(
            tight: &[T],
            rows: usize,
            cols: usize,
            alloc_rows: usize,
            stride: usize,
            fill: T,
        ) -> Vec<T> {
            if alloc_rows == 0 {
                assert!(
                    tight.is_empty(),
                    "snapshot column for absent matrix is non-empty"
                );
                return Vec::new();
            }
            assert_eq!(tight.len(), rows * cols, "snapshot column length mismatch");
            let mut out = vec![fill; alloc_rows * stride];
            for r in 0..rows {
                out[r * stride..r * stride + cols]
                    .copy_from_slice(&tight[r * cols..(r + 1) * cols]);
            }
            out
        }
        fn rows_restore(snap: &RowsSnapshot, n: usize, promote_k: usize) -> Vec<RowRep> {
            if !snap.is_present() {
                assert_eq!(
                    n, 0,
                    "row snapshot absent for a direction that needs {n} rows"
                );
                return Vec::new();
            }
            assert_eq!(
                snap.offsets.len(),
                n + 1,
                "row snapshot offsets length mismatch"
            );
            assert_eq!(
                snap.dense.len(),
                n,
                "row snapshot tier-flag length mismatch"
            );
            assert_eq!(
                *snap.offsets.last().unwrap(),
                snap.colors.len(),
                "row snapshot entry count mismatch"
            );
            assert_eq!(
                snap.colors.len(),
                snap.weights.len(),
                "row snapshot column mismatch"
            );
            (0..n)
                .map(|v| {
                    let (lo, hi) = (snap.offsets[v], snap.offsets[v + 1]);
                    let entries: Vec<(u32, f64)> = snap.colors[lo..hi]
                        .iter()
                        .copied()
                        .zip(snap.weights[lo..hi].iter().copied())
                        .collect();
                    if snap.dense[v] {
                        RowRep::dense_from_sorted(&entries, promote_k)
                    } else {
                        RowRep::Sparse(entries)
                    }
                })
                .collect()
        }

        let promote_k = if promote { k } else { 0 };
        // Mapped-restore path: the planes are read exactly once below,
        // front to back — let the pages stream in ahead of the copy.
        snap.dout.advise(ColumnAdvice::Sequential);
        snap.din.advise(ColumnAdvice::Sequential);
        IncrementalDegrees {
            n,
            k,
            cap,
            dout: pad(
                &snap.dout,
                n,
                k,
                if dense_cap > 0 { n } else { 0 },
                cap,
                0.0,
            ),
            din: pad(&snap.din, n, k, if in_cap > 0 { n } else { 0 }, cap, 0.0),
            sparse_out: rows_restore(&snap.rows_out, if sparse_accum { n } else { 0 }, promote_k),
            sparse_in: rows_restore(
                &snap.rows_in,
                if sparse_accum && !symmetric { n } else { 0 },
                promote_k,
            ),
            sparse_accum,
            promote,
            out_min: pad(&snap.out_min, k, k, mat_cap, cap, 0.0),
            out_max: pad(&snap.out_max, k, k, mat_cap, cap, 0.0),
            in_min: pad(&snap.in_min, k, k, in_mat_cap, cap, 0.0),
            in_max: pad(&snap.in_max, k, k, in_mat_cap, cap, 0.0),
            out_min_arg: pad(&snap.out_min_arg, k, k, mat_cap, cap, NO_ARG),
            out_max_arg: pad(&snap.out_max_arg, k, k, mat_cap, cap, NO_ARG),
            in_min_arg: pad(&snap.in_min_arg, k, k, in_mat_cap, cap, NO_ARG),
            in_max_arg: pad(&snap.in_max_arg, k, k, in_mat_cap, cap, NO_ARG),
            out_nz: pad(&snap.out_nz, k, k, mat_cap, cap, 0),
            in_nz: pad(&snap.in_nz, k, k, in_mat_cap, cap, 0),
            symmetric,
            track_summaries,
            last_beta: snap.last_beta,
            row_max_err: vec![0.0; mat_cap],
            row_best: vec![None; mat_cap],
            row_err_dirty: vec![true; mat_cap],
            row_best_dirty: vec![true; mat_cap],
            node_stamp: vec![0; n],
            node_delta: vec![0.0; n],
            stamp_gen: 0,
            node_mark: vec![0; n],
            mark_gen: 0,
            touched_nodes: Vec::new(),
            touched_deltas: Vec::new(),
            color_slot: vec![0; mat_cap],
            touched_colors: Vec::new(),
            row_scratch: vec![0.0; 4 * mat_cap],
            row_arg_scratch: vec![NO_ARG; 4 * mat_cap],
            row_nz_scratch: vec![0; 2 * mat_cap],
            pool: (track_summaries && threads > 1).then(|| Arc::new(ThreadPool::new(threads))),
            shard_scratch: if track_summaries && threads > 1 {
                vec![ShardScratch::default(); threads]
            } else {
                Vec::new()
            },
            par_min_touched: PAR_MIN_TOUCHED,
            par_min_scan_work: PAR_MIN_SCAN_WORK,
            entry_scratch_out: Vec::new(),
            entry_scratch_in: Vec::new(),
            dirty_scratch: Vec::new(),
            edge_patches_out: Vec::new(),
            edge_patches_in: Vec::new(),
            edge_slot_out: HashMap::new(),
            edge_slot_in: HashMap::new(),
            edge_acc_out: Vec::new(),
            edge_acc_in: Vec::new(),
            edge_acc_slot_out: HashMap::new(),
            edge_acc_slot_in: HashMap::new(),
            chunk_out: Vec::new(),
            merge_scratch: Vec::new(),
            merge_scratch_in: Vec::new(),
        }
    }

    /// Promotion hint for [`RowRep::add`]: the live color count when
    /// tiering is active, `0` (never promote) otherwise.
    #[inline]
    fn promote_k(&self) -> usize {
        if self.promote {
            self.k
        } else {
            0
        }
    }

    /// Add `delta` to the maintained accumulator value, returning
    /// `(old, new)` — the one write primitive shared by every event path,
    /// identical arithmetic in both storage tiers.
    #[inline]
    fn accum_add(&mut self, outgoing: bool, v: NodeId, col: usize, delta: f64) -> (f64, f64) {
        if self.sparse_accum {
            let promote_k = self.promote_k();
            let rows = if outgoing || self.symmetric {
                &mut self.sparse_out
            } else {
                &mut self.sparse_in
            };
            rows[v as usize].add(col as u32, delta, promote_k)
        } else {
            let acc = if outgoing || self.symmetric {
                &mut self.dout
            } else {
                &mut self.din
            };
            let slot = &mut acc[v as usize * self.cap + col];
            let old = *slot;
            let new = old + delta;
            *slot = new;
            (old, new)
        }
    }

    /// Heap bytes resident in the engine's long-lived state: accumulators
    /// (dense matrices or tiered rows), pair summaries, witness caches and
    /// the per-node scratch. Reusable per-event scratch lists are included
    /// too — they are part of what the process actually keeps resident.
    /// This is the number `bench_memory` reports per storage mode.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let rows = |v: &Vec<RowRep>| {
            v.capacity() * size_of::<RowRep>() + v.iter().map(RowRep::heap_bytes).sum::<usize>()
        };
        let mut bytes = self.dout.capacity() * 8 + self.din.capacity() * 8;
        bytes += rows(&self.sparse_out) + rows(&self.sparse_in);
        bytes += (self.out_min.capacity()
            + self.out_max.capacity()
            + self.in_min.capacity()
            + self.in_max.capacity())
            * 8;
        bytes += (self.out_min_arg.capacity()
            + self.out_max_arg.capacity()
            + self.in_min_arg.capacity()
            + self.in_max_arg.capacity()
            + self.out_nz.capacity()
            + self.in_nz.capacity())
            * 4;
        bytes += self.row_max_err.capacity() * 8
            + self.row_best.capacity() * size_of::<Option<RowBest>>()
            + self.row_err_dirty.capacity()
            + self.row_best_dirty.capacity();
        bytes += self.node_stamp.capacity() * 4
            + self.node_delta.capacity() * 8
            + self.node_mark.capacity() * 8;
        bytes += self.touched_nodes.capacity() * 4 + self.touched_deltas.capacity() * 8;
        bytes += self.color_slot.capacity() * 4
            + self.touched_colors.capacity() * size_of::<TouchedColor>();
        bytes += self.row_scratch.capacity() * 8
            + self.row_arg_scratch.capacity() * 4
            + self.row_nz_scratch.capacity() * 4;
        bytes
    }

    /// What [`Self::resident_bytes`] would report with a *dense*
    /// accumulator tier at the current `n × cap` shape: the measured
    /// resident bytes with the accumulator tier swapped for `n · cap`
    /// `f64` slots per tracked direction. For a dense engine this is the
    /// measurement itself (within allocator slack); for a sparse engine it
    /// is the analytic dense projection `bench_memory` compares against at
    /// scales where a dense engine is deliberately never built.
    #[must_use]
    pub fn projected_dense_resident_bytes(&self) -> usize {
        use std::mem::size_of;
        let rows = |v: &Vec<RowRep>| {
            v.capacity() * size_of::<RowRep>() + v.iter().map(RowRep::heap_bytes).sum::<usize>()
        };
        let accum_now = self.dout.capacity() * 8
            + self.din.capacity() * 8
            + rows(&self.sparse_out)
            + rows(&self.sparse_in);
        let dirs = if self.symmetric { 1 } else { 2 };
        let dense_accum = if self.track_summaries {
            self.n * self.cap * 8 * dirs
        } else {
            // Degrees-only engines never hold dense accumulators.
            accum_now
        };
        self.resident_bytes() - accum_now + dense_accum
    }

    /// Number of colors currently tracked.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.k
    }

    /// Override the parallel-dispatch thresholds: the minimum touched-node
    /// count before a split's accumulator phase shards (which doubles as
    /// the canonical chunk size of the touched-collection accumulation),
    /// and the minimum total scan work (members × colors, entries ×
    /// members, or rows × colors) before member-scan and witness-refresh
    /// batches shard. For any fixed thresholds, results are bit-identical
    /// across every thread count (the defaults just avoid paying the
    /// fork-join handshake for tiny regions); tests and benchmarks use
    /// this to force the sharded paths on small inputs. Because the
    /// touched chunk size follows `min_touched`, two engines compared on
    /// non-representable float weights should share thresholds — a
    /// different chunking regroups the per-neighbor weight sums (exact
    /// weights agree under any grouping).
    pub fn set_parallel_thresholds(&mut self, min_touched: usize, min_scan_work: usize) {
        self.par_min_touched = min_touched.max(1);
        self.par_min_scan_work = min_scan_work.max(1);
    }

    /// Pre-reserve internal capacity for a refinement expected to reach
    /// `colors` colors, so the accumulator rows and summary matrices are
    /// (re)allocated once up front instead of doubling several times during
    /// the run. Purely an allocation hint — values are unaffected.
    pub fn reserve_colors(&mut self, colors: usize) {
        self.ensure_capacity(colors.min(self.n.max(1)));
    }

    /// Whether the graph is undirected, i.e. the in-direction state mirrors
    /// the out-direction exactly (see the module docs). Consumers can skip
    /// their own in-direction work when this holds.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.symmetric
    }

    /// The maintained `w(v, P_j)` accumulator.
    #[inline]
    pub fn out_degree_of(&self, v: NodeId, color: u32) -> f64 {
        if self.sparse_accum {
            return self.sparse_out[v as usize].get(color);
        }
        self.dout[v as usize * self.cap + color as usize]
    }

    /// The maintained `w(P_j, v)` accumulator.
    #[inline]
    pub fn in_degree_of(&self, v: NodeId, color: u32) -> f64 {
        if self.symmetric {
            return self.out_degree_of(v, color);
        }
        if self.sparse_accum {
            return self.sparse_in[v as usize].get(color);
        }
        self.din[v as usize * self.cap + color as usize]
    }

    /// The full out-degree accumulator row of `v` (length `k`). Contiguous
    /// rows exist only in dense-storage summary engines; sparse-storage and
    /// degrees-only engines keep tiered rows and panic here — read
    /// per-color values through [`Self::out_degree_of`] instead.
    #[inline]
    pub fn out_row(&self, v: NodeId) -> &[f64] {
        assert!(
            !self.sparse_accum,
            "sparse-storage engines keep tiered rows; use out_degree_of"
        );
        let base = v as usize * self.cap;
        &self.dout[base..base + self.k]
    }

    /// The full in-degree accumulator row of `v` (length `k`); see
    /// [`Self::out_row`] for the sparse-storage caveat.
    #[inline]
    pub fn in_row(&self, v: NodeId) -> &[f64] {
        if self.symmetric {
            return self.out_row(v);
        }
        assert!(
            !self.sparse_accum,
            "sparse-storage engines keep tiered rows; use in_degree_of"
        );
        let base = v as usize * self.cap;
        &self.din[base..base + self.k]
    }

    /// Outgoing error `U − L` at `(i, j)` (same convention as
    /// [`DegreeMatrices::out_error`]).
    #[inline]
    pub fn out_error(&self, i: usize, j: usize) -> f64 {
        debug_assert!(
            self.track_summaries,
            "pair summaries not tracked by this engine"
        );
        self.out_max[i * self.cap + j] - self.out_min[i * self.cap + j]
    }

    /// Incoming error at `(i, j)` (same convention as
    /// [`DegreeMatrices::in_error`]).
    #[inline]
    pub fn in_error(&self, i: usize, j: usize) -> f64 {
        debug_assert!(
            self.track_summaries,
            "pair summaries not tracked by this engine"
        );
        if self.symmetric {
            return self.out_error(j, i);
        }
        self.in_max[i * self.cap + j] - self.in_min[i * self.cap + j]
    }

    /// Package the engine's pair summaries as a [`QErrorReport`] — the
    /// same scan order, tie-breaks, and mean fold as [`q_error_report`]
    /// on the synchronized graph/partition (so the two agree exactly
    /// whenever the accumulator sums are exact, e.g. on integer weights)
    /// for `O(k²)` instead of the `O(n·k + m)` matrix recomputation.
    pub fn q_report(&self) -> QErrorReport {
        assert!(
            self.track_summaries,
            "q_report requires a summary-tracking engine"
        );
        let k = self.k;
        let mut max_q = 0.0f64;
        let mut worst = None;
        let mut total = 0.0f64;
        let mut count = 0usize;
        for i in 0..k {
            for j in 0..k {
                let eo = self.out_error(i, j);
                if eo > max_q {
                    max_q = eo;
                    worst = Some((i as u32, j as u32, Direction::Out));
                }
                let ei = self.in_error(i, j);
                if ei > max_q {
                    max_q = ei;
                    worst = Some((i as u32, j as u32, Direction::In));
                }
                if self.out_nz[i * self.cap + j] > 0 {
                    total += eo;
                    total += ei;
                    count += 2;
                }
            }
        }
        QErrorReport {
            max_q,
            mean_q: if count == 0 {
                0.0
            } else {
                total / count as f64
            },
            num_colors: k,
            worst_pair: worst,
        }
    }

    /// Apply a split performed on the partition. `p` must be the partition
    /// *after* the split and `event.child` must be the next color id (splits
    /// are applied in order).
    ///
    /// Cost: `O(deg(moved) + (|parent| + |child|)·k)` plus a one-column
    /// member rescan for each pair summary that actually lost its tracked
    /// extremum attainer. Engines built with more than one thread shard the
    /// accumulator updates, member-axis scans and rescans across the pool
    /// (see the module docs for the merge design); the result is
    /// bit-identical to the serial engine.
    pub fn apply_split(&mut self, g: &Graph, p: &Partition, event: &SplitEvent) {
        let c = event.parent as usize;
        let child = event.child as usize;
        assert_eq!(child, self.k, "split events must be applied in order");
        assert_eq!(
            p.num_colors(),
            self.k + 1,
            "partition out of sync with engine"
        );
        self.ensure_capacity(self.k + 1);
        self.k += 1;

        if !self.track_summaries {
            self.apply_split_degrees_only(g, event);
            #[cfg(debug_assertions)]
            {
                debug_assert_eq!(
                    self.verify_against(g, p),
                    Ok(()),
                    "incremental state diverged from scratch recomputation"
                );
            }
            return;
        }
        let cap = self.cap;

        // Fresh row/column for the child: "no edges" until proven
        // otherwise.
        for i in 0..self.k {
            self.out_min[i * cap + child] = 0.0;
            self.out_max[i * cap + child] = 0.0;
            self.out_min[child * cap + i] = 0.0;
            self.out_max[child * cap + i] = 0.0;
            self.out_min_arg[i * cap + child] = NO_ARG;
            self.out_max_arg[i * cap + child] = NO_ARG;
            self.out_min_arg[child * cap + i] = NO_ARG;
            self.out_max_arg[child * cap + i] = NO_ARG;
            self.out_nz[i * cap + child] = 0;
            self.out_nz[child * cap + i] = 0;
            if !self.symmetric {
                self.in_min[i * cap + child] = 0.0;
                self.in_max[i * cap + child] = 0.0;
                self.in_min[child * cap + i] = 0.0;
                self.in_max[child * cap + i] = 0.0;
                self.in_min_arg[i * cap + child] = NO_ARG;
                self.in_max_arg[i * cap + child] = NO_ARG;
                self.in_min_arg[child * cap + i] = NO_ARG;
                self.in_max_arg[child * cap + i] = NO_ARG;
                self.in_nz[i * cap + child] = 0;
                self.in_nz[child * cap + i] = 0;
            }
        }
        self.row_max_err[child] = 0.0;
        self.row_best[child] = None;

        // ---- Out side: sources with edges into the moved nodes (their
        // dout mass shifts from column `parent` to column `child`), then
        // for directed graphs the mirrored in side (targets of the moved
        // nodes' out-edges).
        self.collect_touched(g, &event.moved_nodes, true);
        self.apply_side(p, c, child, true);
        if !self.symmetric {
            self.collect_touched(g, &event.moved_nodes, false);
            self.apply_side(p, c, child, false);
        }

        // ---- Member axes of child and parent. The child is rebuilt from
        // its members' (now final) accumulator rows; the parent's entries
        // over unchanged columns only shrank in membership, so they keep
        // their value unless their tracked extremum attainer departed to
        // the child (then a one-column member rescan re-derives it).
        self.recompute_color_axis(p, child);
        self.recompute_parent_axis(p, c, child);

        // ---- Witness-row invalidation: rows recomputed above changed
        // entries (error and best both stale), and any cached best that
        // pointed at the parent saw its target *size* change — its error is
        // untouched, so only the β-weighted best goes stale. A negative β
        // voids that shortcut: shrinking a target color *raises* candidate
        // weights, so stale non-best candidates can overtake silently —
        // dirty every row's best.
        self.row_err_dirty[c] = true;
        self.row_best_dirty[c] = true;
        self.row_err_dirty[child] = true;
        self.row_best_dirty[child] = true;
        if self.last_beta < 0.0 {
            self.row_best_dirty[..self.k].fill(true);
        } else {
            for s in 0..self.k {
                if let Some(best) = &self.row_best[s] {
                    if best.other as usize == c {
                        self.row_best_dirty[s] = true;
                    }
                }
            }
        }

        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(
                self.verify_against(g, p),
                Ok(()),
                "incremental state diverged from scratch recomputation"
            );
        }
    }

    /// The degrees-only split path: shift each touched node's sparse
    /// accumulator mass from the parent to the child column. Pure
    /// `O(deg(moved) · log deg)` — no summaries, no matrices.
    fn apply_split_degrees_only(&mut self, g: &Graph, event: &SplitEvent) {
        let c = event.parent;
        let child = event.child;
        // Incoming arcs identify the nodes whose *out*-rows change, and
        // vice versa; undirected graphs mirror, so one pass suffices.
        let directions: &[bool] = if self.symmetric {
            &[true]
        } else {
            &[true, false]
        };
        for &incoming in directions {
            self.collect_touched(g, &event.moved_nodes, incoming);
            let touched = std::mem::take(&mut self.touched_nodes);
            let deltas = std::mem::take(&mut self.touched_deltas);
            for (&u, &d) in touched.iter().zip(deltas.iter()) {
                let row = if incoming {
                    &mut self.sparse_out[u as usize]
                } else {
                    &mut self.sparse_in[u as usize]
                };
                row.add(c, -d, 0);
                row.add(child, d, 0);
            }
            self.touched_nodes = touched;
            self.touched_deltas = deltas;
        }
    }

    /// Patch the engine for a batch of edge events — graph-free dynamic
    /// maintenance (see the module docs, "Edge-event maintenance"). `p` is
    /// the *unchanged* partition the engine is synchronized with; each
    /// event carries the signed weight delta of one logical edge
    /// (undirected events are applied to both stored arc directions,
    /// self-loops once), exactly as
    /// `qsc_graph::delta::GraphDelta::drain_events` produces them.
    ///
    /// Cost: `O(events + touched entries)` plus a one-column member rescan
    /// for each pair summary that provably lost a tracked extremum.
    /// Touched witness rows go error-dirty; call [`Self::refresh`] before
    /// the next [`Self::max_error`] / witness pick as after a split.
    pub fn apply_edge_batch(&mut self, p: &Partition, events: &[EdgeEvent]) {
        assert_eq!(p.num_nodes(), self.n, "partition does not match engine");
        assert_eq!(p.num_colors(), self.k, "partition out of sync with engine");
        if events.is_empty() {
            return;
        }
        if !self.track_summaries {
            // Degrees-only mode: pure sparse-row updates, O(log deg) each.
            for ev in events {
                let cu = p.color_of(ev.source);
                let cv = p.color_of(ev.target);
                self.sparse_out[ev.source as usize].add(cv, ev.delta, 0);
                if self.symmetric {
                    if ev.source != ev.target {
                        self.sparse_out[ev.target as usize].add(cu, ev.delta, 0);
                    }
                } else {
                    self.sparse_in[ev.target as usize].add(cu, ev.delta, 0);
                }
            }
            return;
        }
        self.edge_patches_out.clear();
        self.edge_patches_in.clear();
        self.edge_slot_out.clear();
        self.edge_slot_in.clear();
        // Combine the events into one delta per (node, column) first: the
        // entry-patch rules below (inline extension + exact lost-extremum
        // detection) are sound only when each accumulator cell changes
        // exactly once per batch, as on the split path.
        let mut acc_out = std::mem::take(&mut self.edge_acc_out);
        let mut acc_in = std::mem::take(&mut self.edge_acc_in);
        acc_out.clear();
        acc_in.clear();
        self.edge_acc_slot_out.clear();
        self.edge_acc_slot_in.clear();
        for ev in events {
            let cu = p.color_of(ev.source);
            let cv = p.color_of(ev.target);
            accumulate_edge(
                &mut acc_out,
                &mut self.edge_acc_slot_out,
                ev.source,
                cv,
                ev.delta,
            );
            if self.symmetric {
                // The mirrored arc's out-accumulator (the in-state is not
                // stored); a self-loop is a single stored arc.
                if ev.source != ev.target {
                    accumulate_edge(
                        &mut acc_out,
                        &mut self.edge_acc_slot_out,
                        ev.target,
                        cu,
                        ev.delta,
                    );
                }
            } else {
                accumulate_edge(
                    &mut acc_in,
                    &mut self.edge_acc_slot_in,
                    ev.target,
                    cu,
                    ev.delta,
                );
            }
        }
        for &(u, col, d) in &acc_out {
            if d != 0.0 {
                self.patch_edge_value(true, u, p.color_of(u), col, d);
            }
        }
        self.finalize_edge_batch(p, true);
        if !self.symmetric {
            for &(u, col, d) in &acc_in {
                if d != 0.0 {
                    self.patch_edge_value(false, u, p.color_of(u), col, d);
                }
            }
            self.finalize_edge_batch(p, false);
        }
        self.edge_acc_out = acc_out;
        self.edge_acc_in = acc_in;
    }

    /// Apply one arc-accumulator change of an edge batch and fold it into
    /// the affected pair-summary entry's patch record. `member_color` is
    /// the color of `u` (the node whose accumulator row changes); the
    /// entry is `(member_color, other_color)` in the out matrix or
    /// `(other_color, member_color)` in the in matrix.
    fn patch_edge_value(
        &mut self,
        outgoing: bool,
        u: NodeId,
        member_color: u32,
        other_color: u32,
        delta: f64,
    ) {
        let cap = self.cap;
        let (old, new) = self.accum_add(outgoing, u, other_color as usize, delta);
        let (entry_row, entry_col) = if outgoing {
            (member_color, other_color)
        } else {
            (other_color, member_color)
        };
        let idx = entry_row as usize * cap + entry_col as usize;
        let (cur_min, cur_max, arg_min, arg_max) = if outgoing {
            (
                self.out_min[idx],
                self.out_max[idx],
                self.out_min_arg[idx],
                self.out_max_arg[idx],
            )
        } else {
            (
                self.in_min[idx],
                self.in_max[idx],
                self.in_min_arg[idx],
                self.in_max_arg[idx],
            )
        };
        let (patches, slots) = if outgoing {
            (&mut self.edge_patches_out, &mut self.edge_slot_out)
        } else {
            (&mut self.edge_patches_in, &mut self.edge_slot_in)
        };
        let slot = *slots.entry(idx).or_insert_with(|| {
            patches.push(EdgeEntryPatch {
                row: entry_row,
                col: entry_col,
                orig_min: cur_min,
                orig_max: cur_max,
                rescan_min: false,
                rescan_max: false,
                nz_delta: 0,
            });
            patches.len() - 1
        });
        let rec = &mut patches[slot];
        // Exact lost-extremum test against the batch-start snapshot, with
        // unknown attainers falling back to the conservative heuristic —
        // the same rule as [`Self::patch_entry`] on the split path.
        if new < old {
            if old == rec.orig_max && (arg_max == NO_ARG || arg_max == u) {
                rec.rescan_max = true;
            }
        } else if new > old && old == rec.orig_min && (arg_min == NO_ARG || arg_min == u) {
            rec.rescan_min = true;
        }
        if (old == 0.0) != (new == 0.0) {
            rec.nz_delta += if new != 0.0 { 1 } else { -1 };
        }
        let (emn, emx, amn, amx) = if outgoing {
            (
                &mut self.out_min[idx],
                &mut self.out_max[idx],
                &mut self.out_min_arg[idx],
                &mut self.out_max_arg[idx],
            )
        } else {
            (
                &mut self.in_min[idx],
                &mut self.in_max[idx],
                &mut self.in_min_arg[idx],
                &mut self.in_max_arg[idx],
            )
        };
        if new < *emn {
            *emn = new;
            *amn = u;
        }
        if new > *emx {
            *emx = new;
            *amx = u;
        }
    }

    /// Finalize one direction of an edge batch: apply the queued
    /// zero-crossing count deltas, decide which flagged extrema actually
    /// need a member rescan (the `min == 0` zero-member rule cancels the
    /// rest, exactly as on the split path), run the rescans, and dirty the
    /// touched witness rows.
    fn finalize_edge_batch(&mut self, p: &Partition, outgoing: bool) {
        let cap = self.cap;
        let patches = std::mem::take(if outgoing {
            &mut self.edge_patches_out
        } else {
            &mut self.edge_patches_in
        });
        let mut rescans = std::mem::take(if outgoing {
            &mut self.entry_scratch_out
        } else {
            &mut self.entry_scratch_in
        });
        rescans.clear();
        for rec in &patches {
            let idx = rec.row as usize * cap + rec.col as usize;
            let member_color = if outgoing { rec.row } else { rec.col };
            let size = p.size(member_color);
            let nz = {
                let slot = if outgoing {
                    &mut self.out_nz[idx]
                } else {
                    &mut self.in_nz[idx]
                };
                *slot = (*slot as i64 + rec.nz_delta) as u32;
                *slot
            };
            let (mn, mx) = if outgoing {
                (self.out_min[idx], self.out_max[idx])
            } else {
                (self.in_min[idx], self.in_max[idx])
            };
            let zero_member = (nz as usize) < size;
            let need = (rec.rescan_min && !(mn == 0.0 && zero_member))
                || (rec.rescan_max && !(mx == 0.0 && zero_member));
            if need {
                rescans.push((rec.row, rec.col));
            } else {
                // A flagged side whose zero extremum provably stands keeps
                // its value but no longer knows a specific attainer.
                if rec.rescan_min {
                    if outgoing {
                        self.out_min_arg[idx] = NO_ARG;
                    } else {
                        self.in_min_arg[idx] = NO_ARG;
                    }
                }
                if rec.rescan_max {
                    if outgoing {
                        self.out_max_arg[idx] = NO_ARG;
                    } else {
                        self.in_max_arg[idx] = NO_ARG;
                    }
                }
            }
            self.row_err_dirty[member_color as usize] = true;
            self.row_best_dirty[member_color as usize] = true;
        }
        if outgoing {
            self.rescan_out_entries(p, &rescans);
            self.entry_scratch_out = rescans;
            self.edge_patches_out = patches;
        } else {
            self.rescan_in_entries(p, &rescans);
            self.entry_scratch_in = rescans;
            self.edge_patches_in = patches;
        }
    }

    /// The best coarsening candidate: the color pair whose merge has the
    /// smallest provable post-merge q-error bound, or `None` when no pair's
    /// bound stays at or below `max_bound` (or fewer than two colors
    /// exist). `O(k³)` — intended for the maintenance path, where merges
    /// are rare; the selection is deterministic (lexicographically smallest
    /// pair on exact bound ties) and reads only the pair summaries, so
    /// maintained and freshly built engines pick identical pairs.
    pub fn pick_merge(&self, max_bound: f64) -> Option<MergeCandidate> {
        assert!(
            self.track_summaries,
            "pick_merge requires a summary-tracking engine"
        );
        if self.k < 2 {
            return None;
        }
        let view = SummaryView {
            k: self.k,
            cap: self.cap,
            symmetric: self.symmetric,
            out_min: &self.out_min,
            out_max: &self.out_max,
            in_min: &self.in_min,
            in_max: &self.in_max,
        };
        pick_merge_view(&view, self.k, max_bound)
    }

    /// The post-merge q-error bound of one specific pair (see
    /// [`Self::pick_merge`]); `O(k)`. Maintenance uses this to *re-validate*
    /// stale candidates against the current state before applying them, so
    /// a coarsening round pays one full `O(k³)` scan plus `O(k)` per
    /// applied merge instead of `O(k³)` per merge.
    pub fn merge_bound_pair(&self, a: u32, b: u32) -> f64 {
        assert!(
            self.track_summaries,
            "merge bounds require a summary-tracking engine"
        );
        assert!((a as usize) < self.k && (b as usize) < self.k && a < b);
        let view = SummaryView {
            k: self.k,
            cap: self.cap,
            symmetric: self.symmetric,
            out_min: &self.out_min,
            out_max: &self.out_max,
            in_min: &self.in_min,
            in_max: &self.in_max,
        };
        merge_bound(&view, self.k, a as usize, b as usize, f64::INFINITY)
    }

    /// Every color pair whose post-merge bound stays at or below
    /// `max_bound`, sorted ascending by `(bound, winner, loser)` — the
    /// candidate list of one batched coarsening round.
    ///
    /// A merged pair's bound dominates each color's own cached row error
    /// (every union term contains the color's own spread), so only colors
    /// with `row_max_err <= max_bound` can participate — the scan
    /// prefilters to those in `O(k)` and pays `O(|eligible|² · k)` for the
    /// bounds, which in steady maintenance (most colors split right up to
    /// the target) is far below the naive `O(k³)`. Requires
    /// [`Self::refresh`] since the last mutation (the prefilter reads the
    /// cached row errors).
    pub fn merge_candidates(&self, max_bound: f64) -> Vec<MergeCandidate> {
        assert!(
            self.track_summaries,
            "merge candidates require a summary-tracking engine"
        );
        debug_assert!(
            self.row_err_dirty[..self.k].iter().all(|d| !d),
            "merge_candidates with dirty rows; call refresh() first"
        );
        let view = SummaryView {
            k: self.k,
            cap: self.cap,
            symmetric: self.symmetric,
            out_min: &self.out_min,
            out_max: &self.out_max,
            in_min: &self.in_min,
            in_max: &self.in_max,
        };
        let eligible: Vec<usize> = (0..self.k)
            .filter(|&c| self.row_max_err[c] <= max_bound)
            .collect();
        let mut out = Vec::new();
        for (i, &a) in eligible.iter().enumerate() {
            for &b in &eligible[i + 1..] {
                let bound = merge_bound(&view, self.k, a, b, max_bound);
                if bound <= max_bound {
                    out.push(MergeCandidate {
                        winner: a as u32,
                        loser: b as u32,
                        bound,
                    });
                }
            }
        }
        out.sort_by(|x, y| {
            x.bound
                .partial_cmp(&y.bound)
                .expect("finite bounds")
                .then(x.winner.cmp(&y.winner))
                .then(x.loser.cmp(&y.loser))
        });
        out
    }

    /// Apply a merge performed on the partition — the dual of
    /// [`Self::apply_split`]. `p` must be the partition *after* the merge
    /// ([`Partition::merge_colors`] semantics: the loser's members joined
    /// the winner, the ex-last color was relabeled into the freed slot).
    ///
    /// Cost: `O(touched + |merged| · k + k)` — accumulator columns fold for
    /// the in/out-neighbors of the moved members, entries over other
    /// colors' member axes are patched with the split path's exact
    /// lost-extremum machinery (plus one-column rescans where an extremum
    /// was provably lost), the winner's member axis is rebuilt, and the
    /// relabel is `O(touched + k)` row/column copies.
    pub fn apply_merge(&mut self, g: &Graph, p: &Partition, event: &MergeEvent) {
        let winner = event.winner as usize;
        let loser = event.loser as usize;
        assert!(winner < loser, "merge events require winner < loser");
        assert_eq!(
            p.num_colors(),
            self.k - 1,
            "partition out of sync with engine"
        );
        let last = self.k - 1;
        debug_assert_eq!(
            event.relabeled,
            (loser != last).then_some(last as u32),
            "merge event relabel does not match the engine's color count"
        );

        if !self.track_summaries {
            self.apply_merge_degrees_only(g, p, event);
            #[cfg(debug_assertions)]
            debug_assert_eq!(self.verify_against(g, p), Ok(()), "merge diverged");
            return;
        }

        let cap = self.cap;
        // ---- Fold the accumulator columns, capturing (node, old, new)
        // winner-column values so entry patches can run after the relabel,
        // in the final id space.
        let directions: &[bool] = if self.symmetric {
            &[true]
        } else {
            &[true, false]
        };
        let mut captures: Vec<Vec<(NodeId, f64, f64)>> = Vec::with_capacity(2);
        for (dir_idx, &outgoing) in directions.iter().enumerate() {
            // In-neighbors of the moved members hold the non-zero
            // out-accumulator entries towards the loser (and vice versa).
            self.collect_touched(g, &event.moved_nodes, outgoing);
            let touched = std::mem::take(&mut self.touched_nodes);
            let mut capture = std::mem::take(if dir_idx == 0 {
                &mut self.merge_scratch
            } else {
                &mut self.merge_scratch_in
            });
            capture.clear();
            if self.sparse_accum {
                let promote_k = self.promote_k();
                let rows = if outgoing {
                    &mut self.sparse_out
                } else {
                    &mut self.sparse_in
                };
                for &u in &touched {
                    let row = &mut rows[u as usize];
                    let lost = row.get(loser as u32);
                    if lost == 0.0 {
                        continue;
                    }
                    row.add(loser as u32, -lost, promote_k);
                    let (old, new) = row.add(winner as u32, lost, promote_k);
                    capture.push((u, old, new));
                }
            } else {
                let acc = if outgoing {
                    &mut self.dout
                } else {
                    &mut self.din
                };
                for &u in &touched {
                    let base = u as usize * cap;
                    let lost = acc[base + loser];
                    if lost == 0.0 {
                        continue;
                    }
                    let old = acc[base + winner];
                    let new = old + lost;
                    acc[base + winner] = new;
                    acc[base + loser] = 0.0;
                    capture.push((u, old, new));
                }
            }
            captures.push(capture);
            self.touched_nodes = touched;
        }

        // ---- Relabel the ex-last color into the freed loser slot (no-op
        // when the loser was last), then shrink.
        if loser != last {
            self.relabel_last_color(g, p, loser);
        }
        self.k -= 1;
        let k = self.k;

        // ---- Patch entries over other colors' member axes from the
        // captured folds, now with partition and engine ids aligned.
        for (dir_idx, &outgoing) in directions.iter().enumerate() {
            self.begin_color_batch();
            let capture = std::mem::take(&mut captures[dir_idx]);
            for &(u, old, new) in &capture {
                let i = p.color_of(u) as usize;
                if i == winner {
                    continue; // the winner's axis is rebuilt below
                }
                let (kind, row, col) = if outgoing {
                    (EntryKind::OutCol, i, winner)
                } else {
                    (EntryKind::InRow, winner, i)
                };
                self.patch_entry(kind, row, col, u, old, new, 0.0);
            }
            if dir_idx == 0 {
                self.merge_scratch = capture;
            } else {
                self.merge_scratch_in = capture;
            }
            self.finalize_merge_side(p, winner, outgoing);
        }

        // ---- The winner's member axis (rows (winner, ·) and in-entries
        // (·, winner)) is rebuilt from the merged member list.
        self.recompute_color_axis(p, winner);

        // ---- Witness bookkeeping: cached bests still name pre-merge
        // colors — the merged-away loser invalidates and the relabeled
        // ex-last renames. The winner's size *grew*, which is the reverse
        // of the split path: with any non-zero β a non-best candidate
        // targeting the winner can silently overtake an untouched row's
        // cached best (β > 0: its weight rose; β < 0: the best's own
        // weight fell), so every row's best goes stale. With β = 0 the
        // weights are size-independent and the targeted invalidation
        // suffices.
        if self.last_beta != 0.0 {
            self.row_best_dirty[..k].fill(true);
            for s in 0..k {
                if let Some(best) = &mut self.row_best[s] {
                    if best.other as usize == last {
                        best.other = loser as u32;
                    }
                }
            }
        } else {
            for s in 0..k {
                if let Some(best) = &mut self.row_best[s] {
                    if best.other as usize == loser || best.other as usize == winner {
                        self.row_best_dirty[s] = true;
                    } else if best.other as usize == last {
                        best.other = loser as u32;
                    }
                }
            }
        }

        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.verify_against(g, p),
            Ok(()),
            "incremental merge diverged from scratch recomputation"
        );
    }

    /// The degrees-only merge path: fold the loser column of every touched
    /// sparse row into the winner, then relabel the ex-last color.
    fn apply_merge_degrees_only(&mut self, g: &Graph, p: &Partition, event: &MergeEvent) {
        let winner = event.winner;
        let loser = event.loser;
        let last = (self.k - 1) as u32;
        let directions: &[bool] = if self.symmetric {
            &[true]
        } else {
            &[true, false]
        };
        for &outgoing in directions {
            self.collect_touched(g, &event.moved_nodes, outgoing);
            let touched = std::mem::take(&mut self.touched_nodes);
            for &u in &touched {
                let row = if outgoing {
                    &mut self.sparse_out[u as usize]
                } else {
                    &mut self.sparse_in[u as usize]
                };
                let lost = row.get(loser);
                if lost != 0.0 {
                    row.add(loser, -lost, 0);
                    row.add(winner, lost, 0);
                }
            }
            self.touched_nodes = touched;
            if loser != last {
                // Relabel: move the ex-last column into the freed slot for
                // the (in/out-)neighbors of the relabeled class.
                self.collect_touched(g, p.members(loser), outgoing);
                let touched = std::mem::take(&mut self.touched_nodes);
                for &u in &touched {
                    let row = if outgoing {
                        &mut self.sparse_out[u as usize]
                    } else {
                        &mut self.sparse_in[u as usize]
                    };
                    row.relabel(last, loser);
                }
                self.touched_nodes = touched;
            }
        }
        self.k -= 1;
    }

    /// Move color `last = k - 1`'s engine state into the freed `loser`
    /// slot: accumulator columns for the relabeled class's neighbors,
    /// row/column copies in every pair-summary array, and the witness-row
    /// caches. Values are copied, never recomputed, so the relabel is
    /// exact. Runs with the *old* `k` still in place.
    fn relabel_last_color(&mut self, g: &Graph, p: &Partition, loser: usize) {
        let cap = self.cap;
        let last = self.k - 1;
        // Accumulator columns: only the relabeled class's neighbors hold
        // non-zero values in column `last` (the merged-away loser's column
        // was zeroed by the fold).
        let directions: &[bool] = if self.symmetric {
            &[true]
        } else {
            &[true, false]
        };
        for &outgoing in directions {
            self.collect_touched(g, p.members(loser as u32), outgoing);
            let touched = std::mem::take(&mut self.touched_nodes);
            if self.sparse_accum {
                let rows = if outgoing {
                    &mut self.sparse_out
                } else {
                    &mut self.sparse_in
                };
                for &u in &touched {
                    rows[u as usize].relabel(last as u32, loser as u32);
                }
            } else {
                let acc = if outgoing {
                    &mut self.dout
                } else {
                    &mut self.din
                };
                for &u in &touched {
                    let base = u as usize * cap;
                    acc[base + loser] = acc[base + last];
                    acc[base + last] = 0.0;
                }
            }
            self.touched_nodes = touched;
        }
        // Pair-summary arrays: row and column `last` move to `loser`
        // (diagonal handled explicitly).
        let k = self.k;
        // `from` is always the last live color, so the skip set `{from, to}`
        // splits the column range into two contiguous runs — the row moves
        // become two `copy_within` memmoves and the (strided) column moves
        // two branch-free loops, touching exactly the cells the old
        // skip-branch loop touched.
        fn relabel<T: Copy>(m: &mut [T], cap: usize, k: usize, from: usize, to: usize) {
            debug_assert!(from == k - 1 && to < from);
            let diag = m[from * cap + from];
            m.copy_within(from * cap..from * cap + to, to * cap);
            m.copy_within(from * cap + to + 1..from * cap + from, to * cap + to + 1);
            for j in 0..to {
                m[j * cap + to] = m[j * cap + from];
            }
            for j in to + 1..from {
                m[j * cap + to] = m[j * cap + from];
            }
            m[to * cap + to] = diag;
        }
        relabel(&mut self.out_min, cap, k, last, loser);
        relabel(&mut self.out_max, cap, k, last, loser);
        relabel(&mut self.out_min_arg, cap, k, last, loser);
        relabel(&mut self.out_max_arg, cap, k, last, loser);
        relabel(&mut self.out_nz, cap, k, last, loser);
        if !self.symmetric {
            relabel(&mut self.in_min, cap, k, last, loser);
            relabel(&mut self.in_max, cap, k, last, loser);
            relabel(&mut self.in_min_arg, cap, k, last, loser);
            relabel(&mut self.in_max_arg, cap, k, last, loser);
            relabel(&mut self.in_nz, cap, k, last, loser);
        }
        // Witness-row caches move wholesale (the row's content is the same
        // set of entries, just renamed).
        self.row_max_err[loser] = self.row_max_err[last];
        self.row_best[loser] = self.row_best[last];
        self.row_err_dirty[loser] = self.row_err_dirty[last];
        self.row_best_dirty[loser] = self.row_best_dirty[last];
    }

    /// Finalize one direction of a merge's entry-patch batch: apply the
    /// queued zero-crossing deltas, decide which flagged extrema need a
    /// member rescan (same zero-member rule as the split path), run the
    /// rescans, and dirty the touched witness rows. The merge analogue of
    /// the split finalize, minus the child-column installation.
    fn finalize_merge_side(&mut self, p: &Partition, winner: usize, outgoing: bool) {
        let cap = self.cap;
        let batch = std::mem::take(&mut self.touched_colors);
        let mut rescans = if outgoing {
            std::mem::take(&mut self.entry_scratch_out)
        } else {
            std::mem::take(&mut self.entry_scratch_in)
        };
        rescans.clear();
        for t in &batch {
            let i = t.color as usize;
            let size = p.size(t.color);
            let idx = if outgoing {
                i * cap + winner
            } else {
                winner * cap + i
            };
            let nz = {
                let slot = if outgoing {
                    &mut self.out_nz[idx]
                } else {
                    &mut self.in_nz[idx]
                };
                *slot = (*slot as i64 + t.nz_delta) as u32;
                *slot
            };
            let (mn, mx) = if outgoing {
                (self.out_min[idx], self.out_max[idx])
            } else {
                (self.in_min[idx], self.in_max[idx])
            };
            let zero_member = (nz as usize) < size;
            let need = (t.rescan_min && !(mn == 0.0 && zero_member))
                || (t.rescan_max && !(mx == 0.0 && zero_member));
            if need {
                if outgoing {
                    rescans.push((t.color, winner as u32));
                } else {
                    rescans.push((winner as u32, t.color));
                }
            } else {
                if t.rescan_min {
                    if outgoing {
                        self.out_min_arg[idx] = NO_ARG;
                    } else {
                        self.in_min_arg[idx] = NO_ARG;
                    }
                }
                if t.rescan_max {
                    if outgoing {
                        self.out_max_arg[idx] = NO_ARG;
                    } else {
                        self.in_max_arg[idx] = NO_ARG;
                    }
                }
            }
            self.row_err_dirty[i] = true;
            self.row_best_dirty[i] = true;
        }
        if outgoing {
            self.rescan_out_entries(p, &rescans);
            self.entry_scratch_out = rescans;
        } else {
            self.rescan_in_entries(p, &rescans);
            self.entry_scratch_in = rescans;
        }
        self.touched_colors = batch;
    }

    /// Grow the node axis for freshly inserted isolated nodes. `p` is the
    /// partition *after* the inserts: nodes `first..first + colors.len()`
    /// were appended, node `first + i` to `colors[i]`. The new rows are
    /// all-zero (the nodes have no edges yet — wire them with a following
    /// edge batch), so each insert extends its color's pair summaries
    /// inline with an explicit zero attainer — no rescans, `O(k)` per
    /// inserted node.
    pub fn apply_node_inserts(&mut self, p: &Partition, first: NodeId, colors: &[u32]) {
        assert_eq!(first as usize, self.n, "node inserts must be contiguous");
        assert_eq!(
            p.num_nodes(),
            self.n + colors.len(),
            "partition out of sync with inserts"
        );
        assert_eq!(p.num_colors(), self.k, "inserts cannot change colors");
        let n_new = self.n + colors.len();
        if self.sparse_accum {
            self.sparse_out.resize(n_new, RowRep::new());
            if !self.symmetric {
                self.sparse_in.resize(n_new, RowRep::new());
            }
        } else {
            let cap = self.cap;
            self.dout.resize(n_new * cap, 0.0);
            if !self.symmetric {
                self.din.resize(n_new * cap, 0.0);
            }
        }
        self.node_stamp.resize(n_new, 0);
        self.node_delta.resize(n_new, 0.0);
        self.node_mark.resize(n_new, 0);
        self.n = n_new;
        if !self.track_summaries {
            return;
        }
        let cap = self.cap;
        let k = self.k;
        for (i, &c) in colors.iter().enumerate() {
            let v = first + i as NodeId;
            debug_assert_eq!(p.color_of(v), c, "insert color mismatch");
            let c = c as usize;
            for j in 0..k {
                // Out-entry (c, j): the new member contributes an explicit
                // zero towards every color.
                let idx = c * cap + j;
                if 0.0 < self.out_min[idx] {
                    self.out_min[idx] = 0.0;
                    self.out_min_arg[idx] = v;
                }
                if 0.0 > self.out_max[idx] {
                    self.out_max[idx] = 0.0;
                    self.out_max_arg[idx] = v;
                }
                if !self.symmetric {
                    // In-entry (j, c) ranges over P_c's members too.
                    let idx = j * cap + c;
                    if 0.0 < self.in_min[idx] {
                        self.in_min[idx] = 0.0;
                        self.in_min_arg[idx] = v;
                    }
                    if 0.0 > self.in_max[idx] {
                        self.in_max[idx] = 0.0;
                        self.in_max_arg[idx] = v;
                    }
                }
            }
            self.row_err_dirty[c] = true;
            self.row_best_dirty[c] = true;
        }
        // Sizes of the inserted colors *grew* — the reverse of the split
        // path: with any non-zero β a candidate targeting a grown color
        // can overtake (β > 0) or fall behind (β < 0) an untouched row's
        // cached best, so every row's best goes stale. With β = 0 the
        // weights are size-independent and nothing needs invalidating
        // beyond the inserted colors' own rows (done above).
        if self.last_beta != 0.0 {
            self.row_best_dirty[..k].fill(true);
        }
    }

    /// Compact the node axis after removals. The removed nodes must be
    /// isolated (their incident edges deleted by a preceding
    /// [`Self::apply_edge_batch`] — their accumulator rows are all-zero);
    /// `p` is the partition *after* the removal and renumbering
    /// ([`Partition::apply_node_remap`]), `remap` the mapping the graph
    /// compaction produced, and `removed_colors` the colors the removed
    /// nodes belonged to (any order, duplicates fine).
    ///
    /// Cost: `O(n)` row compaction + `O(k²)` witness remap + a member-axis
    /// rebuild (`O(|members| · k)`) per affected color.
    pub fn apply_node_removals(
        &mut self,
        p: &Partition,
        remap: &NodeRemap,
        removed_colors: &[u32],
    ) {
        assert_eq!(remap.old_len(), self.n, "remap does not match engine");
        assert_eq!(
            p.num_nodes(),
            remap.new_len(),
            "partition out of sync with removals"
        );
        assert_eq!(p.num_colors(), self.k, "removals cannot change colors");
        let n_old = self.n;
        let n_new = remap.new_len();
        let cap = self.cap;
        if self.sparse_accum {
            #[cfg(debug_assertions)]
            for v in 0..n_old as NodeId {
                if remap.is_removed(v) {
                    debug_assert!(
                        self.sparse_out[v as usize].is_all_zero(),
                        "removed node {v} still has out-weight"
                    );
                    if !self.symmetric {
                        debug_assert!(
                            self.sparse_in[v as usize].is_all_zero(),
                            "removed node {v} still has in-weight"
                        );
                    }
                }
            }
            compact_sparse_rows(&mut self.sparse_out, remap);
            if !self.symmetric {
                compact_sparse_rows(&mut self.sparse_in, remap);
            }
        } else {
            #[cfg(debug_assertions)]
            for v in 0..n_old as NodeId {
                if remap.is_removed(v) {
                    let base = v as usize * cap;
                    debug_assert!(
                        self.dout[base..base + self.k].iter().all(|&w| w == 0.0),
                        "removed node {v} still has out-weight"
                    );
                    if !self.symmetric {
                        debug_assert!(
                            self.din[base..base + self.k].iter().all(|&w| w == 0.0),
                            "removed node {v} still has in-weight"
                        );
                    }
                }
            }
            compact_rows(&mut self.dout, n_old, cap, remap);
            if !self.symmetric {
                compact_rows(&mut self.din, n_old, cap, remap);
            }
        }
        self.node_stamp.clear();
        self.node_stamp.resize(n_new, 0);
        self.node_delta.clear();
        self.node_delta.resize(n_new, 0.0);
        self.node_mark.clear();
        self.node_mark.resize(n_new, 0);
        self.stamp_gen = 0;
        self.mark_gen = 0;
        self.n = n_new;
        if !self.track_summaries {
            return;
        }
        // Remap the extremum witnesses (attainers of unaffected colors are
        // survivors; attainers inside affected colors are rebuilt below,
        // so a defensive NO_ARG for a removed id is fine either way).
        let k = self.k;
        for args in [
            &mut self.out_min_arg,
            &mut self.out_max_arg,
            &mut self.in_min_arg,
            &mut self.in_max_arg,
        ] {
            if args.is_empty() {
                continue;
            }
            for i in 0..k {
                for j in 0..k {
                    let slot = &mut args[i * cap + j];
                    if *slot != NO_ARG {
                        *slot = remap.map(*slot).unwrap_or(NO_ARG);
                    }
                }
            }
        }
        // Only the colors that lost members can see entry values change,
        // and only in one way: the removed rows were all-zero, so an entry
        // is stale iff a zero extremum just lost its last zero member
        // (`nz == new size`). Everything else keeps its value — negative
        // minima / positive maxima are attained by survivors, and a zero
        // extremum with another zero member stands (its attainer was
        // remapped to `NO_ARG` above if it was removed). `O(k)` exact
        // checks per affected color plus a one-column rescan per stale
        // entry, instead of a full member-axis rebuild.
        let mut affected: Vec<u32> = removed_colors.to_vec();
        affected.sort_unstable();
        affected.dedup();
        let mut out_rescans = std::mem::take(&mut self.entry_scratch_out);
        let mut in_rescans = std::mem::take(&mut self.entry_scratch_in);
        out_rescans.clear();
        in_rescans.clear();
        for &c in &affected {
            let ci = c as usize;
            let size = p.size(c);
            for j in 0..k {
                let idx = ci * cap + j;
                if (self.out_nz[idx] as usize) == size
                    && (self.out_min[idx] == 0.0 || self.out_max[idx] == 0.0)
                {
                    out_rescans.push((c, j as u32));
                }
                if !self.symmetric {
                    let idx = j * cap + ci;
                    if (self.in_nz[idx] as usize) == size
                        && (self.in_min[idx] == 0.0 || self.in_max[idx] == 0.0)
                    {
                        in_rescans.push((j as u32, c));
                    }
                }
            }
            self.row_err_dirty[ci] = true;
            self.row_best_dirty[ci] = true;
        }
        self.rescan_out_entries(p, &out_rescans);
        self.rescan_in_entries(p, &in_rescans);
        self.entry_scratch_out = out_rescans;
        self.entry_scratch_in = in_rescans;
        if self.last_beta < 0.0 {
            self.row_best_dirty[..k].fill(true);
        } else {
            for s in 0..k {
                if let Some(best) = &self.row_best[s] {
                    if affected.binary_search(&best.other).is_ok() {
                        self.row_best_dirty[s] = true;
                    }
                }
            }
        }
    }

    /// Apply one direction of a split to the accumulators and pair
    /// summaries: shift every touched node's mass from the parent to the
    /// child column, patch the entries over *other* colors' member axes,
    /// then finalize the batch (child-column entries, lost-extremum
    /// rescans, witness-row invalidation). `collect_touched` must have run
    /// for the matching direction.
    ///
    /// Engines with a pool shard the per-node phase across workers when the
    /// touched set is large; the per-shard partial aggregates reduce with
    /// exact min/max/or/sum merges at the join, so the batch — and
    /// everything derived from it — is independent of the shard count.
    fn apply_side(&mut self, p: &Partition, c: usize, child: usize, outgoing: bool) {
        let touched = std::mem::take(&mut self.touched_nodes);
        let deltas = std::mem::take(&mut self.touched_deltas);
        self.begin_color_batch();
        let sharded = self.pool.is_some() && touched.len() >= self.par_min_touched;
        if sharded {
            self.apply_side_sharded(p, c, child, outgoing, &touched, &deltas);
        } else {
            let cap = self.cap;
            // The touched rows land all over a multi-megabyte accumulator
            // in an order the hardware prefetcher cannot predict, so the
            // loop prefetches its own future rows. The distance covers the
            // latency of one row's patch work; the hint never changes
            // results.
            const PREFETCH_AHEAD: usize = 16;
            let colors = p.assignment();
            let promote_k = self.promote_k();
            for (pos, (&u, &d)) in touched.iter().zip(deltas.iter()).enumerate() {
                if let Some(&w) = touched.get(pos + PREFETCH_AHEAD) {
                    kernels::prefetch_read(colors, w as usize);
                }
                let base = u as usize * cap;
                let (old, new, child_val) = if self.sparse_accum {
                    let rows = if outgoing {
                        &mut self.sparse_out
                    } else {
                        &mut self.sparse_in
                    };
                    // Same two-stage pipeline as the sparse gather
                    // kernels: the row struct well ahead, its heap
                    // payload closer in (hints only — results are
                    // unaffected).
                    if let Some(&w) = touched.get(pos + PREFETCH_AHEAD) {
                        kernels::prefetch_read(rows.as_slice(), w as usize);
                    }
                    if let Some(&w) = touched.get(pos + PREFETCH_AHEAD / 2) {
                        kernels::prefetch_row_payload(&rows[w as usize], c as u32);
                    }
                    let row = &mut rows[u as usize];
                    row.split_shift(c as u32, child as u32, d, promote_k)
                } else {
                    let acc = if outgoing {
                        &mut self.dout
                    } else {
                        &mut self.din
                    };
                    if let Some(&w) = touched.get(pos + PREFETCH_AHEAD) {
                        let wbase = w as usize * cap;
                        kernels::prefetch_read(acc, wbase + c);
                        kernels::prefetch_read(acc, wbase + child);
                    }
                    let old = acc[base + c];
                    let new = old - d;
                    acc[base + c] = new;
                    acc[base + child] += d;
                    (old, new, acc[base + child])
                };
                let i = p.color_of(u) as usize;
                if i == c || i == child {
                    continue; // both color axes are rebuilt afterwards
                }
                let (kind, row, col) = if outgoing {
                    (EntryKind::OutCol, i, c)
                } else {
                    (EntryKind::InRow, c, i)
                };
                self.patch_entry(kind, row, col, u, old, new, child_val);
            }
        }

        // ---- Finalize the batch: per touched color, install the child
        // column entry, queue a rescan if the parent-column entry lost its
        // extremum, and invalidate the witness row.
        let batch = std::mem::take(&mut self.touched_colors);
        let cap = self.cap;
        let mut rescans = if outgoing {
            std::mem::take(&mut self.entry_scratch_out)
        } else {
            std::mem::take(&mut self.entry_scratch_in)
        };
        rescans.clear();
        for t in &batch {
            let i = t.color as usize;
            let size = p.size(t.color);
            // Parent-column entry: apply the zero-crossing count delta,
            // then decide whether a flagged extremum actually needs a
            // rescan — a zero extremum provably stands while the entry
            // keeps a zero-valued member.
            let parent_idx = if outgoing { i * cap + c } else { c * cap + i };
            let nz = {
                let slot = if outgoing {
                    &mut self.out_nz[parent_idx]
                } else {
                    &mut self.in_nz[parent_idx]
                };
                *slot = (*slot as i64 + t.nz_delta) as u32;
                *slot
            };
            let (pmin, pmax) = if outgoing {
                (self.out_min[parent_idx], self.out_max[parent_idx])
            } else {
                (self.in_min[parent_idx], self.in_max[parent_idx])
            };
            let zero_member = (nz as usize) < size;
            let need_rescan = (t.rescan_min && !(pmin == 0.0 && zero_member))
                || (t.rescan_max && !(pmax == 0.0 && zero_member));
            if need_rescan {
                if outgoing {
                    rescans.push((t.color, c as u32));
                } else {
                    rescans.push((c as u32, t.color));
                }
            } else {
                // A flagged side whose zero extremum provably stands keeps
                // its value but no longer knows a specific attainer.
                if t.rescan_min {
                    if outgoing {
                        self.out_min_arg[parent_idx] = NO_ARG;
                    } else {
                        self.in_min_arg[parent_idx] = NO_ARG;
                    }
                }
                if t.rescan_max {
                    if outgoing {
                        self.out_max_arg[parent_idx] = NO_ARG;
                    } else {
                        self.in_max_arg[parent_idx] = NO_ARG;
                    }
                }
            }
            let (mut mn, mut mx) = (t.child_min, t.child_max);
            let (mut amn, mut amx) = (t.child_min_arg, t.child_max_arg);
            if t.count < size {
                // Some member of the color has no edges towards the child:
                // an (unknown) attainer of weight zero.
                if mn > 0.0 {
                    mn = 0.0;
                    amn = NO_ARG;
                }
                if mx < 0.0 {
                    mx = 0.0;
                    amx = NO_ARG;
                }
            }
            if outgoing {
                let idx = i * cap + child;
                self.out_min[idx] = mn;
                self.out_max[idx] = mx;
                self.out_min_arg[idx] = amn;
                self.out_max_arg[idx] = amx;
                self.out_nz[idx] = t.child_nonzero;
            } else {
                let idx = child * cap + i;
                self.in_min[idx] = mn;
                self.in_max[idx] = mx;
                self.in_min_arg[idx] = amn;
                self.in_max_arg[idx] = amx;
                self.in_nz[idx] = t.child_nonzero;
            }
            self.row_err_dirty[i] = true;
            self.row_best_dirty[i] = true;
        }
        if outgoing {
            self.rescan_out_entries(p, &rescans);
            self.entry_scratch_out = rescans;
        } else {
            self.rescan_in_entries(p, &rescans);
            self.entry_scratch_in = rescans;
        }
        self.touched_colors = batch;
        self.touched_nodes = touched;
        self.touched_deltas = deltas;
    }

    /// The sharded accumulator phase of [`Self::apply_side`]: workers take
    /// disjoint contiguous chunks of the touched list, apply the
    /// parent→child mass shifts to their nodes' accumulator rows (each node
    /// appears in exactly one chunk, so the row writes are disjoint), and
    /// fold per-color partial aggregates into their shard scratch. The
    /// caller then merges the shard records — in shard order, with exact
    /// min/max/or/sum reductions — into the touched-color batch and the
    /// entry extrema, which makes the merged state identical to what the
    /// serial loop produces.
    fn apply_side_sharded(
        &mut self,
        p: &Partition,
        c: usize,
        child: usize,
        outgoing: bool,
        touched: &[NodeId],
        deltas: &[f64],
    ) {
        let cap = self.cap;
        let pool = self.pool.clone().expect("sharded path requires a pool");
        let shards = pool.slots();
        for s in &mut self.shard_scratch {
            if s.slot.len() < cap {
                s.slot.resize(cap, u32::MAX);
            }
            s.records.clear();
        }
        if self.sparse_accum {
            let promote_k = self.promote_k();
            let (rows, emin, emax, amin, amax) = if outgoing {
                (
                    &mut self.sparse_out,
                    &self.out_min,
                    &self.out_max,
                    &self.out_min_arg,
                    &self.out_max_arg,
                )
            } else {
                (
                    &mut self.sparse_in,
                    &self.in_min,
                    &self.in_max,
                    &self.in_min_arg,
                    &self.in_max_arg,
                )
            };
            let rows = SyncSliceMut::new(rows);
            let scratch = SyncSliceMut::new(&mut self.shard_scratch);
            pool.run(|slot| {
                let (lo, hi) = chunk_range(touched.len(), shards, slot);
                // SAFETY: each slot touches only its own scratch entry.
                let shard = unsafe { scratch.get_mut(slot) };
                for (&u, &d) in touched[lo..hi].iter().zip(&deltas[lo..hi]) {
                    // SAFETY: every touched node appears exactly once
                    // across all chunks, so each tiered row is mutated by
                    // exactly one worker — and its mutation order within
                    // the chunk equals the serial order, so promotion
                    // decisions are thread-count independent too.
                    let row = unsafe { rows.get_mut(u as usize) };
                    let (old, new, child_val) =
                        row.split_shift(c as u32, child as u32, d, promote_k);
                    let i = p.color_of(u) as usize;
                    if i == c || i == child {
                        continue;
                    }
                    let idx = if outgoing { i * cap + c } else { c * cap + i };
                    shard.fold(
                        i as u32, u, old, new, child_val, emin[idx], emax[idx], amin[idx],
                        amax[idx],
                    );
                }
            });
        } else {
            let (acc, emin, emax, amin, amax) = if outgoing {
                (
                    &mut self.dout,
                    &self.out_min,
                    &self.out_max,
                    &self.out_min_arg,
                    &self.out_max_arg,
                )
            } else {
                (
                    &mut self.din,
                    &self.in_min,
                    &self.in_max,
                    &self.in_min_arg,
                    &self.in_max_arg,
                )
            };
            let acc = SyncSliceMut::new(acc);
            let scratch = SyncSliceMut::new(&mut self.shard_scratch);
            pool.run(|slot| {
                let (lo, hi) = chunk_range(touched.len(), shards, slot);
                // SAFETY: each slot touches only its own scratch entry.
                let shard = unsafe { scratch.get_mut(slot) };
                for (&u, &d) in touched[lo..hi].iter().zip(&deltas[lo..hi]) {
                    let base = u as usize * cap;
                    // SAFETY: every touched node appears exactly once
                    // across all chunks, so each accumulator row is written
                    // by exactly one worker.
                    let row = unsafe { acc.slice_mut(base, base + cap) };
                    let old = row[c];
                    let new = old - d;
                    row[c] = new;
                    row[child] += d;
                    let i = p.color_of(u) as usize;
                    if i == c || i == child {
                        continue;
                    }
                    let child_val = row[child];
                    let idx = if outgoing { i * cap + c } else { c * cap + i };
                    shard.fold(
                        i as u32, u, old, new, child_val, emin[idx], emax[idx], amin[idx],
                        amax[idx],
                    );
                }
            });
        }
        // Deterministic merge: shards in slot order, records in insertion
        // order; all reductions are exact, so the result equals the serial
        // loop's batch regardless of the chunk boundaries.
        for shard_idx in 0..shards {
            let records = std::mem::take(&mut self.shard_scratch[shard_idx].records);
            for r in &records {
                self.merge_shard_record(r, c, outgoing);
            }
            self.shard_scratch[shard_idx].records = records;
        }
    }

    /// Merge one shard's per-color aggregate into the touched-color batch
    /// and the parent-column entry extrema (the join-side half of
    /// [`Self::apply_side_sharded`]).
    fn merge_shard_record(&mut self, r: &ShardRecord, c: usize, outgoing: bool) {
        let cap = self.cap;
        let idx = if outgoing {
            r.color as usize * cap + c
        } else {
            c * cap + r.color as usize
        };
        let (cur_min, cur_max) = if outgoing {
            (self.out_min[idx], self.out_max[idx])
        } else {
            (self.in_min[idx], self.in_max[idx])
        };
        let slot = self.color_slot[r.color as usize] as usize;
        let slot = if slot < self.touched_colors.len() && self.touched_colors[slot].color == r.color
        {
            slot
        } else {
            let fresh = self.touched_colors.len();
            self.color_slot[r.color as usize] = fresh as u32;
            self.touched_colors
                .push(TouchedColor::fresh(r.color, cur_min, cur_max));
            fresh
        };
        let record = &mut self.touched_colors[slot];
        record.count += r.count;
        record.nz_delta += r.nz_delta;
        record.child_nonzero += r.child_nonzero;
        record.rescan_min |= r.rescan_min;
        record.rescan_max |= r.rescan_max;
        if r.child_min < record.child_min {
            record.child_min = r.child_min;
            record.child_min_arg = r.child_min_arg;
        }
        if r.child_max > record.child_max {
            record.child_max = r.child_max;
            record.child_max_arg = r.child_max_arg;
        }
        let (emn, emx, amn, amx) = if outgoing {
            (
                &mut self.out_min[idx],
                &mut self.out_max[idx],
                &mut self.out_min_arg[idx],
                &mut self.out_max_arg[idx],
            )
        } else {
            (
                &mut self.in_min[idx],
                &mut self.in_max[idx],
                &mut self.in_min_arg[idx],
                &mut self.in_max_arg[idx],
            )
        };
        if r.ext_min < *emn {
            *emn = r.ext_min;
            *amn = r.ext_min_arg;
        }
        if r.ext_max > *emx {
            *emx = r.ext_max;
            *amx = r.ext_max_arg;
        }
    }

    /// Rebuild the parent's member-axis entries after a split: out-entries
    /// `(c, j)` and in-entries `(j, c)`. Columns `c`/`child` saw their
    /// accumulator values change and are always rescanned; for every other
    /// column the values are untouched and membership only shrank, so the
    /// old extremum stands unless its tracked attainer departed to the
    /// child (with unknown attainers falling back to the conservative
    /// "child attained the parent's extremum" heuristic). Cost: `O(k)`
    /// exact checks plus `O(|parent|)` per column that actually lost an
    /// extremum.
    fn recompute_parent_axis(&mut self, p: &Partition, c: usize, child: usize) {
        let cap = self.cap;
        let parent_size = p.size(c as u32);
        let mut out_rescans = std::mem::take(&mut self.entry_scratch_out);
        let mut in_rescans = std::mem::take(&mut self.entry_scratch_in);
        out_rescans.clear();
        in_rescans.clear();
        // Whether one side of an entry lost its extremum: a zero extremum
        // stands while the entry keeps a zero-valued member (count rule,
        // checked first — the attainer may then be forgotten); otherwise
        // the tracked attainer must not have departed to the child, with
        // unknown attainers falling back to the conservative "child
        // attained it" heuristic. Returns (lost, forget_arg).
        let side_lost = |value: f64, zero_member: bool, arg: u32, fallback: bool| -> (bool, bool) {
            if value == 0.0 && zero_member {
                (false, arg != NO_ARG && p.color_of(arg) != c as u32)
            } else if arg == NO_ARG {
                (fallback, false)
            } else {
                (p.color_of(arg) != c as u32, false)
            }
        };
        for j in 0..self.k {
            if j == c || j == child {
                out_rescans.push((c as u32, j as u32));
                if !self.symmetric {
                    // In-entry over the parent's member axis with the
                    // changed column as first index: (c, c) for j == c,
                    // (child, c) for j == child.
                    in_rescans.push((j as u32, c as u32));
                }
                continue;
            }
            // The parent's nonzero count over an unchanged column is the
            // old count minus what the child took (the child axis was
            // rebuilt just before this).
            let out_idx = c * cap + j;
            let out_child = child * cap + j;
            self.out_nz[out_idx] -= self.out_nz[out_child];
            let zero_member = (self.out_nz[out_idx] as usize) < parent_size;
            let (min_lost, min_forget) = side_lost(
                self.out_min[out_idx],
                zero_member,
                self.out_min_arg[out_idx],
                self.out_min[out_child] == self.out_min[out_idx],
            );
            let (max_lost, max_forget) = side_lost(
                self.out_max[out_idx],
                zero_member,
                self.out_max_arg[out_idx],
                self.out_max[out_child] == self.out_max[out_idx],
            );
            if min_lost || max_lost {
                out_rescans.push((c as u32, j as u32));
            } else {
                if min_forget {
                    self.out_min_arg[out_idx] = NO_ARG;
                }
                if max_forget {
                    self.out_max_arg[out_idx] = NO_ARG;
                }
            }
            if self.symmetric {
                continue;
            }
            let in_idx = j * cap + c;
            let in_child = j * cap + child;
            self.in_nz[in_idx] -= self.in_nz[in_child];
            let zero_member = (self.in_nz[in_idx] as usize) < parent_size;
            let (min_lost, min_forget) = side_lost(
                self.in_min[in_idx],
                zero_member,
                self.in_min_arg[in_idx],
                self.in_min[in_child] == self.in_min[in_idx],
            );
            let (max_lost, max_forget) = side_lost(
                self.in_max[in_idx],
                zero_member,
                self.in_max_arg[in_idx],
                self.in_max[in_child] == self.in_max[in_idx],
            );
            if min_lost || max_lost {
                in_rescans.push((j as u32, c as u32));
            } else {
                if min_forget {
                    self.in_min_arg[in_idx] = NO_ARG;
                }
                if max_forget {
                    self.in_max_arg[in_idx] = NO_ARG;
                }
            }
        }
        self.rescan_out_entries(p, &out_rescans);
        self.rescan_in_entries(p, &in_rescans);
        self.entry_scratch_out = out_rescans;
        self.entry_scratch_in = in_rescans;
    }

    /// Recompute the stale witness rows. `beta` is the target-size exponent
    /// of the witness weighting (the paper's β). Rows whose *entries*
    /// changed since the last refresh rescan both their maximum error and
    /// their cached best; a β change alone only stales the cached
    /// β-weighted bests (`row_max_err` is β-independent), so a β-only
    /// rebuild skips the error bookkeeping entirely. Large batches of
    /// stale rows are sharded across the pool — each row is an independent
    /// `O(k)` scan writing only its own cache slots, so results are
    /// bit-identical to the serial order.
    pub fn refresh(&mut self, p: &Partition, beta: f64) {
        assert!(
            self.track_summaries,
            "refresh requires a summary-tracking engine"
        );
        if beta != self.last_beta {
            self.row_best_dirty[..self.k].fill(true);
            self.last_beta = beta;
        }
        let k = self.k;
        let mut dirty = std::mem::take(&mut self.dirty_scratch);
        dirty.clear();
        dirty.extend(
            (0..k as u32)
                .filter(|&s| self.row_err_dirty[s as usize] || self.row_best_dirty[s as usize]),
        );
        if dirty.is_empty() {
            self.dirty_scratch = dirty;
            return;
        }
        let view = SummaryView {
            k,
            cap: self.cap,
            symmetric: self.symmetric,
            out_min: &self.out_min,
            out_max: &self.out_max,
            in_min: &self.in_min,
            in_max: &self.in_max,
        };
        if self.pool.is_some() && dirty.len() >= 2 && dirty.len() * k >= self.par_min_scan_work {
            let pool = self.pool.clone().expect("checked above");
            let shards = pool.slots();
            let row_max_err = SyncSliceMut::new(&mut self.row_max_err);
            let row_best = SyncSliceMut::new(&mut self.row_best);
            let err_dirty = SyncSliceMut::new(&mut self.row_err_dirty);
            let best_dirty = SyncSliceMut::new(&mut self.row_best_dirty);
            pool.run(|slot| {
                let (lo, hi) = chunk_range(dirty.len(), shards, slot);
                for &s in &dirty[lo..hi] {
                    let s = s as usize;
                    let (max_err, best) = view.scan_row(p, s, beta);
                    // SAFETY: the dirty list is duplicate-free and chunks
                    // are disjoint, so each row's slots are written by one
                    // worker.
                    unsafe {
                        if *err_dirty.get_mut(s) {
                            *row_max_err.get_mut(s) = max_err;
                            *err_dirty.get_mut(s) = false;
                        }
                        *row_best.get_mut(s) = best;
                        *best_dirty.get_mut(s) = false;
                    }
                }
            });
        } else {
            for &s in &dirty {
                let s = s as usize;
                let (max_err, best) = view.scan_row(p, s, beta);
                if self.row_err_dirty[s] {
                    self.row_max_err[s] = max_err;
                    self.row_err_dirty[s] = false;
                }
                self.row_best[s] = best;
                self.row_best_dirty[s] = false;
            }
        }
        self.dirty_scratch = dirty;
    }

    /// Maximum q-error over all pairs and directions. Requires
    /// [`Self::refresh`] since the last split (β-only staleness is fine:
    /// the row maxima are β-independent).
    pub fn max_error(&self) -> f64 {
        debug_assert!(
            self.row_err_dirty[..self.k].iter().all(|d| !d),
            "max_error called with dirty witness rows; call refresh() first"
        );
        self.row_max_err[..self.k]
            .iter()
            .cloned()
            .fold(0.0, f64::max)
    }

    /// The witness with the largest `error · |P_split|^α · |P_other|^β`
    /// weight among splittable colors (size ≥ 2), or `None` when every
    /// remaining error sits inside singleton colors or the coloring is
    /// stable. Requires [`Self::refresh`] since the last split (with the
    /// same `beta`).
    pub fn pick_witness(&self, p: &Partition, alpha: f64) -> Option<WitnessCandidate> {
        self.debug_assert_fresh();
        let mut best: Option<(f64, WitnessCandidate)> = None;
        for s in 0..self.k {
            let Some(row) = &self.row_best[s] else {
                continue;
            };
            let weighted = row.weighted * size_pow(p.size(s as u32), alpha);
            match &best {
                Some((bw, _)) if *bw >= weighted => {}
                _ => {
                    best = Some((
                        weighted,
                        WitnessCandidate {
                            split_color: s as u32,
                            other_color: row.other,
                            outgoing: row.outgoing,
                            error: row.error,
                        },
                    ))
                }
            }
        }
        best.map(|(_, w)| w)
    }

    /// The top `max_count` witnesses by `error · |P_split|^α · |P_other|^β`
    /// weight, at most one per split color (the engine caches one best
    /// candidate per row, which is exactly what makes a batch of these
    /// splits non-conflicting: distinct parents, so no split invalidates
    /// another's membership). Ordered by descending weight with ties broken
    /// towards the smaller color id; the first element equals
    /// [`Self::pick_witness`]. Requires [`Self::refresh`] since the last
    /// split (with the same `beta`).
    pub fn pick_witnesses(
        &self,
        p: &Partition,
        alpha: f64,
        max_count: usize,
    ) -> Vec<WitnessCandidate> {
        self.debug_assert_fresh();
        let mut scored: Vec<(f64, u32)> = Vec::new();
        for s in 0..self.k {
            if let Some(row) = &self.row_best[s] {
                scored.push((row.weighted * size_pow(p.size(s as u32), alpha), s as u32));
            }
        }
        // Witness weights are finite (errors are differences of finite
        // sums), so the comparison is total.
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
        scored.truncate(max_count);
        scored
            .into_iter()
            .map(|(_, s)| {
                let row = self.row_best[s as usize].as_ref().expect("scored row");
                WitnessCandidate {
                    split_color: s,
                    other_color: row.other,
                    outgoing: row.outgoing,
                    error: row.error,
                }
            })
            .collect()
    }

    #[inline]
    fn debug_assert_fresh(&self) {
        debug_assert!(
            self.row_err_dirty[..self.k]
                .iter()
                .chain(self.row_best_dirty[..self.k].iter())
                .all(|d| !d),
            "witness pick with dirty rows; call refresh() first"
        );
    }

    /// Cross-check the full maintained state against a from-scratch
    /// [`DegreeMatrices::compute`] (and freshly recomputed accumulators),
    /// with a small tolerance for floating-point associativity. Returns a
    /// description of the first mismatch. Intended for tests and the debug
    /// assertion inside [`Self::apply_split`].
    pub fn verify_against(&self, g: &Graph, p: &Partition) -> Result<(), String> {
        if p.num_colors() != self.k {
            return Err(format!(
                "color count {} != engine {}",
                p.num_colors(),
                self.k
            ));
        }
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
        if self.track_summaries {
            let scratch = DegreeMatrices::compute(g, p);
            for i in 0..self.k {
                for j in 0..self.k {
                    let idx = i * self.cap + j;
                    let sidx = i * self.k + j;
                    let (in_min_ours, in_max_ours) = if self.symmetric {
                        (
                            self.out_min[j * self.cap + i],
                            self.out_max[j * self.cap + i],
                        )
                    } else {
                        (self.in_min[idx], self.in_max[idx])
                    };
                    for (name, ours, theirs) in [
                        ("out_min", self.out_min[idx], scratch.out_min[sidx]),
                        ("out_max", self.out_max[idx], scratch.out_max[sidx]),
                        ("in_min", in_min_ours, scratch.in_min[sidx]),
                        ("in_max", in_max_ours, scratch.in_max[sidx]),
                    ] {
                        if !close(ours, theirs) {
                            return Err(format!(
                                "{name}[{i}][{j}]: incremental {ours} vs scratch {theirs}"
                            ));
                        }
                    }
                    // Tracked extremum witnesses, when known, must attain
                    // their entry's value and belong to the member axis
                    // (read through the storage-routed accessors, so the
                    // check covers both dense matrices and tiered rows).
                    for (name, arg, val) in [
                        ("out_min_arg", self.out_min_arg[idx], self.out_min[idx]),
                        ("out_max_arg", self.out_max_arg[idx], self.out_max[idx]),
                    ] {
                        if arg != NO_ARG {
                            let attained = self.out_degree_of(arg, j as u32);
                            if p.color_of(arg) as usize != i || attained != val {
                                return Err(format!(
                                    "{name}[{i}][{j}]: witness {arg} (color {}, value {attained}) does not attain {val}",
                                    p.color_of(arg)
                                ));
                            }
                        }
                    }
                    if !self.symmetric {
                        for (name, arg, val) in [
                            ("in_min_arg", self.in_min_arg[idx], self.in_min[idx]),
                            ("in_max_arg", self.in_max_arg[idx], self.in_max[idx]),
                        ] {
                            if arg != NO_ARG {
                                let attained = self.in_degree_of(arg, i as u32);
                                if p.color_of(arg) as usize != j || attained != val {
                                    return Err(format!(
                                        "{name}[{i}][{j}]: witness {arg} (color {}, value {attained}) does not attain {val}",
                                        p.color_of(arg)
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        if self.track_summaries {
            // Nonzero-member counts, recounted from the maintained
            // accumulators (which are themselves verified below). Note
            // these deliberately count maintained *values*: with inexact
            // weights an incremental subtraction can leave a tiny residue
            // where a fresh sum gives an exact zero, and the zero-skip
            // rule is sound for exactly this value-based count.
            for i in 0..self.k {
                let mut counts = vec![0u32; self.k];
                for &u in p.members(i as u32) {
                    for (j, count) in counts.iter_mut().enumerate() {
                        *count += u32::from(self.out_degree_of(u, j as u32) != 0.0);
                    }
                }
                for (j, &count) in counts.iter().enumerate() {
                    if self.out_nz[i * self.cap + j] != count {
                        return Err(format!(
                            "out_nz[{i}][{j}]: incremental {} vs recounted {}",
                            self.out_nz[i * self.cap + j],
                            count
                        ));
                    }
                }
            }
            if !self.symmetric {
                for j in 0..self.k {
                    let mut counts = vec![0u32; self.k];
                    for &v in p.members(j as u32) {
                        for (i, count) in counts.iter_mut().enumerate() {
                            *count += u32::from(self.in_degree_of(v, i as u32) != 0.0);
                        }
                    }
                    for (i, &count) in counts.iter().enumerate() {
                        if self.in_nz[i * self.cap + j] != count {
                            return Err(format!(
                                "in_nz[{i}][{j}]: incremental {} vs recounted {}",
                                self.in_nz[i * self.cap + j],
                                count
                            ));
                        }
                    }
                }
            }
        }
        // Accumulators, recomputed fresh.
        for v in 0..self.n as NodeId {
            let mut fresh = vec![0.0f64; self.k];
            for (t, w) in g.out_edges(v) {
                fresh[p.color_of(t) as usize] += w;
            }
            for (j, &expected) in fresh.iter().enumerate() {
                if !close(self.out_degree_of(v, j as u32), expected) {
                    return Err(format!(
                        "dout[{v}][{j}]: incremental {} vs fresh {}",
                        self.out_degree_of(v, j as u32),
                        expected
                    ));
                }
            }
            let mut fresh = vec![0.0f64; self.k];
            for (s, w) in g.in_edges(v) {
                fresh[p.color_of(s) as usize] += w;
            }
            for (j, &expected) in fresh.iter().enumerate() {
                if !close(self.in_degree_of(v, j as u32), expected) {
                    return Err(format!(
                        "din[{v}][{j}]: incremental {} vs fresh {}",
                        self.in_degree_of(v, j as u32),
                        expected
                    ));
                }
            }
        }
        Ok(())
    }

    // ---- internals ----

    /// Rebuild every pair summary indexed along color `s`'s member axis:
    /// out-entries `(s, j)` and in-entries `(j, s)` for all `j`, by scanning
    /// the accumulator rows of `P_s`'s members. `O(|P_s| · k)`, sharded
    /// across the pool for large colors (per-shard min/max rows merged in
    /// shard order with exact comparisons — same values and extremum
    /// witnesses as the serial member-order scan).
    fn recompute_color_axis(&mut self, p: &Partition, s: usize) {
        let k = self.k;
        let members = p.members(s as u32);
        if self.pool.is_some() && members.len() >= 2 && members.len() * k >= self.par_min_scan_work
        {
            self.recompute_color_axis_sharded(p, s);
        } else {
            self.recompute_color_axis_serial(p, s);
        }
        self.row_err_dirty[s] = true;
        self.row_best_dirty[s] = true;
    }

    fn recompute_color_axis_serial(&mut self, p: &Partition, s: usize) {
        let k = self.k;
        let cap = self.cap;
        let (omin, rest) = self.row_scratch.split_at_mut(cap);
        let (omax, rest) = rest.split_at_mut(cap);
        let (imin, imax) = rest.split_at_mut(cap);
        let (aomin, arest) = self.row_arg_scratch.split_at_mut(cap);
        let (aomax, arest) = arest.split_at_mut(cap);
        let (aimin, aimax) = arest.split_at_mut(cap);
        let (onz, inz) = self.row_nz_scratch.split_at_mut(cap);
        omin[..k].fill(f64::INFINITY);
        omax[..k].fill(f64::NEG_INFINITY);
        imin[..k].fill(f64::INFINITY);
        imax[..k].fill(f64::NEG_INFINITY);
        aomin[..k].fill(NO_ARG);
        aomax[..k].fill(NO_ARG);
        aimin[..k].fill(NO_ARG);
        aimax[..k].fill(NO_ARG);
        onz[..k].fill(0);
        inz[..k].fill(0);
        // One member loop for both modes: the dense out scan and (directed
        // only) the in scan route through the same vectorized row kernel —
        // exactly the scalar member-order scan, bit for bit (see
        // `kernels::fold_minmax_row`). Sparse-storage engines fold only the
        // stored (nonzero) entries per member and account for the implicit
        // zeros afterwards with one `fold_zero_tail` pass: any column some
        // member misses folds a 0.0 with the `NO_ARG` witness. The min/max
        // *values* equal the dense scan's exactly; only the zero-extremum
        // attainers differ (NO_ARG instead of the first zero-valued member),
        // which is unobservable — attainers gate rescans, never values, and
        // NO_ARG forces the conservative rescan.
        if self.sparse_accum {
            let members = p.members(s as u32);
            for &u in members {
                let row = &self.sparse_out[u as usize];
                kernels::fold_minmax_sparse_row(u, row, k, omin, omax, aomin, aomax, onz);
                if !self.symmetric {
                    let row = &self.sparse_in[u as usize];
                    kernels::fold_minmax_sparse_row(u, row, k, imin, imax, aimin, aimax, inz);
                }
            }
            let count = members.len() as u32;
            kernels::fold_zero_tail(count, k, omin, omax, aomin, aomax, onz);
            if !self.symmetric {
                kernels::fold_zero_tail(count, k, imin, imax, aimin, aimax, inz);
            }
        } else {
            for &u in p.members(s as u32) {
                let base = u as usize * cap;
                kernels::fold_minmax_row(
                    u,
                    &self.dout[base..base + k],
                    omin,
                    omax,
                    aomin,
                    aomax,
                    onz,
                );
                if !self.symmetric {
                    kernels::fold_minmax_row(
                        u,
                        &self.din[base..base + k],
                        imin,
                        imax,
                        aimin,
                        aimax,
                        inz,
                    );
                }
            }
        }
        for j in 0..k {
            self.out_min[s * cap + j] = omin[j];
            self.out_max[s * cap + j] = omax[j];
            self.out_min_arg[s * cap + j] = aomin[j];
            self.out_max_arg[s * cap + j] = aomax[j];
            self.out_nz[s * cap + j] = onz[j];
        }
        if !self.symmetric {
            for j in 0..k {
                self.in_min[j * cap + s] = imin[j];
                self.in_max[j * cap + s] = imax[j];
                self.in_min_arg[j * cap + s] = aimin[j];
                self.in_max_arg[j * cap + s] = aimax[j];
                self.in_nz[j * cap + s] = inz[j];
            }
        }
    }

    /// The sharded variant of the member-axis rebuild: each worker scans a
    /// contiguous chunk of `P_s`'s members into its own 4-row min/max
    /// scratch, and the caller merges the shard rows in shard order (strict
    /// comparisons keep the first attainer, so the merge equals the serial
    /// member-order scan bit-for-bit, extremum witnesses included).
    fn recompute_color_axis_sharded(&mut self, p: &Partition, s: usize) {
        let k = self.k;
        let cap = self.cap;
        let pool = self.pool.clone().expect("sharded path requires a pool");
        let shards = pool.slots();
        let members = p.members(s as u32);
        let symmetric = self.symmetric;
        for sc in &mut self.shard_scratch {
            if sc.axis.len() < 4 * cap {
                sc.axis.resize(4 * cap, 0.0);
                sc.axis_arg.resize(4 * cap, NO_ARG);
                sc.axis_nz.resize(2 * cap, 0);
            }
        }
        {
            let dout = &self.dout;
            let din = &self.din;
            let sparse_out = &self.sparse_out;
            let sparse_in = &self.sparse_in;
            let sparse_accum = self.sparse_accum;
            let scratch = SyncSliceMut::new(&mut self.shard_scratch);
            pool.run(|slot| {
                let (lo, hi) = chunk_range(members.len(), shards, slot);
                // SAFETY: each slot touches only its own scratch entry.
                let shard = unsafe { scratch.get_mut(slot) };
                let (omin, rest) = shard.axis.split_at_mut(cap);
                let (omax, rest) = rest.split_at_mut(cap);
                let (imin, imax) = rest.split_at_mut(cap);
                let (aomin, arest) = shard.axis_arg.split_at_mut(cap);
                let (aomax, arest) = arest.split_at_mut(cap);
                let (aimin, aimax) = arest.split_at_mut(cap);
                let (onz, inz) = shard.axis_nz.split_at_mut(cap);
                omin[..k].fill(f64::INFINITY);
                omax[..k].fill(f64::NEG_INFINITY);
                aomin[..k].fill(NO_ARG);
                aomax[..k].fill(NO_ARG);
                onz[..k].fill(0);
                if !symmetric {
                    imin[..k].fill(f64::INFINITY);
                    imax[..k].fill(f64::NEG_INFINITY);
                    aimin[..k].fill(NO_ARG);
                    aimax[..k].fill(NO_ARG);
                    inz[..k].fill(0);
                }
                // Same row kernel as the serial scan — the shard's partial
                // aggregates are the serial member-order scan of its chunk.
                // Sparse storage folds the stored entries per member and
                // closes each chunk with a zero tail over the chunk's own
                // member count: a column some chunk member misses folds a
                // 0.0/NO_ARG into that shard's partial, so the shard-order
                // merge below reproduces the serial sparse scan's *values*
                // exactly (zero-extremum attainers may stay NO_ARG — the
                // usual conservative-rescan sentinel).
                if sparse_accum {
                    for &u in &members[lo..hi] {
                        let row = &sparse_out[u as usize];
                        kernels::fold_minmax_sparse_row(u, row, k, omin, omax, aomin, aomax, onz);
                        if !symmetric {
                            let row = &sparse_in[u as usize];
                            kernels::fold_minmax_sparse_row(
                                u, row, k, imin, imax, aimin, aimax, inz,
                            );
                        }
                    }
                    let count = (hi - lo) as u32;
                    kernels::fold_zero_tail(count, k, omin, omax, aomin, aomax, onz);
                    if !symmetric {
                        kernels::fold_zero_tail(count, k, imin, imax, aimin, aimax, inz);
                    }
                } else {
                    for &u in &members[lo..hi] {
                        let base = u as usize * cap;
                        kernels::fold_minmax_row(
                            u,
                            &dout[base..base + k],
                            omin,
                            omax,
                            aomin,
                            aomax,
                            onz,
                        );
                        if !symmetric {
                            kernels::fold_minmax_row(
                                u,
                                &din[base..base + k],
                                imin,
                                imax,
                                aimin,
                                aimax,
                                inz,
                            );
                        }
                    }
                }
            });
        }
        for j in 0..k {
            let mut omn = f64::INFINITY;
            let mut omx = f64::NEG_INFINITY;
            let (mut aomn, mut aomx) = (NO_ARG, NO_ARG);
            let mut onz = 0u32;
            let mut imn = f64::INFINITY;
            let mut imx = f64::NEG_INFINITY;
            let (mut aimn, mut aimx) = (NO_ARG, NO_ARG);
            let mut inz = 0u32;
            for sc in &self.shard_scratch[..shards] {
                let v = sc.axis[j];
                if v < omn {
                    omn = v;
                    aomn = sc.axis_arg[j];
                }
                let v = sc.axis[cap + j];
                if v > omx {
                    omx = v;
                    aomx = sc.axis_arg[cap + j];
                }
                onz += sc.axis_nz[j];
                if !symmetric {
                    let v = sc.axis[2 * cap + j];
                    if v < imn {
                        imn = v;
                        aimn = sc.axis_arg[2 * cap + j];
                    }
                    let v = sc.axis[3 * cap + j];
                    if v > imx {
                        imx = v;
                        aimx = sc.axis_arg[3 * cap + j];
                    }
                    inz += sc.axis_nz[cap + j];
                }
            }
            self.out_min[s * cap + j] = omn;
            self.out_max[s * cap + j] = omx;
            self.out_min_arg[s * cap + j] = aomn;
            self.out_max_arg[s * cap + j] = aomx;
            self.out_nz[s * cap + j] = onz;
            if !symmetric {
                self.in_min[j * cap + s] = imn;
                self.in_max[j * cap + s] = imx;
                self.in_min_arg[j * cap + s] = aimn;
                self.in_max_arg[j * cap + s] = aimx;
                self.in_nz[j * cap + s] = inz;
            }
        }
    }

    /// Collect the distinct neighbors of `moved` (sources of their in-edges
    /// when `incoming`, targets of their out-edges otherwise) into
    /// `touched_nodes`, accumulating per-neighbor weight deltas in the
    /// index-parallel `touched_deltas` (so consumers read them
    /// positionally, without a per-node gather).
    ///
    /// Moved lists of at least `par_min_touched` nodes use the *canonical
    /// chunked accumulation*: the list is cut into fixed-size chunks
    /// (chunk size = `par_min_touched`, a pure function of the engine's
    /// thresholds — **never** of the thread count), each chunk is deduped
    /// with a generation-stamped seen-bitmap into a `(node, chunk-local
    /// delta)` list, and the lists are merged in chunk order. A neighbor's
    /// global first appearance is in the earliest chunk that touches it,
    /// at that chunk's local first-touch position, so the merged touched
    /// ordering equals the serial first-appearance scan exactly; and
    /// because the chunk boundaries and the merge order are
    /// thread-independent, the accumulated deltas are **bit-identical for
    /// every thread count** — on arbitrary float weights, not just
    /// representable ones — preserving the engine-wide determinism
    /// contract. Pooled engines fan the chunks out across workers
    /// (round-robin; scheduling only), serial engines process them inline.
    /// Below the threshold a single sequential scan runs, which is the
    /// one-chunk case of the same grouping.
    fn collect_touched(&mut self, g: &Graph, moved: &[NodeId], incoming: bool) {
        // Mapped graphs: start faulting the moved nodes' arc span in now,
        // so the batched scan below overlaps page-in with compute (no-op
        // for owned graphs).
        g.advise_arcs_will_need(moved);
        let chunk_size = self.par_min_touched;
        if moved.len() < chunk_size.max(2) {
            self.mark_gen = self.mark_gen.wrapping_add(1);
            if self.mark_gen == 0 {
                self.node_mark.fill(0);
                self.mark_gen = 1;
            }
            let gen = self.mark_gen;
            self.touched_nodes.clear();
            self.touched_deltas.clear();
            for &v in moved {
                let (nbrs, wts) = if incoming {
                    g.in_arcs(v)
                } else {
                    g.out_arcs(v)
                };
                for (idx, &u) in nbrs.iter().enumerate() {
                    let m = self.node_mark[u as usize];
                    if m as u32 != gen {
                        self.node_mark[u as usize] =
                            gen as u64 | ((self.touched_nodes.len() as u64) << 32);
                        self.touched_nodes.push(u);
                        self.touched_deltas.push(wts[idx]);
                    } else {
                        self.touched_deltas[(m >> 32) as usize] += wts[idx];
                    }
                }
            }
            return;
        }
        self.collect_touched_chunked(g, moved, incoming, chunk_size);
    }

    /// The chunked half of [`Self::collect_touched`]: scan each chunk into
    /// its own `(node, delta)` list — across the pool when one is attached
    /// — then merge the lists in chunk order (see the entry point for the
    /// determinism argument).
    fn collect_touched_chunked(
        &mut self,
        g: &Graph,
        moved: &[NodeId],
        incoming: bool,
        chunk_size: usize,
    ) {
        let chunks = moved.len().div_ceil(chunk_size);
        let mut outputs = std::mem::take(&mut self.chunk_out);
        if outputs.len() < chunks {
            outputs.resize_with(chunks, Vec::new);
        }
        if let Some(pool) = self.pool.clone() {
            let n = self.n;
            let slots = pool.slots();
            for s in &mut self.shard_scratch {
                if s.seen_stamp.len() < n {
                    s.seen_stamp.resize(n, 0);
                    s.delta.resize(n, 0.0);
                }
            }
            let scratch = SyncSliceMut::new(&mut self.shard_scratch);
            let out = SyncSliceMut::new(&mut outputs);
            pool.run(|slot| {
                // SAFETY: each slot touches only its own scratch entry.
                let shard = unsafe { scratch.get_mut(slot) };
                let mut c = slot;
                while c < chunks {
                    let lo = c * chunk_size;
                    let hi = (lo + chunk_size).min(moved.len());
                    // SAFETY: chunks are assigned round-robin by slot, so
                    // each output list is written by exactly one worker.
                    let list = unsafe { out.get_mut(c) };
                    scan_chunk(
                        g,
                        &moved[lo..hi],
                        incoming,
                        &mut shard.seen_stamp,
                        &mut shard.seen_gen,
                        &mut shard.delta,
                        list,
                    );
                    c += slots;
                }
            });
        } else {
            for (c, list) in outputs.iter_mut().enumerate().take(chunks) {
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(moved.len());
                scan_chunk(
                    g,
                    &moved[lo..hi],
                    incoming,
                    &mut self.node_stamp,
                    &mut self.stamp_gen,
                    &mut self.node_delta,
                    list,
                );
            }
        }
        // Merge in chunk order: global first-appearance dedupe over the
        // chunk lists, chunk-local partials added in chunk order. (The
        // serial path above may have used node_stamp/node_delta as chunk
        // scratch; `node_mark` runs on its own generation counter.)
        self.mark_gen = self.mark_gen.wrapping_add(1);
        if self.mark_gen == 0 {
            self.node_mark.fill(0);
            self.mark_gen = 1;
        }
        let gen = self.mark_gen;
        self.touched_nodes.clear();
        self.touched_deltas.clear();
        for list in &outputs[..chunks] {
            for &(u, d) in list {
                let m = self.node_mark[u as usize];
                if m as u32 != gen {
                    self.node_mark[u as usize] =
                        gen as u64 | ((self.touched_nodes.len() as u64) << 32);
                    self.touched_nodes.push(u);
                    self.touched_deltas.push(d);
                } else {
                    self.touched_deltas[(m >> 32) as usize] += d;
                }
            }
        }
        self.chunk_out = outputs;
    }

    fn begin_color_batch(&mut self) {
        // Slot lookups self-validate (a stored index is live only if the
        // record at that index names the same color), so clearing the
        // record list is all the reset a new batch needs.
        self.touched_colors.clear();
    }

    /// Patch one pair summary entry for a touched node `u` whose
    /// accumulator moved from `old` to `new`, and record the node's
    /// `child`-column value for the batch finalization. `row`/`col` index
    /// the entry in the affected matrix (`EntryKind` chooses which); the
    /// *batched* color is the one whose member axis the entry ranges over.
    #[allow(clippy::too_many_arguments)]
    fn patch_entry(
        &mut self,
        kind: EntryKind,
        row: usize,
        col: usize,
        u: NodeId,
        old: f64,
        new: f64,
        child_val: f64,
    ) {
        let idx = row * self.cap + col;
        let (cur_min, cur_max, arg_min, arg_max) = match kind {
            EntryKind::OutCol => (
                self.out_min[idx],
                self.out_max[idx],
                self.out_min_arg[idx],
                self.out_max_arg[idx],
            ),
            EntryKind::InRow => (
                self.in_min[idx],
                self.in_max[idx],
                self.in_min_arg[idx],
                self.in_max_arg[idx],
            ),
        };
        let batched_color = match kind {
            EntryKind::OutCol => row as u32,
            EntryKind::InRow => col as u32,
        };
        let slot = self.color_slot[batched_color as usize] as usize;
        let slot = if slot < self.touched_colors.len()
            && self.touched_colors[slot].color == batched_color
        {
            slot
        } else {
            let fresh = self.touched_colors.len();
            self.color_slot[batched_color as usize] = fresh as u32;
            self.touched_colors
                .push(TouchedColor::fresh(batched_color, cur_min, cur_max));
            fresh
        };
        let record = &mut self.touched_colors[slot];
        // The entry loses its extremum only when its *tracked attainer*
        // moves strictly inward (an exact test — ties at the extremum no
        // longer force a rescan); an unknown attainer falls back to the
        // conservative batch-start-extremum heuristic. The finalize step
        // may still cancel a flagged side via the zero-count rule.
        if new < old {
            if old == record.orig_max && (arg_max == NO_ARG || arg_max == u) {
                record.rescan_max = true;
            }
        } else if new > old && old == record.orig_min && (arg_min == NO_ARG || arg_min == u) {
            record.rescan_min = true;
        }
        record.count += 1;
        if (old == 0.0) != (new == 0.0) {
            record.nz_delta += if new != 0.0 { 1 } else { -1 };
        }
        if child_val != 0.0 {
            record.child_nonzero += 1;
        }
        if child_val < record.child_min {
            record.child_min = child_val;
            record.child_min_arg = u;
        }
        if child_val > record.child_max {
            record.child_max = child_val;
            record.child_max_arg = u;
        }
        let (emn, emx, amn, amx) = match kind {
            EntryKind::OutCol => (
                &mut self.out_min[idx],
                &mut self.out_max[idx],
                &mut self.out_min_arg[idx],
                &mut self.out_max_arg[idx],
            ),
            EntryKind::InRow => (
                &mut self.in_min[idx],
                &mut self.in_max[idx],
                &mut self.in_min_arg[idx],
                &mut self.in_max_arg[idx],
            ),
        };
        if new < *emn {
            *emn = new;
            *amn = u;
        }
        if new > *emx {
            *emx = new;
            *amx = u;
        }
    }

    /// One-entry column scan routed by storage: the dense strided gather or
    /// the tiered-row probe fold — same member order, same strict compares,
    /// same first-attainer rule, so values *and* witnesses agree between the
    /// two (an absent sparse entry reads the same `+0.0` the dense row
    /// stores).
    fn scan_col(
        &self,
        outgoing: bool,
        members: &[NodeId],
        col: usize,
    ) -> (f64, f64, u32, u32, u32) {
        if self.sparse_accum {
            let rows = if outgoing || self.symmetric {
                &self.sparse_out
            } else {
                &self.sparse_in
            };
            kernels::scan_gather_column_sparse(members, rows, col as u32)
        } else {
            let acc = if outgoing { &self.dout } else { &self.din };
            scan_entry_column(members, acc, self.cap, col)
        }
    }

    /// Recompute out-entry `(i, j)` from `P_i`'s members (values and
    /// extremum witnesses; first attainer in member order wins ties).
    fn rescan_out_entry(&mut self, p: &Partition, i: usize, j: usize) {
        let cap = self.cap;
        let (mn, mx, amn, amx, nz) = self.scan_col(true, p.members(i as u32), j);
        self.out_min[i * cap + j] = mn;
        self.out_max[i * cap + j] = mx;
        self.out_min_arg[i * cap + j] = amn;
        self.out_max_arg[i * cap + j] = amx;
        self.out_nz[i * cap + j] = nz;
    }

    /// Recompute in-entry `(i, j)` from `P_j`'s members.
    fn rescan_in_entry(&mut self, p: &Partition, i: usize, j: usize) {
        let cap = self.cap;
        let (mn, mx, amn, amx, nz) = self.scan_col(false, p.members(j as u32), i);
        self.in_min[i * cap + j] = mn;
        self.in_max[i * cap + j] = mx;
        self.in_min_arg[i * cap + j] = amn;
        self.in_max_arg[i * cap + j] = amx;
        self.in_nz[i * cap + j] = nz;
    }

    /// Recompute a batch of out-entries `(i, j)` (each scanning `P_i`),
    /// sharding across the pool when the total member-scan work is large.
    /// Each entry is written by exactly one worker, so the results are the
    /// same as the serial loop.
    fn rescan_out_entries(&mut self, p: &Partition, entries: &[(u32, u32)]) {
        let work: usize = entries.iter().map(|&(i, _)| p.size(i)).sum();
        if self.pool.is_none() || entries.len() < 2 || work < self.par_min_scan_work {
            // Entries sharing one member axis (the parent-axis repair batch
            // always does) fold in a single member pass — each accumulator
            // row is loaded once for every queued column. Per column this
            // is the same member-order fold, bit for bit.
            if entries.len() >= 2 && entries.iter().all(|&(i, _)| i == entries[0].0) {
                self.rescan_out_row_grouped(p, entries);
                return;
            }
            for &(i, j) in entries {
                self.rescan_out_entry(p, i as usize, j as usize);
            }
            return;
        }
        let cap = self.cap;
        let pool = self.pool.clone().expect("checked above");
        let shards = pool.slots();
        let dout = &self.dout;
        let sparse_out = &self.sparse_out;
        let sparse_accum = self.sparse_accum;
        let emin = SyncSliceMut::new(&mut self.out_min);
        let emax = SyncSliceMut::new(&mut self.out_max);
        let amin = SyncSliceMut::new(&mut self.out_min_arg);
        let amax = SyncSliceMut::new(&mut self.out_max_arg);
        let enz = SyncSliceMut::new(&mut self.out_nz);
        pool.run(|slot| {
            let (lo, hi) = chunk_range(entries.len(), shards, slot);
            for &(i, j) in &entries[lo..hi] {
                let (mn, mx, an, ax, nz) = if sparse_accum {
                    kernels::scan_gather_column_sparse(p.members(i), sparse_out, j)
                } else {
                    scan_entry_column(p.members(i), dout, cap, j as usize)
                };
                let idx = i as usize * cap + j as usize;
                // SAFETY: the entry list is duplicate-free and chunks are
                // disjoint, so each index is written by one worker.
                unsafe {
                    *emin.get_mut(idx) = mn;
                    *emax.get_mut(idx) = mx;
                    *amin.get_mut(idx) = an;
                    *amax.get_mut(idx) = ax;
                    *enz.get_mut(idx) = nz;
                }
            }
        });
    }

    /// Recompute a batch of in-entries `(i, j)` (each scanning `P_j`); the
    /// in-direction mirror of [`Self::rescan_out_entries`].
    fn rescan_in_entries(&mut self, p: &Partition, entries: &[(u32, u32)]) {
        let work: usize = entries.iter().map(|&(_, j)| p.size(j)).sum();
        if self.pool.is_none() || entries.len() < 2 || work < self.par_min_scan_work {
            // Mirror of the out-side grouping: in-entries sharing the
            // member color `j` fold all queued first indices in one pass
            // over `P_j`'s `din` rows.
            if entries.len() >= 2 && entries.iter().all(|&(_, j)| j == entries[0].1) {
                self.rescan_in_row_grouped(p, entries);
                return;
            }
            for &(i, j) in entries {
                self.rescan_in_entry(p, i as usize, j as usize);
            }
            return;
        }
        let cap = self.cap;
        let pool = self.pool.clone().expect("checked above");
        let shards = pool.slots();
        let din = &self.din;
        let sparse_in = &self.sparse_in;
        let sparse_accum = self.sparse_accum;
        let emin = SyncSliceMut::new(&mut self.in_min);
        let emax = SyncSliceMut::new(&mut self.in_max);
        let amin = SyncSliceMut::new(&mut self.in_min_arg);
        let amax = SyncSliceMut::new(&mut self.in_max_arg);
        let enz = SyncSliceMut::new(&mut self.in_nz);
        pool.run(|slot| {
            let (lo, hi) = chunk_range(entries.len(), shards, slot);
            for &(i, j) in &entries[lo..hi] {
                let (mn, mx, an, ax, nz) = if sparse_accum {
                    kernels::scan_gather_column_sparse(p.members(j), sparse_in, i)
                } else {
                    scan_entry_column(p.members(j), din, cap, i as usize)
                };
                let idx = i as usize * cap + j as usize;
                // SAFETY: disjoint duplicate-free chunks (see
                // rescan_out_entries).
                unsafe {
                    *emin.get_mut(idx) = mn;
                    *emax.get_mut(idx) = mx;
                    *amin.get_mut(idx) = an;
                    *amax.get_mut(idx) = ax;
                    *enz.get_mut(idx) = nz;
                }
            }
        });
    }

    /// Serial grouped rescan of out-entries that all share member color
    /// `entries[0].0`: one pass over that color's `dout` rows folds every
    /// queued column via [`kernels::scan_gather_columns`], then the
    /// results land entry by entry. Equal to [`Self::rescan_out_entry`]
    /// per entry, bit for bit (same member-order fold per column).
    fn rescan_out_row_grouped(&mut self, p: &Partition, entries: &[(u32, u32)]) {
        let cap = self.cap;
        let i = entries[0].0;
        debug_assert!(entries.len() <= cap);
        let cols: Vec<u32> = entries.iter().map(|&(_, j)| j).collect();
        {
            let (mn, mx) = self.row_scratch.split_at_mut(cap);
            let (amn, amx) = self.row_arg_scratch.split_at_mut(cap);
            if self.sparse_accum {
                kernels::scan_gather_columns_sparse(
                    p.members(i),
                    &self.sparse_out,
                    &cols,
                    mn,
                    &mut mx[..cap],
                    amn,
                    &mut amx[..cap],
                    &mut self.row_nz_scratch[..cap],
                );
            } else {
                kernels::scan_gather_columns(
                    p.members(i),
                    &self.dout,
                    cap,
                    &cols,
                    mn,
                    &mut mx[..cap],
                    amn,
                    &mut amx[..cap],
                    &mut self.row_nz_scratch[..cap],
                );
            }
        }
        // Scratch layout after the scan: mins at [s], maxs at [cap + s]
        // (arg slices likewise), counts at [s].
        for (s, &(_, j)) in entries.iter().enumerate() {
            let idx = i as usize * cap + j as usize;
            self.out_min[idx] = self.row_scratch[s];
            self.out_max[idx] = self.row_scratch[cap + s];
            self.out_min_arg[idx] = self.row_arg_scratch[s];
            self.out_max_arg[idx] = self.row_arg_scratch[cap + s];
            self.out_nz[idx] = self.row_nz_scratch[s];
        }
    }

    /// In-direction mirror of [`Self::rescan_out_row_grouped`]: entries
    /// share member color `entries[0].1` and fold their queued first
    /// indices in one pass over that color's `din` rows.
    fn rescan_in_row_grouped(&mut self, p: &Partition, entries: &[(u32, u32)]) {
        let cap = self.cap;
        let j = entries[0].1;
        debug_assert!(entries.len() <= cap);
        let cols: Vec<u32> = entries.iter().map(|&(i, _)| i).collect();
        {
            let (mn, mx) = self.row_scratch.split_at_mut(cap);
            let (amn, amx) = self.row_arg_scratch.split_at_mut(cap);
            if self.sparse_accum {
                kernels::scan_gather_columns_sparse(
                    p.members(j),
                    &self.sparse_in,
                    &cols,
                    mn,
                    &mut mx[..cap],
                    amn,
                    &mut amx[..cap],
                    &mut self.row_nz_scratch[..cap],
                );
            } else {
                kernels::scan_gather_columns(
                    p.members(j),
                    &self.din,
                    cap,
                    &cols,
                    mn,
                    &mut mx[..cap],
                    amn,
                    &mut amx[..cap],
                    &mut self.row_nz_scratch[..cap],
                );
            }
        }
        for (s, &(i, _)) in entries.iter().enumerate() {
            let idx = i as usize * cap + j as usize;
            self.in_min[idx] = self.row_scratch[s];
            self.in_max[idx] = self.row_scratch[cap + s];
            self.in_min_arg[idx] = self.row_arg_scratch[s];
            self.in_max_arg[idx] = self.row_arg_scratch[cap + s];
            self.in_nz[idx] = self.row_nz_scratch[s];
        }
    }

    /// Grow the column capacity to hold `needed` colors. Capacity doubles
    /// (`next_power_of_two`), so a long split sequence pays `O(log k)`
    /// regrowths — amortized `O(1)` copies per new color, not `O(k²)` copy
    /// traffic per shortfall — and each matrix regrows straight to its
    /// final `new_rows × new_cap` footprint in one allocation + one prefix
    /// copy (see [`regrow`]; square summary matrices used to restride to
    /// `old × new` and then resize again). Engines with tiered sparse rows
    /// (degrees-only *and* sparse-storage summary engines) skip the
    /// accumulator restride entirely: colors are entry keys there, so the
    /// rows never depend on `cap`.
    fn ensure_capacity(&mut self, needed: usize) {
        if needed <= self.cap {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let old_cap = self.cap;
        if self.track_summaries {
            if !self.sparse_accum {
                regrow(&mut self.dout, self.n, self.n, old_cap, new_cap, 0.0);
                if !self.symmetric {
                    regrow(&mut self.din, self.n, self.n, old_cap, new_cap, 0.0);
                }
            }
            regrow(&mut self.out_min, old_cap, new_cap, old_cap, new_cap, 0.0);
            regrow(&mut self.out_max, old_cap, new_cap, old_cap, new_cap, 0.0);
            regrow(
                &mut self.out_min_arg,
                old_cap,
                new_cap,
                old_cap,
                new_cap,
                NO_ARG,
            );
            regrow(
                &mut self.out_max_arg,
                old_cap,
                new_cap,
                old_cap,
                new_cap,
                NO_ARG,
            );
            regrow(&mut self.out_nz, old_cap, new_cap, old_cap, new_cap, 0);
            if !self.symmetric {
                regrow(&mut self.in_min, old_cap, new_cap, old_cap, new_cap, 0.0);
                regrow(&mut self.in_max, old_cap, new_cap, old_cap, new_cap, 0.0);
                regrow(
                    &mut self.in_min_arg,
                    old_cap,
                    new_cap,
                    old_cap,
                    new_cap,
                    NO_ARG,
                );
                regrow(
                    &mut self.in_max_arg,
                    old_cap,
                    new_cap,
                    old_cap,
                    new_cap,
                    NO_ARG,
                );
                regrow(&mut self.in_nz, old_cap, new_cap, old_cap, new_cap, 0);
            }
            self.row_max_err.resize(new_cap, 0.0);
            self.row_best.resize(new_cap, None);
            self.row_err_dirty.resize(new_cap, true);
            self.row_best_dirty.resize(new_cap, true);
            self.color_slot.resize(new_cap, u32::MAX);
            self.row_scratch.resize(4 * new_cap, 0.0);
            self.row_arg_scratch.resize(4 * new_cap, NO_ARG);
            self.row_nz_scratch.resize(2 * new_cap, 0);
        }
        self.cap = new_cap;
    }
}

/// Witness selection over from-scratch [`DegreeMatrices`], mirroring the
/// engine's row-ordered scan — including its floating-point operation order
/// and first-strictly-greater tie-breaking — exactly. This is what the
/// non-incremental reference stepper ([`crate::rothko::Rothko::run_reference`])
/// uses, so the incremental and from-scratch paths pick identical witnesses
/// whenever the underlying matrices are numerically identical.
pub fn pick_witness_scratch(
    m: &DegreeMatrices,
    p: &Partition,
    alpha: f64,
    beta: f64,
) -> Option<WitnessCandidate> {
    pick_witnesses_scratch(m, p, alpha, beta, 1)
        .into_iter()
        .next()
}

/// The top-`max_count` witnesses over from-scratch [`DegreeMatrices`], at
/// most one per split color, ordered by descending weight with ties broken
/// towards the smaller color id — the reference-mode counterpart of
/// [`IncrementalDegrees::pick_witnesses`]. Because the per-row scan and the
/// cross-row ordering mirror the engine's exactly, batched reference
/// rounds pick the same candidates as batched incremental rounds whenever
/// the underlying matrices are numerically identical.
pub fn pick_witnesses_scratch(
    m: &DegreeMatrices,
    p: &Partition,
    alpha: f64,
    beta: f64,
    max_count: usize,
) -> Vec<WitnessCandidate> {
    let k = m.k;
    let mut scored: Vec<(f64, u32, RowBest)> = Vec::new();
    for s in 0..k {
        if p.size(s as u32) < 2 {
            continue;
        }
        let mut row_best: Option<RowBest> = None;
        let mut consider = |weighted: f64, error: f64, other: u32, outgoing: bool| match &row_best {
            Some(b) if b.weighted >= weighted => {}
            _ => {
                row_best = Some(RowBest {
                    weighted,
                    other,
                    outgoing,
                    error,
                })
            }
        };
        for j in 0..k {
            let e = m.out_error(s, j);
            if e > 0.0 {
                consider(e * size_pow(p.size(j as u32), beta), e, j as u32, true);
            }
        }
        for i in 0..k {
            let e = m.in_error(i, s);
            if e > 0.0 {
                consider(e * size_pow(p.size(i as u32), beta), e, i as u32, false);
            }
        }
        if let Some(row) = row_best {
            scored.push((
                row.weighted * size_pow(p.size(s as u32), alpha),
                s as u32,
                row,
            ));
        }
    }
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    scored.truncate(max_count);
    scored
        .into_iter()
        .map(|(_, s, row)| WitnessCandidate {
            split_color: s,
            other_color: row.other,
            outgoing: row.outgoing,
            error: row.error,
        })
        .collect()
}

/// Compact a row-major node-axis matrix through a node remap: survivor
/// rows slide down in order (in place), removed rows are dropped, and the
/// vector is truncated to the new node count.
fn compact_rows(data: &mut Vec<f64>, n_old: usize, cap: usize, remap: &NodeRemap) {
    if cap == 0 {
        return;
    }
    for v in 0..n_old as NodeId {
        if let Some(nv) = remap.map(v) {
            if nv != v {
                let src = v as usize * cap;
                let dst = nv as usize * cap;
                data.copy_within(src..src + cap, dst);
            }
        }
    }
    data.truncate(remap.new_len() * cap);
}

/// Compact per-node tiered rows through a node remap (survivors keep their
/// relative order).
fn compact_sparse_rows(rows: &mut Vec<RowRep>, remap: &NodeRemap) {
    let old = std::mem::take(rows);
    *rows = old
        .into_iter()
        .enumerate()
        .filter(|&(v, _)| !remap.is_removed(v as NodeId))
        .map(|(_, r)| r)
        .collect();
}

/// Regrow a row-major matrix from `rows × old_cap` to `new_rows × new_cap`
/// columns, filling fresh cells with `fill`. One geometric allocation to
/// the final footprint (both axes at once — no intermediate copy through
/// an `old_rows × new_cap` shape), then only the old `rows × old_cap`
/// prefix of each row is copied. The fresh allocation is deliberate:
/// zero-filled matrices come from `alloc_zeroed` (lazy kernel zero pages —
/// the dominant regrowth, a 10k-row accumulator growing its column axis,
/// never writes the ~95% of the target that starts as fill), where an
/// in-place `resize` + restride would stream the whole footprint through
/// the store buffers twice.
fn regrow<T: Copy>(
    data: &mut Vec<T>,
    rows: usize,
    new_rows: usize,
    old_cap: usize,
    new_cap: usize,
    fill: T,
) {
    debug_assert!(new_cap >= old_cap && new_rows >= rows);
    debug_assert_eq!(data.len(), rows * old_cap);
    let mut grown = vec![fill; new_rows * new_cap];
    for r in 0..rows {
        grown[r * new_cap..r * new_cap + old_cap]
            .copy_from_slice(&data[r * old_cap..(r + 1) * old_cap]);
    }
    *data = grown;
}

/// Min/max (with first-attainer witnesses) of `acc[u * cap + col]` over the
/// given members, in member order — the shared kernel of every entry
/// rescan, routed through the branch-free gather scan in [`crate::kernels`]
/// (identical sequential semantics, select form instead of branches).
#[inline]
#[allow(clippy::type_complexity)]
fn scan_entry_column(
    members: &[NodeId],
    acc: &[f64],
    cap: usize,
    col: usize,
) -> (f64, f64, u32, u32, u32) {
    kernels::scan_gather_column(members, acc, cap, col)
}

/// Build one sparse accumulator row from a node's arc slices: per-color
/// weight sums in arc order (stable sort keeps same-color weights in arc
/// order, so each sum matches the dense accumulation bit-for-bit), zeros
/// dropped, sorted by color.
fn sparse_row_from_arcs((nbrs, wts): (&[NodeId], &[f64]), p: &Partition) -> Vec<(u32, f64)> {
    let mut pairs: Vec<(u32, f64)> = nbrs
        .iter()
        .zip(wts.iter())
        .map(|(&u, &w)| (p.color_of(u), w))
        .collect();
    pairs.sort_by_key(|&(c, _)| c);
    let mut row: Vec<(u32, f64)> = Vec::new();
    for (c, w) in pairs {
        match row.last_mut() {
            Some((lc, lw)) if *lc == c => *lw += w,
            _ => row.push((c, w)),
        }
    }
    row.retain(|&(_, w)| w != 0.0);
    row
}

/// Dedupe one chunk of movers' neighbors into `out` as `(node, chunk-local
/// delta)` pairs in first-touch order, using the caller's
/// generation-stamped scratch arrays — the per-chunk kernel of the
/// canonical chunked touched-collection.
fn scan_chunk(
    g: &Graph,
    movers: &[NodeId],
    incoming: bool,
    stamp: &mut [u32],
    gen: &mut u32,
    delta: &mut [f64],
    out: &mut Vec<(NodeId, f64)>,
) {
    out.clear();
    *gen = gen.wrapping_add(1);
    if *gen == 0 {
        stamp.fill(0);
        *gen = 1;
    }
    let gen = *gen;
    for &v in movers {
        let (nbrs, wts) = if incoming {
            g.in_arcs(v)
        } else {
            g.out_arcs(v)
        };
        for (idx, &u) in nbrs.iter().enumerate() {
            if stamp[u as usize] != gen {
                stamp[u as usize] = gen;
                delta[u as usize] = 0.0;
                out.push((u, 0.0));
            }
            delta[u as usize] += wts[idx];
        }
    }
    for entry in out.iter_mut() {
        entry.1 = delta[entry.0 as usize];
    }
}

/// Fold one arc-accumulator delta of an edge batch into the per-(node,
/// column) combined list (first-touch order, so batch processing is
/// deterministic).
fn accumulate_edge(
    list: &mut Vec<(NodeId, u32, f64)>,
    slots: &mut HashMap<(NodeId, u32), usize>,
    u: NodeId,
    col: u32,
    delta: f64,
) {
    match slots.entry((u, col)) {
        std::collections::hash_map::Entry::Occupied(e) => list[*e.get()].2 += delta,
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(list.len());
            list.push((u, col, delta));
        }
    }
}

/// Which matrix a [`IncrementalDegrees::patch_entry`] call updates.
#[derive(Clone, Copy, Debug)]
enum EntryKind {
    /// Out-matrix entry `(i, c)`: the batched color is the row `i`.
    OutCol,
    /// In-matrix entry `(c, j)`: the batched color is the column `j`.
    InRow,
}

/// `size^exponent` with the paper's convention that an exponent of zero
/// disables the weighting entirely (including for empty products).
#[inline]
pub(crate) fn size_pow(size: usize, exponent: f64) -> f64 {
    if exponent == 0.0 {
        1.0
    } else {
        (size as f64).powf(exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::{Absolute, Exact};
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn discrete_partition_has_zero_error() {
        let g = generators::karate_club();
        let p = Partition::discrete(34);
        assert_eq!(max_q_error(&g, &p), 0.0);
        assert!(is_quasi_stable(&g, &p, &Exact));
    }

    #[test]
    fn unit_partition_error_is_degree_spread() {
        let g = generators::karate_club();
        let p = Partition::unit(34);
        // Max error = max degree - min degree = 17 - 1 = 16.
        assert_eq!(max_q_error(&g, &p), 16.0);
        assert!(!is_quasi_stable(&g, &p, &Exact));
        assert!(is_quasi_stable(&g, &p, &Absolute::new(16.0)));
        assert!(!is_quasi_stable(&g, &p, &Absolute::new(15.0)));
    }

    #[test]
    fn star_partition_errors() {
        // Star with center 0 and 4 leaves; partition {0},{1..4} is stable.
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let p = Partition::from_classes(5, vec![vec![0], vec![1, 2, 3, 4]]);
        assert_eq!(max_q_error(&g, &p), 0.0);
        // Putting the center together with leaves: error 4 - 1 = 3.
        let bad = Partition::unit(5);
        assert_eq!(max_q_error(&g, &bad), 3.0);
        let report = q_error_report(&g, &bad);
        assert_eq!(report.max_q, 3.0);
        assert_eq!(report.num_colors, 1);
        assert!(report.worst_pair.is_some());
    }

    #[test]
    fn degree_matrices_shape_and_sum() {
        let g = generators::karate_club();
        let p = Partition::from_assignment(
            &(0..34)
                .map(|v| if v < 17 { 0 } else { 1 })
                .collect::<Vec<_>>(),
        );
        let m = DegreeMatrices::compute(&g, &p);
        assert_eq!(m.k, 2);
        // Total of the sum matrix equals total arc weight.
        let total: f64 = m.sum.iter().sum();
        assert_eq!(total, g.total_weight());
        // Cross-pair sums are symmetric for undirected graphs.
        assert_eq!(m.pair_weight(0, 1), m.pair_weight(1, 0));
    }

    #[test]
    fn directed_in_out_errors_differ() {
        // 0 -> 2, 1 -> 2, 1 -> 3  with colors {0,1}, {2,3}.
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 2, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        let g = b.build();
        let p = Partition::from_classes(4, vec![vec![0, 1], vec![2, 3]]);
        let m = DegreeMatrices::compute(&g, &p);
        // Outgoing from color 0 to color 1: node 0 has 1, node 1 has 2 => err 1.
        assert_eq!(m.out_error(0, 1), 1.0);
        // Incoming into color 1 from color 0: node 2 has 2, node 3 has 1 => err 1.
        assert_eq!(m.in_error(0, 1), 1.0);
        // No edges inside color 0.
        assert_eq!(m.out_error(0, 0), 0.0);
        assert_eq!(max_q_error(&g, &p), 1.0);
    }

    #[test]
    fn zero_degree_nodes_counted_in_min() {
        // Color {0,1} where only node 0 has an edge to color {2}: min is 0.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let p = Partition::from_classes(3, vec![vec![0, 1], vec![2]]);
        let m = DegreeMatrices::compute(&g, &p);
        assert_eq!(m.out_max[1], 5.0);
        assert_eq!(m.out_min[1], 0.0);
        assert_eq!(m.out_error(0, 1), 5.0);
    }

    #[test]
    fn mean_error_leq_max_error() {
        let g = generators::barabasi_albert(200, 3, 7);
        let p = Partition::from_assignment(&(0..200).map(|v| (v % 5) as u32).collect::<Vec<_>>());
        let report = q_error_report(&g, &p);
        assert!(report.mean_q <= report.max_q);
        assert!(report.mean_q >= 0.0);
    }

    #[test]
    fn relative_error_of_star_partition() {
        // Star with center 0 and 4 leaves, all nodes in one color: degrees
        // into the color are {4, 1, 1, 1, 1}, so the relative spread is
        // ln(4 / 1).
        let mut b = GraphBuilder::new_undirected(5);
        for leaf in 1..5 {
            b.add_edge(0, leaf, 1.0);
        }
        let g = b.build();
        let unit = Partition::unit(5);
        let m = DegreeMatrices::compute(&g, &unit);
        assert!((m.out_relative_error(0, 0) - 4.0f64.ln()).abs() < 1e-12);
        assert!((max_relative_error(&g, &unit) - 4.0f64.ln()).abs() < 1e-12);
        // The stable coloring {center}, {leaves} has zero relative error.
        let p = Partition::from_classes(5, vec![vec![0], vec![1, 2, 3, 4]]);
        assert_eq!(max_relative_error(&g, &p), 0.0);
    }

    #[test]
    fn relative_error_infinite_when_zero_mixes_with_nonzero() {
        // Node 1 has no edge into color {2}, node 0 does: zero is only
        // ε-similar to zero, so the relative error is infinite while the
        // absolute error is finite.
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 2, 5.0);
        let g = b.build();
        let p = Partition::from_classes(3, vec![vec![0, 1], vec![2]]);
        assert_eq!(max_q_error(&g, &p), 5.0);
        assert!(max_relative_error(&g, &p).is_infinite());
    }

    #[test]
    fn stable_coloring_has_zero_q() {
        let g = generators::colored_regular(10, 8, 4, 2, 3);
        let p = crate::stable::stable_coloring(&g);
        assert_eq!(max_q_error(&g, &p), 0.0);
        assert_eq!(mean_q_error(&g, &p), 0.0);
    }

    /// Random graph with exactly representable weights.
    fn half_weight_graph(n: usize, edges: usize, directed: bool, seed: u64) -> Graph {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = if directed {
            GraphBuilder::new_directed(n)
        } else {
            GraphBuilder::new_undirected(n)
        };
        for _ in 0..edges {
            let u = rng.random_range(0..n) as u32;
            let v = rng.random_range(0..n) as u32;
            if u != v {
                b.add_edge(u, v, (rng.random_range(1u32..9) as f64) * 0.5);
            }
        }
        b.build()
    }

    #[test]
    fn merge_matches_fresh_engine_across_modes() {
        use rand::prelude::*;
        for (directed, seed) in [(false, 3u64), (true, 19)] {
            let g = half_weight_graph(40, 160, directed, seed);
            let mut p = Partition::unit(40);
            let mut dense = IncrementalDegrees::new(&g, &p);
            let mut sparse = IncrementalDegrees::new_degrees_only(&g, &p);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
            // Refine to ~8 colors, then merge random pairs back down,
            // cross-checking the full state after every merge.
            for _ in 0..7 {
                let k = p.num_colors();
                let candidates: Vec<u32> = (0..k as u32).filter(|&c| p.size(c) >= 2).collect();
                let Some(&c) = candidates.as_slice().choose(&mut rng) else {
                    break;
                };
                let members: Vec<u32> = p.members(c).to_vec();
                let pivot = members[rng.random_range(0..members.len())];
                if let Some(ev) = p.split_color(c, |v| v >= pivot && v != members[0]) {
                    dense.apply_split(&g, &p, &ev);
                    sparse.apply_split(&g, &p, &ev);
                }
            }
            while p.num_colors() >= 2 {
                let k = p.num_colors() as u32;
                let a = rng.random_range(0..k - 1);
                let b = rng.random_range(a + 1..k);
                let ev = p.merge_colors(a, b);
                dense.apply_merge(&g, &p, &ev);
                sparse.apply_merge(&g, &p, &ev);
                assert_eq!(dense.verify_against(&g, &p), Ok(()));
                assert_eq!(sparse.verify_against(&g, &p), Ok(()));
                // Witness state equals a freshly built engine bit-for-bit.
                dense.refresh(&p, 1.0);
                let mut fresh = IncrementalDegrees::new(&g, &p);
                fresh.refresh(&p, 1.0);
                assert_eq!(dense.max_error().to_bits(), fresh.max_error().to_bits());
                assert_eq!(dense.pick_witness(&p, 1.0), fresh.pick_witness(&p, 1.0));
                assert_eq!(
                    dense.pick_merge(f64::INFINITY),
                    fresh.pick_merge(f64::INFINITY)
                );
            }
        }
    }

    #[test]
    fn merge_bound_is_sound() {
        // The picked merge's bound must dominate the actual post-merge
        // error, and the scratch pick must agree with the engine pick.
        for (directed, seed) in [(false, 7u64), (true, 29)] {
            let g = half_weight_graph(36, 150, directed, seed);
            let mut p = Partition::unit(36);
            let mut engine = IncrementalDegrees::new(&g, &p);
            for pivot in [24u32, 12, 30, 6] {
                if let Some(ev) = p.split_color(p.color_of(pivot), |v| v >= pivot && v != 0) {
                    engine.apply_split(&g, &p, &ev);
                }
            }
            let m = DegreeMatrices::compute(&g, &p);
            assert_eq!(
                engine.pick_merge(f64::INFINITY),
                pick_merge_scratch(&m, f64::INFINITY)
            );
            let cand = engine.pick_merge(f64::INFINITY).expect("k >= 2");
            let ev = p.merge_colors(cand.winner, cand.loser);
            engine.apply_merge(&g, &p, &ev);
            let actual = max_q_error(&g, &p);
            assert!(
                actual <= cand.bound + 1e-9,
                "bound {} below actual {actual}",
                cand.bound
            );
        }
    }

    #[test]
    fn beta_weight_growth_invalidates_untouched_rows() {
        // A merge (or node insert) grows the winner's size. With β > 0 the
        // weight of candidates *targeting* the grown color rises, so an
        // untouched row's cached best — pointing elsewhere — can be
        // silently overtaken. Row A below has edges into W and X but none
        // into L, so merging L into W leaves row A untouched by the fold;
        // its best must still flip from X to the grown W.
        //
        // Nodes: A = {0, 1}, W = {2, 3}, X = {4, 5}, L = {6}.
        let mut b = GraphBuilder::new_directed(7);
        b.add_edge(0, 2, 1.5); // (A, W): error 1.5
        b.add_edge(0, 4, 1.6); // (A, X): error 1.6
        let g = b.build();
        let mut p = Partition::from_classes(7, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6]]);
        let beta = 1.0;
        let mut engine = IncrementalDegrees::new(&g, &p);
        engine.refresh(&p, beta);
        // Pre-merge best of row A: (A, X) at 1.6 · |X| = 3.2 over (A, W)
        // at 1.5 · |W| = 3.0.
        let pre = engine.pick_witness(&p, 0.0).expect("candidates exist");
        assert_eq!((pre.split_color, pre.other_color), (0, 2));
        // Merge L into W: |W| = 3, so (A, W) = 4.5 overtakes.
        let ev = p.merge_colors(1, 3);
        engine.apply_merge(&g, &p, &ev);
        engine.refresh(&p, beta);
        let mut fresh = IncrementalDegrees::new(&g, &p);
        fresh.refresh(&p, beta);
        assert_eq!(engine.pick_witness(&p, 0.0), fresh.pick_witness(&p, 0.0));
        let post = engine.pick_witness(&p, 0.0).expect("candidates exist");
        assert_eq!((post.split_color, post.other_color), (0, 1));

        // The node-insert path grows a color the same way.
        let mut engine = IncrementalDegrees::new(&g, &p);
        engine.refresh(&p, beta);
        let first = p.num_nodes() as u32;
        p.insert_node(1);
        engine.apply_node_inserts(&p, first, &[1]);
        engine.refresh(&p, beta);
        let mut fresh = IncrementalDegrees::new(&g2_with_node(&g), &p);
        fresh.refresh(&p, beta);
        assert_eq!(engine.pick_witness(&p, 0.0), fresh.pick_witness(&p, 0.0));
        let post = engine.pick_witness(&p, 0.0).expect("candidates exist");
        assert_eq!(
            (post.split_color, post.other_color),
            (0, 1),
            "the grown W must overtake X in row A's cached best"
        );
    }

    /// The test graph above with one extra isolated node appended.
    fn g2_with_node(g: &Graph) -> Graph {
        let mut b = GraphBuilder::new_directed(g.num_nodes() + 1);
        for (u, v, w) in g.arcs() {
            b.add_edge(u, v, w);
        }
        b.build()
    }

    #[test]
    fn node_inserts_and_removals_match_fresh_engine() {
        use qsc_graph::GraphDelta;
        for (directed, seed) in [(false, 5u64), (true, 13)] {
            let g = half_weight_graph(30, 120, directed, seed);
            let mut p = Partition::unit(30);
            let mut dense = IncrementalDegrees::new(&g, &p);
            let mut sparse = IncrementalDegrees::new_degrees_only(&g, &p);
            let ev = p.split_color(0, |v| v >= 15).unwrap();
            dense.apply_split(&g, &p, &ev);
            sparse.apply_split(&g, &p, &ev);

            let mut delta = GraphDelta::new(g);
            // Insert two nodes, wire one, remove an existing node (with its
            // edges) and the still-isolated insert.
            let a = delta.insert_node();
            let b = delta.insert_node();
            let first = a;
            p.insert_node(0);
            p.insert_node(1);
            dense.apply_node_inserts(&p, first, &[0, 1]);
            sparse.apply_node_inserts(&p, first, &[0, 1]);

            delta.insert_edge(a, 3, 1.5).unwrap();
            delta.insert_edge(5, a, 2.0).unwrap();
            let victim = 7u32;
            delta.remove_node(victim).unwrap();
            delta.remove_node(b).unwrap();
            let events = delta.drain_events();
            dense.apply_edge_batch(&p, &events);
            sparse.apply_edge_batch(&p, &events);

            let removed_colors = vec![p.color_of(victim), p.color_of(b)];
            let (compacted, remap) = delta.compact_renumber();
            p.apply_node_remap(&remap);
            dense.apply_node_removals(&p, &remap, &removed_colors);
            sparse.apply_node_removals(&p, &remap, &removed_colors);

            assert_eq!(dense.verify_against(&compacted, &p), Ok(()));
            assert_eq!(sparse.verify_against(&compacted, &p), Ok(()));
            dense.refresh(&p, 0.0);
            let mut fresh = IncrementalDegrees::new(&compacted, &p);
            fresh.refresh(&p, 0.0);
            assert_eq!(dense.max_error().to_bits(), fresh.max_error().to_bits());
            assert_eq!(dense.pick_witness(&p, 0.0), fresh.pick_witness(&p, 0.0));
        }
    }

    #[test]
    fn edge_batch_patches_match_compacted_recomputation() {
        use qsc_graph::GraphDelta;
        // Directed and undirected bases, a few splits, then edge batches.
        for directed in [false, true] {
            let g = {
                let mut b = if directed {
                    GraphBuilder::new_directed(8)
                } else {
                    GraphBuilder::new_undirected(8)
                };
                for (u, v, w) in [
                    (0u32, 1u32, 2.0),
                    (1, 2, 1.0),
                    (2, 3, 3.0),
                    (3, 4, 1.0),
                    (4, 5, 2.0),
                    (5, 6, 1.0),
                    (6, 7, 4.0),
                    (0, 7, 1.0),
                    (2, 5, 2.0),
                ] {
                    b.add_edge(u, v, w);
                }
                b.build()
            };
            let mut p = Partition::unit(8);
            let mut engine = IncrementalDegrees::new(&g, &p);
            let ev = p.split_color(0, |v| v >= 4).unwrap();
            engine.apply_split(&g, &p, &ev);

            let mut delta = GraphDelta::new(g);
            delta.insert_edge(0, 3, 2.5).unwrap();
            delta.delete_edge(4, 5).unwrap();
            delta.reweight_edge(6, 7, 1.5).unwrap();
            delta.insert_edge(1, 1, 2.0).unwrap(); // self-loop
            let events = delta.drain_events();
            engine.apply_edge_batch(&p, &events);
            let compacted = delta.compact();
            assert_eq!(engine.verify_against(&compacted, &p), Ok(()));
            // Witness state must agree with a freshly built engine.
            engine.refresh(&p, 0.0);
            let mut fresh = IncrementalDegrees::new(&compacted, &p);
            fresh.refresh(&p, 0.0);
            assert_eq!(engine.max_error().to_bits(), fresh.max_error().to_bits());
            assert_eq!(engine.pick_witness(&p, 0.0), fresh.pick_witness(&p, 0.0));

            // Degrees-only engines take the same events through sparse rows.
            let mut sparse = IncrementalDegrees::new_degrees_only(&compacted, &p);
            let mut delta2 = GraphDelta::new(compacted);
            delta2.delete_edge(0, 3).unwrap();
            delta2.insert_edge(3, 6, 1.0).unwrap();
            let events = delta2.drain_events();
            sparse.apply_edge_batch(&p, &events);
            let compacted2 = delta2.compact();
            assert_eq!(sparse.verify_against(&compacted2, &p), Ok(()));
        }
    }
}
