//! A minimal persistent fork-join thread pool for the parallel refinement
//! engine.
//!
//! The build environment has no crates.io access, so instead of `rayon` this
//! module provides the one primitive the engine needs: [`ThreadPool::run`],
//! which executes a borrowed closure once per worker slot and returns only
//! when every slot has finished (a fork-join *broadcast*). Workers are
//! spawned once and parked between regions, so a region costs two
//! mutex/condvar handshakes instead of thread spawns — the engine enters a
//! region once or twice per split, which per-region spawning would dominate.
//!
//! Determinism contract: the pool provides *scheduling*, not *semantics*.
//! Every parallel region in this workspace shards its data into disjoint
//! ranges and reduces per-shard summaries with exact operations (min / max /
//! sum-of-disjoint-terms / logical or), so results are bit-identical for
//! every thread count, including 1. [`ThreadPool::run`] with one slot simply
//! invokes the closure inline — a single-threaded pool adds zero overhead
//! and zero unsafe.
//!
//! The default slot count comes from the `QSC_THREADS` environment variable
//! (see [`default_threads`]), which is how the CI matrix drives the whole
//! test suite through both the serial and the parallel paths.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Default worker-slot count: the `QSC_THREADS` environment variable when
/// set to a positive integer, otherwise 1 (serial). Deliberately *not*
/// `available_parallelism()`: callers opt into parallelism explicitly, so
/// library users embedding the engine in their own thread-per-request
/// servers don't get surprise nested parallelism.
pub fn default_threads() -> usize {
    std::env::var("QSC_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// A fork-join job: type-erased borrowed closure plus the generation it
/// belongs to. The raw pointer is only dereferenced between the publishing
/// [`ThreadPool::run`] call and its completion handshake, during which the
/// closure is guaranteed alive (see the safety comment in `run`).
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the pointee is `Sync` (the closure is shared immutably across
// workers) and `run` keeps it alive for the whole time workers can observe
// the job, so shipping the pointer across threads is sound.
unsafe impl Send for Job {}

struct PoolState {
    /// Monotone job generation; workers run at most one job per generation.
    generation: u64,
    job: Option<Job>,
    /// Workers still executing the current generation's job.
    running: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Signals workers that a new generation (or shutdown) is available.
    work: Condvar,
    /// Signals the caller that all workers finished the current generation.
    done: Condvar,
}

/// Persistent fork-join pool with `slots` worker slots. Slot 0 is the
/// calling thread itself; slots `1..slots` are parked OS threads. See the
/// module docs for the determinism contract.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    slots: usize,
    /// Guards against overlapping [`Self::run`] calls (the fork-join
    /// protocol serves one broadcast at a time); checked in release builds
    /// too, since a second concurrent caller could otherwise free a
    /// borrowed closure while workers still dereference it.
    busy: AtomicBool,
}

impl ThreadPool {
    /// Create a pool with `slots` total worker slots (clamped to at least
    /// one). `slots - 1` OS threads are spawned and parked immediately.
    pub fn new(slots: usize) -> Self {
        let slots = slots.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                generation: 0,
                job: None,
                running: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (1..slots)
            .map(|slot| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("qsc-pool-{slot}"))
                    .spawn(move || worker_loop(&shared, slot))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            slots,
            busy: AtomicBool::new(false),
        }
    }

    /// Total worker slots (including the calling thread).
    #[inline]
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Execute `f(slot)` once for every slot `0..slots()`, concurrently, and
    /// return once all invocations completed. The caller runs slot 0. With a
    /// single slot this is an inline call with no synchronization.
    ///
    /// Panic behavior: a panic on the caller's slot is re-raised *after*
    /// the workers finish (the borrowed closure must outlive every worker
    /// dereference); a panic on a worker thread aborts the process — it
    /// cannot be propagated, and leaving `running` undecremented would
    /// deadlock the caller forever.
    /// Panics if called while another `run` is in flight on the same pool
    /// (the protocol serves one broadcast at a time; overlapping calls
    /// could otherwise free a borrowed closure under a running worker).
    pub fn run<F: Fn(usize) + Sync>(&self, f: F) {
        // New fork-join region: SyncSliceMut claims from earlier regions
        // are retired (their references are dead — the previous `run`
        // returned through the join barrier before this one started).
        #[cfg(feature = "audit")]
        crate::audit::begin_region();
        if self.slots == 1 {
            f(0);
            return;
        }
        assert!(
            self.busy
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok(),
            "overlapping ThreadPool::run calls on a shared pool"
        );
        let wide: *const (dyn Fn(usize) + Sync) = &f;
        // SAFETY: erase the borrow lifetime to park the pointer in shared
        // state. The pointee `f` outlives every dereference because this
        // function does not return until `running == 0`, and workers only
        // dereference the job before decrementing `running` for its
        // generation.
        #[allow(clippy::missing_transmute_annotations)]
        let job = Job {
            f: unsafe { std::mem::transmute(wide) },
        };
        {
            let mut state = self.shared.state.lock().unwrap();
            debug_assert_eq!(state.running, 0, "overlapping ThreadPool::run calls");
            state.generation += 1;
            state.job = Some(job);
            state.running = self.slots - 1;
            self.shared.work.notify_all();
        }
        // The caller is slot 0. Defer a caller-side panic until the
        // workers are done with the closure.
        let caller_result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0)));
        let mut state = self.shared.state.lock().unwrap();
        while state.running > 0 {
            state = self.shared.done.wait(state).unwrap();
        }
        state.job = None;
        drop(state);
        self.busy.store(false, Ordering::Release);
        if let Err(payload) = caller_result {
            std::panic::resume_unwind(payload);
        }
    }
}

impl fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadPool")
            .field("slots", &self.slots)
            .finish()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if state.shutdown {
                    return;
                }
                if state.generation != seen {
                    seen = state.generation;
                    break state.job.expect("job published with its generation");
                }
                state = shared.work.wait(state).unwrap();
            }
        };
        // SAFETY: `run` keeps the closure alive until `running` drops to
        // zero, which happens strictly after this dereference.
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe { (*job.f)(slot) }));
        if result.is_err() {
            // A worker panic cannot be propagated to the caller, and
            // skipping the decrement would deadlock it — fail loudly.
            eprintln!("qsc-pool worker {slot} panicked; aborting");
            std::process::abort();
        }
        let mut state = shared.state.lock().unwrap();
        state.running -= 1;
        if state.running == 0 {
            shared.done.notify_all();
        }
    }
}

/// Shared mutable slice handle for parallel regions whose shards write
/// provably disjoint index sets (distinct accumulator rows, distinct matrix
/// entries, distinct scratch slots).
///
/// This is the engine's replacement for `split_at_mut` in the cases where
/// the disjointness is by *value* (e.g. "each touched node appears in
/// exactly one shard") rather than by contiguous range, which the borrow
/// checker cannot express.
pub struct SyncSliceMut<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: the wrapper only hands out `&mut T` through `unsafe` accessors
// whose callers promise disjoint indices; sending/sharing the handle itself
// is no more than sending/sharing `&mut [T]` split into disjoint parts.
unsafe impl<T: Send> Send for SyncSliceMut<'_, T> {}
unsafe impl<T: Send> Sync for SyncSliceMut<'_, T> {}

impl<'a, T> SyncSliceMut<'a, T> {
    /// Wrap an exclusive slice borrow.
    pub fn new(slice: &'a mut [T]) -> Self {
        SyncSliceMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive access to element `index`.
    ///
    /// # Safety
    /// No two concurrently live references returned by this handle (from any
    /// thread) may target the same index.
    #[inline]
    #[track_caller]
    #[allow(clippy::mut_from_ref)]
    // SAFETY: soundness is delegated to the caller's disjointness promise
    // (the contract above); with the `audit` feature that promise is
    // checked at runtime by the claim below.
    pub unsafe fn get_mut(&self, index: usize) -> &mut T {
        debug_assert!(index < self.len);
        #[cfg(feature = "audit")]
        self.record_claim(index, index + 1);
        // SAFETY: `index < self.len` keeps the offset inside the wrapped
        // allocation, and the caller's contract (no concurrently live
        // reference to the same index) rules out aliasing the `&mut`.
        unsafe { &mut *self.ptr.add(index) }
    }

    /// Exclusive access to the subslice `lo..hi`.
    ///
    /// # Safety
    /// Concurrent callers must use pairwise disjoint ranges.
    #[inline]
    #[track_caller]
    #[allow(clippy::mut_from_ref)]
    // SAFETY: soundness is delegated to the caller's disjointness promise
    // (the contract above); with the `audit` feature that promise is
    // checked at runtime by the claim below.
    pub unsafe fn slice_mut(&self, lo: usize, hi: usize) -> &mut [T] {
        debug_assert!(lo <= hi && hi <= self.len);
        #[cfg(feature = "audit")]
        self.record_claim(lo, hi);
        // SAFETY: `lo <= hi <= self.len` keeps the range inside the
        // wrapped allocation, and the caller's contract (pairwise disjoint
        // concurrent ranges) rules out aliasing the returned `&mut [T]`.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo) }
    }

    /// Publish the claimed element range `[lo, hi)` to the global interval
    /// log as a byte range, aborting on cross-thread overlap. See the
    /// [`crate::audit`] module docs for the exact guarantees.
    #[cfg(feature = "audit")]
    #[track_caller]
    fn record_claim(&self, lo: usize, hi: usize) {
        let base = self.ptr as usize as u64;
        let size = std::mem::size_of::<T>() as u64;
        crate::audit::claim(base + lo as u64 * size, base + hi as u64 * size);
    }
}

/// The half-open range of chunk `index` when `len` items are split into
/// `chunks` near-equal contiguous chunks (earlier chunks take the
/// remainder). Used by every parallel region so shard boundaries are a pure
/// function of `(len, chunks)` — independent of scheduling.
#[inline]
pub fn chunk_range(len: usize, chunks: usize, index: usize) -> (usize, usize) {
    let base = len / chunks;
    let rem = len % chunks;
    let lo = index * base + index.min(rem);
    let hi = lo + base + usize::from(index < rem);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunk_ranges_tile_the_input() {
        for len in [0usize, 1, 5, 16, 97] {
            for chunks in 1usize..=9 {
                let mut next = 0usize;
                for i in 0..chunks {
                    let (lo, hi) = chunk_range(len, chunks, i);
                    assert_eq!(lo, next);
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn single_slot_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.slots(), 1);
        let counter = AtomicUsize::new(0);
        pool.run(|slot| {
            assert_eq!(slot, 0);
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn broadcast_runs_every_slot_exactly_once() {
        let pool = ThreadPool::new(4);
        for _ in 0..50 {
            let hits = [
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
                AtomicUsize::new(0),
            ];
            pool.run(|slot| {
                hits[slot].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        }
    }

    #[test]
    fn sharded_sum_matches_serial() {
        let pool = ThreadPool::new(3);
        let data: Vec<u64> = (0..1000).collect();
        let mut out = vec![0u64; 3];
        let slices = SyncSliceMut::new(&mut out);
        pool.run(|slot| {
            let (lo, hi) = chunk_range(data.len(), 3, slot);
            // SAFETY: each slot writes only its own index.
            unsafe { *slices.get_mut(slot) = data[lo..hi].iter().sum() };
        });
        assert_eq!(out.iter().sum::<u64>(), (0..1000u64).sum());
    }

    #[test]
    fn pool_survives_many_generations() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..500 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn default_threads_is_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
