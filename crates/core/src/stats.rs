//! Coloring statistics (Sec. 6.2 "Coloring Characteristics", Table 4).

use crate::partition::Partition;

/// Summary statistics of a coloring.
#[derive(Clone, Debug, PartialEq)]
pub struct ColoringStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of colors.
    pub colors: usize,
    /// Compression ratio `nodes / colors`.
    pub compression_ratio: f64,
    /// Size of the largest color.
    pub max_color_size: usize,
    /// Median color size.
    pub median_color_size: usize,
    /// Mean color size.
    pub mean_color_size: f64,
    /// Number of singleton colors.
    pub singletons: usize,
    /// Fraction of nodes living in singleton colors.
    pub singleton_node_fraction: f64,
}

/// Compute [`ColoringStats`] for a partition.
pub fn coloring_stats(p: &Partition) -> ColoringStats {
    let nodes = p.num_nodes();
    let colors = p.num_colors();
    let sizes = p.sizes();
    let max_color_size = sizes.iter().copied().max().unwrap_or(0);
    let mut sorted = sizes.clone();
    sorted.sort_unstable();
    let median_color_size = if sorted.is_empty() {
        0
    } else {
        sorted[sorted.len() / 2]
    };
    let singletons = sizes.iter().filter(|&&s| s == 1).count();
    ColoringStats {
        nodes,
        colors,
        compression_ratio: if colors == 0 {
            1.0
        } else {
            nodes as f64 / colors as f64
        },
        max_color_size,
        median_color_size,
        mean_color_size: if colors == 0 {
            0.0
        } else {
            nodes as f64 / colors as f64
        },
        singletons,
        singleton_node_fraction: if nodes == 0 {
            0.0
        } else {
            singletons as f64 / nodes as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_balanced_partition() {
        let p = Partition::from_assignment(&[0, 0, 1, 1, 2, 2]);
        let s = coloring_stats(&p);
        assert_eq!(s.nodes, 6);
        assert_eq!(s.colors, 3);
        assert_eq!(s.compression_ratio, 2.0);
        assert_eq!(s.max_color_size, 2);
        assert_eq!(s.median_color_size, 2);
        assert_eq!(s.singletons, 0);
    }

    #[test]
    fn stats_counts_singletons() {
        let p = Partition::from_assignment(&[0, 1, 2, 2, 2]);
        let s = coloring_stats(&p);
        assert_eq!(s.singletons, 2);
        assert!((s.singleton_node_fraction - 0.4).abs() < 1e-12);
        assert_eq!(s.max_color_size, 3);
    }

    #[test]
    fn stats_of_discrete_partition() {
        let p = Partition::discrete(10);
        let s = coloring_stats(&p);
        assert_eq!(s.compression_ratio, 1.0);
        assert_eq!(s.singletons, 10);
    }
}
