//! Warm-started budget sweeps over one Rothko refinement.
//!
//! The paper's headline experiments (Fig. 7/8, Tables 1–6) evaluate every
//! task at a *list* of color budgets. Re-running the pipeline per budget
//! costs `Σ_i cost(b_i)`; because Rothko only ever refines, a sweep can
//! instead thread **one** monotone refinement through every budget —
//! `cost(b_max) + Σ_i O(delta_i)` — and let downstream consumers patch
//! their state per split instead of rebuilding it:
//!
//! * the coloring layer checkpoints via [`RothkoRun::run_to_budget`]
//!   (identical partitions to fresh per-budget runs, since the greedy
//!   refinement is deterministic and only consults stopping conditions
//!   between splits);
//! * the reduction layer patches a [`crate::reduced::ReducedDelta`] (or the
//!   LP reduction's aggregate sums) per [`SplitEvent`];
//! * the solver layer warm-starts from the previous budget's solution
//!   (`qsc-flow`'s preflow reuse, `qsc-lp`'s basis reuse).
//!
//! [`ColoringSweep`] packages the first layer and the split hand-off: it
//! owns the run and calls an `on_split` visitor after every split, *in
//! lockstep*, with the partition exactly one split ahead of the visitor's
//! state — the contract `ReducedDelta::apply_split` and its siblings
//! require. The visitor is threaded into the run itself
//! ([`RothkoRun::step_toward`]), so batched runs (`RothkoConfig::batch >
//! 1`) deliver every split of a multi-split round mid-round under the same
//! contract. Budgets must be visited in non-decreasing order (a smaller
//! budget than the current color count is a no-op checkpoint).
//!
//! ```
//! use qsc_core::reduced::ReducedDelta;
//! use qsc_core::rothko::RothkoConfig;
//! use qsc_core::sweep::ColoringSweep;
//! use qsc_graph::generators::karate_club;
//!
//! let g = karate_club();
//! let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
//! let mut delta = ReducedDelta::new(&g, sweep.partition());
//! for budget in [4usize, 8, 12] {
//!     let cp = sweep.advance_to(budget, |p, ev| delta.apply_split(&g, p, ev));
//!     assert_eq!(cp.colors, budget);
//!     assert_eq!(delta.num_colors(), budget);
//! }
//! ```

use crate::partition::{Partition, PartitionEvent, SplitEvent};
use crate::rothko::{NodeChurnBatch, Rothko, RothkoConfig, RothkoRun};
use qsc_graph::delta::EdgeEvent;
use qsc_graph::Graph;

/// The state of a sweep at one budget checkpoint.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepCheckpoint {
    /// The budget that was requested.
    pub budget: usize,
    /// Colors actually reached (less than `budget` when the refinement
    /// exhausted — error target met or no splittable color left).
    pub colors: usize,
    /// Exact maximum q-error of the checkpoint's partition (maintained by
    /// the engine, no graph rescan).
    pub max_q_error: f64,
    /// Total splits performed since the sweep started.
    pub iterations: usize,
}

/// A budget-checkpointed Rothko run: the coloring layer of the warm-started
/// sweep pipeline (see the module docs).
pub struct ColoringSweep<'g> {
    run: RothkoRun<'g>,
}

impl<'g> ColoringSweep<'g> {
    /// Start a sweep on `g`. The configuration's `max_colors` acts as an
    /// overall cap; individual budgets are passed to [`Self::advance_to`].
    pub fn new(graph: &'g Graph, config: RothkoConfig) -> Self {
        ColoringSweep {
            run: Rothko::new(config).start(graph),
        }
    }

    /// The current partition.
    pub fn partition(&self) -> &Partition {
        self.run.partition()
    }

    /// Whether the refinement is exhausted (no further budget can add
    /// colors).
    pub fn is_exhausted(&self) -> bool {
        self.run.is_done()
    }

    /// Advance to `budget` colors, invoking `on_split(partition, event)`
    /// after every split — the partition is the state *after* that split,
    /// exactly one split ahead of the visitor, as incremental consumers
    /// expect. Returns the checkpoint summary.
    ///
    /// The callback is threaded *into* the run
    /// ([`RothkoRun::step_toward`]), so a batched run (`batch > 1`)
    /// delivers every split of a multi-split round mid-round, in true
    /// lockstep — the visitor never observes a partition more than one
    /// split ahead of its own state. Rounds are truncated at the budget,
    /// so checkpoints land exactly.
    pub fn advance_to<F>(&mut self, budget: usize, mut on_split: F) -> SweepCheckpoint
    where
        F: FnMut(&Partition, &SplitEvent),
    {
        while self.run.partition().num_colors() < budget {
            if !self.run.step_toward(budget, &mut on_split) {
                break;
            }
        }
        SweepCheckpoint {
            budget,
            colors: self.run.partition().num_colors(),
            max_q_error: self.run.exact_max_error(),
            iterations: self.run.iterations(),
        }
    }

    /// Thread a batch of edge events through the sweep — the dynamic-graph
    /// half of the delta vocabulary. The run's engine is patched in
    /// `O(touched)`, the compacted post-batch graph is swapped in, and the
    /// refinement re-opens (see [`RothkoRun::apply_edge_batch`]).
    ///
    /// Consumers that mirror the refinement ([`crate::reduced::ReducedDelta`],
    /// `qsc-lp`'s aggregates) take the *same* events through their own
    /// `apply_edge_batch` — the caller hands the batch to both sides, just
    /// as [`Self::advance_to`] hands them each [`SplitEvent`]. The next
    /// `advance_to` (a re-visit of the current budget is a no-op; sweeps
    /// only refine) then delivers any invariant-restoring splits in the
    /// usual lockstep.
    pub fn apply_edge_batch(&mut self, compacted: Graph, events: &[EdgeEvent]) {
        self.run.apply_edge_batch(compacted, events);
    }

    /// Thread a batch of *node* churn through the sweep (see
    /// [`RothkoRun::apply_node_batch`] for the application order).
    /// Consumers that mirror the refinement take the same batch through
    /// their own node hooks (`ReducedDelta::apply_node_insert` /
    /// `apply_node_removal` plus `apply_edge_batch` on the grown id
    /// space), exactly as with edge batches.
    pub fn apply_node_batch(&mut self, compacted: Graph, batch: &NodeChurnBatch) {
        self.run.apply_node_batch(compacted, batch);
    }

    /// Re-establish the run's (q, k) invariant after churn, delivering
    /// every split *and* (with [`RothkoConfig::coarsen`]) merge to
    /// `on_event` in lockstep — the bidirectional generalization of
    /// [`Self::advance_to`]'s visitor contract. Returns the number of
    /// operations performed.
    pub fn maintain_with<F>(&mut self, on_event: F) -> usize
    where
        F: FnMut(&Partition, &PartitionEvent),
    {
        self.run.maintain_with(on_event)
    }

    /// Consume the sweep, returning the underlying run (e.g. to `finish()`
    /// it into a [`crate::rothko::Coloring`]).
    pub fn into_run(self) -> RothkoRun<'g> {
        self.run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduced::ReducedDelta;
    use qsc_graph::generators;

    #[test]
    fn checkpoints_match_fresh_runs() {
        let g = generators::barabasi_albert(200, 3, 13);
        let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
        for budget in [5usize, 9, 17, 30] {
            let cp = sweep.advance_to(budget, |_, _| {});
            assert_eq!(cp.colors, budget);
            let fresh = Rothko::new(RothkoConfig::with_max_colors(budget)).run(&g);
            assert!(
                sweep.partition().same_as(&fresh.partition),
                "checkpoint at {budget} colors differs from a fresh run"
            );
            assert_eq!(cp.max_q_error, fresh.max_q_error);
        }
    }

    #[test]
    fn visitor_sees_every_split_in_lockstep() {
        let g = generators::barabasi_albert(120, 3, 3);
        let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
        let mut delta = ReducedDelta::new(&g, sweep.partition());
        let mut seen = 0usize;
        for budget in [4usize, 11, 20] {
            sweep.advance_to(budget, |p, ev| {
                assert_eq!(ev.child as usize + 1, p.num_colors());
                delta.apply_split(&g, p, ev);
                seen += 1;
            });
        }
        assert_eq!(seen, 19, "one split per added color");
        assert_eq!(delta.verify_against(&g, sweep.partition()), Ok(()));
    }

    #[test]
    fn exhausted_sweep_reports_short_checkpoint() {
        // A tiny graph runs out of splits before large budgets.
        let g = generators::karate_club();
        let mut sweep = ColoringSweep::new(&g, RothkoConfig::default());
        let cp = sweep.advance_to(10_000, |_, _| {});
        assert!(cp.colors < 10_000);
        assert!(sweep.is_exhausted());
        assert_eq!(cp.max_q_error, 0.0);
        // Further budgets are no-ops.
        let cp2 = sweep.advance_to(20_000, |_, _| {});
        assert_eq!(cp2.colors, cp.colors);
    }

    #[test]
    fn overall_cap_bounds_budgets() {
        let g = generators::barabasi_albert(100, 2, 7);
        let mut sweep = ColoringSweep::new(&g, RothkoConfig::with_max_colors(8));
        let cp = sweep.advance_to(50, |_, _| {});
        assert_eq!(cp.colors, 8);
    }
}
