//! The **Rothko** algorithm (Algorithm 1 of the paper): a heuristic, anytime
//! procedure for computing quasi-stable colorings.
//!
//! Computing a *maximal* q-stable coloring is NP-hard (Theorem 12), so Rothko
//! instead refines greedily: starting from the single-color partition it
//! repeatedly finds the *witness* — the pair of colors `(P_i, P_j)` with the
//! largest (optionally size-weighted) degree error — and splits the offending
//! color at the mean of its degrees towards the witness target. The process
//! stops when a target number of colors or a target maximum error is reached.
//!
//! The algorithm is *anytime*: interrupting it at any point yields a valid
//! coloring, and the longer it runs the smaller the error. [`RothkoRun`]
//! exposes the per-step interface used by the responsiveness experiment
//! (Table 6) and by interactive applications.
//!
//! Each run drives the incremental refinement engine
//! ([`IncrementalDegrees`]): the degree matrices and witness candidates are
//! built once and then *updated* after every split by touching only the
//! edges incident to the moved nodes, so a step costs `O(touched)` instead
//! of the `O(m + k²)` a from-scratch recomputation would (the seed's
//! original behaviour, still available via [`Rothko::run_reference`] for
//! equivalence tests and benchmarks).
//!
//! Witness selection scans candidates grouped by split color (the engine's
//! cache rows) rather than the interleaved pair order earlier revisions
//! used; on exact weighted ties the chosen witness can therefore differ
//! from those revisions, while all behavioral guarantees (error targets,
//! color budgets, one-color-per-step) are unchanged. The incremental and
//! reference paths share the selection code operation-for-operation, so
//! they remain bit-identical to each other.
//!
//! # Batched witness rounds
//!
//! [`RothkoConfig::batch`] sets the number of witness splits per
//! *synchronization round* (`B`). Each round refreshes the witness cache
//! once, picks the top `B` candidates — at most one per split color, which
//! is what makes the batch non-conflicting: distinct parents, so no split
//! in the round invalidates another's membership — applies them in rank
//! order, and only then synchronizes again, cutting synchronization points
//! (and witness refreshes) from `O(steps)` to `O(steps / B)`.
//!
//! Semantics versus the paper's greedy order: with `B = 1` the refinement
//! is *exactly* the greedy algorithm (pinned bit-identical to the serial
//! engine, witness sequence included). With `B > 1`, candidates ranked 2
//! to B were scored before the round's earlier splits landed, so they may
//! differ from what a strict re-ranking would have chosen; split
//! thresholds still read the *live* accumulator state (a candidate made
//! degenerate mid-round is skipped, not applied blindly), the error target
//! is only consulted between rounds (a round may overshoot it by up to
//! `B − 1` splits), and color budgets and iteration caps always truncate
//! the round (checkpoints land exactly). Batched checkpoint ladders are
//! budget-schedule-dependent; see [`RothkoRun::run_to_budget`].
//!
//! Consumers that mirror each split incrementally use
//! [`RothkoRun::step_with`] (or [`crate::sweep::ColoringSweep`]): the
//! callback fires *inside* the round after every split, with the partition
//! exactly one split ahead — the same lockstep contract as before, so
//! multi-split rounds need no consumer changes. [`RothkoConfig::threads`]
//! has no semantic effect at all; it only shards the engine's update
//! phases (see [`crate::q_error`]).
//!
//! # Budget sweeps
//!
//! [`RothkoRun::run_to_budget`] advances a run until the coloring has a
//! given number of colors and *keeps the run resumable*: calling it again
//! with a larger budget continues the same monotone refinement, so a sweep
//! over budgets `b_1 < b_2 < … < b_B` costs one run to `b_B` instead of `B`
//! independent runs. Because the greedy refinement is deterministic and
//! stopping conditions are only consulted between splits, the partition at
//! an intermediate budget is identical to the partition a fresh run with
//! `max_colors = b_i` would produce. [`RothkoRun::last_event`] exposes the
//! [`SplitEvent`] of the most recent split so downstream incremental
//! consumers (the reduced-graph delta, the LP reduction delta) can patch
//! their state in lockstep; [`crate::sweep::ColoringSweep`] packages this
//! into a checkpointing driver.
//!
//! # Dynamic graphs, bidirectionally
//!
//! A run also survives *graph* updates: [`RothkoRun::apply_edge_batch`]
//! takes a batch of edge insert/delete/reweight events (from
//! `qsc_graph::delta::GraphDelta`) together with the compacted post-batch
//! graph, and [`RothkoRun::apply_node_batch`] additionally absorbs node
//! insertions and removals (isolated-node inserts grow the engine's
//! accumulators, removals compact the node axis through the compaction's
//! `NodeRemap`). Both patch the engine in `O(touched)` and re-open the
//! run so [`RothkoRun::maintain`] can re-establish the configured (q, k)
//! invariant — *from both sides*: splitting where the batch pushed the
//! error above the target, and, with [`RothkoConfig::coarsen`], merging
//! color pairs whose provable post-merge q-error bound fits well inside
//! it (a hysteresis band at half the target keeps churn from thrashing
//! freshly merged colors), so long-lived maintained runs shrink `k` back
//! when churn lowers the error instead of only ever refining. Because the
//! patched engine state equals a freshly built engine on the compacted
//! graph (exactly so for exactly-representable weights), the maintenance
//! splits *and merges* are bit-identical to what a fresh run *started
//! from the same coloring* would do; `bench_dynamic` records the
//! resulting maintain-vs-recompute speedups under sustained edge and
//! node churn. [`RothkoRun::maintain_with`] delivers every operation as
//! a [`PartitionEvent`] in lockstep for downstream incremental consumers.

use crate::kernels;
use crate::parallel::default_threads;
use crate::partition::{ColorId, Partition, PartitionEvent, SplitEvent};
use crate::q_error::{
    pick_merge_scratch, pick_witnesses_scratch, q_error_report, DegreeMatrices, EngineSnapshot,
    IncrementalDegrees, WitnessCandidate,
};
use crate::storage::StorageMode;
use qsc_graph::delta::{EdgeEvent, NodeRemap};
use qsc_graph::{Graph, NodeId};

/// The graph a [`RothkoRun`] refines: borrowed at start, owned after the
/// first [`RothkoRun::apply_edge_batch`] swapped in a compacted successor
/// (the caller's original graph no longer describes the refined state).
enum GraphStore<'g> {
    Borrowed(&'g Graph),
    Owned(Box<Graph>),
}

impl GraphStore<'_> {
    #[inline]
    fn get(&self) -> &Graph {
        match self {
            GraphStore::Borrowed(g) => g,
            GraphStore::Owned(g) => g,
        }
    }
}

/// How to pick the split threshold inside the witness color.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SplitMean {
    /// Split at the arithmetic mean of the degrees (the paper's default).
    #[default]
    Arithmetic,
    /// Split at the geometric mean of the positive degrees. The paper notes
    /// this yields more balanced splits on scale-free graphs, where the
    /// arithmetic mean is dragged far above the median degree.
    Geometric,
}

/// Configuration of the Rothko algorithm.
#[derive(Clone, Debug)]
pub struct RothkoConfig {
    /// Stop when the coloring reaches this many colors (the paper's `n`).
    pub max_colors: usize,
    /// Stop when the maximum q-error drops to this value or below (the
    /// paper's `ε`).
    pub target_error: f64,
    /// Weight exponent for the *source* color size in the witness choice
    /// (the paper's `α`).
    pub alpha: f64,
    /// Weight exponent for the *target* color size in the witness choice
    /// (the paper's `β`).
    pub beta: f64,
    /// Split-threshold rule.
    pub split_mean: SplitMean,
    /// Optional initial coloring to refine (defaults to one color).
    pub initial: Option<Partition>,
    /// Hard cap on the number of refinement steps (safety valve; `None`
    /// means "until one of the stopping conditions is met").
    pub max_iterations: Option<usize>,
    /// Worker threads for the incremental engine's sharded split/refresh
    /// phases. `None` reads the `QSC_THREADS` environment variable
    /// (defaulting to 1); results are bit-identical for every value.
    pub threads: Option<usize>,
    /// Witness splits per synchronization round (the batch size `B`). Each
    /// round refreshes the witness cache once, picks the top `B` candidates
    /// with *distinct* split colors, applies all of them, and only then
    /// synchronizes again — cutting synchronization points from `O(steps)`
    /// to `O(steps / B)`. `B = 1` is exactly the paper's greedy order;
    /// larger batches may pick splits the strict greedy order would have
    /// re-ranked mid-round (see the module docs). Must be at least 1.
    pub batch: usize,
    /// Allow [`RothkoRun::maintain`] to *coarsen*: when the maintained
    /// error sits at or below `target_error`, greedily merge the color pair
    /// with the smallest post-merge q-error bound while that bound stays
    /// within the target (see [`IncrementalDegrees::pick_merge`]), so
    /// long-lived maintained runs shrink `k` back when churn lowers the
    /// error instead of only ever refining. Off by default — one-shot runs
    /// and budget sweeps are monotone refinements.
    pub coarsen: bool,
    /// Relax the canonical summation order in the witness-split threshold
    /// scan (see [`crate::kernels::gather_stats_fast`]): same values up to
    /// float associativity, but the reduction order is unspecified, so runs
    /// are **excluded from the bit-identity determinism contract**
    /// (colorings may differ in threshold-tie cases between builds). Off by
    /// default; only opt in for throughput measurements — `bench_kernels`
    /// records the comparison.
    pub fast_math: bool,
    /// Accumulator storage for the incremental engine (see
    /// [`StorageMode`]): dense `n × k` matrices, tiered sparse rows, or the
    /// default `Auto` density heuristic (dense until the projected dense
    /// footprint crosses the [`crate::storage::AUTO_DENSE_BYTES`] wall on a
    /// sufficiently sparse graph). Every mode produces bit-identical
    /// colorings, witness sequences and error values — the knob trades
    /// resident bytes against the dense rows' streaming scans.
    pub storage: StorageMode,
}

impl Default for RothkoConfig {
    fn default() -> Self {
        RothkoConfig {
            max_colors: usize::MAX,
            target_error: 0.0,
            alpha: 0.0,
            beta: 0.0,
            split_mean: SplitMean::Arithmetic,
            initial: None,
            max_iterations: None,
            threads: None,
            batch: 1,
            coarsen: false,
            fast_math: false,
            storage: StorageMode::Auto,
        }
    }
}

impl RothkoConfig {
    /// Stop at `max_colors` colors (no error target).
    pub fn with_max_colors(max_colors: usize) -> Self {
        RothkoConfig {
            max_colors,
            ..Default::default()
        }
    }

    /// Refine until the maximum q-error is at most `q` (no color cap).
    pub fn with_target_error(q: f64) -> Self {
        RothkoConfig {
            target_error: q,
            ..Default::default()
        }
    }

    /// The weighting the paper uses for max-flow problems: `α = β = 0`
    /// (only the total capacity between colors matters, not their sizes).
    pub fn for_max_flow(max_colors: usize) -> Self {
        RothkoConfig {
            max_colors,
            alpha: 0.0,
            beta: 0.0,
            ..Default::default()
        }
    }

    /// The weighting the paper uses for linear programs: `α = 1, β = 0`
    /// (prioritize splitting colors that cover many rows).
    pub fn for_linear_program(max_colors: usize) -> Self {
        RothkoConfig {
            max_colors,
            alpha: 1.0,
            beta: 0.0,
            ..Default::default()
        }
    }

    /// The weighting the paper uses for betweenness centrality: `α = β = 1`
    /// (the number of paths depends on both color sizes).
    pub fn for_centrality(max_colors: usize) -> Self {
        RothkoConfig {
            max_colors,
            alpha: 1.0,
            beta: 1.0,
            split_mean: SplitMean::Geometric,
            ..Default::default()
        }
    }

    /// Builder-style setter for the split rule.
    pub fn split_mean(mut self, mean: SplitMean) -> Self {
        self.split_mean = mean;
        self
    }

    /// Builder-style setter for the error target.
    pub fn target_error(mut self, q: f64) -> Self {
        self.target_error = q;
        self
    }

    /// Builder-style setter for the witness weights.
    pub fn weights(mut self, alpha: f64, beta: f64) -> Self {
        self.alpha = alpha;
        self.beta = beta;
        self
    }

    /// Builder-style setter for the initial partition.
    pub fn initial(mut self, p: Partition) -> Self {
        self.initial = Some(p);
        self
    }

    /// Builder-style setter for the engine worker-thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builder-style setter for the witness batch size `B` (clamped to at
    /// least 1).
    pub fn batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Builder-style setter for bidirectional maintenance (see
    /// [`Self::coarsen`] — the field).
    pub fn coarsen(mut self, coarsen: bool) -> Self {
        self.coarsen = coarsen;
        self
    }

    /// Builder-style setter for the relaxed-summation mode (see
    /// [`Self::fast_math`] — the field). Off by default.
    pub fn fast_math(mut self, fast_math: bool) -> Self {
        self.fast_math = fast_math;
        self
    }

    /// Builder-style setter for the engine's accumulator storage mode (see
    /// [`Self::storage`] — the field). `Auto` by default.
    pub fn storage(mut self, storage: StorageMode) -> Self {
        self.storage = storage;
        self
    }
}

/// One round of *node* churn for [`RothkoRun::apply_node_batch`]: the batch
/// a `qsc_graph::delta::GraphDelta` produced between two compactions, plus
/// the color assignments for the inserted nodes. The application order is
/// fixed: inserts grow the id space first, the edge events (which may
/// reference both fresh and soon-to-be-removed nodes, and always contain
/// the removals' incident-edge deletes) apply over the grown pre-compaction
/// id space, and the removals + renumbering land last.
#[derive(Clone, Debug)]
pub struct NodeChurnBatch {
    /// Colors for the nodes appended in order (node `old_n + i` joins
    /// `inserted_colors[i]`).
    pub inserted_colors: Vec<ColorId>,
    /// The edge events of the batch, in mutation order, over the grown
    /// pre-compaction id space (from `GraphDelta::drain_events`).
    pub edge_events: Vec<EdgeEvent>,
    /// The removed nodes (pre-compaction ids; their colors are read from
    /// the partition before the renumbering).
    pub removed: Vec<NodeId>,
    /// The renumbering the graph compaction produced
    /// (`GraphDelta::compact_renumber`).
    pub remap: NodeRemap,
}

/// The result of a Rothko run: a coloring plus its quality metrics.
#[derive(Clone, Debug)]
pub struct Coloring {
    /// The computed partition.
    pub partition: Partition,
    /// The maximum q-error of the partition (smallest `q` such that it is
    /// `q`-stable).
    pub max_q_error: f64,
    /// Mean q-error over color pairs with edges.
    pub mean_q_error: f64,
    /// Number of split steps performed.
    pub iterations: usize,
}

impl Coloring {
    /// Compression ratio `n : k`.
    pub fn compression_ratio(&self) -> f64 {
        if self.partition.num_colors() == 0 {
            return 1.0;
        }
        self.partition.num_nodes() as f64 / self.partition.num_colors() as f64
    }
}

/// A [`RothkoRun`]'s complete resumable state, captured by
/// [`RothkoRun::snapshot`] and restored by [`RothkoRun::from_snapshot`] —
/// what the persistence layer writes into a checkpoint alongside the
/// graph and config.
///
/// Holds the partition (member order included — split scans walk members
/// in stored order, so order is semantic), the engine state, and the
/// run's progress counters. The last-round diagnostics
/// ([`RothkoRun::last_round_events`] / witnesses) and the degree scratch
/// are *not* captured: they never influence future steps, and a restored
/// run reports an empty last round until it performs one.
#[derive(Clone, Debug)]
pub struct RunSnapshot {
    /// The coloring, with exact member order.
    pub partition: Partition,
    /// Engine state (`None` for from-scratch reference runs).
    pub engine: Option<EngineSnapshot>,
    /// Split count so far.
    pub iterations: usize,
    /// Coarsening-merge count so far.
    pub merges: usize,
    /// Max q-error observed at the start of the last step.
    pub last_max_error: f64,
    /// Whether the run has reached a stopping condition.
    pub done: bool,
}

/// The Rothko quasi-stable coloring algorithm.
#[derive(Clone, Debug, Default)]
pub struct Rothko {
    config: RothkoConfig,
}

impl Rothko {
    /// Create a runner with the given configuration.
    pub fn new(config: RothkoConfig) -> Self {
        Rothko { config }
    }

    /// Run the algorithm to completion on `g`.
    pub fn run(&self, g: &Graph) -> Coloring {
        self.start(g).run_to_completion()
    }

    /// Start an anytime run on `g`; call [`RothkoRun::step`] to advance.
    pub fn start<'g>(&self, g: &'g Graph) -> RothkoRun<'g> {
        RothkoRun::new(g, self.config.clone(), false)
    }

    /// Run to completion recomputing [`DegreeMatrices`] from the graph on
    /// every step (the seed's original `O(k·m + k³)` behaviour — no engine
    /// is built at all). Witness selection mirrors the incremental path
    /// operation-for-operation, so for graphs with exactly representable
    /// weights the result is bit-identical to [`Self::run`]; used by
    /// equivalence tests and the incremental-vs-scratch benchmark.
    pub fn run_reference(&self, g: &Graph) -> Coloring {
        self.start_reference(g).run_to_completion()
    }

    /// Start a from-scratch (non-incremental) run; see
    /// [`Self::run_reference`].
    pub fn start_reference<'g>(&self, g: &'g Graph) -> RothkoRun<'g> {
        RothkoRun::new(g, self.config.clone(), true)
    }
}

/// An in-progress, resumable Rothko run.
pub struct RothkoRun<'g> {
    graph: GraphStore<'g>,
    config: RothkoConfig,
    partition: Partition,
    /// The incremental engine (`None` in from-scratch reference mode,
    /// which recomputes [`DegreeMatrices`] from the graph each round — the
    /// seed's original per-step cost model).
    engine: Option<IncrementalDegrees>,
    /// Dense per-node degree scratch reused across steps by
    /// [`Self::split_at_mean`] (no per-step allocation).
    deg_scratch: Vec<f64>,
    iterations: usize,
    /// Merges performed by coarsening maintenance (separate from the split
    /// count in `iterations`).
    merges: usize,
    last_max_error: f64,
    /// The splits of the most recent synchronization round, in application
    /// order (each event's `moved_nodes` vector is moved here, not cloned,
    /// so keeping them costs nothing on the hot path), plus the witnesses
    /// that caused them.
    round_events: Vec<SplitEvent>,
    round_witnesses: Vec<WitnessCandidate>,
    done: bool,
}

impl<'g> RothkoRun<'g> {
    fn new(graph: &'g Graph, config: RothkoConfig, from_scratch: bool) -> Self {
        let n = graph.num_nodes();
        assert!(config.batch >= 1, "batch size must be at least 1");
        let partition = match &config.initial {
            Some(p) => {
                assert_eq!(p.num_nodes(), n, "initial partition size mismatch");
                p.clone()
            }
            None => Partition::unit(n),
        };
        let engine = if from_scratch {
            None
        } else {
            let threads = config.threads.unwrap_or_else(default_threads);
            // The color budget doubles as the density hint for `Auto`
            // storage resolution (capped inside `new_with_storage`).
            let mut engine = IncrementalDegrees::new_with_storage(
                graph,
                &partition,
                threads,
                config.storage,
                config.max_colors,
            );
            // A modest finite color budget is a capacity hint: allocate
            // the accumulator rows and summary matrices once instead of
            // regrowing them several times mid-run. Large or unbounded
            // budgets keep the default geometric growth — the run may
            // stop far short of them (error target met, refinement
            // exhausted), and pre-reserving n × budget accumulators up
            // front would turn that early stop into a memory cliff.
            const RESERVE_BUDGET_LIMIT: usize = 4096;
            if config.max_colors <= RESERVE_BUDGET_LIMIT {
                engine.reserve_colors(config.max_colors);
            }
            Some(engine)
        };
        let done = n == 0;
        RothkoRun {
            graph: GraphStore::Borrowed(graph),
            config,
            partition,
            engine,
            deg_scratch: vec![0.0; n],
            iterations: 0,
            merges: 0,
            last_max_error: f64::INFINITY,
            round_events: Vec::new(),
            round_witnesses: Vec::new(),
            done,
        }
    }

    /// The current coloring.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The run's incremental engine (`None` in from-scratch reference
    /// mode) — read-only access for instrumentation like `bench_memory`'s
    /// [`IncrementalDegrees::resident_bytes`] accounting.
    pub fn engine(&self) -> Option<&IncrementalDegrees> {
        self.engine.as_ref()
    }

    /// Maximum q-error observed at the start of the last step (∞ before the
    /// first step).
    pub fn current_error(&self) -> f64 {
        self.last_max_error
    }

    /// Number of splits performed so far.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of coarsening merges performed so far (only ever non-zero
    /// for maintained runs with [`RothkoConfig::coarsen`]).
    pub fn merges(&self) -> usize {
        self.merges
    }

    /// Whether the run has reached a stopping condition.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The graph this run refines (the compacted post-batch graph after
    /// an [`Self::apply_edge_batch`]).
    pub fn graph(&self) -> &Graph {
        self.graph.get()
    }

    /// The configuration this run was started with (the persistence layer
    /// serializes it next to the run state so a restore can rebuild the
    /// run without out-of-band knowledge).
    pub fn config(&self) -> &RothkoConfig {
        &self.config
    }

    /// Capture the run's complete resumable state; see [`RunSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> RunSnapshot {
        RunSnapshot {
            partition: self.partition.clone(),
            engine: self.engine.as_ref().map(IncrementalDegrees::snapshot),
            iterations: self.iterations,
            merges: self.merges,
            last_max_error: self.last_max_error,
            done: self.done,
        }
    }

    /// Rebuild a run from a snapshot plus the graph and config it was
    /// captured with, bit-identical in all future behaviour to the run
    /// that produced it (same splits, witnesses, q-error bits, and
    /// maintenance events — the determinism contract).
    ///
    /// The graph is taken by value (a restore owns its graph; there is no
    /// borrowed original), so the returned run is `'static`. The engine's
    /// thread pool is rebuilt from `config.threads` exactly as
    /// [`Rothko::start`] would, including the capacity pre-reservation
    /// for modest color budgets — restored engines have the same stride
    /// as freshly built ones.
    ///
    /// # Panics
    /// If the snapshot's dimensions disagree with the graph (the
    /// persistence layer validates untrusted bytes before constructing a
    /// snapshot; this is a backstop against programmer error).
    #[must_use]
    pub fn from_snapshot(
        graph: Graph,
        config: RothkoConfig,
        snap: &RunSnapshot,
    ) -> RothkoRun<'static> {
        let n = graph.num_nodes();
        assert!(config.batch >= 1, "batch size must be at least 1");
        assert_eq!(
            snap.partition.num_nodes(),
            n,
            "snapshot partition does not match graph"
        );
        let engine = snap.engine.as_ref().map(|e| {
            assert_eq!(e.n, n, "snapshot engine does not match graph");
            assert_eq!(
                e.k,
                snap.partition.num_colors(),
                "snapshot engine does not match partition"
            );
            let threads = config.threads.unwrap_or_else(default_threads);
            let mut engine = IncrementalDegrees::from_snapshot(e, threads);
            const RESERVE_BUDGET_LIMIT: usize = 4096;
            if config.max_colors <= RESERVE_BUDGET_LIMIT {
                engine.reserve_colors(config.max_colors);
            }
            engine
        });
        RothkoRun {
            graph: GraphStore::Owned(Box::new(graph)),
            config,
            partition: snap.partition.clone(),
            engine,
            deg_scratch: vec![0.0; n],
            iterations: snap.iterations,
            merges: snap.merges,
            last_max_error: snap.last_max_error,
            round_events: Vec::new(),
            round_witnesses: Vec::new(),
            done: snap.done,
        }
    }

    /// The [`SplitEvent`] of the most recent successful split, or `None`
    /// before the first split. Incremental consumers that only ever run
    /// with `batch = 1` read this after every step; batched consumers use
    /// [`Self::last_round_events`] or the lockstep callback of
    /// [`Self::step_with`] instead.
    pub fn last_event(&self) -> Option<&SplitEvent> {
        self.round_events.last()
    }

    /// All splits of the most recent synchronization round that performed
    /// any, in application order (at most `batch` of them).
    pub fn last_round_events(&self) -> &[SplitEvent] {
        &self.round_events
    }

    /// The witnesses that caused the most recent round's splits, parallel
    /// to [`Self::last_round_events`].
    pub fn last_round_witnesses(&self) -> &[WitnessCandidate] {
        &self.round_witnesses
    }

    /// Perform one synchronization round: up to `batch` witness splits
    /// against one shared witness refresh. Returns `true` if at least one
    /// split was performed, `false` if the run is finished (stopping
    /// condition reached or no further split possible). With the default
    /// `batch = 1` this is exactly one greedy refinement step.
    pub fn step(&mut self) -> bool {
        self.round_bounded(self.config.max_colors, |_, _| {})
    }

    /// Like [`Self::step`], but invokes `on_split(partition, event)` after
    /// every split inside the round — the partition is the state
    /// immediately *after* that split, exactly one split ahead of the
    /// visitor's state, which is the lockstep contract incremental
    /// consumers ([`crate::reduced::ReducedDelta`] and its siblings)
    /// require even when a round performs several splits.
    pub fn step_with<F>(&mut self, on_split: F) -> bool
    where
        F: FnMut(&Partition, &SplitEvent),
    {
        self.round_bounded(self.config.max_colors, on_split)
    }

    /// One synchronization round bounded by `budget` colors (for sweeps):
    /// like [`Self::step_with`], but the round never takes the coloring
    /// past `budget`, so intermediate checkpoints land exactly. Reaching
    /// an intermediate budget returns `false` without marking the run
    /// done.
    pub fn step_toward<F>(&mut self, budget: usize, on_split: F) -> bool
    where
        F: FnMut(&Partition, &SplitEvent),
    {
        self.round_bounded(budget.min(self.config.max_colors), on_split)
    }

    /// Advance the run until the coloring has at least `budget` colors (or a
    /// terminal stopping condition is hit first). Unlike reaching the
    /// configured `max_colors`, an intermediate budget is a *checkpoint*:
    /// the run stays resumable and a later call with a larger budget
    /// continues the same refinement. Returns `true` when the budget was
    /// reached, `false` when the run stopped short (error target met, no
    /// splittable color left, or the configured caps were hit).
    ///
    /// With `batch > 1` the rounds are truncated at every requested budget,
    /// so the refinement depends on the budget schedule (a batched run
    /// checkpointed at `b` then resumed need not equal a batched run driven
    /// straight past `b`); `batch = 1` checkpoints are schedule-independent
    /// exactly as before.
    pub fn run_to_budget(&mut self, budget: usize) -> bool {
        let bounded = budget.min(self.config.max_colors);
        while self.round_bounded(bounded, |_, _| {}) {}
        // Report against the *requested* budget: a request beyond the
        // configured cap (or past exhaustion) is honestly "not reached", so
        // `while run.run_to_budget(k + 1)` ladders terminate.
        self.partition.num_colors() >= budget
    }

    /// Apply a batch of edge events to the running refinement — the
    /// dynamic-graph maintenance entry point. The engine's accumulators,
    /// pair summaries and witness rows are patched in
    /// `O(events + touched entries)` (no graph traversal; see
    /// [`IncrementalDegrees::apply_edge_batch`]), the run's graph is
    /// swapped for `compacted` — the post-batch graph, e.g. from
    /// `qsc_graph::delta::GraphDelta::compact` — which the run owns from
    /// now on, and the run is re-opened: the batch may have pushed the
    /// maximum error back above the configured target.
    ///
    /// Call [`Self::maintain`] (or drive [`Self::step`] /
    /// [`Self::run_to_budget`] yourself) afterwards to re-establish the
    /// configured (q, k) invariant; only colors whose error the batch
    /// actually disturbed are re-split, because witness selection reads
    /// the patched error state. The node set and directedness must not
    /// change. Debug builds cross-check the patched engine against
    /// [`DegreeMatrices`] rebuilt from `compacted`.
    pub fn apply_edge_batch(&mut self, compacted: Graph, events: &[EdgeEvent]) {
        self.apply_edge_batches(&[events], compacted);
    }

    /// Apply a *run* of consecutive edge batches that share one
    /// compaction. Each batch's events go through the engine as its own
    /// [`Self::apply_edge_batch`]-equivalent step — the engine folds each
    /// batch separately, so the accumulator arithmetic (and therefore
    /// every restored f64 bit) matches a writer that applied the batches
    /// one call at a time. `compacted` must be the graph after *all* of
    /// them; it is swapped in once at the end. The WAL replay path leans
    /// on this to rebuild the CSR once per run of logged edge batches
    /// instead of once per batch — the graph is only read at maintenance
    /// boundaries, never between event applications.
    pub fn apply_edge_batches(&mut self, batches: &[&[EdgeEvent]], compacted: Graph) {
        assert_eq!(
            compacted.num_nodes(),
            self.partition.num_nodes(),
            "maintenance cannot change the node set"
        );
        assert_eq!(
            compacted.is_directed(),
            self.graph.get().is_directed(),
            "maintenance cannot change directedness"
        );
        if let Some(engine) = &mut self.engine {
            for events in batches {
                engine.apply_edge_batch(&self.partition, events);
            }
        }
        // Reference mode recomputes its matrices from the graph each
        // round, so swapping the graph is all it needs.
        self.graph = GraphStore::Owned(Box::new(compacted));
        self.done = self.partition.num_nodes() == 0;
        #[cfg(debug_assertions)]
        if let Some(engine) = &self.engine {
            debug_assert_eq!(
                engine.verify_against(self.graph.get(), &self.partition),
                Ok(()),
                "edge batch diverged from the compacted graph"
            );
        }
    }

    /// Apply a batch of *node* churn to the running refinement: inserts
    /// grow the partition and the engine's accumulators (fresh isolated
    /// nodes), the batch's edge events patch the engine over the grown
    /// pre-compaction id space (exactly as [`Self::apply_edge_batch`]
    /// does), and the removals + renumbering compact the node axis — all
    /// in `O(events + touched)` plus the `O(n)` axis compaction, no graph
    /// traversal. `compacted` is the post-batch graph from
    /// `GraphDelta::compact_renumber` (owned by the run from now on), and
    /// the run re-opens so [`Self::maintain`] can re-establish the (q, k)
    /// invariant — splitting where the churn raised the error, merging
    /// (with [`RothkoConfig::coarsen`]) where it lowered it.
    ///
    /// Removals must not empty a color (pick victims from colors with at
    /// least two members, or merge the color away first); directedness
    /// cannot change.
    pub fn apply_node_batch(&mut self, compacted: Graph, batch: &NodeChurnBatch) {
        assert_eq!(
            compacted.num_nodes(),
            batch.remap.new_len(),
            "compacted graph does not match the remap"
        );
        assert_eq!(
            compacted.is_directed(),
            self.graph.get().is_directed(),
            "maintenance cannot change directedness"
        );
        let first = self.partition.num_nodes() as NodeId;
        for &c in &batch.inserted_colors {
            self.partition.insert_node(c);
        }
        if let Some(engine) = &mut self.engine {
            engine.apply_node_inserts(&self.partition, first, &batch.inserted_colors);
            engine.apply_edge_batch(&self.partition, &batch.edge_events);
        }
        let removed_colors: Vec<ColorId> = batch
            .removed
            .iter()
            .map(|&v| self.partition.color_of(v))
            .collect();
        self.partition.apply_node_remap(&batch.remap);
        if let Some(engine) = &mut self.engine {
            engine.apply_node_removals(&self.partition, &batch.remap, &removed_colors);
        }
        self.deg_scratch.resize(self.partition.num_nodes(), 0.0);
        self.graph = GraphStore::Owned(Box::new(compacted));
        self.done = self.partition.num_nodes() == 0;
        #[cfg(debug_assertions)]
        if let Some(engine) = &self.engine {
            debug_assert_eq!(
                engine.verify_against(self.graph.get(), &self.partition),
                Ok(()),
                "node batch diverged from the compacted graph"
            );
        }
    }

    /// Re-establish the configured (q, k) invariant after
    /// [`Self::apply_edge_batch`] / [`Self::apply_node_batch`]: run
    /// synchronization rounds until the error target is met, the color
    /// budget or iteration cap is exhausted, or no further split is
    /// possible — then, with [`RothkoConfig::coarsen`], greedily merge
    /// color pairs whose post-merge bound stays within the target, so the
    /// invariant is kept from *both* sides. Returns the number of
    /// operations performed (splits plus merges; zero when the batch left
    /// every error within target and no merge fits).
    pub fn maintain(&mut self) -> usize {
        let before = self.iterations + self.merges;
        while self.step() {}
        if self.config.coarsen {
            self.coarsen_within_target(&mut |_, _| {});
        }
        (self.iterations + self.merges) - before
    }

    /// Like [`Self::maintain`], but delivers every operation to `on_event`
    /// as a [`PartitionEvent`] in lockstep (the partition argument is the
    /// state immediately after the event), so incremental consumers
    /// ([`crate::reduced::ReducedDelta`] and its siblings) can mirror
    /// bidirectional maintenance the same way they mirror sweep splits.
    pub fn maintain_with<F>(&mut self, mut on_event: F) -> usize
    where
        F: FnMut(&Partition, &PartitionEvent),
    {
        let before = self.iterations + self.merges;
        while self.step_with(|p, ev| on_event(p, &PartitionEvent::Split(ev.clone()))) {}
        if self.config.coarsen {
            self.coarsen_within_target(&mut on_event);
        }
        (self.iterations + self.merges) - before
    }

    /// Coarsening: while the current error sits within the target and some
    /// pair's post-merge bound stays inside the *hysteresis band*
    /// (`target · COARSEN_HYSTERESIS`), merge it. The band keeps freshly
    /// merged colors from immediately re-splitting on the next churn round
    /// — merged entries sit at half the target, so a batch has headroom
    /// before the invariant is violated; with `target == 0` only
    /// provably-exact (bound-zero) merges apply.
    ///
    /// Incremental engines run *batched validated rounds*: one `O(k³)`
    /// scan produces the ascending candidate list, and each candidate is
    /// re-validated in `O(k)` against the live state before applying (its
    /// stale bound may undershoot after earlier merges in the round), so a
    /// round of `M` merges costs one scan plus `O(M·k)` instead of `M`
    /// scans. Every applied merge's *current* bound is within the band, so
    /// the (q, k) invariant provably survives; each merge shrinks `k` and
    /// rounds repeat only while they merged something, so the loop
    /// terminates. Rounds are pure functions of the engine state, so
    /// maintained and fresh-from-checkpoint runs coarsen identically.
    /// Reference (engine-less) runs keep the strict greedy order —
    /// recomputing matrices per merge already dominates there.
    fn coarsen_within_target<F>(&mut self, on_event: &mut F) -> usize
    where
        F: FnMut(&Partition, &PartitionEvent),
    {
        /// Fraction of the error target a post-merge bound must stay
        /// within for the merge to apply (see the method docs).
        const COARSEN_HYSTERESIS: f64 = 0.5;
        let target = self.config.target_error;
        if self.partition.num_colors() < 2 || self.exact_max_error() > target {
            return 0;
        }
        let band = target * COARSEN_HYSTERESIS;
        let mut count = 0usize;
        if self.engine.is_none() {
            // Reference mode: strict greedy, one scratch pick per merge.
            while self.partition.num_colors() >= 2 {
                let m = DegreeMatrices::compute(self.graph.get(), &self.partition);
                let Some(c) = pick_merge_scratch(&m, band) else {
                    break;
                };
                let event = self.partition.merge_colors(c.winner, c.loser);
                self.merges += 1;
                count += 1;
                on_event(&self.partition, &PartitionEvent::Merge(event));
            }
            return count;
        }
        loop {
            let k = self.partition.num_colors();
            if k < 2 {
                break;
            }
            // Refresh before the scan: the candidate prefilter reads the
            // cached row errors, which the previous round's merges dirtied.
            let beta = self.config.beta;
            let engine = self.engine.as_mut().expect("engine mode");
            engine.refresh(&self.partition, beta);
            let candidates = engine.merge_candidates(band);
            if candidates.is_empty() {
                break;
            }
            // Track color movement across the round's merges: `cur_of`
            // maps a round-start color to the slot its (possibly merged)
            // class lives in now. Every merge rewrites the whole map —
            // colors at the loser slot move to the winner (including ones
            // merged there earlier this round: the mapping must be
            // transitive) and colors at the relabeled ex-last slot move to
            // the freed one. `O(k)` per merge, dwarfed by the merge itself.
            let mut cur_of: Vec<u32> = (0..k as u32).collect();
            let mut merged_this_round = 0usize;
            for c in candidates {
                let ca = cur_of[c.winner as usize];
                let cb = cur_of[c.loser as usize];
                if ca == cb {
                    continue; // already merged together this round
                }
                let (w, l) = (ca.min(cb), ca.max(cb));
                let engine = self.engine.as_ref().expect("engine mode");
                if engine.merge_bound_pair(w, l) > band {
                    continue; // stale candidate; the next round re-scans
                }
                let last = (self.partition.num_colors() - 1) as u32;
                let event = self.partition.merge_colors(w, l);
                self.engine.as_mut().expect("engine mode").apply_merge(
                    self.graph.get(),
                    &self.partition,
                    &event,
                );
                for slot in cur_of.iter_mut() {
                    if *slot == l {
                        *slot = w;
                    } else if *slot == last {
                        *slot = l;
                    }
                }
                self.merges += 1;
                count += 1;
                merged_this_round += 1;
                on_event(&self.partition, &PartitionEvent::Merge(event));
            }
            if merged_this_round == 0 {
                break;
            }
        }
        count
    }

    /// One synchronization round bounded by `max_colors` (which is at most
    /// the configured budget): refresh the witness state once, take the top
    /// candidates (at most `batch`, clamped by every remaining cap), apply
    /// them in order, notify `on_split` after each. Reaching an
    /// intermediate bound returns `false` without marking the run done, so
    /// budget sweeps can resume; terminal conditions (node count, the
    /// run's own configured budget, iteration cap, error target,
    /// unsplittable coloring) set `done`.
    fn round_bounded<F>(&mut self, max_colors: usize, mut on_split: F) -> bool
    where
        F: FnMut(&Partition, &SplitEvent),
    {
        if self.done {
            return false;
        }
        let k = self.partition.num_colors();
        let n = self.graph.get().num_nodes();
        if k >= n {
            self.done = true;
            return false;
        }
        if k >= max_colors {
            if k >= self.config.max_colors {
                self.done = true;
            }
            return false;
        }
        let mut room = self.config.batch.min(max_colors - k).min(n - k);
        if let Some(max_iter) = self.config.max_iterations {
            if self.iterations >= max_iter {
                self.done = true;
                return false;
            }
            room = room.min(max_iter - self.iterations);
        }

        let witnesses = match &mut self.engine {
            Some(engine) => {
                engine.refresh(&self.partition, self.config.beta);
                self.last_max_error = engine.max_error();
                if self.last_max_error <= self.config.target_error {
                    Vec::new()
                } else if room == 1 {
                    // The batch = 1 hot path keeps the allocation-free
                    // O(k) top-1 scan (identical selection and
                    // tie-breaking to the sorted top-B path).
                    engine
                        .pick_witness(&self.partition, self.config.alpha)
                        .into_iter()
                        .collect()
                } else {
                    engine.pick_witnesses(&self.partition, self.config.alpha, room)
                }
            }
            None => {
                // Reference mode: the seed's original per-round behaviour —
                // recompute the degree matrices from the graph, then run
                // the same row-ordered witness selection over them.
                let m = DegreeMatrices::compute(self.graph.get(), &self.partition);
                self.last_max_error = m.max_error();
                if self.last_max_error <= self.config.target_error {
                    Vec::new()
                } else {
                    pick_witnesses_scratch(
                        &m,
                        &self.partition,
                        self.config.alpha,
                        self.config.beta,
                        room,
                    )
                }
            }
        };
        if self.last_max_error <= self.config.target_error {
            self.done = true;
            return false;
        }
        if witnesses.is_empty() {
            // No splittable pair (all remaining error is inside singleton
            // colors, which cannot happen, or the graph is already stable).
            self.done = true;
            return false;
        }

        let mut any = false;
        for witness in witnesses {
            // Candidates beyond the first were ranked before this round's
            // earlier splits; their degrees are re-read from the live
            // engine state, so a candidate made degenerate mid-round is
            // skipped rather than applied blindly.
            self.fill_witness_degrees(&witness);
            if let Some(event) = self.split_at_mean(&witness) {
                if !any {
                    // Only a round that actually splits replaces the
                    // recorded round — `last_event` keeps pointing at the
                    // most recent successful split even if a later,
                    // fully-degenerate round ends the run.
                    self.round_events.clear();
                    self.round_witnesses.clear();
                }
                any = true;
                self.iterations += 1;
                self.round_witnesses.push(witness);
                self.round_events.push(event);
                let event = self.round_events.last().expect("just pushed");
                on_split(&self.partition, event);
            }
        }
        if !any {
            // Could not split any candidate (degenerate); stop rather than
            // loop forever.
            self.done = true;
            return false;
        }
        true
    }

    /// Run until a stopping condition is reached and return the coloring.
    pub fn run_to_completion(mut self) -> Coloring {
        while self.step() {}
        self.finish()
    }

    /// The exact maximum q-error of the *current* partition. In incremental
    /// mode this refreshes the engine's dirty witness rows (`O(dirty · k)`,
    /// no graph traversal); in reference mode it recomputes
    /// [`DegreeMatrices`] from the graph. Unlike [`Self::current_error`]
    /// (the error observed at the start of the last step) this reflects the
    /// partition after the last split, matching what
    /// [`crate::q_error::max_q_error`] would report up to floating-point
    /// associativity (exactly, for integer-valued weights).
    pub fn exact_max_error(&mut self) -> f64 {
        match &mut self.engine {
            Some(engine) => {
                engine.refresh(&self.partition, self.config.beta);
                engine.max_error()
            }
            None => DegreeMatrices::compute(self.graph.get(), &self.partition).max_error(),
        }
    }

    /// Stop now and package the current coloring with exact quality metrics.
    pub fn finish(self) -> Coloring {
        // Incremental mode reads the report straight off the engine's pair
        // summaries (`O(k²)`, same scan order and fold as the from-graph
        // recomputation — exactly equal on integer weights); reference mode
        // rebuilds the matrices from the graph.
        let report = match &self.engine {
            Some(engine) => engine.q_report(),
            None => q_error_report(self.graph.get(), &self.partition),
        };
        Coloring {
            partition: self.partition,
            max_q_error: report.max_q,
            mean_q_error: report.mean_q,
            iterations: self.iterations,
        }
    }

    /// Split the witness color at the configured mean of its members'
    /// degrees towards/from the other color. Falls back to the other mean
    /// and then the mid-range if the preferred threshold would produce an
    /// empty side. On success the split event is pushed into the
    /// incremental engine.
    ///
    /// The degrees are read straight from the engine's accumulators (no
    /// graph traversal) into a dense per-node scratch buffer reused across
    /// steps, so this allocates nothing on the hot path.
    /// Fill `deg_scratch` with each member's degree towards/from the
    /// witness target: read straight from the engine's accumulators in
    /// incremental mode (no graph traversal), or aggregated from the edges
    /// in reference mode (the seed's behaviour). Either way the dense
    /// per-node buffer is reused across steps, so nothing allocates.
    fn fill_witness_degrees(&mut self, w: &WitnessCandidate) {
        let members = self.partition.members(w.split_color);
        match &self.engine {
            Some(engine) => {
                for &v in members {
                    self.deg_scratch[v as usize] = if w.outgoing {
                        engine.out_degree_of(v, w.other_color)
                    } else {
                        engine.in_degree_of(v, w.other_color)
                    };
                }
            }
            None => {
                for &v in members {
                    let mut d = 0.0;
                    if w.outgoing {
                        for (t, weight) in self.graph.get().out_edges(v) {
                            if self.partition.color_of(t) == w.other_color {
                                d += weight;
                            }
                        }
                    } else {
                        for (s, weight) in self.graph.get().in_edges(v) {
                            if self.partition.color_of(s) == w.other_color {
                                d += weight;
                            }
                        }
                    }
                    self.deg_scratch[v as usize] = d;
                }
            }
        }
    }

    /// Split the witness color at the configured mean of the degrees
    /// prepared by [`Self::fill_witness_degrees`]. Falls back to the other
    /// mean and then the mid-range if the preferred threshold would produce
    /// an empty side. On success the split event has been pushed into the
    /// incremental engine (when one is attached) and is returned to the
    /// caller; `None` means the color was degenerate.
    fn split_at_mean(&mut self, w: &WitnessCandidate) -> Option<SplitEvent> {
        let members = self.partition.members(w.split_color);
        let len = members.len();
        debug_assert!(len >= 2, "witness picked a singleton color");
        // Sum + min/max in one vectorized gather pass. The deterministic
        // kernel reduces the sum through the canonical blocked tree (this
        // is where the engine's determinism pins were re-baselined when the
        // canonical order switched from the sequential fold); `fast_math`
        // swaps in the relaxed-order variant.
        let stats = if self.config.fast_math {
            kernels::gather_stats_fast(members, &self.deg_scratch)
        } else {
            kernels::gather_stats(members, &self.deg_scratch)
        };
        let (sum, min, max) = (stats.sum, stats.min, stats.max);
        if min == max {
            // Degenerate: every member has the same degree towards the
            // witness target, so no threshold can separate them. Report the
            // color as unsplittable without trying (and allocating for)
            // the three fallback thresholds.
            return None;
        }
        let arithmetic = sum / len as f64;
        let mid = (min + max) / 2.0;
        // The geometric mean needs a `ln` per positive member — by far the
        // most expensive part of the old eager scan — so it is computed
        // lazily, only when a threshold order actually reaches it. The
        // thresholds are unchanged; only when the work happens moved.
        let mut geometric: Option<f64> = None;
        let mut geometric_of = |run: &Self| {
            *geometric.get_or_insert_with(|| {
                let members = run.partition.members(w.split_color);
                let (log_sum, positive) = kernels::gather_log_stats(members, &run.deg_scratch);
                if positive == 0 {
                    arithmetic
                } else {
                    (log_sum / positive as f64).exp()
                }
            })
        };
        let order: [SplitMean; 2] = match self.config.split_mean {
            SplitMean::Arithmetic => [SplitMean::Arithmetic, SplitMean::Geometric],
            SplitMean::Geometric => [SplitMean::Geometric, SplitMean::Arithmetic],
        };
        for pick in order.into_iter().map(Some).chain([None]) {
            let threshold = match pick {
                Some(SplitMean::Arithmetic) => arithmetic,
                Some(SplitMean::Geometric) => geometric_of(self),
                None => mid,
            };
            let scratch = &self.deg_scratch;
            if let Some(event) = self
                .partition
                .split_color(w.split_color, |v| scratch[v as usize] > threshold)
            {
                if let Some(engine) = &mut self.engine {
                    engine.apply_split(self.graph.get(), &self.partition, &event);
                }
                return Some(event);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::q_error::max_q_error;
    use crate::stable::stable_coloring;
    use qsc_graph::{generators, GraphBuilder};

    #[test]
    fn karate_six_colors_matches_paper_scale() {
        // Fig. 1b: 6 colors suffice for q = 3 on the karate club.
        let g = generators::karate_club();
        let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
        assert_eq!(coloring.partition.num_colors(), 6);
        assert!(coloring.partition.validate());
        // The heuristic should reach a single-digit q at 6 colors.
        assert!(
            coloring.max_q_error <= 6.0,
            "q error too large: {}",
            coloring.max_q_error
        );
        assert_eq!(coloring.max_q_error, max_q_error(&g, &coloring.partition));
    }

    #[test]
    fn karate_leaders_get_own_color_eventually() {
        // With enough colors the high-degree leaders (nodes 0 and 33) are
        // separated from the low-degree members.
        let g = generators::karate_club();
        let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
        let p = &coloring.partition;
        let leader_color = p.color_of(0);
        let size = p.size(leader_color);
        assert!(size <= 6, "leader color unexpectedly large: {size}");
    }

    #[test]
    fn target_error_is_respected() {
        let g = generators::barabasi_albert(300, 3, 11);
        let coloring = Rothko::new(RothkoConfig::with_target_error(4.0)).run(&g);
        assert!(
            coloring.max_q_error <= 4.0,
            "expected q <= 4, got {}",
            coloring.max_q_error
        );
        assert!(coloring.partition.num_colors() < 300);
    }

    #[test]
    fn zero_error_target_reaches_stability() {
        // Running with target error 0 must produce a stable coloring (same
        // number of colors as classical color refinement or finer).
        let g = generators::karate_club();
        let coloring = Rothko::new(RothkoConfig::with_target_error(0.0)).run(&g);
        assert_eq!(coloring.max_q_error, 0.0);
        let stable = stable_coloring(&g);
        // Rothko's greedy splits cannot be coarser than the coarsest stable
        // coloring.
        assert!(coloring.partition.num_colors() >= stable.num_colors());
    }

    #[test]
    fn colored_regular_recovers_blueprint() {
        // The Fig. 2 graph has a perfect stable coloring with `groups`
        // colors; Rothko with that color budget should find a near-zero
        // error.
        let g = generators::colored_regular(10, 10, 4, 3, 5);
        let coloring = Rothko::new(RothkoConfig::with_max_colors(10)).run(&g);
        assert!(coloring.partition.num_colors() <= 10);
        assert!(
            coloring.max_q_error <= 3.0,
            "error {} too large for a block-regular graph",
            coloring.max_q_error
        );
    }

    #[test]
    fn anytime_interface_progresses() {
        let g = generators::barabasi_albert(200, 3, 3);
        let rothko = Rothko::new(RothkoConfig::with_max_colors(20));
        let mut run = rothko.start(&g);
        let mut colors_seen = vec![run.partition().num_colors()];
        while run.step() {
            colors_seen.push(run.partition().num_colors());
            assert!(run.partition().validate());
        }
        assert!(run.is_done());
        // Every step adds exactly one color.
        for w in colors_seen.windows(2) {
            assert_eq!(w[1], w[0] + 1);
        }
        let final_coloring = run.finish();
        assert_eq!(final_coloring.partition.num_colors(), 20);
        assert_eq!(final_coloring.iterations, 19);
    }

    #[test]
    fn fig6_two_maximal_colorings_graph() {
        // Fig. 6: top rows of n, n+1, n+2 nodes each pointing from a distinct
        // bottom node. With q = 1 the bottom nodes {1,2,3} cannot all share a
        // color but a 2/1 split is enough.
        let n = 5usize;
        let total = 3 + (n) + (n + 1) + (n + 2);
        let mut b = GraphBuilder::new_directed(total);
        let mut next = 3u32;
        for (bottom, count) in [(0u32, n), (1u32, n + 1), (2u32, n + 2)] {
            for _ in 0..count {
                b.add_edge(bottom, next, 1.0);
                next += 1;
            }
        }
        let g = b.build();
        let coloring = Rothko::new(RothkoConfig::with_target_error(1.0)).run(&g);
        assert!(coloring.max_q_error <= 1.0);
        // Bottom nodes must be split into exactly two colors ({1,2},{3} or
        // {1},{2,3}); top nodes can all share one color.
        let bottom_colors: std::collections::HashSet<u32> = [0, 1, 2]
            .iter()
            .map(|&v| coloring.partition.color_of(v))
            .collect();
        assert_eq!(bottom_colors.len(), 2);
    }

    #[test]
    fn geometric_split_balances_scale_free() {
        let g = generators::barabasi_albert(500, 3, 17);
        let arith =
            Rothko::new(RothkoConfig::with_max_colors(8).split_mean(SplitMean::Arithmetic)).run(&g);
        let geo =
            Rothko::new(RothkoConfig::with_max_colors(8).split_mean(SplitMean::Geometric)).run(&g);
        // Both are valid 8-color colorings.
        assert_eq!(arith.partition.num_colors(), 8);
        assert_eq!(geo.partition.num_colors(), 8);
        // The geometric split should produce a more balanced partition: its
        // largest color should not be larger than the arithmetic one's by
        // more than a small factor (typically it is much smaller).
        let max_arith = arith.partition.sizes().into_iter().max().unwrap();
        let max_geo = geo.partition.sizes().into_iter().max().unwrap();
        assert!(
            max_geo <= max_arith + 50,
            "geometric {max_geo} vs arithmetic {max_arith}"
        );
    }

    #[test]
    fn run_to_budget_checkpoints_are_resumable() {
        let g = generators::barabasi_albert(200, 3, 3);
        let rothko = Rothko::new(RothkoConfig::with_max_colors(20));
        let mut run = rothko.start(&g);
        // Intermediate budgets are checkpoints, not terminal stops.
        assert!(run.run_to_budget(7));
        assert_eq!(run.partition().num_colors(), 7);
        assert!(!run.is_done());
        assert!(run.run_to_budget(13));
        assert_eq!(run.partition().num_colors(), 13);
        // A checkpointed run equals a fresh run at the same budget.
        let fresh = Rothko::new(RothkoConfig::with_max_colors(13)).run(&g);
        assert!(run.partition().same_as(&fresh.partition));
        // The configured cap is terminal, and requests beyond it report
        // "not reached" so +1 ladders terminate.
        assert!(run.run_to_budget(20));
        assert!(run.is_done());
        assert!(!run.run_to_budget(21));
        assert_eq!(run.partition().num_colors(), 20);
    }

    #[test]
    fn run_to_budget_ladder_terminates_at_cap() {
        let g = generators::karate_club();
        let rothko = Rothko::new(RothkoConfig::with_max_colors(6));
        let mut run = rothko.start(&g);
        let mut checkpoints = 0;
        while run.run_to_budget(run.partition().num_colors() + 1) {
            checkpoints += 1;
            assert!(checkpoints <= 34, "ladder failed to terminate");
        }
        assert_eq!(run.partition().num_colors(), 6);
        assert_eq!(checkpoints, 5);
    }

    #[test]
    fn last_event_reflects_each_split() {
        let g = generators::karate_club();
        let rothko = Rothko::new(RothkoConfig::with_max_colors(8));
        let mut run = rothko.start(&g);
        assert!(run.last_event().is_none());
        let mut expected_child = 1u32;
        while run.step() {
            let event = run.last_event().expect("split recorded");
            assert_eq!(event.child, expected_child);
            assert_eq!(
                run.partition().members(event.child),
                event.moved_nodes.as_slice()
            );
            expected_child += 1;
        }
    }

    #[test]
    fn respects_initial_partition() {
        let g = generators::karate_club();
        let init = Partition::from_assignment(
            &(0..34)
                .map(|v| if v == 0 { 0 } else { 1 })
                .collect::<Vec<_>>(),
        );
        let config = RothkoConfig::with_max_colors(5).initial(init.clone());
        let coloring = Rothko::new(config).run(&g);
        assert!(coloring.partition.is_refinement_of(&init));
        assert_eq!(coloring.partition.num_colors(), 5);
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let empty = qsc_graph::Graph::empty(0, false);
        let c = Rothko::new(RothkoConfig::with_max_colors(5)).run(&empty);
        assert_eq!(c.partition.num_colors(), 0);

        let single = qsc_graph::Graph::empty(1, false);
        let c = Rothko::new(RothkoConfig::with_max_colors(5)).run(&single);
        assert_eq!(c.partition.num_colors(), 1);
        assert_eq!(c.max_q_error, 0.0);
    }

    #[test]
    fn max_iterations_caps_work() {
        let g = generators::barabasi_albert(300, 3, 23);
        let config = RothkoConfig {
            max_colors: usize::MAX,
            target_error: 0.0,
            max_iterations: Some(5),
            ..Default::default()
        };
        let c = Rothko::new(config).run(&g);
        assert_eq!(c.iterations, 5);
        assert_eq!(c.partition.num_colors(), 6);
    }

    #[test]
    fn directed_graph_witnesses_both_directions() {
        // A directed graph where the only error is in the incoming
        // direction: two sinks with different in-degrees.
        let mut b = GraphBuilder::new_directed(6);
        // Sources 0..3 all point to sink 4; source 3 also points to sink 5.
        b.add_edge(0, 4, 1.0);
        b.add_edge(1, 4, 1.0);
        b.add_edge(2, 4, 1.0);
        b.add_edge(3, 4, 1.0);
        b.add_edge(3, 5, 1.0);
        let g = b.build();
        let c = Rothko::new(RothkoConfig::with_target_error(0.0)).run(&g);
        assert_eq!(c.max_q_error, 0.0);
        // Sinks 4 and 5 must end in different colors (different in-degrees),
        // and source 3 must differ from sources 0-2 (different out-degree).
        assert_ne!(c.partition.color_of(4), c.partition.color_of(5));
        assert_ne!(c.partition.color_of(3), c.partition.color_of(0));
        assert_eq!(c.partition.color_of(0), c.partition.color_of(1));
    }
}
