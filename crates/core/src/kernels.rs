//! Engine lane kernels: the vectorized hot-path substrate of the
//! incremental refinement engine.
//!
//! The shared f64 primitives (blocked sums with the canonical reduction
//! tree, `fold_add`/`fold_sub` column folds, sequential-semantics min/max
//! scans) live in [`qsc_linalg::lanes`] — re-exported here — so the LP
//! solvers and the engine reduce through literally the same code. This
//! module adds the engine-specific shapes on top:
//!
//! * [`fold_minmax_row`] — fold one member's accumulator row into per-color
//!   min/max/attainer/nonzero aggregates. This is *the* member-axis rescan
//!   kernel: the dense serial scan, the sparse degrees-only rebuild and the
//!   sharded workers (symmetric and directed modes) all route through it,
//!   which both deduplicates the scan logic and hands LLVM a branch-free
//!   column loop it can vectorize (compare + blend per lane).
//! * [`fold_minmax_sparse_row`] — the same member-axis fold over a tiered
//!   [`RowRep`] accumulator row (sparse engines): nonzero entries fold with
//!   real attainers, and [`fold_zero_tail`] closes the scan by folding one
//!   `0.0` (attainer [`NO_ARG`]) into every column that some member left
//!   implicit — values bit-identical to the dense fold.
//! * [`scan_gather_column`] — min/max (with first-attainer witnesses and a
//!   nonzero count) of a strided accumulator column over a member list; the
//!   shared kernel of every entry rescan. [`scan_gather_column_sparse`] is
//!   the tiered-row form, bit-identical including attainers (every member
//!   contributes a value, absent entries read `0.0`).
//! * [`scan_gather_columns`] — the grouped form: several queued columns of
//!   one member axis folded in a single member pass (each accumulator row
//!   is loaded once), bit-identical per column to the one-column scan. The
//!   parent-axis repair batch after a split runs through this.
//!   [`scan_gather_columns_sparse`] is the tiered-row form: a merge-join of
//!   each member's sorted entries against the sorted queued columns,
//!   `O(nnz + t)` per member instead of `O(t)` random row probes —
//!   bit-identical per column (including attainers) to the dense gather.
//! * [`row_err_argmax`] — max spread `max − min` over a summary row with
//!   the sequential first-attainer index; the β = 0 witness-row scan.
//! * [`prefetch_read`] — best-effort L1 prefetch hint for pointer-chasing
//!   loops (the split apply phase); never changes results.
//! * [`gather_stats`] / [`gather_stats_fast`] — sum + min/max of gathered
//!   per-node values (the witness-split degree scan); the deterministic
//!   variant sums through the canonical blocked tree, the fast variant
//!   (behind `RothkoConfig::fast_math`) relaxes the reduction order.
//!
//! ## Determinism
//!
//! The min/max kernels keep *exact sequential scan semantics*: strict
//! compares in member order, first attainer wins ties, expressed as
//! branch-free selects (`if lt { x } else { m }` compiles to
//! compare+blend/cmov, never reorders the scan). They are bit-identical to
//! the scalar loops they replaced — `tests/tests/kernels.rs` pins this on
//! adversarial floats (±0.0, subnormals, ties). Sums follow the canonical
//! blocked tree documented in [`qsc_linalg::lanes`]; the engine's
//! accumulator algebra is unchanged (per-entry scalar adds), so colorings
//! and witness sequences are unaffected by the tree — only the
//! witness-split *threshold* sum switched order, re-baselining the
//! determinism pins once (see `rothko::RothkoRun::split_at_mean`).
//!
//! ## Bounds checks
//!
//! Blocked loops assert their shape once at entry (`debug_assert!`) and
//! reslice each operand block to `[..LANES]` before the unrolled body, so
//! the lane accesses compile without per-element bounds checks (one slice
//! check per 8-wide block remains — the spot-check notes in
//! [`qsc_linalg::lanes`] cover the emitted assembly).

pub use qsc_linalg::lanes::{
    combine_tree, dot, dot_fast, fold_add, fold_sub, max_abs, min_max, sum, sum_fast, LANES,
};

use crate::storage::RowRep;

/// Sentinel for "no tracked attainer" in extremum-witness aggregates.
pub const NO_ARG: u32 = u32::MAX;

/// Best-effort prefetch of the cache line holding `data[idx]` into L1.
///
/// A pure scheduling hint for pointer-chasing hot loops (the split apply
/// phase walks accumulator rows in an order the hardware prefetcher cannot
/// predict): no-op when the index is out of bounds or the target has no
/// stable prefetch intrinsic. Never changes results.
#[inline(always)]
pub fn prefetch_read<T>(data: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    if idx < data.len() {
        // SAFETY: the index is in bounds and prefetch has no side effects
        // on memory state visible to the program.
        unsafe {
            core::arch::x86_64::_mm_prefetch(
                data.as_ptr().add(idx) as *const i8,
                core::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (data, idx);
    }
}

/// Fold one member's accumulator row into per-color aggregates: for each
/// column `j`, count nonzeros and keep the strict min/max with `u` recorded
/// as the attainer when the strict compare fires (first attainer in call
/// order wins ties — identical to the scalar scan, bit for bit).
///
/// `row` is the member's dense accumulator row truncated to the live `k`
/// columns; the five aggregate slices must hold at least `row.len()`
/// entries each.
pub fn fold_minmax_row(
    u: u32,
    row: &[f64],
    mins: &mut [f64],
    maxs: &mut [f64],
    arg_mins: &mut [u32],
    arg_maxs: &mut [u32],
    nzs: &mut [u32],
) {
    let k = row.len();
    debug_assert!(
        mins.len() >= k
            && maxs.len() >= k
            && arg_mins.len() >= k
            && arg_maxs.len() >= k
            && nzs.len() >= k
    );
    let mut j = 0;
    while j + LANES <= k {
        let r = &row[j..j + LANES];
        let mn = &mut mins[j..j + LANES];
        let mx = &mut maxs[j..j + LANES];
        let amn = &mut arg_mins[j..j + LANES];
        let amx = &mut arg_maxs[j..j + LANES];
        let nz = &mut nzs[j..j + LANES];
        for l in 0..LANES {
            let o = r[l];
            nz[l] += u32::from(o != 0.0);
            let lt = o < mn[l];
            mn[l] = if lt { o } else { mn[l] };
            amn[l] = if lt { u } else { amn[l] };
            let gt = o > mx[l];
            mx[l] = if gt { o } else { mx[l] };
            amx[l] = if gt { u } else { amx[l] };
        }
        j += LANES;
    }
    while j < k {
        let o = row[j];
        nzs[j] += u32::from(o != 0.0);
        if o < mins[j] {
            mins[j] = o;
            arg_mins[j] = u;
        }
        if o > maxs[j] {
            maxs[j] = o;
            arg_maxs[j] = u;
        }
        j += 1;
    }
}

/// Min/max (with first-attainer witnesses and a nonzero count) of
/// `acc[u as usize * cap + col]` over the given members, in member order.
///
/// The gather is strided, so this stays scalar-width, but the branch-free
/// select form removes the unpredictable extremum branches and lets the
/// loads pipeline — and because each member's slot sits a full row stride
/// (`cap · 8` bytes, its own cache line) from the previous one in an order
/// the hardware prefetcher cannot track, the loop prefetches its own
/// future slots. The distance covers one slot's load-to-use latency; the
/// hint never changes results. Semantics are exactly the sequential
/// scalar scan: strict compares, first attainer wins ties. Returns
/// `(INFINITY, NEG_INFINITY, NO_ARG, NO_ARG, 0)` on an empty member list.
#[must_use]
#[allow(clippy::type_complexity)]
pub fn scan_gather_column(
    members: &[u32],
    acc: &[f64],
    cap: usize,
    col: usize,
) -> (f64, f64, u32, u32, u32) {
    debug_assert!(col < cap);
    const PREFETCH_AHEAD: usize = 16;
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut amn = NO_ARG;
    let mut amx = NO_ARG;
    let mut nz = 0u32;
    for (pos, &u) in members.iter().enumerate() {
        if let Some(&w) = members.get(pos + PREFETCH_AHEAD) {
            prefetch_read(acc, w as usize * cap + col);
        }
        let x = acc[u as usize * cap + col];
        nz += u32::from(x != 0.0);
        let lt = x < mn;
        mn = if lt { x } else { mn };
        amn = if lt { u } else { amn };
        let gt = x > mx;
        mx = if gt { x } else { mx };
        amx = if gt { u } else { amx };
    }
    (mn, mx, amn, amx, nz)
}

/// Gather-scan several columns of one member axis in a single member
/// pass: for each queued column `cols[s]`, computes exactly what
/// [`scan_gather_column`] would (min/max, first-attainer witnesses,
/// nonzero count, folded in member order — bit-identical per column),
/// writing position `s` of each output slice. The win is memory traffic:
/// each member's accumulator row is brought into cache once and serves
/// every queued column, instead of one strided pass per column.
#[allow(clippy::too_many_arguments)]
pub fn scan_gather_columns(
    members: &[u32],
    acc: &[f64],
    cap: usize,
    cols: &[u32],
    mins: &mut [f64],
    maxs: &mut [f64],
    arg_mins: &mut [u32],
    arg_maxs: &mut [u32],
    nzs: &mut [u32],
) {
    let t = cols.len();
    debug_assert!(
        mins.len() >= t
            && maxs.len() >= t
            && arg_mins.len() >= t
            && arg_maxs.len() >= t
            && nzs.len() >= t
    );
    debug_assert!(cols.iter().all(|&j| (j as usize) < cap));
    mins[..t].fill(f64::INFINITY);
    maxs[..t].fill(f64::NEG_INFINITY);
    arg_mins[..t].fill(NO_ARG);
    arg_maxs[..t].fill(NO_ARG);
    nzs[..t].fill(0);
    for &u in members {
        let base = u as usize * cap;
        let row = &acc[base..base + cap];
        for (s, &j) in cols.iter().enumerate() {
            let x = row[j as usize];
            nzs[s] += u32::from(x != 0.0);
            let lt = x < mins[s];
            mins[s] = if lt { x } else { mins[s] };
            arg_mins[s] = if lt { u } else { arg_mins[s] };
            let gt = x > maxs[s];
            maxs[s] = if gt { x } else { maxs[s] };
            arg_maxs[s] = if gt { u } else { arg_maxs[s] };
        }
    }
}

/// Fold one member's *tiered* accumulator row ([`RowRep`]) into per-color
/// aggregates over the live `k` columns — the sparse-engine counterpart of
/// [`fold_minmax_row`].
///
/// Sparse rows fold only their nonzero entries (strict compares in call
/// order, `u` recorded as attainer, nonzero counts bumped); promoted dense
/// rows delegate to the blocked [`fold_minmax_row`] over their slot array.
/// Columns a member holds no entry for contribute an implicit `0.0` — the
/// caller closes the scan with [`fold_zero_tail`] once all members are
/// folded, which makes the aggregate *values* bit-identical to the dense
/// fold. Attainers of zero-valued extrema come out as [`NO_ARG`] instead
/// of a concrete member; the engine treats `NO_ARG` as "rescan to find
/// out", so this only trades a little laziness, never a value.
#[allow(clippy::too_many_arguments)]
pub fn fold_minmax_sparse_row(
    u: u32,
    row: &RowRep,
    k: usize,
    mins: &mut [f64],
    maxs: &mut [f64],
    arg_mins: &mut [u32],
    arg_maxs: &mut [u32],
    nzs: &mut [u32],
) {
    debug_assert!(
        mins.len() >= k
            && maxs.len() >= k
            && arg_mins.len() >= k
            && arg_maxs.len() >= k
            && nzs.len() >= k
    );
    match row {
        RowRep::Sparse(entries) => {
            for &(c, o) in entries.iter() {
                let j = c as usize;
                debug_assert!(j < k, "sparse entry at dead color {c} (k = {k})");
                nzs[j] += 1;
                if o < mins[j] {
                    mins[j] = o;
                    arg_mins[j] = u;
                }
                if o > maxs[j] {
                    maxs[j] = o;
                    arg_maxs[j] = u;
                }
            }
        }
        RowRep::Dense(slots) => {
            let live = slots.len().min(k);
            fold_minmax_row(u, &slots[..live], mins, maxs, arg_mins, arg_maxs, nzs);
        }
    }
}

/// Close a sparse member-axis fold: fold one implicit `0.0` (attainer
/// [`NO_ARG`]) into every column that fewer than `member_count` members
/// contributed a nonzero value to.
///
/// After this, `mins`/`maxs` hold exactly what the dense fold over
/// explicit-zero rows would — a zero extremum simply carries `NO_ARG`
/// instead of the first member attaining it (the engine's conservative
/// "unknown attainer" sentinel, which forces a rescan instead of a wrong
/// answer). Because the zero fold depends only on `member_count` and the
/// per-column nonzero counts — not on which worker folded which member —
/// sharded sparse rebuilds stay deterministic across thread counts.
pub fn fold_zero_tail(
    member_count: u32,
    k: usize,
    mins: &mut [f64],
    maxs: &mut [f64],
    arg_mins: &mut [u32],
    arg_maxs: &mut [u32],
    nzs: &[u32],
) {
    debug_assert!(
        mins.len() >= k
            && maxs.len() >= k
            && arg_mins.len() >= k
            && arg_maxs.len() >= k
            && nzs.len() >= k
    );
    for j in 0..k {
        if nzs[j] < member_count {
            if 0.0 < mins[j] {
                mins[j] = 0.0;
                arg_mins[j] = NO_ARG;
            }
            if 0.0 > maxs[j] {
                maxs[j] = 0.0;
                arg_maxs[j] = NO_ARG;
            }
        }
    }
}

/// Prefetch hint for a tiered row's heap payload: the middle of a sparse
/// row's entry buffer (the binary search's first probe) or a specific
/// dense slot. Like [`prefetch_read`], never changes results.
#[inline(always)]
pub fn prefetch_row_payload(row: &RowRep, col: u32) {
    match row {
        RowRep::Sparse(entries) => prefetch_read(entries, entries.len() / 2),
        RowRep::Dense(slots) => prefetch_read(slots, col as usize),
    }
}

/// [`scan_gather_column`] over tiered rows: min/max (first-attainer
/// witnesses, nonzero count) of `rows[u].get(col)` over the members, in
/// member order. Every member contributes a value (absent sparse entries
/// read `0.0`), so values *and* attainers are bit-identical to the dense
/// strided gather.
///
/// Each probe chases two dependent pointers the hardware prefetcher
/// cannot see coming (the `RowRep` enum, then its heap buffer), so the
/// loop runs a two-stage software pipeline: the row struct is prefetched
/// `ROW_AHEAD` members out, and once it has landed its payload buffer
/// is prefetched `PAYLOAD_AHEAD` members out. Hints only — results are
/// unchanged.
#[must_use]
#[allow(clippy::type_complexity)]
pub fn scan_gather_column_sparse(
    members: &[u32],
    rows: &[RowRep],
    col: u32,
) -> (f64, f64, u32, u32, u32) {
    const ROW_AHEAD: usize = 16;
    const PAYLOAD_AHEAD: usize = 8;
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut amn = NO_ARG;
    let mut amx = NO_ARG;
    let mut nz = 0u32;
    for (pos, &u) in members.iter().enumerate() {
        if let Some(&w) = members.get(pos + ROW_AHEAD) {
            prefetch_read(rows, w as usize);
        }
        if let Some(&w) = members.get(pos + PAYLOAD_AHEAD) {
            prefetch_row_payload(&rows[w as usize], col);
        }
        let x = rows[u as usize].get(col);
        nz += u32::from(x != 0.0);
        let lt = x < mn;
        mn = if lt { x } else { mn };
        amn = if lt { u } else { amn };
        let gt = x > mx;
        mx = if gt { x } else { mx };
        amx = if gt { u } else { amx };
    }
    (mn, mx, amn, amx, nz)
}

/// [`scan_gather_columns`] over tiered rows: several queued columns of one
/// member axis folded in a single member pass. Sparse rows merge-join
/// their sorted entries against the column list (sorted once up front),
/// `O(nnz + t)` per member; promoted rows probe their slots directly.
/// Bit-identical per column (values and attainers) to the one-column scan.
#[allow(clippy::too_many_arguments)]
pub fn scan_gather_columns_sparse(
    members: &[u32],
    rows: &[RowRep],
    cols: &[u32],
    mins: &mut [f64],
    maxs: &mut [f64],
    arg_mins: &mut [u32],
    arg_maxs: &mut [u32],
    nzs: &mut [u32],
) {
    let t = cols.len();
    debug_assert!(
        mins.len() >= t
            && maxs.len() >= t
            && arg_mins.len() >= t
            && arg_maxs.len() >= t
            && nzs.len() >= t
    );
    mins[..t].fill(f64::INFINITY);
    maxs[..t].fill(f64::NEG_INFINITY);
    arg_mins[..t].fill(NO_ARG);
    arg_maxs[..t].fill(NO_ARG);
    nzs[..t].fill(0);
    // (column, output slot), sorted by column for the merge-join.
    let mut order: Vec<(u32, u32)> = cols
        .iter()
        .enumerate()
        .map(|(s, &j)| (j, s as u32))
        .collect();
    order.sort_unstable();
    // Same two-stage pipeline as `scan_gather_column_sparse` (row struct,
    // then its heap buffer) — shorter distances, since each member does a
    // whole merge-join of work. The merge-join consumes the entry buffer
    // from the front, so the payload hint targets index 0.
    const ROW_AHEAD: usize = 4;
    const PAYLOAD_AHEAD: usize = 2;
    for (pos, &u) in members.iter().enumerate() {
        if let Some(&w) = members.get(pos + ROW_AHEAD) {
            prefetch_read(rows, w as usize);
        }
        if let Some(&w) = members.get(pos + PAYLOAD_AHEAD) {
            match &rows[w as usize] {
                RowRep::Sparse(entries) => prefetch_read(entries, 0),
                RowRep::Dense(slots) => prefetch_read(slots, 0),
            }
        }
        match &rows[u as usize] {
            RowRep::Sparse(entries) => {
                let mut ei = 0usize;
                for &(c, s) in &order {
                    while ei < entries.len() && entries[ei].0 < c {
                        ei += 1;
                    }
                    let x = if ei < entries.len() && entries[ei].0 == c {
                        entries[ei].1
                    } else {
                        0.0
                    };
                    let s = s as usize;
                    nzs[s] += u32::from(x != 0.0);
                    let lt = x < mins[s];
                    mins[s] = if lt { x } else { mins[s] };
                    arg_mins[s] = if lt { u } else { arg_mins[s] };
                    let gt = x > maxs[s];
                    maxs[s] = if gt { x } else { maxs[s] };
                    arg_maxs[s] = if gt { u } else { arg_maxs[s] };
                }
            }
            RowRep::Dense(slots) => {
                for &(c, s) in &order {
                    let x = slots.get(c as usize).copied().unwrap_or(0.0);
                    let s = s as usize;
                    nzs[s] += u32::from(x != 0.0);
                    let lt = x < mins[s];
                    mins[s] = if lt { x } else { mins[s] };
                    arg_mins[s] = if lt { u } else { arg_mins[s] };
                    let gt = x > maxs[s];
                    maxs[s] = if gt { x } else { maxs[s] };
                    arg_maxs[s] = if gt { u } else { arg_maxs[s] };
                }
            }
        }
    }
}

/// Maximum spread `maxs[j] - mins[j]` over a summary row plus its first
/// attainer index (`NO_ARG` when no spread exceeds `0.0`) — the witness
/// row scan for unweighted (β = 0) candidate picks.
///
/// Exactly reproduces the sequential scalar scan started at `0.0`
/// (`if e > m { m = e; a = j }` per column): within a lane the strict
/// compare keeps the lane's first attainer, and the cross-lane combine
/// resolves equal values to the smaller index — which *is* the
/// first-attainer rule, since lane `l` holds columns `l, l + LANES, …`
/// and the earliest column attaining the global maximum is the smallest
/// index among the per-lane firsts. The tail runs after the combine with
/// a strict compare, so a tail column never steals a tie from the
/// blocked prefix. Bit-identical to the scalar loop on any input without
/// NaNs (summaries never hold NaN; a NaN spread loses every compare in
/// both forms).
#[must_use]
pub fn row_err_argmax(maxs: &[f64], mins: &[f64]) -> (f64, u32) {
    let k = maxs.len();
    debug_assert_eq!(k, mins.len());
    let mut m = [0.0f64; LANES];
    let mut a = [NO_ARG; LANES];
    let mut j = 0;
    while j + LANES <= k {
        let mx = &maxs[j..j + LANES];
        let mn = &mins[j..j + LANES];
        for l in 0..LANES {
            let e = mx[l] - mn[l];
            let gt = e > m[l];
            m[l] = if gt { e } else { m[l] };
            a[l] = if gt { (j + l) as u32 } else { a[l] };
        }
        j += LANES;
    }
    let mut best = 0.0f64;
    let mut arg = NO_ARG;
    for l in 0..LANES {
        // A lane only records an attainer on a strict `> 0.0` win, so
        // `a[l] != NO_ARG` implies `m[l] > 0.0` and the index tie-break
        // never fires on the untouched zero lanes.
        if m[l] > best || (m[l] == best && a[l] < arg) {
            best = m[l];
            arg = a[l];
        }
    }
    while j < k {
        let e = maxs[j] - mins[j];
        if e > best {
            best = e;
            arg = j as u32;
        }
        j += 1;
    }
    (best, arg)
}

/// Sum + min/max of `vals[u]` gathered over a member list.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GatherStats {
    /// Sum of the gathered values (canonical blocked tree in
    /// [`gather_stats`], unspecified order in [`gather_stats_fast`]).
    pub sum: f64,
    /// Strict-compare minimum in member order (`INFINITY` when empty).
    pub min: f64,
    /// Strict-compare maximum in member order (`NEG_INFINITY` when empty).
    pub max: f64,
}

/// Gathered sum (canonical blocked reduction tree — lane `l` accumulates
/// members `l, l+LANES, …` of the blocked prefix, combined by
/// [`combine_tree`], tail folded sequentially) plus sequential-semantics
/// min/max. The deterministic witness-split scan.
#[must_use]
pub fn gather_stats(members: &[u32], vals: &[f64]) -> GatherStats {
    let mut lanes_acc = [0.0f64; LANES];
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    let mut it = members.chunks_exact(LANES);
    for chunk in &mut it {
        let c = &chunk[..LANES];
        for l in 0..LANES {
            let d = vals[c[l] as usize];
            lanes_acc[l] += d;
            mn = if d < mn { d } else { mn };
            mx = if d > mx { d } else { mx };
        }
    }
    let mut sum = combine_tree(&lanes_acc);
    for &u in it.remainder() {
        let d = vals[u as usize];
        sum += d;
        mn = if d < mn { d } else { mn };
        mx = if d > mx { d } else { mx };
    }
    GatherStats {
        sum,
        min: mn,
        max: mx,
    }
}

/// [`gather_stats`] with an *unspecified* summation order (fast-math escape
/// hatch — only `RothkoConfig::fast_math` paths may call this). Min/max
/// semantics are unchanged.
#[must_use]
pub fn gather_stats_fast(members: &[u32], vals: &[f64]) -> GatherStats {
    let mut sum = 0.0f64;
    let mut mn = f64::INFINITY;
    let mut mx = f64::NEG_INFINITY;
    for &u in members {
        let d = vals[u as usize];
        sum += d;
        mn = if d < mn { d } else { mn };
        mx = if d > mx { d } else { mx };
    }
    GatherStats {
        sum,
        min: mn,
        max: mx,
    }
}

/// Sequential `Σ ln(vals[u])` over the gathered values that are `> 0.0`,
/// plus their count — the geometric-mean pass of the witness split,
/// computed lazily only when the arithmetic threshold fails to separate
/// the color (the `ln` calls dominated the old eager scan).
#[must_use]
pub fn gather_log_stats(members: &[u32], vals: &[f64]) -> (f64, usize) {
    let mut log_sum = 0.0f64;
    let mut positive = 0usize;
    for &u in members {
        let d = vals[u as usize];
        if d > 0.0 {
            log_sum += d.ln();
            positive += 1;
        }
    }
    (log_sum, positive)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_minmax_row_matches_scalar() {
        let k = 13; // exercises both the blocked body and the tail
        let row: Vec<f64> = (0..k).map(|j| ((j * 7) % 5) as f64 - 2.0).collect();
        let mut mins = vec![f64::INFINITY; k];
        let mut maxs = vec![f64::NEG_INFINITY; k];
        let mut amn = vec![NO_ARG; k];
        let mut amx = vec![NO_ARG; k];
        let mut nz = vec![0u32; k];
        fold_minmax_row(3, &row, &mut mins, &mut maxs, &mut amn, &mut amx, &mut nz);
        // A second member with equal values must NOT steal the attainers.
        fold_minmax_row(9, &row, &mut mins, &mut maxs, &mut amn, &mut amx, &mut nz);
        for j in 0..k {
            assert_eq!(mins[j], row[j]);
            assert_eq!(maxs[j], row[j]);
            assert_eq!(amn[j], 3);
            assert_eq!(amx[j], 3);
            assert_eq!(nz[j], 2 * u32::from(row[j] != 0.0));
        }
    }

    #[test]
    fn gather_stats_sum_uses_canonical_tree() {
        let vals: Vec<f64> = (0..40).map(|i| (i as f64) * 0.3 - 2.0).collect();
        let members: Vec<u32> = (0..vals.len() as u32).rev().collect();
        let gathered: Vec<f64> = members.iter().map(|&u| vals[u as usize]).collect();
        let s = gather_stats(&members, &vals);
        assert_eq!(s.sum.to_bits(), sum(&gathered).to_bits());
        assert_eq!((s.min, s.max), (vals[0], vals[39]));
    }
}
