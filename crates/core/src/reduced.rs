//! Reduced-graph construction (Sec. 3.2).
//!
//! Given a coloring `P = {P_1..P_k}` of a weighted directed graph `G`, the
//! reduced graph `Ĝ` has one node per color and an edge between colors `i`
//! and `j` whenever some node of `P_i` has an edge into `P_j`. Different
//! applications use different edge weights on `Ĝ`; this module implements the
//! weightings used in the paper:
//!
//! * [`ReductionWeighting::Sum`] — `ŵ(i,j) = w(P_i, P_j)`; used as the
//!   capacity `ĉ₂` for the max-flow upper bound (Theorem 6).
//! * [`ReductionWeighting::SqrtNormalized`] — `w(P_i,P_j) / √(|P_i|·|P_j|)`;
//!   the LP reduction of Eq. (4)/(6).
//! * [`ReductionWeighting::TargetAverage`] — `w(P_i,P_j) / |P_j|`; the
//!   Grohe et al. variant discussed after Theorem 4.
//! * [`ReductionWeighting::SourceAverage`] — `w(P_i,P_j) / |P_i|`; the
//!   average out-weight of a node of `P_i` into `P_j`, useful for
//!   random-walk style applications.

use crate::partition::Partition;
use crate::q_error::DegreeMatrices;
use qsc_graph::{Graph, GraphBuilder};

/// Weighting scheme for the reduced graph's edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReductionWeighting {
    /// Total weight between the colors.
    #[default]
    Sum,
    /// Total weight divided by `sqrt(|P_i| * |P_j|)` (the LP reduction).
    SqrtNormalized,
    /// Total weight divided by the size of the target color.
    TargetAverage,
    /// Total weight divided by the size of the source color.
    SourceAverage,
}

impl ReductionWeighting {
    /// Apply the weighting to a raw inter-color weight.
    pub fn apply(&self, sum: f64, size_i: usize, size_j: usize) -> f64 {
        match self {
            ReductionWeighting::Sum => sum,
            ReductionWeighting::SqrtNormalized => sum / ((size_i * size_j) as f64).sqrt(),
            ReductionWeighting::TargetAverage => sum / size_j as f64,
            ReductionWeighting::SourceAverage => sum / size_i as f64,
        }
    }
}

/// Construct the reduced graph of `g` under coloring `p` with the given edge
/// weighting. The reduced graph is always directed (color-pair weights are
/// not symmetric in general even for undirected inputs once normalized).
pub fn reduced_graph(g: &Graph, p: &Partition, weighting: ReductionWeighting) -> Graph {
    reduced_graph_with(g, p, |_, _, sum, size_i, size_j| {
        weighting.apply(sum, size_i, size_j)
    })
}

/// Construct the reduced graph with a custom weighting callback
/// `f(i, j, w(P_i,P_j), |P_i|, |P_j|) -> ŵ(i,j)`. Returning `0.0` omits the
/// edge.
pub fn reduced_graph_with<F>(g: &Graph, p: &Partition, mut weight: F) -> Graph
where
    F: FnMut(usize, usize, f64, usize, usize) -> f64,
{
    assert_eq!(
        p.num_nodes(),
        g.num_nodes(),
        "partition does not match graph"
    );
    let k = p.num_colors();
    let matrices = DegreeMatrices::compute(g, p);
    let mut b = GraphBuilder::new_directed(k);
    for i in 0..k {
        for j in 0..k {
            let sum = matrices.pair_weight(i, j);
            if matrices.nonzero[i * k + j] == 0 && sum == 0.0 {
                continue;
            }
            let w = weight(i, j, sum, p.size(i as u32), p.size(j as u32));
            if w != 0.0 {
                b.add_edge(i as u32, j as u32, w);
            }
        }
    }
    b.build()
}

/// The raw `k × k` inter-color weight matrix `w(P_i, P_j)` (row-major).
pub fn quotient_matrix(g: &Graph, p: &Partition) -> Vec<f64> {
    DegreeMatrices::compute(g, p).sum
}

/// Lift per-color values back to per-node values: node `v` receives the
/// value of its color.
pub fn lift_color_values(p: &Partition, color_values: &[f64]) -> Vec<f64> {
    assert_eq!(color_values.len(), p.num_colors());
    (0..p.num_nodes())
        .map(|v| color_values[p.color_of(v as u32) as usize])
        .collect()
}

/// Lift per-color values, dividing each color's value evenly among its
/// members (so that the lifted values sum to the color values' sum).
pub fn lift_color_values_scaled(p: &Partition, color_values: &[f64]) -> Vec<f64> {
    assert_eq!(color_values.len(), p.num_colors());
    (0..p.num_nodes())
        .map(|v| {
            let c = p.color_of(v as u32);
            color_values[c as usize] / p.size(c) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rothko::{Rothko, RothkoConfig};
    use crate::stable::stable_coloring;
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn sum_weighting_preserves_total_weight() {
        let g = generators::karate_club();
        let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
        let reduced = reduced_graph(&g, &coloring.partition, ReductionWeighting::Sum);
        assert_eq!(reduced.num_nodes(), 6);
        // The reduced graph's total weight equals the total arc weight of the
        // original (each undirected edge counted twice, as in the original).
        assert!((reduced.total_weight() - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn stable_coloring_reduction_is_exact_quotient() {
        // For a stable coloring, every node of P_i has the same weight into
        // P_j, so w(P_i,P_j) = |P_i| * (per-node weight) and the
        // SourceAverage weighting recovers that per-node weight exactly.
        let g = generators::colored_regular(8, 6, 4, 2, 9);
        let p = stable_coloring(&g);
        let reduced = reduced_graph(&g, &p, ReductionWeighting::SourceAverage);
        for i in 0..p.num_colors() as u32 {
            let v = p.members(i)[0];
            for j in 0..p.num_colors() as u32 {
                let per_node: f64 = g
                    .out_edges(v)
                    .filter(|&(t, _)| p.color_of(t) == j)
                    .map(|(_, w)| w)
                    .sum();
                assert!(
                    (reduced.weight(i, j) - per_node).abs() < 1e-9,
                    "quotient weight mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sqrt_normalization_matches_formula() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 4.0);
        b.add_edge(1, 3, 6.0);
        let g = b.build();
        let p = crate::Partition::from_classes(4, vec![vec![0, 1], vec![2, 3]]);
        let r = reduced_graph(&g, &p, ReductionWeighting::SqrtNormalized);
        // w(P0, P1) = 12, |P0| = |P1| = 2 => 12 / 2 = 6.
        assert!((r.weight(0, 1) - 6.0).abs() < 1e-12);
        assert_eq!(r.weight(1, 0), 0.0);
    }

    #[test]
    fn weighting_apply_variants() {
        assert_eq!(ReductionWeighting::Sum.apply(12.0, 3, 4), 12.0);
        assert_eq!(ReductionWeighting::TargetAverage.apply(12.0, 3, 4), 3.0);
        assert_eq!(ReductionWeighting::SourceAverage.apply(12.0, 3, 4), 4.0);
        assert!(
            (ReductionWeighting::SqrtNormalized.apply(12.0, 3, 4) - 12.0 / 12f64.sqrt()).abs()
                < 1e-12
        );
    }

    #[test]
    fn lift_functions_round_trip() {
        let p = crate::Partition::from_assignment(&[0, 0, 1, 1, 1]);
        let values = vec![10.0, 30.0];
        let lifted = lift_color_values(&p, &values);
        assert_eq!(lifted, vec![10.0, 10.0, 30.0, 30.0, 30.0]);
        let scaled = lift_color_values_scaled(&p, &values);
        assert_eq!(scaled, vec![5.0, 5.0, 10.0, 10.0, 10.0]);
        let total: f64 = scaled.iter().sum();
        assert!((total - 40.0).abs() < 1e-12);
    }

    #[test]
    fn quotient_matrix_row_sums() {
        let g = generators::karate_club();
        let p =
            crate::Partition::from_assignment(&(0..34).map(|v| (v % 3) as u32).collect::<Vec<_>>());
        let q = quotient_matrix(&g, &p);
        let total: f64 = q.iter().sum();
        assert_eq!(total, g.total_weight());
    }
}
