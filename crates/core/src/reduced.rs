//! Reduced-graph construction (Sec. 3.2).
//!
//! Given a coloring `P = {P_1..P_k}` of a weighted directed graph `G`, the
//! reduced graph `Ĝ` has one node per color and an edge between colors `i`
//! and `j` whenever some node of `P_i` has an edge into `P_j`. Different
//! applications use different edge weights on `Ĝ`; this module implements the
//! weightings used in the paper:
//!
//! * [`ReductionWeighting::Sum`] — `ŵ(i,j) = w(P_i, P_j)`; used as the
//!   capacity `ĉ₂` for the max-flow upper bound (Theorem 6).
//! * [`ReductionWeighting::SqrtNormalized`] — `w(P_i,P_j) / √(|P_i|·|P_j|)`;
//!   the LP reduction of Eq. (4)/(6).
//! * [`ReductionWeighting::TargetAverage`] — `w(P_i,P_j) / |P_j|`; the
//!   Grohe et al. variant discussed after Theorem 4.
//! * [`ReductionWeighting::SourceAverage`] — `w(P_i,P_j) / |P_i|`; the
//!   average out-weight of a node of `P_i` into `P_j`, useful for
//!   random-walk style applications.
//!
//! Two construction paths are provided. [`reduced_graph`] /
//! [`quotient_matrix`] rebuild from the graph in `O(n + m + k²)` — right for
//! one-shot use. [`ReducedDelta`] instead *maintains* the quotient matrix
//! across [`SplitEvent`]s in `O(deg(moved) + k)` per split — and across
//! edge insert/delete/reweight batches in `O(events)`
//! ([`ReducedDelta::apply_edge_batch`]) — so a budget sweep that refines
//! one coloring through many color counts pays the `O(m)` scan once
//! instead of once per sweep point, and survives graph updates without a
//! rebuild. [`PatchedReducedGraph`] completes the chain: the *emitted*
//! reduced instance is itself patched in place from the delta's dirty
//! colors (`O(dirty · k)` per checkpoint) instead of re-derived with a
//! dense `O(k²)` sweep.

use crate::kernels::fold_add;
use crate::partition::{MergeEvent, Partition, SplitEvent};
use crate::q_error::DegreeMatrices;
use qsc_graph::delta::EdgeEvent;
use qsc_graph::{Graph, GraphBuilder};

/// Weighting scheme for the reduced graph's edges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReductionWeighting {
    /// Total weight between the colors.
    #[default]
    Sum,
    /// Total weight divided by `sqrt(|P_i| * |P_j|)` (the LP reduction).
    SqrtNormalized,
    /// Total weight divided by the size of the target color.
    TargetAverage,
    /// Total weight divided by the size of the source color.
    SourceAverage,
}

impl ReductionWeighting {
    /// Apply the weighting to a raw inter-color weight.
    pub fn apply(&self, sum: f64, size_i: usize, size_j: usize) -> f64 {
        match self {
            ReductionWeighting::Sum => sum,
            ReductionWeighting::SqrtNormalized => sum / ((size_i * size_j) as f64).sqrt(),
            ReductionWeighting::TargetAverage => sum / size_j as f64,
            ReductionWeighting::SourceAverage => sum / size_i as f64,
        }
    }
}

/// Construct the reduced graph of `g` under coloring `p` with the given edge
/// weighting. The reduced graph is always directed (color-pair weights are
/// not symmetric in general even for undirected inputs once normalized).
pub fn reduced_graph(g: &Graph, p: &Partition, weighting: ReductionWeighting) -> Graph {
    reduced_graph_with(g, p, |_, _, sum, size_i, size_j| {
        weighting.apply(sum, size_i, size_j)
    })
}

/// Construct the reduced graph with a custom weighting callback
/// `f(i, j, w(P_i,P_j), |P_i|, |P_j|) -> ŵ(i,j)`. Returning `0.0` omits the
/// edge.
pub fn reduced_graph_with<F>(g: &Graph, p: &Partition, mut weight: F) -> Graph
where
    F: FnMut(usize, usize, f64, usize, usize) -> f64,
{
    assert_eq!(
        p.num_nodes(),
        g.num_nodes(),
        "partition does not match graph"
    );
    let k = p.num_colors();
    let matrices = DegreeMatrices::compute(g, p);
    let mut b = GraphBuilder::new_directed(k);
    for i in 0..k {
        for j in 0..k {
            let sum = matrices.pair_weight(i, j);
            if matrices.nonzero[i * k + j] == 0 && sum == 0.0 {
                continue;
            }
            let w = weight(i, j, sum, p.size(i as u32), p.size(j as u32));
            if w != 0.0 {
                b.add_edge(i as u32, j as u32, w);
            }
        }
    }
    b.build()
}

/// The raw `k × k` inter-color weight matrix `w(P_i, P_j)` (row-major).
pub fn quotient_matrix(g: &Graph, p: &Partition) -> Vec<f64> {
    DegreeMatrices::compute(g, p).sum
}

/// Incrementally maintained quotient matrix `w(P_i, P_j)` of a coloring.
///
/// Built once in `O(n + m)` and then patched per [`SplitEvent`] in
/// `O(deg(moved) + k)` — only the entries involving the split parent, the
/// new child, and the colors of the moved nodes' neighbors change, and each
/// changed entry is adjusted by the exact weight that moved (no rescan of
/// unaffected colors). This is the reduction-layer analogue of
/// [`crate::q_error::IncrementalDegrees`]: where the engine maintains the
/// *error* state of a refinement, `ReducedDelta` maintains the *reduced
/// instance* built from it, so a budget sweep can re-derive the reduced
/// graph at every checkpoint in `O(k²)` (from the maintained matrix)
/// instead of `O(m + k²)` (from the input graph).
///
/// Maintained sums match [`quotient_matrix`] exactly for integer-valued
/// edge weights; for general floats they agree up to floating-point
/// associativity (the incremental path adds and subtracts weights in a
/// different order). Weights cancelled down to an exact zero are treated as
/// absent, mirroring the from-scratch path's omission of zero-weight edges.
#[derive(Clone, Debug)]
pub struct ReducedDelta {
    k: usize,
    /// Row stride of `sum`; grows geometrically as colors are added.
    cap: usize,
    /// `sum[i * cap + j] = w(P_i, P_j)`.
    sum: Vec<f64>,
    /// Color sizes, mirrored from the partition.
    sizes: Vec<usize>,
    /// Whether the source graph was undirected (edge events then apply to
    /// both stored arc directions, mirroring the CSR's symmetric storage).
    symmetric: bool,
    /// Colors whose row or column entries (or size) changed since the last
    /// [`Self::take_dirty_colors`] — every entry a split or edge batch
    /// touches has one of these as an index, which is what lets
    /// [`PatchedReducedGraph`] re-emit in `O(dirty · k)` instead of
    /// `O(k²)`.
    dirty: Vec<u32>,
    dirty_flag: Vec<bool>,
}

/// A [`ReducedDelta`]'s complete logical state, captured by
/// [`ReducedDelta::snapshot`] and restored by
/// [`ReducedDelta::from_snapshot`]. The sum matrix is stored *tight*
/// (`k × k`, capacity padding stripped — the stride is recomputed on
/// load and is unobservable). The pending dirty set is included in its
/// exact order: colors not yet drained by
/// [`ReducedDelta::take_dirty_colors`] must still be reported after a
/// restore, or the first post-restore re-emission would silently miss
/// updates the writer had buffered.
#[derive(Clone, Debug, PartialEq)]
pub struct ReducedSnapshot {
    /// Color count.
    pub k: usize,
    /// Tight `k × k` row-major quotient matrix.
    pub sum: Vec<f64>,
    /// Color sizes, length `k`.
    pub sizes: Vec<usize>,
    /// Whether the source graph was undirected.
    pub symmetric: bool,
    /// Pending dirty colors, in accumulation order.
    pub dirty: Vec<u32>,
}

impl ReducedDelta {
    /// Build the quotient matrix of `p` on `g` in `O(n + m)` time.
    pub fn new(g: &Graph, p: &Partition) -> Self {
        assert_eq!(
            p.num_nodes(),
            g.num_nodes(),
            "partition does not match graph"
        );
        let k = p.num_colors();
        let cap = k.next_power_of_two().max(4);
        let mut sum = vec![0.0f64; cap * cap];
        for (u, v, w) in g.arcs() {
            sum[p.color_of(u) as usize * cap + p.color_of(v) as usize] += w;
        }
        ReducedDelta {
            k,
            cap,
            sum,
            sizes: p.sizes(),
            symmetric: !g.is_directed(),
            dirty: (0..k as u32).collect(),
            dirty_flag: {
                let mut flags = vec![false; cap];
                flags[..k].fill(true);
                flags
            },
        }
    }

    /// Capture the complete logical state for persistence; see
    /// [`ReducedSnapshot`].
    #[must_use]
    pub fn snapshot(&self) -> ReducedSnapshot {
        let k = self.k;
        let mut sum = Vec::with_capacity(k * k);
        for i in 0..k {
            sum.extend_from_slice(&self.sum[i * self.cap..i * self.cap + k]);
        }
        ReducedSnapshot {
            k,
            sum,
            sizes: self.sizes.clone(),
            symmetric: self.symmetric,
            dirty: self.dirty.clone(),
        }
    }

    /// Rebuild from a snapshot, bit-identical to the instance that
    /// produced it (same pair weights, same pending dirty set).
    ///
    /// # Panics
    /// On snapshots with inconsistent column lengths or out-of-range
    /// dirty colors (the persistence layer validates untrusted bytes
    /// before constructing a snapshot; this is a backstop).
    #[must_use]
    pub fn from_snapshot(snap: &ReducedSnapshot) -> Self {
        let k = snap.k;
        assert_eq!(
            snap.sum.len(),
            k * k,
            "reduced snapshot matrix length mismatch"
        );
        assert_eq!(
            snap.sizes.len(),
            k,
            "reduced snapshot sizes length mismatch"
        );
        let cap = k.next_power_of_two().max(4);
        let mut sum = vec![0.0f64; cap * cap];
        for i in 0..k {
            sum[i * cap..i * cap + k].copy_from_slice(&snap.sum[i * k..(i + 1) * k]);
        }
        let mut dirty_flag = vec![false; cap];
        for &c in &snap.dirty {
            assert!(
                (c as usize) < k,
                "reduced snapshot dirty color out of range"
            );
            dirty_flag[c as usize] = true;
        }
        ReducedDelta {
            k,
            cap,
            sum,
            sizes: snap.sizes.clone(),
            symmetric: snap.symmetric,
            dirty: snap.dirty.clone(),
            dirty_flag,
        }
    }

    /// Number of colors currently tracked.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.k
    }

    /// The maintained inter-color weight `w(P_i, P_j)`.
    #[inline]
    pub fn pair_weight(&self, i: usize, j: usize) -> f64 {
        self.sum[i * self.cap + j]
    }

    /// Size of color `i` (mirrored from the partition).
    #[inline]
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Patch the matrix for one split. `p` must be the partition *after*
    /// the split and events must be applied in order (`event.child` is the
    /// next color id). Cost: `O(deg(moved) + k)`.
    ///
    /// Every arc with a moved endpoint is re-attributed: arcs leaving a
    /// moved node shift from row `parent` to row `child`, arcs entering one
    /// shift from column `parent` to column `child`, and arcs between two
    /// moved nodes shift diagonally — handled once in the outgoing pass and
    /// skipped in the incoming pass.
    pub fn apply_split(&mut self, g: &Graph, p: &Partition, event: &SplitEvent) {
        let c = event.parent as usize;
        let child = event.child as usize;
        assert_eq!(child, self.k, "split events must be applied in order");
        assert_eq!(
            p.num_colors(),
            self.k + 1,
            "partition out of sync with delta"
        );
        self.ensure_capacity(self.k + 1);
        self.k += 1;
        let cap = self.cap;
        for &v in &event.moved_nodes {
            for (t, w) in g.out_edges(v) {
                let ct = p.color_of(t) as usize;
                // A target that moved in this same split was still in the
                // parent before it.
                let old_ct = if ct == child { c } else { ct };
                self.sum[c * cap + old_ct] -= w;
                self.sum[child * cap + ct] += w;
            }
            for (s, w) in g.in_edges(v) {
                let cs = p.color_of(s) as usize;
                if cs == child {
                    continue; // moved->moved arcs were handled above
                }
                self.sum[cs * cap + c] -= w;
                self.sum[cs * cap + child] += w;
            }
        }
        self.sizes[c] -= event.moved_nodes.len();
        self.sizes.push(event.moved_nodes.len());
        // Every entry this split touched has the parent or the child as an
        // index (rows/columns c and child), and only their sizes changed.
        self.mark_dirty(event.parent);
        self.mark_dirty(event.child);
    }

    /// Patch the matrix for a batch of edge events (the dynamic-graph
    /// counterpart of [`Self::apply_split`]): each event's signed weight
    /// delta lands on `sum[color(u)][color(v)]` — and the mirrored entry
    /// for undirected graphs, matching how [`Self::new`] counts both
    /// stored arc directions. `p` is the unchanged partition. `O(events)`.
    pub fn apply_edge_batch(&mut self, p: &Partition, events: &[EdgeEvent]) {
        assert_eq!(p.num_colors(), self.k, "partition out of sync with delta");
        let cap = self.cap;
        for ev in events {
            let cu = p.color_of(ev.source) as usize;
            let cv = p.color_of(ev.target) as usize;
            self.sum[cu * cap + cv] += ev.delta;
            if self.symmetric && ev.source != ev.target {
                self.sum[cv * cap + cu] += ev.delta;
            }
            self.mark_dirty(cu as u32);
            self.mark_dirty(cv as u32);
        }
    }

    /// Patch the matrix for one merge — the dual of [`Self::apply_split`]:
    /// the loser's row and column fold into the winner's, the ex-last
    /// color relabels into the freed slot, and the matrix shrinks by one.
    /// `O(k)`. The vacated last row/column is zeroed (future splits assume
    /// fresh rows). Dirty marks: winner, the (relabeled) loser slot, and
    /// the *old last id* — emitters treat a dirty id at or past the new
    /// color count as a column removal.
    pub fn apply_merge(&mut self, event: &MergeEvent) {
        let winner = event.winner as usize;
        let loser = event.loser as usize;
        assert!(winner < loser && loser < self.k, "bad merge event");
        let last = self.k - 1;
        debug_assert_eq!(event.relabeled, (loser != last).then_some(last as u32));
        let cap = self.cap;
        // Fold loser into winner. The self entry absorbs all four
        // quadrants; off entries fold row- and column-wise.
        let self_sum = self.sum[winner * cap + winner]
            + self.sum[winner * cap + loser]
            + self.sum[loser * cap + winner]
            + self.sum[loser * cap + loser];
        // The skip set `{winner, loser}` (with `winner < loser`) splits the
        // column range into three contiguous runs, so the row fold becomes
        // three vectorized `fold_add` calls on disjoint row slices and the
        // (strided) column fold three branch-free loops — touching exactly
        // the cells the old skip-branch loop touched.
        let k = self.k;
        {
            let (head, tail) = self.sum.split_at_mut(loser * cap);
            let wrow = &mut head[winner * cap..winner * cap + k];
            let lrow = &tail[..k];
            fold_add(&mut wrow[..winner], &lrow[..winner]);
            fold_add(&mut wrow[winner + 1..loser], &lrow[winner + 1..loser]);
            fold_add(&mut wrow[loser + 1..k], &lrow[loser + 1..k]);
        }
        for j in 0..winner {
            self.sum[j * cap + winner] += self.sum[j * cap + loser];
        }
        for j in winner + 1..loser {
            self.sum[j * cap + winner] += self.sum[j * cap + loser];
        }
        for j in loser + 1..k {
            self.sum[j * cap + winner] += self.sum[j * cap + loser];
        }
        self.sum[winner * cap + winner] = self_sum;
        self.sizes[winner] += self.sizes[loser];
        // Relabel last -> loser (row, column, diagonal), then zero the
        // vacated last row/column. Same contiguous-run decomposition: the
        // row moves are two `copy_within` memmoves.
        if loser != last {
            let diag = self.sum[last * cap + last];
            self.sum
                .copy_within(last * cap..last * cap + loser, loser * cap);
            self.sum.copy_within(
                last * cap + loser + 1..last * cap + last,
                loser * cap + loser + 1,
            );
            for j in 0..loser {
                self.sum[j * cap + loser] = self.sum[j * cap + last];
            }
            for j in loser + 1..last {
                self.sum[j * cap + loser] = self.sum[j * cap + last];
            }
            self.sum[loser * cap + loser] = diag;
            self.sizes[loser] = self.sizes[last];
        }
        self.sum[last * cap..last * cap + k].fill(0.0);
        for j in 0..k {
            self.sum[j * cap + last] = 0.0;
        }
        self.sizes.pop();
        self.k -= 1;
        self.mark_dirty(event.winner);
        if loser != last {
            self.mark_dirty(event.loser);
        }
        self.mark_dirty(last as u32);
    }

    /// Record a node inserted into color `color` (isolated — the matrix is
    /// untouched, only the size and the size-dependent weightings change).
    pub fn apply_node_insert(&mut self, color: u32) {
        self.sizes[color as usize] += 1;
        self.mark_dirty(color);
    }

    /// Record the removal of an isolated node from color `color` (the dual
    /// of [`Self::apply_node_insert`]; node renumbering does not touch the
    /// color-indexed matrix).
    pub fn apply_node_removal(&mut self, color: u32) {
        assert!(self.sizes[color as usize] > 1, "removal would empty color");
        self.sizes[color as usize] -= 1;
        self.mark_dirty(color);
    }

    /// Take the colors whose row/column entries or size changed since the
    /// last call (every changed entry has one of them as an index), in
    /// first-dirtied order, clearing the dirty state. A fresh delta
    /// reports all colors dirty.
    pub fn take_dirty_colors(&mut self) -> Vec<u32> {
        for &c in &self.dirty {
            self.dirty_flag[c as usize] = false;
        }
        std::mem::take(&mut self.dirty)
    }

    fn mark_dirty(&mut self, c: u32) {
        if !self.dirty_flag[c as usize] {
            self.dirty_flag[c as usize] = true;
            self.dirty.push(c);
        }
    }

    /// The compact `k × k` row-major quotient matrix (same layout as
    /// [`quotient_matrix`]).
    pub fn quotient_matrix(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.k * self.k);
        for i in 0..self.k {
            out.extend_from_slice(&self.sum[i * self.cap..i * self.cap + self.k]);
        }
        out
    }

    /// Build the reduced graph from the maintained matrix with a custom
    /// weighting callback (same contract as [`reduced_graph_with`]) in
    /// `O(k²)` — no traversal of the original graph. Entries whose
    /// maintained sum is exactly zero are skipped, matching the
    /// from-scratch constructor's omission of zero-weight edges.
    pub fn reduced_graph_with<F>(&self, mut weight: F) -> Graph
    where
        F: FnMut(usize, usize, f64, usize, usize) -> f64,
    {
        let k = self.k;
        let mut b = GraphBuilder::new_directed(k);
        for i in 0..k {
            for j in 0..k {
                let sum = self.sum[i * self.cap + j];
                if sum == 0.0 {
                    continue;
                }
                let w = weight(i, j, sum, self.sizes[i], self.sizes[j]);
                if w != 0.0 {
                    b.add_edge(i as u32, j as u32, w);
                }
            }
        }
        b.build()
    }

    /// Build the reduced graph from the maintained matrix with a standard
    /// weighting (see [`reduced_graph`]).
    pub fn reduced_graph(&self, weighting: ReductionWeighting) -> Graph {
        self.reduced_graph_with(|_, _, sum, size_i, size_j| weighting.apply(sum, size_i, size_j))
    }

    /// Cross-check the maintained matrix and sizes against a from-scratch
    /// recomputation, with a small tolerance for floating-point
    /// associativity. Intended for tests and debug assertions.
    pub fn verify_against(&self, g: &Graph, p: &Partition) -> Result<(), String> {
        if p.num_colors() != self.k {
            return Err(format!(
                "color count {} != delta {}",
                p.num_colors(),
                self.k
            ));
        }
        let scratch = quotient_matrix(g, p);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));
        for i in 0..self.k {
            if self.sizes[i] != p.size(i as u32) {
                return Err(format!(
                    "size[{i}]: delta {} vs partition {}",
                    self.sizes[i],
                    p.size(i as u32)
                ));
            }
            for j in 0..self.k {
                let ours = self.sum[i * self.cap + j];
                let theirs = scratch[i * self.k + j];
                if !close(ours, theirs) {
                    return Err(format!("sum[{i}][{j}]: delta {ours} vs scratch {theirs}"));
                }
            }
        }
        Ok(())
    }

    /// Grow the row stride to hold `needed` colors (amortized, geometric).
    fn ensure_capacity(&mut self, needed: usize) {
        if needed <= self.cap {
            return;
        }
        let new_cap = needed.next_power_of_two();
        let mut grown = vec![0.0f64; new_cap * new_cap];
        for i in 0..self.k {
            grown[i * new_cap..i * new_cap + self.cap]
                .copy_from_slice(&self.sum[i * self.cap..(i + 1) * self.cap]);
        }
        self.sum = grown;
        self.cap = new_cap;
        self.dirty_flag.resize(new_cap, false);
    }
}

/// An incrementally *emitted* reduced graph: the weighted adjacency rows a
/// [`ReducedDelta`] would emit, patched in place per checkpoint instead of
/// re-derived with a dense `O(k²)` sweep.
///
/// [`ReducedDelta::reduced_graph_with`] loops over all `k²` entries every
/// time it is called, which the warm sweep pipeline pays at *every* budget
/// checkpoint. Between two checkpoints, though, only entries indexed by a
/// *dirty* color (a split's parent/child, an edge event's endpoint colors —
/// values or sizes) can have changed, so this emitter keeps the weighted
/// rows and, on [`PatchedReducedGraph::sync`], rebuilds just the dirty
/// rows and patches the dirty columns of the rest: `O(dirty · k)` work.
/// [`PatchedReducedGraph::to_graph`] then builds the CSR straight from the
/// sorted rows in `O(k + arcs)` — no dense sweep, no sort, and
/// bit-identical to what `reduced_graph_with` with the same weighting
/// produces (same entry predicate `sum != 0 && weight != 0`, same
/// row-major order).
pub struct PatchedReducedGraph<F> {
    weight: F,
    rows: Vec<Vec<(u32, f64)>>,
}

impl<F: Fn(usize, usize, f64, usize, usize) -> f64> PatchedReducedGraph<F> {
    /// Build the emitted rows from the delta's current state (full
    /// `O(k²)` sweep, once) and clear its dirty set. `weight` has the
    /// [`reduced_graph_with`] contract: `f(i, j, sum, |P_i|, |P_j|)`,
    /// returning `0.0` to omit the edge.
    pub fn new(delta: &mut ReducedDelta, weight: F) -> Self {
        let mut emitter = PatchedReducedGraph {
            weight,
            rows: Vec::new(),
        };
        delta.take_dirty_colors();
        let k = delta.num_colors();
        emitter.rows.reserve(k);
        for i in 0..k {
            let row = emitter.build_row(delta, i);
            emitter.rows.push(row);
        }
        emitter
    }

    /// Number of colors currently emitted.
    #[inline]
    pub fn num_colors(&self) -> usize {
        self.rows.len()
    }

    /// The emitted weighted adjacency rows (sorted by target color).
    #[inline]
    pub fn rows(&self) -> &[Vec<(u32, f64)>] {
        &self.rows
    }

    /// Re-synchronize with the delta: rebuild the rows of colors dirtied
    /// since the last sync (including rows of freshly created colors) and
    /// patch their columns in every clean row. A dirty id at or past the
    /// current color count marks a color removed by a merge: its row is
    /// dropped by the resize and its column is deleted from every clean
    /// row. `O(dirty · k)` — the dense `O(k²)` sweep only ever happens in
    /// [`Self::new`].
    pub fn sync(&mut self, delta: &mut ReducedDelta) {
        let k = delta.num_colors();
        let dirty = delta.take_dirty_colors();
        if dirty.is_empty() && self.rows.len() == k {
            return;
        }
        self.rows.resize_with(k, Vec::new);
        let mut is_dirty = vec![false; k];
        for &d in &dirty {
            if (d as usize) < k {
                is_dirty[d as usize] = true;
            }
        }
        for &d in &dirty {
            if (d as usize) >= k {
                continue; // removed color: no row to build
            }
            let row = self.build_row(delta, d as usize);
            self.rows[d as usize] = row;
        }
        for (i, row) in self.rows.iter_mut().enumerate() {
            if is_dirty[i] {
                continue;
            }
            for &d in &dirty {
                let j = d as usize;
                let w = if j >= k {
                    0.0 // removed color: delete its column
                } else {
                    let sum = delta.pair_weight(i, j);
                    if sum == 0.0 {
                        0.0
                    } else {
                        (self.weight)(i, j, sum, delta.size(i), delta.size(j))
                    }
                };
                patch_sorted_row(row, d, w);
            }
        }
    }

    /// Emit the reduced graph as a CSR [`Graph`] in `O(k + arcs)`.
    pub fn to_graph(&self) -> Graph {
        Graph::from_row_adjacency(self.rows.len(), true, &self.rows)
    }

    fn build_row(&self, delta: &ReducedDelta, i: usize) -> Vec<(u32, f64)> {
        let k = delta.num_colors();
        let mut row = Vec::new();
        for j in 0..k {
            let sum = delta.pair_weight(i, j);
            if sum == 0.0 {
                continue;
            }
            let w = (self.weight)(i, j, sum, delta.size(i), delta.size(j));
            if w != 0.0 {
                row.push((j as u32, w));
            }
        }
        row
    }
}

/// Set entry `col` of a sorted sparse row to `w` — updating, removing
/// (`w == 0.0`) or inserting as needed. The shared kernel of the patched
/// emitters' column-patch passes ([`PatchedReducedGraph::sync`] here and
/// `qsc-lp`'s `PatchedReducedLp::sync`), so the zero-entry predicate and
/// ordering behaviour cannot drift between the pipelines.
pub fn patch_sorted_row(row: &mut Vec<(u32, f64)>, col: u32, w: f64) {
    match row.binary_search_by_key(&col, |&(c, _)| c) {
        Ok(pos) => {
            if w != 0.0 {
                row[pos].1 = w;
            } else {
                row.remove(pos);
            }
        }
        Err(pos) => {
            if w != 0.0 {
                row.insert(pos, (col, w));
            }
        }
    }
}

/// Lift per-color values back to per-node values: node `v` receives the
/// value of its color.
pub fn lift_color_values(p: &Partition, color_values: &[f64]) -> Vec<f64> {
    assert_eq!(color_values.len(), p.num_colors());
    (0..p.num_nodes())
        .map(|v| color_values[p.color_of(v as u32) as usize])
        .collect()
}

/// Lift per-color values, dividing each color's value evenly among its
/// members (so that the lifted values sum to the color values' sum).
pub fn lift_color_values_scaled(p: &Partition, color_values: &[f64]) -> Vec<f64> {
    assert_eq!(color_values.len(), p.num_colors());
    (0..p.num_nodes())
        .map(|v| {
            let c = p.color_of(v as u32);
            color_values[c as usize] / p.size(c) as f64
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rothko::{Rothko, RothkoConfig};
    use crate::stable::stable_coloring;
    use qsc_graph::generators;
    use qsc_graph::GraphBuilder;

    #[test]
    fn sum_weighting_preserves_total_weight() {
        let g = generators::karate_club();
        let coloring = Rothko::new(RothkoConfig::with_max_colors(6)).run(&g);
        let reduced = reduced_graph(&g, &coloring.partition, ReductionWeighting::Sum);
        assert_eq!(reduced.num_nodes(), 6);
        // The reduced graph's total weight equals the total arc weight of the
        // original (each undirected edge counted twice, as in the original).
        assert!((reduced.total_weight() - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn stable_coloring_reduction_is_exact_quotient() {
        // For a stable coloring, every node of P_i has the same weight into
        // P_j, so w(P_i,P_j) = |P_i| * (per-node weight) and the
        // SourceAverage weighting recovers that per-node weight exactly.
        let g = generators::colored_regular(8, 6, 4, 2, 9);
        let p = stable_coloring(&g);
        let reduced = reduced_graph(&g, &p, ReductionWeighting::SourceAverage);
        for i in 0..p.num_colors() as u32 {
            let v = p.members(i)[0];
            for j in 0..p.num_colors() as u32 {
                let per_node: f64 = g
                    .out_edges(v)
                    .filter(|&(t, _)| p.color_of(t) == j)
                    .map(|(_, w)| w)
                    .sum();
                assert!(
                    (reduced.weight(i, j) - per_node).abs() < 1e-9,
                    "quotient weight mismatch at ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn sqrt_normalization_matches_formula() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 4.0);
        b.add_edge(1, 3, 6.0);
        let g = b.build();
        let p = crate::Partition::from_classes(4, vec![vec![0, 1], vec![2, 3]]);
        let r = reduced_graph(&g, &p, ReductionWeighting::SqrtNormalized);
        // w(P0, P1) = 12, |P0| = |P1| = 2 => 12 / 2 = 6.
        assert!((r.weight(0, 1) - 6.0).abs() < 1e-12);
        assert_eq!(r.weight(1, 0), 0.0);
    }

    #[test]
    fn weighting_apply_variants() {
        assert_eq!(ReductionWeighting::Sum.apply(12.0, 3, 4), 12.0);
        assert_eq!(ReductionWeighting::TargetAverage.apply(12.0, 3, 4), 3.0);
        assert_eq!(ReductionWeighting::SourceAverage.apply(12.0, 3, 4), 4.0);
        assert!(
            (ReductionWeighting::SqrtNormalized.apply(12.0, 3, 4) - 12.0 / 12f64.sqrt()).abs()
                < 1e-12
        );
    }

    #[test]
    fn lift_functions_round_trip() {
        let p = crate::Partition::from_assignment(&[0, 0, 1, 1, 1]);
        let values = vec![10.0, 30.0];
        let lifted = lift_color_values(&p, &values);
        assert_eq!(lifted, vec![10.0, 10.0, 30.0, 30.0, 30.0]);
        let scaled = lift_color_values_scaled(&p, &values);
        assert_eq!(scaled, vec![5.0, 5.0, 10.0, 10.0, 10.0]);
        let total: f64 = scaled.iter().sum();
        assert!((total - 40.0).abs() < 1e-12);
    }

    #[test]
    fn reduced_delta_tracks_rothko_splits_undirected() {
        let g = generators::barabasi_albert(150, 3, 5);
        let mut run = Rothko::new(RothkoConfig::with_max_colors(24)).start(&g);
        let mut delta = ReducedDelta::new(&g, run.partition());
        while run.step() {
            let event = run.last_event().expect("step performed a split");
            delta.apply_split(&g, run.partition(), event);
        }
        assert_eq!(delta.verify_against(&g, run.partition()), Ok(()));
        let p = run.partition();
        assert_eq!(delta.num_colors(), p.num_colors());
        // Unit-weight graph: the maintained sums are integers, so the
        // incremental quotient matrix is bit-identical to the scratch one.
        assert_eq!(delta.quotient_matrix(), quotient_matrix(&g, p));
        // And so are the reduced graphs built from it.
        let scratch = reduced_graph(&g, p, ReductionWeighting::Sum);
        let incremental = delta.reduced_graph(ReductionWeighting::Sum);
        assert_eq!(scratch.num_nodes(), incremental.num_nodes());
        assert_eq!(scratch.num_edges(), incremental.num_edges());
        for (u, v, w) in scratch.arcs() {
            assert_eq!(incremental.weight(u, v), w, "arc ({u},{v})");
        }
    }

    #[test]
    fn reduced_delta_tracks_directed_splits() {
        let g = generators::erdos_renyi_nm(60, 300, 9).to_directed();
        let mut run = Rothko::new(RothkoConfig::with_max_colors(15)).start(&g);
        let mut delta = ReducedDelta::new(&g, run.partition());
        while run.step() {
            let event = run.last_event().expect("step performed a split");
            delta.apply_split(&g, run.partition(), event);
            assert_eq!(delta.verify_against(&g, run.partition()), Ok(()));
        }
        assert_eq!(
            delta.quotient_matrix(),
            quotient_matrix(&g, run.partition())
        );
    }

    #[test]
    fn reduced_delta_handles_manual_splits_and_growth() {
        // Exercise capacity growth (past the initial stride of 4) and the
        // moved->moved arc bookkeeping with a hand-driven split sequence.
        let g = generators::karate_club();
        let mut p = Partition::unit(g.num_nodes());
        let mut delta = ReducedDelta::new(&g, &p);
        for round in 0..8u32 {
            let parent = round % p.num_colors() as u32;
            if p.size(parent) < 2 {
                continue;
            }
            let members = p.members(parent).to_vec();
            let pivot = members[members.len() / 2];
            if let Some(event) = p.split_color(parent, |v| v >= pivot) {
                delta.apply_split(&g, &p, &event);
            }
            assert_eq!(delta.verify_against(&g, &p), Ok(()));
        }
        assert!(delta.num_colors() > 4, "growth path not exercised");
    }

    #[test]
    fn reduced_delta_merge_matches_scratch_and_patched_emission() {
        use rand::prelude::*;
        let g = generators::barabasi_albert(120, 3, 21);
        let mut run = Rothko::new(RothkoConfig::with_max_colors(12)).start(&g);
        let mut delta = ReducedDelta::new(&g, run.partition());
        while run.step() {
            let event = run.last_event().expect("split");
            delta.apply_split(&g, run.partition(), event);
        }
        let weighting = ReductionWeighting::SqrtNormalized;
        let mut emitter = PatchedReducedGraph::new(&mut delta, |_i, _j, sum, si, sj| {
            weighting.apply(sum, si, sj)
        });
        let mut p = run.partition().clone();
        let mut rng = StdRng::seed_from_u64(77);
        while p.num_colors() > 2 {
            let k = p.num_colors() as u32;
            let a = rng.random_range(0..k - 1);
            let b = rng.random_range(a + 1..k);
            let ev = p.merge_colors(a, b);
            delta.apply_merge(&ev);
            assert_eq!(delta.verify_against(&g, &p), Ok(()));
            // The patched emission equals the dense re-emission after the
            // shrink (removed columns deleted from clean rows).
            emitter.sync(&mut delta);
            let patched = emitter.to_graph();
            let dense =
                delta.reduced_graph_with(|_i, _j, sum, si, sj| weighting.apply(sum, si, sj));
            assert_eq!(patched.num_nodes(), dense.num_nodes());
            let pa: Vec<_> = patched.arcs().collect();
            let da: Vec<_> = dense.arcs().collect();
            assert_eq!(pa, da, "k = {}", p.num_colors());
        }
        // Splits after merges keep working (vacated rows were zeroed).
        let members: Vec<u32> = p.members(0).to_vec();
        if members.len() >= 2 {
            let pivot = members[members.len() / 2];
            if let Some(ev) = p.split_color(0, |v| v >= pivot) {
                delta.apply_split(&g, &p, &ev);
                assert_eq!(delta.verify_against(&g, &p), Ok(()));
            }
        }
    }

    #[test]
    fn reduced_delta_node_sizes_follow_churn() {
        let g = generators::karate_club();
        let p = Partition::from_assignment(&(0..34).map(|v| (v % 3) as u32).collect::<Vec<_>>());
        let mut delta = ReducedDelta::new(&g, &p);
        delta.take_dirty_colors();
        delta.apply_node_insert(1);
        assert_eq!(delta.size(1), p.size(1) + 1);
        delta.apply_node_removal(1);
        delta.apply_node_removal(2);
        assert_eq!(delta.size(2), p.size(2) - 1);
        // Size-dependent weightings see the churn through the dirty set.
        let dirty = delta.take_dirty_colors();
        assert_eq!(dirty, vec![1, 2]);
    }

    #[test]
    fn quotient_matrix_row_sums() {
        let g = generators::karate_club();
        let p =
            crate::Partition::from_assignment(&(0..34).map(|v| (v % 3) as u32).collect::<Vec<_>>());
        let q = quotient_matrix(&g, &p);
        let total: f64 = q.iter().sum();
        assert_eq!(total, g.total_weight());
    }
}
