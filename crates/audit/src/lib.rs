#![forbid(unsafe_code)]
//! # qsc-audit
//!
//! A self-contained, offline lint engine that mechanically enforces the
//! workspace's determinism and unsafety contracts. The compiler cannot see
//! these contracts — colorings, witness sequences, and q-error bits must be
//! bit-identical across thread counts, storage modes, and persist/recover
//! cycles — but their known failure modes are all *statically detectable*:
//! hash-order iteration leaking into results, f64 reductions bypassing the
//! canonical sum tree, `unsafe` sites without a written soundness argument,
//! wall-clock reads inside result-bearing code, and parsers that panic on
//! malformed bytes.
//!
//! The engine lexes every workspace `.rs` file with a small hand-rolled
//! lexer ([`lexer`] — strings, char literals, raw strings and nested
//! comments handled exactly; no external parser dependency) and runs the
//! rule set ([`rules`]) over the token stream, producing span-accurate
//! `file:line` diagnostics, an inline suppression syntax with mandatory
//! justifications, and a machine-readable JSON report ([`report`]).
//!
//! The companion *dynamic* half of the audit — the one contract a lexer
//! cannot reach — lives in `qsc-core::parallel`: under
//! `--features audit`, `SyncSliceMut` records every `get_mut`/`slice_mut`
//! claim in a lock-free log and aborts on overlapping claims from distinct
//! threads, turning the pool's "provably disjoint writes" invariant into a
//! checked property.
//!
//! Run it as the CI leg does:
//!
//! ```text
//! cargo run -p qsc-audit -- --deny-warnings
//! ```

pub mod lexer;
pub mod report;
pub mod rules;

pub use report::Report;
pub use rules::{lint_source, Finding, Level, RULE_IDS, RULE_SUMMARIES};

use std::path::{Path, PathBuf};

/// Directories scanned below the workspace root. `vendor/` (offline crate
/// stand-ins, to be swapped for the real crates) and build output are
/// excluded by the rules layer as well.
const SCAN_ROOTS: [&str; 3] = ["crates", "tests", "examples"];
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Recursively collect the workspace `.rs` files under `root`, sorted by
/// path so diagnostics and reports are deterministic.
pub fn collect_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in SCAN_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Audit every workspace source file under `root` and aggregate the
/// findings into a [`Report`].
pub fn audit_tree(root: &Path) -> std::io::Result<Report> {
    let files = collect_files(root)?;
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: files.len(),
    };
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(path)?;
        report.findings.extend(rules::lint_source(&rel, &src));
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
