//! The audit rule set and the suppression machinery.
//!
//! Every rule here mechanizes a prose contract from the workspace docs
//! (see the "Checked invariants" section of `qsc-core`'s crate docs):
//!
//! * **unsafe-safety-comment** — every `unsafe` block/fn/impl must be
//!   immediately preceded (within [`SAFETY_WINDOW`] lines) by a comment
//!   containing `SAFETY:` stating why the site is sound.
//! * **hash-iter-determinism** — in the crates whose output feeds
//!   colorings (core, graph, flow, lp, persist), iterating / draining /
//!   extending-from a `HashMap`/`HashSet` is forbidden: iteration order is
//!   per-process and leaks straight into results. Point queries (`get`,
//!   `entry`, `insert`, `contains`, …) stay allowed.
//! * **canonical-float-sum** — no raw `.sum::<f64>()` / `fold(0.0, +)`
//!   outside `qsc_linalg::lanes`: the workspace has exactly one sanctioned
//!   f64 reduction order (the canonical blocked tree) so that dense/sparse
//!   storage, thread counts, and persist/recover all fold bit-identically.
//! * **no-wallclock-in-results** — `Instant::now` / `SystemTime` are
//!   confined to bench/report code; engine results must be a pure function
//!   of inputs.
//! * **no-panic-on-input** — `unwrap`/`expect`/`panic!`-family calls in
//!   IO/parser modules must become typed errors (malformed bytes are an
//!   expected input, not a bug).
//!
//! The rules are *lexical* (see [`crate::lexer`]): they match token shapes,
//! not types. The hash rule therefore tracks names that were visibly bound
//! or declared with a `HashMap`/`HashSet` type in the same file; a hash
//! container smuggled through a type alias or an inference-only binding is
//! out of reach, as is an f64 `.sum()` whose element type never appears in
//! the statement. Those limits are accepted: the rules are a ratchet over
//! the workspace's actual idioms, not a soundness proof.
//!
//! ## Suppressions
//!
//! A finding is silenced by an inline comment on the same or the
//! immediately preceding line:
//!
//! ```text
//! // qsc-audit: allow(rule-name) -- justification for why this is sound
//! ```
//!
//! The justification after `--` is mandatory; a suppression without one
//! (or naming an unknown rule) is itself an error
//! (`suppression-syntax`), and a suppression that silences nothing is a
//! warning (`unused-suppression`) so stale allowances rot out of the tree.
//! The two meta rules cannot themselves be suppressed.

use crate::lexer::{lex, TokKind, Token};

/// Lines above an `unsafe` token within which a `SAFETY:` comment counts
/// as covering it (attributes and item prefixes may sit between).
pub const SAFETY_WINDOW: u32 = 8;

/// Severity of a finding. Errors fail the audit; warnings fail it only
/// under `--deny-warnings`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    Error,
    Warning,
}

/// One diagnostic produced by the audit.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule identifier (one of [`RULE_IDS`] or a meta rule).
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    pub message: String,
    pub level: Level,
    /// Whether an inline suppression covers this finding.
    pub suppressed: bool,
    /// The suppression's justification, when suppressed.
    pub justification: Option<String>,
}

/// The five contract rules (meta rules `suppression-syntax` and
/// `unused-suppression` are always active and not listed here).
pub const RULE_IDS: [&str; 5] = [
    "unsafe-safety-comment",
    "hash-iter-determinism",
    "canonical-float-sum",
    "no-wallclock-in-results",
    "no-panic-on-input",
];

/// Short human summaries, aligned with [`RULE_IDS`].
pub const RULE_SUMMARIES: [&str; 5] = [
    "every unsafe block/fn/impl needs a preceding SAFETY: comment",
    "no HashMap/HashSet iteration in coloring-feeding crates (point queries allowed)",
    "f64 sum reductions go through qsc_linalg::lanes' canonical tree",
    "Instant::now/SystemTime confined to bench/report code",
    "IO/parser modules return typed errors instead of panicking",
];

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

fn norm(path: &str) -> String {
    path.replace('\\', "/")
}

fn is_vendored(p: &str) -> bool {
    p.contains("vendor/") || p.contains("target/")
}

/// Crates whose emitted values feed colorings/witnesses/q-error bits.
fn in_hash_scope(p: &str) -> bool {
    ["core", "graph", "flow", "lp", "persist"]
        .iter()
        .any(|c| p.contains(&format!("crates/{c}/src/")))
}

/// Library crates bound by the canonical-sum-tree rule. Bench drivers and
/// the audit tool itself are report code; `lanes.rs` is the sanctioned
/// implementation.
fn in_float_scope(p: &str) -> bool {
    p.contains("crates/")
        && p.contains("/src/")
        && !p.contains("crates/bench/")
        && !p.contains("crates/audit/")
        && !p.ends_with("linalg/src/lanes.rs")
}

/// Everything except bench/report/test/example code must stay off the
/// wall clock.
fn in_wallclock_scope(p: &str) -> bool {
    !p.contains("crates/bench/")
        && !p.contains("crates/audit/")
        && !p.starts_with("tests/")
        && !p.contains("/tests/")
        && !p.starts_with("examples/")
        && !p.contains("examples/")
}

/// IO/parser modules: everything that decodes external bytes.
fn in_panic_scope(p: &str) -> bool {
    p.ends_with("graph/src/io.rs")
        || p.ends_with("lp/src/mps.rs")
        || p.contains("persist/src/")
        || p.contains("datasets/src/")
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Lint one source file. `rel_path` selects which rules apply (see the
/// scoping functions above); `src` is the file contents. Returns every
/// finding, including suppressed ones (marked as such).
pub fn lint_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let path = norm(rel_path);
    if is_vendored(&path) {
        return Vec::new();
    }
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let test_regions = find_test_regions(&toks, &code);
    let in_test = |line: u32| {
        test_regions
            .iter()
            .any(|&(lo, hi)| lo <= line && line <= hi)
    };

    let mut findings = Vec::new();
    rule_unsafe_safety(&path, &toks, &code, &mut findings);
    if in_hash_scope(&path) {
        rule_hash_iter(&path, &toks, &code, &in_test, &mut findings);
    }
    if in_float_scope(&path) {
        rule_float_sum(&path, &toks, &code, &in_test, &mut findings);
    }
    if in_wallclock_scope(&path) {
        rule_wallclock(&path, &toks, &code, &in_test, &mut findings);
    }
    if in_panic_scope(&path) {
        rule_panic_input(&path, &toks, &code, &in_test, &mut findings);
    }

    apply_suppressions(&path, &toks, &mut findings);
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]` items.
/// Rules about *result-feeding* code skip these; the unsafe rule does not.
fn find_test_regions(toks: &[Token], code: &[usize]) -> Vec<(u32, u32)> {
    let text = |j: usize| toks[code[j]].text.as_str();
    let mut regions = Vec::new();
    let mut j = 0usize;
    while j + 6 < code.len() {
        let is_cfg_test = text(j) == "#"
            && text(j + 1) == "["
            && text(j + 2) == "cfg"
            && text(j + 3) == "("
            && text(j + 4) == "test"
            && text(j + 5) == ")"
            && text(j + 6) == "]";
        let is_test_attr =
            text(j) == "#" && text(j + 1) == "[" && text(j + 2) == "test" && text(j + 3) == "]";
        if !is_cfg_test && !is_test_attr {
            j += 1;
            continue;
        }
        let mut k = j + if is_cfg_test { 7 } else { 4 };
        // Skip further attributes between the marker and the item.
        while k + 1 < code.len() && text(k) == "#" && text(k + 1) == "[" {
            let mut depth = 0usize;
            k += 1;
            while k < code.len() {
                match text(k) {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
        }
        // Scan to the item's opening brace (a `;` first means no body).
        let start_line = toks[code[j]].line;
        let mut open = None;
        while k < code.len() {
            match text(k) {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => k += 1,
            }
        }
        if let Some(open) = open {
            let mut depth = 0usize;
            let mut end = open;
            for (kk, item) in code.iter().enumerate().skip(open) {
                match toks[*item].text.as_str() {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = kk;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            regions.push((start_line, toks[code[end]].end_line));
            j = end + 1;
        } else {
            j = k + 1;
        }
    }
    regions
}

// ---------------------------------------------------------------------------
// Rule: unsafe-safety-comment
// ---------------------------------------------------------------------------

fn rule_unsafe_safety(path: &str, toks: &[Token], code: &[usize], out: &mut Vec<Finding>) {
    let safety_lines: Vec<u32> = toks
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("SAFETY:"))
        .map(|t| t.end_line)
        .collect();
    for &i in code {
        let t = &toks[i];
        if t.kind == TokKind::Ident && t.text == "unsafe" {
            let covered = safety_lines
                .iter()
                .any(|&end| end <= t.line && t.line - end <= SAFETY_WINDOW);
            if !covered {
                out.push(Finding {
                    rule: "unsafe-safety-comment",
                    file: path.to_string(),
                    line: t.line,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment within the preceding \
                         {SAFETY_WINDOW} lines — state why this site is sound"
                    ),
                    level: Level::Error,
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: hash-iter-determinism
// ---------------------------------------------------------------------------

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

fn rule_hash_iter(
    path: &str,
    toks: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let text = |j: usize| toks[code[j]].text.as_str();
    let kind = |j: usize| toks[code[j]].kind;
    let n = code.len();

    // Pass 1: names visibly bound or declared with a hash type. Lexical,
    // file-global (no scope tracking): a name that is hashy anywhere is
    // treated as hashy everywhere in the file, which errs on the loud side.
    let mut hashy: Vec<String> = Vec::new();
    let mut note = |name: &str| {
        if !hashy.iter().any(|h| h == name) {
            hashy.push(name.to_string());
        }
    };
    for j in 0..n {
        // `let [mut] NAME = … HashMap/HashSet … ;` (inferred binding) and
        // `let [mut] NAME : … HashMap …` (ascribed binding).
        if text(j) == "let" && kind(j) == TokKind::Ident {
            let mut k = j + 1;
            if k < n && text(k) == "mut" {
                k += 1;
            }
            if k < n && kind(k) == TokKind::Ident {
                let name = text(k).to_string();
                let mut saw_hash = false;
                for p in (k + 1)..n.min(k + 40) {
                    match text(p) {
                        ";" => break,
                        t if HASH_TYPES.contains(&t) => {
                            saw_hash = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if saw_hash {
                    note(&name);
                }
            }
        }
        // `NAME : … HashMap/HashSet …` — struct fields and fn params.
        if kind(j) == TokKind::Ident && j + 2 < n && text(j + 1) == ":" {
            for p in (j + 2)..n.min(j + 14) {
                match text(p) {
                    "," | ")" | ";" | "=" | "{" | "}" => break,
                    t if HASH_TYPES.contains(&t) => {
                        note(text(j));
                        break;
                    }
                    _ => {}
                }
            }
        }
    }

    // Pass 2: flag iteration constructs over hashy names.
    let mut push = |line: u32, what: String| {
        if !in_test(line) {
            out.push(Finding {
                rule: "hash-iter-determinism",
                file: path.to_string(),
                line,
                message: format!(
                    "{what} — hash iteration order is per-process and leaks into \
                     results; drain through a sorted Vec or use BTreeMap/BTreeSet \
                     (point queries are fine)"
                ),
                level: Level::Error,
                suppressed: false,
                justification: None,
            });
        }
    };
    for j in 0..n {
        if kind(j) != TokKind::Ident || !hashy.iter().any(|h| h == text(j)) {
            continue;
        }
        let name = text(j);
        // `for PAT in [&][mut] NAME {` — direct loop over the container.
        let mut p = j;
        while p > 0 && matches!(text(p - 1), "&" | "mut") {
            p -= 1;
        }
        if p > 0 && text(p - 1) == "in" && j + 1 < n && text(j + 1) == "{" {
            push(
                toks[code[j]].line,
                format!("`for … in {name}` iterates a hash container"),
            );
            continue;
        }
        // `NAME.iter() / keys() / values() / drain() / …`.
        if j + 2 < n && text(j + 1) == "." && ITER_METHODS.contains(&text(j + 2)) {
            push(
                toks[code[j + 2]].line,
                format!("`{name}.{}()` iterates a hash container", text(j + 2)),
            );
        }
        // `other.extend(NAME)` — order-sensitive bulk feed.
        if j >= 2 && text(j - 1) == "(" && text(j - 2) == "extend"
            || j >= 3 && text(j - 1) == "&" && text(j - 2) == "(" && text(j - 3) == "extend"
        {
            push(
                toks[code[j]].line,
                format!("`extend({name})` feeds hash-ordered elements into a sequence"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: canonical-float-sum
// ---------------------------------------------------------------------------

fn rule_float_sum(
    path: &str,
    toks: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let text = |j: usize| toks[code[j]].text.as_str();
    let kind = |j: usize| toks[code[j]].kind;
    let n = code.len();
    let mut push = |line: u32, what: &str| {
        if !in_test(line) {
            out.push(Finding {
                rule: "canonical-float-sum",
                file: path.to_string(),
                line,
                message: format!(
                    "{what} — hot-path f64 reductions must go through \
                     qsc_linalg::lanes (sum/dot/fold_add): one canonical blocked \
                     reduction tree keeps storage modes, thread counts and \
                     persist/recover bit-identical"
                ),
                level: Level::Error,
                suppressed: false,
                justification: None,
            });
        }
    };
    for j in 0..n {
        if text(j) != "." {
            continue;
        }
        // `.sum::<f64>()`
        if j + 5 < n
            && text(j + 1) == "sum"
            && text(j + 2) == ":"
            && text(j + 3) == ":"
            && text(j + 4) == "<"
            && text(j + 5) == "f64"
        {
            push(toks[code[j + 1]].line, "raw `.sum::<f64>()`");
            continue;
        }
        // Bare `.sum()` whose statement mentions f64 (e.g.
        // `let total: f64 = xs.iter().sum();`).
        if j + 3 < n && text(j + 1) == "sum" && text(j + 2) == "(" && text(j + 3) == ")" {
            let mut p = j;
            let mut saw_f64 = false;
            while p > 0 {
                p -= 1;
                match text(p) {
                    ";" | "{" | "}" => break,
                    "f64" => {
                        saw_f64 = true;
                        break;
                    }
                    _ => {}
                }
            }
            if saw_f64 {
                push(toks[code[j + 1]].line, "raw f64 `.sum()`");
            }
            continue;
        }
        // `.fold(0.0, …+…)` — an additive float fold.
        if j + 2 < n && text(j + 1) == "fold" && text(j + 2) == "(" && j + 3 < n {
            let arg0 = text(j + 3);
            let is_float_zero = kind(j + 3) == TokKind::Num
                && (arg0.starts_with("0.") || (arg0.starts_with('0') && arg0.ends_with("f64")));
            if !is_float_zero {
                continue;
            }
            let mut depth = 1usize;
            let mut p = j + 4;
            let mut additive = false;
            while p < n && depth > 0 {
                match text(p) {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "+" => additive = true,
                    "add" => additive = true,
                    _ => {}
                }
                p += 1;
            }
            if additive {
                push(toks[code[j + 1]].line, "additive `fold(0.0, …)` over f64");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-wallclock-in-results
// ---------------------------------------------------------------------------

fn rule_wallclock(
    path: &str,
    toks: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let text = |j: usize| toks[code[j]].text.as_str();
    let n = code.len();
    let in_use_stmt = |j: usize| {
        let mut p = j;
        while p > 0 {
            p -= 1;
            match text(p) {
                ";" | "{" | "}" => return false,
                "use" => return true,
                _ => {}
            }
        }
        false
    };
    let mut push = |line: u32, what: &str| {
        if !in_test(line) {
            out.push(Finding {
                rule: "no-wallclock-in-results",
                file: path.to_string(),
                line,
                message: format!(
                    "{what} outside bench/report code — results must be a pure \
                     function of inputs; move the timing into qsc-bench or \
                     suppress with a justification that the value only feeds \
                     reported metrics"
                ),
                level: Level::Error,
                suppressed: false,
                justification: None,
            });
        }
    };
    for j in 0..n {
        if text(j) == "Instant"
            && j + 3 < n
            && text(j + 1) == ":"
            && text(j + 2) == ":"
            && text(j + 3) == "now"
            && !in_use_stmt(j)
        {
            push(toks[code[j]].line, "`Instant::now()`");
        }
        if text(j) == "SystemTime" && !in_use_stmt(j) {
            push(toks[code[j]].line, "`SystemTime`");
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: no-panic-on-input
// ---------------------------------------------------------------------------

fn rule_panic_input(
    path: &str,
    toks: &[Token],
    code: &[usize],
    in_test: &dyn Fn(u32) -> bool,
    out: &mut Vec<Finding>,
) {
    let text = |j: usize| toks[code[j]].text.as_str();
    let n = code.len();
    let mut push = |line: u32, what: String| {
        if !in_test(line) {
            out.push(Finding {
                rule: "no-panic-on-input",
                file: path.to_string(),
                line,
                message: format!(
                    "{what} in an IO/parser module — malformed input is expected, \
                     not exceptional; surface it as a typed error"
                ),
                level: Level::Error,
                suppressed: false,
                justification: None,
            });
        }
    };
    for j in 0..n {
        if text(j) == "."
            && j + 2 < n
            && matches!(text(j + 1), "unwrap" | "expect")
            && text(j + 2) == "("
        {
            push(toks[code[j + 1]].line, format!("`.{}(…)`", text(j + 1)));
        }
        if matches!(text(j), "panic" | "unreachable" | "todo" | "unimplemented")
            && j + 1 < n
            && text(j + 1) == "!"
        {
            push(toks[code[j]].line, format!("`{}!(…)`", text(j)));
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppression {
    line: u32,
    end_line: u32,
    rules: Vec<String>,
    justification: String,
    used: bool,
}

/// Parse `// qsc-audit: allow(rule, …) -- justification` comments, mark
/// matching findings suppressed, and emit `suppression-syntax` /
/// `unused-suppression` meta findings.
fn apply_suppressions(path: &str, toks: &[Token], findings: &mut Vec<Finding>) {
    let mut sups: Vec<Suppression> = Vec::new();
    let mut meta: Vec<Finding> = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        // Doc comments never carry suppressions — they document APIs (and
        // may legitimately *quote* the suppression syntax, as this crate's
        // own docs do). Only operational `//` / `/*` comments count.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("qsc-audit:") else {
            continue;
        };
        let rest = t.text[at + "qsc-audit:".len()..].trim_start();
        let mut bad = |msg: String| {
            meta.push(Finding {
                rule: "suppression-syntax",
                file: path.to_string(),
                line: t.line,
                message: msg,
                level: Level::Error,
                suppressed: false,
                justification: None,
            });
        };
        let Some(args) = rest
            .strip_prefix("allow")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('('))
        else {
            bad(
                "malformed suppression: expected `qsc-audit: allow(<rule>) -- <justification>`"
                    .to_string(),
            );
            continue;
        };
        let Some(close) = args.find(')') else {
            bad("malformed suppression: missing `)` after rule list".to_string());
            continue;
        };
        let rules: Vec<String> = args[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            bad("suppression names no rule".to_string());
            continue;
        }
        if let Some(unknown) = rules.iter().find(|r| !RULE_IDS.contains(&r.as_str())) {
            bad(format!(
                "suppression names unknown rule `{unknown}` (known: {})",
                RULE_IDS.join(", ")
            ));
            continue;
        }
        let after = args[close + 1..].trim_start();
        let Some(justification) = after.strip_prefix("--").map(str::trim) else {
            bad("suppression is missing the mandatory `-- <justification>`".to_string());
            continue;
        };
        // Block comments may carry a trailing `*/`.
        let justification = justification.trim_end_matches("*/").trim();
        if justification.is_empty() {
            bad("suppression justification is empty — say why the finding is sound".to_string());
            continue;
        }
        sups.push(Suppression {
            line: t.line,
            end_line: t.end_line,
            rules,
            justification: justification.to_string(),
            used: false,
        });
    }

    for f in findings.iter_mut() {
        if matches!(f.rule, "suppression-syntax" | "unused-suppression") {
            continue;
        }
        for s in sups.iter_mut() {
            if s.rules.iter().any(|r| r == f.rule) && f.line >= s.line && f.line <= s.end_line + 1 {
                f.suppressed = true;
                f.justification = Some(s.justification.clone());
                s.used = true;
            }
        }
    }
    for s in sups.iter().filter(|s| !s.used) {
        meta.push(Finding {
            rule: "unused-suppression",
            file: path.to_string(),
            line: s.line,
            message: format!(
                "suppression for `{}` matches no finding — remove it so stale \
                 allowances don't accumulate",
                s.rules.join(", ")
            ),
            level: Level::Warning,
            suppressed: false,
            justification: None,
        });
    }
    findings.extend(meta);
}
