#![forbid(unsafe_code)]
//! CLI for the workspace audit. See the library docs (`qsc_audit`) for the
//! rule set; this binary is the CI leg:
//!
//! ```text
//! cargo run -p qsc-audit -- --deny-warnings --json AUDIT_report.json
//! ```
//!
//! Exit status: 0 when the tree is audit-clean (no unsuppressed errors —
//! and, under `--deny-warnings`, no warnings either), 1 otherwise, 2 on
//! usage or IO failure.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> &'static str {
    "usage: qsc-audit [--root PATH] [--json PATH] [--deny-warnings] \
     [--show-suppressed] [--list-rules]"
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut show_suppressed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json needs a path\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--deny-warnings" => deny_warnings = true,
            "--show-suppressed" => show_suppressed = true,
            "--list-rules" => {
                for (id, summary) in qsc_audit::RULE_IDS
                    .iter()
                    .zip(qsc_audit::RULE_SUMMARIES.iter())
                {
                    println!("{id:24} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match qsc_audit::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "no workspace root found above {} (try --root)",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match qsc_audit::audit_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", report.render_human(show_suppressed));
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("qsc-audit: JSON report written to {}", path.display());
    }

    let failed = report.errors() > 0 || (deny_warnings && report.warnings() > 0);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
