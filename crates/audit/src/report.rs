//! Machine-readable (JSON) and human-readable rendering of audit results.
//!
//! The JSON writer is hand-rolled (the workspace is offline — no serde):
//! a fixed schema, string escaping per RFC 8259, deterministic field and
//! finding order so reports diff cleanly across runs.

use crate::rules::{Finding, Level};

/// Aggregated result of auditing a file tree.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// Unsuppressed error-level findings — these fail the audit.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| !f.suppressed && f.level == Level::Error)
            .count()
    }

    /// Unsuppressed warnings — these fail only under `--deny-warnings`.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| !f.suppressed && f.level == Level::Warning)
            .count()
    }

    /// Findings silenced by a justified inline suppression.
    pub fn suppressed(&self) -> usize {
        self.findings.iter().filter(|f| f.suppressed).count()
    }

    /// Render the full JSON report.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 160);
        out.push_str("{\n  \"version\": 1,\n  \"summary\": {");
        out.push_str(&format!(
            "\"files_scanned\": {}, \"errors\": {}, \"warnings\": {}, \"suppressed\": {}",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed()
        ));
        out.push_str("},\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {");
            out.push_str(&format!(
                "\"rule\": {}, \"file\": {}, \"line\": {}, \"level\": {}, \
                 \"suppressed\": {}, \"message\": {}",
                json_str(f.rule),
                json_str(&f.file),
                f.line,
                json_str(match f.level {
                    Level::Error => "error",
                    Level::Warning => "warning",
                }),
                f.suppressed,
                json_str(&f.message),
            ));
            if let Some(j) = &f.justification {
                out.push_str(&format!(", \"justification\": {}", json_str(j)));
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// One human diagnostic line per finding plus a summary tail.
    pub fn render_human(&self, show_suppressed: bool) -> String {
        let mut out = String::new();
        for f in &self.findings {
            if f.suppressed && !show_suppressed {
                continue;
            }
            let tag = match (f.suppressed, f.level) {
                (true, _) => "allowed",
                (false, Level::Error) => "error",
                (false, Level::Warning) => "warning",
            };
            out.push_str(&format!(
                "{}:{}: {tag}[{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
            if let (true, Some(j)) = (f.suppressed, &f.justification) {
                out.push_str(&format!("    justified: {j}\n"));
            }
        }
        out.push_str(&format!(
            "qsc-audit: {} files scanned, {} errors, {} warnings, {} suppressed\n",
            self.files_scanned,
            self.errors(),
            self.warnings(),
            self.suppressed()
        ));
        out
    }
}

/// Escape a string as a JSON literal (with surrounding quotes).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"version\": 1"));
        assert!(j.contains("\"errors\": 0"));
        assert!(j.trim_end().ends_with('}'));
    }
}
