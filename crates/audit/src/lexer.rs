//! A minimal hand-rolled Rust lexer.
//!
//! The audit rules are *lexical*: they match shapes in the token stream, so
//! the only correctness requirement on this lexer is that it never confuses
//! code with non-code. Concretely it must classify, with exact line
//! numbers:
//!
//! * line comments (`//`, `///`, `//!`) and nested block comments
//!   (`/* /* */ */`),
//! * string-ish literals — plain strings with escapes, raw strings
//!   `r"…"` / `r#"…"#` with any hash count, byte and C-string variants
//!   (`b"…"`, `br#"…"#`, `c"…"`, `cr"…"`),
//! * char literals vs. lifetimes (`'x'` / `'\n'` vs. `'a` in `&'a T`),
//! * raw identifiers (`r#match` is an identifier, `r#"…"#` is a string).
//!
//! Everything the rules match on (`unsafe`, `HashMap`, `.sum::<f64>()`, …)
//! that appears inside a comment or literal is therefore invisible to them
//! — which is also what lets the fixture suite embed violating snippets as
//! raw strings without tripping the audit on its own test file.
//!
//! No external parser dependency: the build environment is offline, and a
//! token stream is all the rules need.

/// Token classification. `Ident` covers keywords too — rules match on the
/// token text.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, without `r#`).
    Ident,
    /// Single punctuation character.
    Punct,
    /// Numeric literal (integer or float, any base, with suffix).
    Num,
    /// String-ish literal: plain/raw/byte/C strings.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`), including the leading quote in `text`.
    Lifetime,
    /// `//`-to-end-of-line comment, text includes the `//` prefix.
    LineComment,
    /// `/* … */` comment (nesting handled), text includes delimiters.
    BlockComment,
}

/// One lexed token with its source span (1-based lines).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    /// Line the token starts on (1-based).
    pub line: u32,
    /// Line the token ends on (equals `line` except for multi-line
    /// literals and block comments).
    pub end_line: u32,
}

impl Token {
    /// Whether this token is a comment of either flavor.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Comments are kept (the
/// `unsafe-safety-comment` rule and the suppression syntax read them);
/// whitespace is dropped. The lexer is total: any byte sequence produces
/// *some* token stream, so a syntactically broken file degrades to noisy
/// tokens rather than a crash.
pub fn lex(src: &str) -> Vec<Token> {
    let cs: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < cs.len() {
        let c = cs[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < cs.len() {
            if cs[i + 1] == '/' {
                let start = i;
                while i < cs.len() && cs[i] != '\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::LineComment,
                    text: cs[start..i].iter().collect(),
                    line,
                    end_line: line,
                });
                continue;
            }
            if cs[i + 1] == '*' {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < cs.len() && depth > 0 {
                    if cs[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if cs[i] == '/' && i + 1 < cs.len() && cs[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if cs[i] == '*' && i + 1 < cs.len() && cs[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokKind::BlockComment,
                    text: cs[start..i].iter().collect(),
                    line: start_line,
                    end_line: line,
                });
                continue;
            }
        }
        // String-ish literal prefixes: r"…", r#"…"#, b"…", br"…", c"…",
        // cr"…", b'…'. A raw *identifier* (`r#match`) is the non-string
        // case of `r#`.
        if is_ident_start(c) {
            // Try the string-prefix cases first.
            if let Some(tok) = try_prefixed_literal(&cs, &mut i, &mut line) {
                toks.push(tok);
                continue;
            }
            let start = i;
            while i < cs.len() && is_ident_continue(cs[i]) {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: cs[start..i].iter().collect(),
                line,
                end_line: line,
            });
            continue;
        }
        if c == '"' {
            let tok = lex_plain_string(&cs, &mut i, &mut line);
            toks.push(tok);
            continue;
        }
        if c == '\'' {
            let tok = lex_quote(&cs, &mut i, &mut line);
            toks.push(tok);
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < cs.len() {
                let d = cs[i];
                if is_ident_continue(d) {
                    i += 1;
                } else if d == '.' && i + 1 < cs.len() && cs[i + 1].is_ascii_digit() {
                    // Fractional part — but not the `..` of a range.
                    i += 1;
                } else if (d == '+' || d == '-')
                    && matches!(cs[i - 1], 'e' | 'E')
                    && cs[start..i].contains(&'.')
                {
                    // Signed exponent of a float (`1.5e-3`).
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokKind::Num,
                text: cs[start..i].iter().collect(),
                line,
                end_line: line,
            });
            continue;
        }
        // Everything else: single punctuation char.
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
            end_line: line,
        });
        i += 1;
    }
    toks
}

/// Handle `r` / `b` / `c` prefixed literals and raw identifiers. Returns
/// `None` when the ident at `i` is a plain identifier (caller lexes it).
fn try_prefixed_literal(cs: &[char], i: &mut usize, line: &mut u32) -> Option<Token> {
    let c = cs[*i];
    let next = cs.get(*i + 1).copied();
    match (c, next) {
        // b'x' byte char.
        ('b', Some('\'')) => {
            *i += 1;
            let mut tok = lex_quote(cs, i, line);
            tok.text.insert(0, 'b');
            Some(tok)
        }
        // b"…" / c"…" strings.
        ('b' | 'c', Some('"')) => {
            *i += 1;
            let mut tok = lex_plain_string(cs, i, line);
            tok.text.insert(0, c);
            Some(tok)
        }
        // br"…" / cr"…" / br#"…"# / cr#"…"#.
        ('b' | 'c', Some('r')) => {
            let after = cs.get(*i + 2).copied();
            if matches!(after, Some('"') | Some('#')) && raw_string_follows(cs, *i + 1) {
                *i += 1;
                let mut tok = lex_raw_string(cs, i, line)?;
                tok.text.insert(0, c);
                Some(tok)
            } else {
                None
            }
        }
        // r"…" / r#"…"# raw strings — but r#ident is a raw identifier.
        ('r', Some('"') | Some('#')) if raw_string_follows(cs, *i) => lex_raw_string(cs, i, line),
        ('r', Some('#')) => {
            // Raw identifier: skip `r#`, lex the ident proper.
            let start_line = *line;
            *i += 2;
            let start = *i;
            while *i < cs.len() && is_ident_continue(cs[*i]) {
                *i += 1;
            }
            Some(Token {
                kind: TokKind::Ident,
                text: cs[start..*i].iter().collect(),
                line: start_line,
                end_line: start_line,
            })
        }
        _ => None,
    }
}

/// Whether `cs[at..]` (positioned on the `r`) starts a raw *string* —
/// i.e. `r` followed by zero or more `#` and then `"`.
fn raw_string_follows(cs: &[char], at: usize) -> bool {
    let mut j = at + 1;
    while j < cs.len() && cs[j] == '#' {
        j += 1;
    }
    j < cs.len() && cs[j] == '"'
}

/// Lex `r##"…"##` with `i` on the `r`. Returns `None` only on a malformed
/// prefix (caller falls back to ident lexing).
fn lex_raw_string(cs: &[char], i: &mut usize, line: &mut u32) -> Option<Token> {
    let start = *i;
    let start_line = *line;
    let mut j = *i + 1;
    let mut hashes = 0usize;
    while j < cs.len() && cs[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= cs.len() || cs[j] != '"' {
        return None;
    }
    j += 1;
    // Scan for `"` followed by `hashes` hash marks.
    loop {
        if j >= cs.len() {
            break; // unterminated: consume to EOF, stay total
        }
        if cs[j] == '\n' {
            *line += 1;
            j += 1;
            continue;
        }
        if cs[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while k < cs.len() && seen < hashes && cs[k] == '#' {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                j = k;
                break;
            }
        }
        j += 1;
    }
    *i = j;
    Some(Token {
        kind: TokKind::Str,
        text: cs[start..*i].iter().collect(),
        line: start_line,
        end_line: *line,
    })
}

/// Lex a plain `"…"` string with `i` on the opening quote.
fn lex_plain_string(cs: &[char], i: &mut usize, line: &mut u32) -> Token {
    let start = *i;
    let start_line = *line;
    *i += 1;
    while *i < cs.len() {
        match cs[*i] {
            '\\' => *i += 2,
            '\n' => {
                *line += 1;
                *i += 1;
            }
            '"' => {
                *i += 1;
                break;
            }
            _ => *i += 1,
        }
    }
    *i = (*i).min(cs.len());
    Token {
        kind: TokKind::Str,
        text: cs[start..*i].iter().collect(),
        line: start_line,
        end_line: *line,
    }
}

/// Lex a `'`-introduced token: char literal or lifetime, with `i` on the
/// quote.
fn lex_quote(cs: &[char], i: &mut usize, line: &mut u32) -> Token {
    let start = *i;
    let start_line = *line;
    let next = cs.get(*i + 1).copied();
    match next {
        // Escaped char literal: '\n', '\u{1F600}', '\''.
        Some('\\') => {
            *i += 2;
            while *i < cs.len() && cs[*i] != '\'' {
                if cs[*i] == '\n' {
                    *line += 1;
                }
                *i += 1;
            }
            *i = (*i + 1).min(cs.len());
            Token {
                kind: TokKind::Char,
                text: cs[start..*i].iter().collect(),
                line: start_line,
                end_line: *line,
            }
        }
        // 'x' char literal (any single char followed by a closing quote).
        Some(_) if cs.get(*i + 2) == Some(&'\'') => {
            *i += 3;
            Token {
                kind: TokKind::Char,
                text: cs[start..*i].iter().collect(),
                line: start_line,
                end_line: start_line,
            }
        }
        // Lifetime: quote followed by an identifier.
        Some(c) if is_ident_start(c) => {
            *i += 1;
            let istart = *i;
            while *i < cs.len() && is_ident_continue(cs[*i]) {
                *i += 1;
            }
            let mut text = String::from("'");
            text.extend(&cs[istart..*i]);
            Token {
                kind: TokKind::Lifetime,
                text,
                line: start_line,
                end_line: start_line,
            }
        }
        // Stray quote: emit as punctuation, stay total.
        _ => {
            *i += 1;
            Token {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line: start_line,
                end_line: start_line,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_hide_code() {
        let toks = kinds("// unsafe { }\nlet x = 1; /* HashMap */");
        assert_eq!(toks[0].0, TokKind::LineComment);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "unsafe"));
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* b */ c */ fn");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert_eq!(toks[1].1, "fn");
    }

    #[test]
    fn raw_strings_swallow_contents() {
        let toks = kinds("let s = r#\"unsafe { HashMap }\"#;");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "unsafe"));
    }

    #[test]
    fn raw_ident_is_not_a_string() {
        let toks = kinds("r#match x r\"str\"");
        assert_eq!(toks[0], (TokKind::Ident, "match".to_string())); // raw ident
        assert_eq!(toks[1], (TokKind::Ident, "x".to_string()));
        assert_eq!(toks[2].0, TokKind::Str);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("'a' &'a T '\\n' 'static");
        assert_eq!(toks[0].0, TokKind::Char);
        assert_eq!(toks[1].0, TokKind::Punct); // &
        assert_eq!(toks[2], (TokKind::Lifetime, "'a".to_string()));
        assert_eq!(toks[3].0, TokKind::Ident); // T
        assert_eq!(toks[4].0, TokKind::Char); // '\n'
        assert_eq!(toks[5], (TokKind::Lifetime, "'static".to_string()));
    }

    #[test]
    fn strings_with_escapes_and_quotes() {
        let toks = kinds(r#"let s = "a \" unsafe \\"; done"#);
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert_eq!(toks.last().unwrap().1, "done");
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || t != "unsafe"));
    }

    #[test]
    fn byte_and_c_strings() {
        let toks = kinds("b\"bytes\" br#\"raw\"# c\"cstr\" b'q'");
        assert_eq!(toks[0].0, TokKind::Str);
        assert_eq!(toks[1].0, TokKind::Str);
        assert_eq!(toks[2].0, TokKind::Str);
        assert_eq!(toks[3].0, TokKind::Char);
    }

    #[test]
    fn numbers_and_ranges() {
        let toks = kinds("0.0f64 1..10 1.5e-3 0x1F");
        assert_eq!(toks[0], (TokKind::Num, "0.0f64".to_string()));
        assert_eq!(toks[1], (TokKind::Num, "1".to_string()));
        assert_eq!(toks[2].1, ".");
        assert_eq!(toks[3].1, ".");
        assert_eq!(toks[4], (TokKind::Num, "10".to_string()));
        assert_eq!(toks[5], (TokKind::Num, "1.5e-3".to_string()));
        assert_eq!(toks[6], (TokKind::Num, "0x1F".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a\n/* x\ny */\nb \"s\n t\" c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[1].end_line, 3);
        assert_eq!(toks[2].line, 4); // b
        assert_eq!(toks[3].end_line, 5); // string spanning a newline
        assert_eq!(toks[4].line, 5); // c
    }
}
