//! Flow networks and the shared residual-graph representation.

use qsc_graph::{Graph, NodeId};

/// A max-flow problem instance: a directed capacity graph plus designated
/// source and sink nodes.
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// Directed graph whose edge weights are capacities (must be ≥ 0).
    pub graph: Graph,
    /// Source node.
    pub source: NodeId,
    /// Sink node.
    pub sink: NodeId,
}

impl FlowNetwork {
    /// Create a network, validating the source/sink and capacities.
    pub fn new(graph: Graph, source: NodeId, sink: NodeId) -> Self {
        assert!((source as usize) < graph.num_nodes(), "source out of range");
        assert!((sink as usize) < graph.num_nodes(), "sink out of range");
        assert_ne!(source, sink, "source and sink must differ");
        debug_assert!(
            graph.arcs().all(|(_, _, w)| w >= 0.0),
            "capacities must be non-negative"
        );
        FlowNetwork {
            graph,
            source,
            sink,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of capacity arcs.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Total capacity leaving the source (a trivial upper bound on the
    /// max-flow value).
    pub fn source_capacity(&self) -> f64 {
        self.graph.out_weight(self.source)
    }
}

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// The maximum flow value.
    pub value: f64,
    /// Per-arc flow, aligned with [`ResidualGraph::num_arcs`] (the arcs
    /// of the input graph in `Graph::arcs()` order).
    pub flows: Vec<f64>,
    /// Number of augmentations / relabel passes performed (algorithm
    /// specific; used for reporting only).
    pub iterations: usize,
}

/// A residual graph with paired forward/backward edges, shared by all the
/// max-flow algorithms.
#[derive(Clone, Debug)]
pub struct ResidualGraph {
    n: usize,
    /// `head[e]` is the target of edge `e`; edges `2k` and `2k+1` are a
    /// forward/backward pair.
    head: Vec<u32>,
    /// Remaining capacity of each edge.
    cap: Vec<f64>,
    /// Original capacity of each edge (for flow extraction).
    orig_cap: Vec<f64>,
    /// Adjacency lists of edge ids.
    adj: Vec<Vec<u32>>,
    /// Number of original arcs (= number of forward edges).
    num_arcs: usize,
}

impl ResidualGraph {
    /// Build the residual graph of a capacity graph.
    pub fn from_graph(g: &Graph) -> Self {
        let n = g.num_nodes();
        let mut rg = ResidualGraph {
            n,
            head: Vec::new(),
            cap: Vec::new(),
            orig_cap: Vec::new(),
            adj: vec![Vec::new(); n],
            num_arcs: 0,
        };
        for (u, v, c) in g.arcs() {
            rg.add_edge(u, v, c.max(0.0));
        }
        rg
    }

    /// Build an empty residual graph on `n` nodes (for hand-built networks).
    pub fn with_nodes(n: usize) -> Self {
        ResidualGraph {
            n,
            head: Vec::new(),
            cap: Vec::new(),
            orig_cap: Vec::new(),
            adj: vec![Vec::new(); n],
            num_arcs: 0,
        }
    }

    /// Add a directed capacity edge.
    pub fn add_edge(&mut self, u: u32, v: u32, cap: f64) {
        let e = self.head.len() as u32;
        self.head.push(v);
        self.cap.push(cap);
        self.orig_cap.push(cap);
        self.adj[u as usize].push(e);
        self.head.push(u);
        self.cap.push(0.0);
        self.orig_cap.push(0.0);
        self.adj[v as usize].push(e + 1);
        self.num_arcs += 1;
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of original (forward) arcs.
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.num_arcs
    }

    /// Edge ids incident to `u` (forward and backward).
    #[inline]
    pub fn edges_of(&self, u: u32) -> &[u32] {
        &self.adj[u as usize]
    }

    /// Target node of edge `e`.
    #[inline]
    pub fn target(&self, e: u32) -> u32 {
        self.head[e as usize]
    }

    /// Remaining capacity of edge `e`.
    #[inline]
    pub fn capacity(&self, e: u32) -> f64 {
        self.cap[e as usize]
    }

    /// Flow currently routed through edge `e` (original capacity minus
    /// remaining capacity). For a backward (odd-id) edge this is *minus*
    /// the paired forward arc's flow — callers summing a node's outflow
    /// must filter to forward (even-id) edges.
    #[inline]
    pub fn flow_on(&self, e: u32) -> f64 {
        self.orig_cap[e as usize] - self.cap[e as usize]
    }

    /// Push `amount` of flow along edge `e` (decreasing its capacity and
    /// increasing the reverse edge's).
    #[inline]
    pub fn push(&mut self, e: u32, amount: f64) {
        self.cap[e as usize] -= amount;
        self.cap[(e ^ 1) as usize] += amount;
    }

    /// Flow currently routed through each original arc.
    pub fn arc_flows(&self) -> Vec<f64> {
        (0..self.num_arcs)
            .map(|k| (self.orig_cap[2 * k] - self.cap[2 * k]).max(0.0))
            .collect()
    }

    /// Nodes reachable from `source` in the residual graph (used to extract
    /// a minimum cut after a max-flow computation).
    pub fn residual_reachable(&self, source: u32, tol: f64) -> Vec<bool> {
        let mut seen = vec![false; self.n];
        let mut stack = vec![source];
        seen[source as usize] = true;
        while let Some(u) = stack.pop() {
            for &e in self.edges_of(u) {
                if self.cap[e as usize] > tol {
                    let v = self.head[e as usize];
                    if !seen[v as usize] {
                        seen[v as usize] = true;
                        stack.push(v);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::GraphBuilder;

    #[test]
    fn network_construction() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 2.0);
        b.add_edge(1, 2, 3.0);
        let net = FlowNetwork::new(b.build(), 0, 2);
        assert_eq!(net.num_nodes(), 3);
        assert_eq!(net.num_edges(), 2);
        assert_eq!(net.source_capacity(), 2.0);
    }

    #[test]
    #[should_panic]
    fn source_equals_sink_rejected() {
        let g = Graph::empty(2, true);
        FlowNetwork::new(g, 1, 1);
    }

    #[test]
    fn residual_push_and_flows() {
        let mut rg = ResidualGraph::with_nodes(3);
        rg.add_edge(0, 1, 5.0);
        rg.add_edge(1, 2, 4.0);
        assert_eq!(rg.num_arcs(), 2);
        rg.push(0, 3.0);
        assert_eq!(rg.capacity(0), 2.0);
        assert_eq!(rg.capacity(1), 3.0);
        assert_eq!(rg.arc_flows(), vec![3.0, 0.0]);
    }

    #[test]
    fn reachability_respects_capacity() {
        let mut rg = ResidualGraph::with_nodes(3);
        rg.add_edge(0, 1, 1.0);
        rg.add_edge(1, 2, 1.0);
        rg.push(0, 1.0); // saturate 0 -> 1
        let reach = rg.residual_reachable(0, 1e-12);
        assert!(reach[0]);
        assert!(!reach[1]);
        assert!(!reach[2]);
    }
}
