//! Flow-network generators.
//!
//! The paper's max-flow benchmarks (Tsukuba, Venus, Sawtooth, Cells) are
//! computer-vision instances: grid graphs whose per-pixel terminal
//! capacities vary smoothly with superimposed noise. [`grid_flow_network`]
//! reproduces that structure at configurable scale; see `DESIGN.md`
//! ("Substitutions").

use crate::network::FlowNetwork;
use qsc_graph::{GraphBuilder, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A vision-style grid max-flow instance.
///
/// Nodes form a `width x height` 4-connected grid plus a source and a sink.
/// Neighbouring pixels are connected in both directions with a smoothness
/// capacity; the source connects to pixels with high "foreground affinity"
/// and pixels with high "background affinity" connect to the sink. The
/// affinities vary smoothly across the image (a horizontal gradient plus a
/// circular blob) with multiplicative noise, which is exactly the locally
/// regular structure that quasi-stable coloring compresses well.
///
/// Returns the network and the grid node-id helper `(r, c) -> id`.
pub fn grid_flow_network(
    width: usize,
    height: usize,
    smoothness: f64,
    noise: f64,
    seed: u64,
) -> (FlowNetwork, impl Fn(usize, usize) -> NodeId) {
    assert!(width >= 2 && height >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = width * height + 2;
    let source = (n - 2) as NodeId;
    let sink = (n - 1) as NodeId;
    let id = move |r: usize, c: usize| (r * width + c) as NodeId;
    let mut b = GraphBuilder::new_directed(n);
    let perturb = |rng: &mut StdRng, noise: f64| 1.0 + noise * (2.0 * rng.random::<f64>() - 1.0);

    // Noise-free foreground affinity field (a blob centred at
    // (height/2, width/3)); the smoothness edges are contrast-sensitive in
    // this field, as in vision max-flow instances where neighbouring pixels
    // with similar appearance are strongly tied and boundary pixels weakly.
    let fg_base = |r: usize, c: usize| -> f64 {
        let dr = r as f64 - height as f64 / 2.0;
        let dc = c as f64 - width as f64 / 3.0;
        let dist = (dr * dr + dc * dc).sqrt() / (width.max(height) as f64);
        (1.5 - 2.0 * dist).max(0.05)
    };
    for r in 0..height {
        for c in 0..width {
            let fg = fg_base(r, c) * perturb(&mut rng, noise);
            // Background affinity: horizontal gradient.
            let bg = (0.2 + 1.3 * c as f64 / width as f64) * perturb(&mut rng, noise);
            b.add_edge(source, id(r, c), fg);
            b.add_edge(id(r, c), sink, bg);
            // Contrast-sensitive smoothness edges to the right and down
            // (both directions).
            let contrast = |a: f64, bv: f64| 0.15 + (-6.0 * (a - bv).abs()).exp();
            if c + 1 < width {
                let w = smoothness
                    * contrast(fg_base(r, c), fg_base(r, c + 1))
                    * perturb(&mut rng, noise);
                b.add_edge(id(r, c), id(r, c + 1), w);
                b.add_edge(id(r, c + 1), id(r, c), w);
            }
            if r + 1 < height {
                let w = smoothness
                    * contrast(fg_base(r, c), fg_base(r + 1, c))
                    * perturb(&mut rng, noise);
                b.add_edge(id(r, c), id(r + 1, c), w);
                b.add_edge(id(r + 1, c), id(r, c), w);
            }
        }
    }
    (FlowNetwork::new(b.build(), source, sink), id)
}

/// A random layered DAG flow network: `layers` layers of `layer_width` nodes,
/// consecutive layers connected with probability `density` and capacities in
/// `[1, max_capacity]`. Source feeds the first layer, last layer feeds the
/// sink.
pub fn layered_random_network(
    layers: usize,
    layer_width: usize,
    density: f64,
    max_capacity: f64,
    seed: u64,
) -> FlowNetwork {
    assert!(layers >= 2 && layer_width >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = layers * layer_width + 2;
    let source = (n - 2) as NodeId;
    let sink = (n - 1) as NodeId;
    let id = |l: usize, i: usize| (l * layer_width + i) as NodeId;
    let mut b = GraphBuilder::new_directed(n);
    for i in 0..layer_width {
        b.add_edge(source, id(0, i), 1.0 + rng.random::<f64>() * max_capacity);
        b.add_edge(
            id(layers - 1, i),
            sink,
            1.0 + rng.random::<f64>() * max_capacity,
        );
    }
    for l in 0..layers - 1 {
        for i in 0..layer_width {
            let mut connected = false;
            for j in 0..layer_width {
                if rng.random::<f64>() < density {
                    b.add_edge(
                        id(l, i),
                        id(l + 1, j),
                        1.0 + rng.random::<f64>() * max_capacity,
                    );
                    connected = true;
                }
            }
            if !connected {
                // Keep the network connected layer to layer.
                let j = rng.random_range(0..layer_width);
                b.add_edge(
                    id(l, i),
                    id(l + 1, j),
                    1.0 + rng.random::<f64>() * max_capacity,
                );
            }
        }
    }
    FlowNetwork::new(b.build(), source, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dinic;

    #[test]
    fn grid_network_dimensions() {
        let (net, id) = grid_flow_network(10, 8, 3.0, 0.2, 1);
        assert_eq!(net.num_nodes(), 82);
        assert_eq!(id(0, 0), 0);
        assert_eq!(id(1, 0), 10);
        // Every pixel has a source and sink edge.
        assert_eq!(net.graph.out_degree(net.source), 80);
        assert_eq!(net.graph.in_degree(net.sink), 80);
    }

    #[test]
    fn grid_network_has_positive_flow() {
        let (net, _) = grid_flow_network(8, 8, 2.0, 0.3, 2);
        let flow = dinic::max_flow(&net).value;
        assert!(flow > 0.0);
        assert!(flow <= net.source_capacity() + 1e-9);
    }

    #[test]
    fn grid_network_deterministic() {
        let (a, _) = grid_flow_network(6, 6, 2.0, 0.3, 9);
        let (b, _) = grid_flow_network(6, 6, 2.0, 0.3, 9);
        assert_eq!(dinic::max_flow(&a).value, dinic::max_flow(&b).value);
    }

    #[test]
    fn layered_network_flow_bounded_by_source() {
        let net = layered_random_network(4, 6, 0.4, 5.0, 3);
        let flow = dinic::max_flow(&net).value;
        assert!(flow > 0.0);
        assert!(flow <= net.source_capacity() + 1e-9);
    }
}
