//! Minimum s-t cut extraction (via max-flow / min-cut duality).

use crate::dinic;
use crate::network::{FlowNetwork, ResidualGraph};

/// A minimum s-t cut.
#[derive(Clone, Debug)]
pub struct MinCut {
    /// Capacity of the cut (equals the maximum flow value).
    pub capacity: f64,
    /// `true` for nodes on the source side of the cut.
    pub source_side: Vec<bool>,
    /// The cut edges `(u, v, capacity)` crossing from the source side to the
    /// sink side.
    pub edges: Vec<(u32, u32, f64)>,
}

/// Compute a minimum s-t cut (runs Dinic internally).
pub fn min_cut(network: &FlowNetwork) -> MinCut {
    let mut rg = ResidualGraph::from_graph(&network.graph);
    let (value, _) = dinic::run(&mut rg, network.source, network.sink);
    let source_side = rg.residual_reachable(network.source, 1e-9);
    let mut edges = Vec::new();
    for (u, v, c) in network.graph.arcs() {
        if source_side[u as usize] && !source_side[v as usize] && c > 0.0 {
            edges.push((u, v, c));
        }
    }
    MinCut {
        capacity: value,
        source_side,
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::{generators, GraphBuilder};

    #[test]
    fn cut_capacity_equals_flow_value() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 3.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 3, 2.0);
        b.add_edge(2, 3, 3.0);
        let net = FlowNetwork::new(b.build(), 0, 3);
        let cut = min_cut(&net);
        let flow = dinic::max_flow(&net).value;
        assert!((cut.capacity - flow).abs() < 1e-9);
        // The sum of cut edge capacities equals the flow value (max-flow =
        // min-cut).
        let cut_sum: f64 = cut.edges.iter().map(|&(_, _, c)| c).sum();
        assert!((cut_sum - flow).abs() < 1e-9);
        assert!(cut.source_side[0]);
        assert!(!cut.source_side[3]);
    }

    #[test]
    fn pathological_network_cut_is_small() {
        // Example 7 / Fig. 4 style network: each staircase transition strands
        // a unit of flow, so the true max-flow (and min-cut) is well below
        // the per-layer capacity that the reduced graph would report.
        let (g, s, t) = generators::pathological_flow_layers(5, 6);
        let net = FlowNetwork::new(g, s, t);
        let cut = min_cut(&net);
        let flow = dinic::max_flow(&net).value;
        assert!((cut.capacity - flow).abs() < 1e-9);
        assert!(
            cut.capacity <= 6.0 - 1.0,
            "expected the cut ({}) to be below the layer capacity 6",
            cut.capacity
        );
    }

    #[test]
    fn min_cut_on_grid_matches_flow() {
        let (net, _) = crate::generators::grid_flow_network(6, 6, 3.0, 0.3, 1);
        let cut = min_cut(&net);
        let flow = dinic::max_flow(&net).value;
        assert!((cut.capacity - flow).abs() < 1e-6);
        let cut_sum: f64 = cut.edges.iter().map(|&(_, _, c)| c).sum();
        assert!(cut_sum + 1e-6 >= flow);
    }
}
