//! Push–relabel maximum flow (FIFO active-node selection with the gap
//! heuristic and periodic global relabeling).
//!
//! This is the stand-in for the `GraphsFlows` push-relabel baseline used by
//! the paper's max-flow experiments; the paper notes that push-relabel
//! cannot be stopped early because its pre-flows are not valid flows, which
//! is exactly why the coloring-based approximation is attractive.

use crate::network::{FlowNetwork, FlowResult, ResidualGraph};
use std::collections::VecDeque;

const EPS: f64 = 1e-12;

/// Compute a maximum flow with the push–relabel algorithm.
pub fn max_flow(network: &FlowNetwork) -> FlowResult {
    let mut rg = ResidualGraph::from_graph(&network.graph);
    let n = rg.num_nodes();
    let source = network.source as usize;
    let sink = network.sink as usize;

    let mut height = vec![0usize; n];
    let mut excess = vec![0.0f64; n];
    let mut count = vec![0usize; 2 * n + 1]; // nodes per height (gap heuristic)
    let mut active: VecDeque<u32> = VecDeque::new();
    let mut in_queue = vec![false; n];
    let mut relabels = 0usize;

    // Initial global relabel: heights = BFS distance to the sink.
    global_relabel(&rg, sink, source, &mut height, n);
    for h in &height {
        count[*h] += 1;
    }

    // Saturate all source-adjacent edges.
    for &e in rg.edges_of(source as u32).to_vec().iter() {
        let cap = rg.capacity(e);
        if cap > EPS {
            let v = rg.target(e) as usize;
            rg.push(e, cap);
            excess[v] += cap;
            excess[source] -= cap;
            if v != sink && v != source && !in_queue[v] {
                active.push_back(v as u32);
                in_queue[v] = true;
            }
        }
    }

    let mut work = 0usize;
    let relabel_period = 6 * n + rg.num_arcs();

    while let Some(u) = active.pop_front() {
        let u = u as usize;
        in_queue[u] = false;
        if u == source || u == sink {
            continue;
        }
        // Discharge u.
        while excess[u] > EPS {
            let mut pushed_any = false;
            for &e in rg.edges_of(u as u32).to_vec().iter() {
                if excess[u] <= EPS {
                    break;
                }
                let v = rg.target(e) as usize;
                if rg.capacity(e) > EPS && height[u] == height[v] + 1 {
                    let amount = excess[u].min(rg.capacity(e));
                    rg.push(e, amount);
                    excess[u] -= amount;
                    excess[v] += amount;
                    pushed_any = true;
                    if v != source && v != sink && !in_queue[v] {
                        active.push_back(v as u32);
                        in_queue[v] = true;
                    }
                }
            }
            if excess[u] <= EPS {
                break;
            }
            if !pushed_any {
                // Relabel u to one more than the lowest admissible neighbour.
                let old_height = height[u];
                let mut min_h = usize::MAX;
                for &e in rg.edges_of(u as u32) {
                    if rg.capacity(e) > EPS {
                        min_h = min_h.min(height[rg.target(e) as usize]);
                    }
                }
                if min_h == usize::MAX {
                    // No outgoing residual capacity at all; park the node.
                    height[u] = 2 * n;
                    break;
                }
                count[old_height] -= 1;
                height[u] = min_h + 1;
                if height[u] > 2 * n {
                    height[u] = 2 * n;
                }
                count[height[u]] += 1;
                relabels += 1;
                work += 1;
                // Gap heuristic: if no node remains at old_height, lift every
                // node above it (except the source) to n+1 so they stop
                // trying to reach the sink.
                if count[old_height] == 0 && old_height < n {
                    for w in 0..n {
                        if w != source && height[w] > old_height && height[w] <= n {
                            count[height[w]] -= 1;
                            height[w] = n + 1;
                            count[height[w]] += 1;
                        }
                    }
                }
            }
            work += 1;
            if work >= relabel_period {
                work = 0;
                for h in count.iter_mut() {
                    *h = 0;
                }
                global_relabel(&rg, sink, source, &mut height, n);
                for h in &height {
                    count[*h] += 1;
                }
            }
        }
        if excess[u] > EPS && height[u] < 2 * n && !in_queue[u] {
            active.push_back(u as u32);
            in_queue[u] = true;
        }
    }

    let value = excess[sink];
    FlowResult {
        value,
        flows: rg.arc_flows(),
        iterations: relabels,
    }
}

/// Heights from a reverse BFS from the sink; unreachable nodes (and the
/// source) get height `n`.
fn global_relabel(rg: &ResidualGraph, sink: usize, source: usize, height: &mut [usize], n: usize) {
    for h in height.iter_mut() {
        *h = n;
    }
    height[sink] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(sink as u32);
    while let Some(u) = queue.pop_front() {
        for &e in rg.edges_of(u) {
            // Edge e goes u -> v in the residual graph; we need residual
            // capacity on the reverse edge v -> u for v to reach the sink
            // through u.
            let v = rg.target(e);
            if rg.capacity(e ^ 1) > EPS && height[v as usize] == n && (v as usize) != source {
                height[v as usize] = height[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    height[source] = n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::{generators, GraphBuilder};

    #[test]
    fn clrs_network_value() {
        let mut b = GraphBuilder::new_directed(6);
        b.add_edge(0, 1, 16.0);
        b.add_edge(0, 2, 13.0);
        b.add_edge(1, 2, 10.0);
        b.add_edge(2, 1, 4.0);
        b.add_edge(1, 3, 12.0);
        b.add_edge(3, 2, 9.0);
        b.add_edge(2, 4, 14.0);
        b.add_edge(4, 3, 7.0);
        b.add_edge(3, 5, 20.0);
        b.add_edge(4, 5, 4.0);
        let net = FlowNetwork::new(b.build(), 0, 5);
        let r = max_flow(&net);
        assert!((r.value - 23.0).abs() < 1e-9, "got {}", r.value);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        for seed in 0..6 {
            let g = generators::erdos_renyi_nm(40, 200, seed).to_directed();
            let net = FlowNetwork::new(g, 0, 39);
            let pr = max_flow(&net).value;
            let dinic = crate::dinic::max_flow(&net).value;
            assert!(
                (pr - dinic).abs() < 1e-6,
                "seed {seed}: push-relabel {pr} vs Dinic {dinic}"
            );
        }
    }

    #[test]
    fn agrees_on_grid_network() {
        let (net, _) = crate::generators::grid_flow_network(8, 8, 4.0, 0.5, 3);
        let pr = max_flow(&net).value;
        let dinic = crate::dinic::max_flow(&net).value;
        assert!(
            (pr - dinic).abs() < 1e-6,
            "push-relabel {pr} vs Dinic {dinic}"
        );
    }

    #[test]
    fn single_edge() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, 7.5);
        let net = FlowNetwork::new(b.build(), 0, 1);
        assert!((max_flow(&net).value - 7.5).abs() < 1e-12);
    }
}
