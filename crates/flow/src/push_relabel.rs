//! Push–relabel maximum flow (FIFO active-node selection with the gap
//! heuristic and periodic global relabeling), cold or warm-started.
//!
//! This is the stand-in for the `GraphsFlows` push-relabel baseline used by
//! the paper's max-flow experiments; the paper notes that push-relabel
//! cannot be stopped early because its pre-flows are not valid flows, which
//! is exactly why the coloring-based approximation is attractive.
//!
//! # Warm starts
//!
//! [`WarmFlowSolver`] resumes from the previous solve when the network is a
//! small perturbation of the last one (the sweep pipeline's reduced
//! networks across adjacent color budgets: one node added, a handful of
//! capacities patched). Instead of discharging the full source capacity
//! from scratch, it re-seeds the previous flow assignment clamped to the
//! new capacities, repairs the node imbalances the clamping introduced
//! (surpluses stay as preflow excess; shortfalls are drained by returning
//! downstream flow), recomputes exact heights with one global relabel, and
//! lets the shared FIFO discharge loop route only the *residual* flow. The
//! result is a maximum preflow into the sink — the same quantity the cold
//! path computes — so warm and cold solves agree on the max-flow value
//! (bit-identically when capacities are exactly representable, e.g.
//! integers or quarter-integers).

use crate::network::{FlowNetwork, FlowResult, ResidualGraph};
use std::collections::HashMap;
use std::collections::VecDeque;

const EPS: f64 = 1e-12;

/// Compute a maximum flow with the push–relabel algorithm.
pub fn max_flow(network: &FlowNetwork) -> FlowResult {
    let mut rg = ResidualGraph::from_graph(&network.graph);
    let n = rg.num_nodes();
    let source = network.source as usize;
    let sink = network.sink as usize;

    let mut height = vec![0usize; n];
    let mut excess = vec![0.0f64; n];
    let mut active: VecDeque<u32> = VecDeque::new();
    let mut in_queue = vec![false; n];

    // Initial global relabel: heights = BFS distance to the sink.
    global_relabel(&rg, sink, source, &mut height, n);
    saturate_source(
        &mut rg,
        source,
        sink,
        &mut excess,
        &mut active,
        &mut in_queue,
    );
    let relabels = discharge(
        &mut rg,
        source,
        sink,
        &mut height,
        &mut excess,
        &mut active,
        &mut in_queue,
    );

    FlowResult {
        value: excess[sink],
        flows: rg.arc_flows(),
        iterations: relabels,
    }
}

/// Saturate every forward arc leaving the source, queueing the targets that
/// become active.
fn saturate_source(
    rg: &mut ResidualGraph,
    source: usize,
    sink: usize,
    excess: &mut [f64],
    active: &mut VecDeque<u32>,
    in_queue: &mut [bool],
) {
    for &e in rg.edges_of(source as u32).to_vec().iter() {
        if e % 2 != 0 {
            continue; // backward edge of an arc into the source
        }
        let cap = rg.capacity(e);
        if cap > EPS {
            let v = rg.target(e) as usize;
            rg.push(e, cap);
            excess[v] += cap;
            excess[source] -= cap;
            if v != sink && v != source && !in_queue[v] {
                active.push_back(v as u32);
                in_queue[v] = true;
            }
        }
    }
}

/// The FIFO discharge loop (gap heuristic + periodic global relabeling),
/// shared by the cold and warm entry points. `height` must be a valid
/// labeling for the preflow described by `rg`/`excess`, and `active` must
/// hold every node (other than source/sink) with positive excess. Returns
/// the number of relabel operations.
fn discharge(
    rg: &mut ResidualGraph,
    source: usize,
    sink: usize,
    height: &mut [usize],
    excess: &mut [f64],
    active: &mut VecDeque<u32>,
    in_queue: &mut [bool],
) -> usize {
    let n = rg.num_nodes();
    let mut count = vec![0usize; 2 * n + 1]; // nodes per height (gap heuristic)
    for h in height.iter() {
        count[*h] += 1;
    }
    let mut relabels = 0usize;
    let mut work = 0usize;
    let relabel_period = 6 * n + rg.num_arcs();

    while let Some(u) = active.pop_front() {
        let u = u as usize;
        in_queue[u] = false;
        if u == source || u == sink {
            continue;
        }
        // Discharge u.
        while excess[u] > EPS {
            let mut pushed_any = false;
            for &e in rg.edges_of(u as u32).to_vec().iter() {
                if excess[u] <= EPS {
                    break;
                }
                let v = rg.target(e) as usize;
                if rg.capacity(e) > EPS && height[u] == height[v] + 1 {
                    let amount = excess[u].min(rg.capacity(e));
                    rg.push(e, amount);
                    excess[u] -= amount;
                    excess[v] += amount;
                    pushed_any = true;
                    if v != source && v != sink && !in_queue[v] {
                        active.push_back(v as u32);
                        in_queue[v] = true;
                    }
                }
            }
            if excess[u] <= EPS {
                break;
            }
            if !pushed_any {
                // Relabel u to one more than the lowest admissible neighbour.
                let old_height = height[u];
                let mut min_h = usize::MAX;
                for &e in rg.edges_of(u as u32) {
                    if rg.capacity(e) > EPS {
                        min_h = min_h.min(height[rg.target(e) as usize]);
                    }
                }
                if min_h == usize::MAX {
                    // No outgoing residual capacity at all; park the node.
                    height[u] = 2 * n;
                    break;
                }
                count[old_height] -= 1;
                height[u] = min_h + 1;
                if height[u] > 2 * n {
                    height[u] = 2 * n;
                }
                count[height[u]] += 1;
                relabels += 1;
                work += 1;
                // Gap heuristic: if no node remains at old_height, lift every
                // node above it (except the source) to n+1 so they stop
                // trying to reach the sink.
                if count[old_height] == 0 && old_height < n {
                    for w in 0..n {
                        if w != source && height[w] > old_height && height[w] <= n {
                            count[height[w]] -= 1;
                            height[w] = n + 1;
                            count[height[w]] += 1;
                        }
                    }
                }
            }
            work += 1;
            if work >= relabel_period {
                work = 0;
                for h in count.iter_mut() {
                    *h = 0;
                }
                global_relabel(rg, sink, source, height, n);
                for h in height.iter() {
                    count[*h] += 1;
                }
            }
        }
        if excess[u] > EPS && height[u] < 2 * n && !in_queue[u] {
            active.push_back(u as u32);
            in_queue[u] = true;
        }
    }

    relabels
}

/// A push-relabel solver that warm-starts from its previous solution.
///
/// Intended for solving a *sequence* of related networks — the sweep
/// pipeline's reduced networks across adjacent color budgets, where node
/// ids are stable (colors keep their ids; each split appends one), most
/// capacities are unchanged, and the previous max flow is almost feasible.
/// See the module docs for the warm-start procedure. The first call is a
/// cold solve identical to [`max_flow`].
#[derive(Debug, Default)]
pub struct WarmFlowSolver {
    /// Aggregated flow per `(tail, head)` pair of the previous solution.
    prev_flows: Option<HashMap<(u32, u32), f64>>,
}

impl WarmFlowSolver {
    /// A solver with no previous solution (the first solve is cold).
    pub fn new() -> Self {
        WarmFlowSolver::default()
    }

    /// Drop the remembered solution; the next solve is cold.
    pub fn reset(&mut self) {
        self.prev_flows = None;
    }

    /// Solve `network`, warm-starting from the previous call's solution
    /// when one is remembered.
    pub fn solve(&mut self, network: &FlowNetwork) -> FlowResult {
        let mut rg = ResidualGraph::from_graph(&network.graph);
        let n = rg.num_nodes();
        let source = network.source as usize;
        let sink = network.sink as usize;
        let mut height = vec![0usize; n];
        let mut excess = vec![0.0f64; n];
        let mut active: VecDeque<u32> = VecDeque::new();
        let mut in_queue = vec![false; n];

        if let Some(prev) = self.prev_flows.take() {
            seed_previous_flows(&mut rg, network, prev, &mut excess);
        }
        saturate_source(
            &mut rg,
            source,
            sink,
            &mut excess,
            &mut active,
            &mut in_queue,
        );
        drain_deficits(&mut rg, source, &mut excess);
        global_relabel(&rg, sink, source, &mut height, n);
        for v in 0..n {
            if v != source && v != sink && excess[v] > EPS && !in_queue[v] {
                active.push_back(v as u32);
                in_queue[v] = true;
            }
        }
        let relabels = discharge(
            &mut rg,
            source,
            sink,
            &mut height,
            &mut excess,
            &mut active,
            &mut in_queue,
        );

        let flows = rg.arc_flows();
        let mut remembered: HashMap<(u32, u32), f64> = HashMap::new();
        for ((u, v, _), &f) in network.graph.arcs().zip(flows.iter()) {
            if f > EPS {
                *remembered.entry((u, v)).or_insert(0.0) += f;
            }
        }
        self.prev_flows = Some(remembered);

        FlowResult {
            value: excess[sink],
            flows,
            iterations: relabels,
        }
    }
}

/// Re-route the previous solution onto a fresh residual graph: each
/// remembered `(u, v)` flow is replayed onto the new network's arcs,
/// clamped to their capacities, with node imbalances tracked in `excess`.
fn seed_previous_flows(
    rg: &mut ResidualGraph,
    network: &FlowNetwork,
    mut remaining: HashMap<(u32, u32), f64>,
    excess: &mut [f64],
) {
    for (a, (u, v, _)) in network.graph.arcs().enumerate() {
        let Some(f) = remaining.get_mut(&(u, v)) else {
            continue;
        };
        let e = (2 * a) as u32;
        let amount = f.min(rg.capacity(e));
        if amount > EPS {
            rg.push(e, amount);
            excess[v as usize] += amount;
            excess[u as usize] -= amount;
            *f -= amount;
        }
    }
}

/// Repair the deficits (negative excess) the capacity clamping introduced:
/// a deficit node receives less than it sends, so its outgoing flow is
/// reduced — arc by arc — until it balances, propagating the shortfall
/// downstream until it is absorbed by the source, the sink, or a node with
/// surplus. Each step strictly reduces some arc's flow, so the drain
/// terminates; afterwards every node except the source and sink has
/// non-negative excess, i.e. the seeded assignment is a valid preflow.
fn drain_deficits(rg: &mut ResidualGraph, source: usize, excess: &mut [f64]) {
    let n = rg.num_nodes();
    let mut worklist: Vec<usize> = (0..n)
        .filter(|&v| v != source && excess[v] < -EPS)
        .collect();
    while let Some(v) = worklist.pop() {
        if excess[v] >= -EPS {
            continue;
        }
        for &e in rg.edges_of(v as u32).to_vec().iter() {
            if excess[v] >= -EPS {
                break;
            }
            if e % 2 != 0 {
                continue; // only forward arcs leaving v carry its outflow
            }
            let flow = rg.flow_on(e);
            if flow <= EPS {
                continue;
            }
            let w = rg.target(e) as usize;
            let amount = flow.min(-excess[v]);
            rg.push(e ^ 1, amount); // return `amount` from w back to v
            excess[v] += amount;
            excess[w] -= amount;
            if w != source && excess[w] < -EPS {
                worklist.push(w);
            }
        }
        debug_assert!(
            excess[v] >= -EPS,
            "deficit at node {v} could not be drained (outflow < shortfall)"
        );
    }
}

/// Heights from a reverse BFS from the sink; unreachable nodes (and the
/// source) get height `n`.
fn global_relabel(rg: &ResidualGraph, sink: usize, source: usize, height: &mut [usize], n: usize) {
    for h in height.iter_mut() {
        *h = n;
    }
    height[sink] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(sink as u32);
    while let Some(u) = queue.pop_front() {
        for &e in rg.edges_of(u) {
            // Edge e goes u -> v in the residual graph; we need residual
            // capacity on the reverse edge v -> u for v to reach the sink
            // through u.
            let v = rg.target(e);
            if rg.capacity(e ^ 1) > EPS && height[v as usize] == n && (v as usize) != source {
                height[v as usize] = height[u as usize] + 1;
                queue.push_back(v);
            }
        }
    }
    height[source] = n;
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::{generators, GraphBuilder};

    #[test]
    fn clrs_network_value() {
        let mut b = GraphBuilder::new_directed(6);
        b.add_edge(0, 1, 16.0);
        b.add_edge(0, 2, 13.0);
        b.add_edge(1, 2, 10.0);
        b.add_edge(2, 1, 4.0);
        b.add_edge(1, 3, 12.0);
        b.add_edge(3, 2, 9.0);
        b.add_edge(2, 4, 14.0);
        b.add_edge(4, 3, 7.0);
        b.add_edge(3, 5, 20.0);
        b.add_edge(4, 5, 4.0);
        let net = FlowNetwork::new(b.build(), 0, 5);
        let r = max_flow(&net);
        assert!((r.value - 23.0).abs() < 1e-9, "got {}", r.value);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        for seed in 0..6 {
            let g = generators::erdos_renyi_nm(40, 200, seed).to_directed();
            let net = FlowNetwork::new(g, 0, 39);
            let pr = max_flow(&net).value;
            let dinic = crate::dinic::max_flow(&net).value;
            assert!(
                (pr - dinic).abs() < 1e-6,
                "seed {seed}: push-relabel {pr} vs Dinic {dinic}"
            );
        }
    }

    #[test]
    fn agrees_on_grid_network() {
        let (net, _) = crate::generators::grid_flow_network(8, 8, 4.0, 0.5, 3);
        let pr = max_flow(&net).value;
        let dinic = crate::dinic::max_flow(&net).value;
        assert!(
            (pr - dinic).abs() < 1e-6,
            "push-relabel {pr} vs Dinic {dinic}"
        );
    }

    #[test]
    fn single_edge() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, 7.5);
        let net = FlowNetwork::new(b.build(), 0, 1);
        assert!((max_flow(&net).value - 7.5).abs() < 1e-12);
    }

    #[test]
    fn warm_solver_cold_call_matches_max_flow() {
        let (net, _) = crate::generators::grid_flow_network(8, 8, 4.0, 0.5, 3);
        let mut solver = WarmFlowSolver::new();
        let warm = solver.solve(&net).value;
        let cold = max_flow(&net).value;
        assert!((warm - cold).abs() < 1e-9, "warm {warm} vs cold {cold}");
    }

    #[test]
    fn warm_resolve_of_same_network_is_stable() {
        let (net, _) = crate::generators::grid_flow_network(8, 8, 4.0, 0.5, 7);
        let mut solver = WarmFlowSolver::new();
        let first = solver.solve(&net);
        let second = solver.solve(&net);
        assert!((first.value - second.value).abs() < 1e-9);
        // Re-solving from the previous optimum needs (almost) no work.
        assert!(
            second.iterations <= first.iterations / 2,
            "warm re-solve did {} relabels vs cold {}",
            second.iterations,
            first.iterations
        );
    }

    #[test]
    fn warm_start_survives_capacity_increases_and_decreases() {
        // Perturb a network arc-by-arc (scale capacities up and down) and
        // check the warm-started value always matches Dinic's cold value.
        for seed in 0..4u64 {
            let g = generators::erdos_renyi_nm(30, 150, seed).to_directed();
            let base = FlowNetwork::new(g, 0, 29);
            let mut solver = WarmFlowSolver::new();
            solver.solve(&base);
            for round in 1..4u32 {
                let mut b = GraphBuilder::new_directed(30);
                for (i, (u, v, c)) in base.graph.arcs().enumerate() {
                    let scale = match (i as u32 + round) % 3 {
                        0 => 0.5,
                        1 => 2.0,
                        _ => 1.0,
                    };
                    b.add_edge(u, v, c * scale);
                }
                let net = FlowNetwork::new(b.build(), 0, 29);
                let warm = solver.solve(&net).value;
                let cold = crate::dinic::max_flow(&net).value;
                assert!(
                    (warm - cold).abs() < 1e-6,
                    "seed {seed} round {round}: warm {warm} vs cold {cold}"
                );
            }
        }
    }

    #[test]
    fn warm_start_survives_node_additions() {
        // Grow the network one node at a time (the sweep's reduced networks
        // gain one color per split) and keep the source/sink ids fixed.
        let mut solver = WarmFlowSolver::new();
        for extra in 0..5usize {
            let n = 12 + extra;
            let mut b = GraphBuilder::new_directed(n);
            for v in 2..n as u32 {
                b.add_edge(0, v, 2.0 + (v % 3) as f64);
                b.add_edge(v, 1, 1.0 + (v % 4) as f64);
            }
            for v in 2..(n as u32 - 1) {
                b.add_edge(v, v + 1, 1.5);
            }
            let net = FlowNetwork::new(b.build(), 0, 1);
            let warm = solver.solve(&net).value;
            let cold = crate::dinic::max_flow(&net).value;
            assert!(
                (warm - cold).abs() < 1e-9,
                "n={n}: warm {warm} vs cold {cold}"
            );
        }
    }
}
