//! Dinic's algorithm (level graph + blocking flows).

use crate::network::{FlowNetwork, FlowResult, ResidualGraph};
use std::collections::VecDeque;

const EPS: f64 = 1e-12;

/// Compute a maximum flow with Dinic's algorithm.
pub fn max_flow(network: &FlowNetwork) -> FlowResult {
    let mut rg = ResidualGraph::from_graph(&network.graph);
    let value = run(&mut rg, network.source, network.sink);
    FlowResult {
        value: value.0,
        flows: rg.arc_flows(),
        iterations: value.1,
    }
}

/// Run Dinic on an existing residual graph; returns `(flow value, phases)`.
/// The residual graph is left in its post-flow state so callers can extract
/// flows or cuts.
pub fn run(rg: &mut ResidualGraph, source: u32, sink: u32) -> (f64, usize) {
    let n = rg.num_nodes();
    let mut total = 0.0f64;
    let mut phases = 0usize;
    let mut level = vec![-1i32; n];
    let mut iter = vec![0usize; n];
    loop {
        // BFS to build the level graph.
        for l in level.iter_mut() {
            *l = -1;
        }
        level[source as usize] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        while let Some(u) = queue.pop_front() {
            for &e in rg.edges_of(u) {
                let v = rg.target(e);
                if rg.capacity(e) > EPS && level[v as usize] < 0 {
                    level[v as usize] = level[u as usize] + 1;
                    queue.push_back(v);
                }
            }
        }
        if level[sink as usize] < 0 {
            break;
        }
        phases += 1;
        for it in iter.iter_mut() {
            *it = 0;
        }
        // Blocking flow via iterative DFS augmentations.
        loop {
            let pushed = dfs(rg, source, sink, f64::INFINITY, &level, &mut iter);
            if pushed <= EPS {
                break;
            }
            total += pushed;
        }
    }
    (total, phases)
}

fn dfs(
    rg: &mut ResidualGraph,
    u: u32,
    sink: u32,
    limit: f64,
    level: &[i32],
    iter: &mut [usize],
) -> f64 {
    if u == sink {
        return limit;
    }
    while iter[u as usize] < rg.edges_of(u).len() {
        let e = rg.edges_of(u)[iter[u as usize]];
        let v = rg.target(e);
        let cap = rg.capacity(e);
        if cap > EPS && level[v as usize] == level[u as usize] + 1 {
            let pushed = dfs(rg, v, sink, limit.min(cap), level, iter);
            if pushed > EPS {
                rg.push(e, pushed);
                return pushed;
            }
        }
        iter[u as usize] += 1;
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::GraphBuilder;

    fn diamond() -> FlowNetwork {
        // s=0, t=3; two paths of capacity 2 and 3, shared middle edge.
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 2.0);
        b.add_edge(0, 2, 3.0);
        b.add_edge(1, 3, 3.0);
        b.add_edge(2, 3, 2.0);
        b.add_edge(1, 2, 1.0);
        FlowNetwork::new(b.build(), 0, 3)
    }

    #[test]
    fn diamond_flow() {
        let r = max_flow(&diamond());
        assert!((r.value - 4.0).abs() < 1e-9);
        // Flow conservation at interior nodes is implied by the value; check
        // flows do not exceed capacities.
        let net = diamond();
        for ((_, _, cap), f) in net.graph.arcs().zip(&r.flows) {
            assert!(*f <= cap + 1e-9);
            assert!(*f >= -1e-9);
        }
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let mut b = GraphBuilder::new_directed(3);
        b.add_edge(0, 1, 5.0);
        let net = FlowNetwork::new(b.build(), 0, 2);
        assert_eq!(max_flow(&net).value, 0.0);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.1-style network, max flow 23.
        let mut b = GraphBuilder::new_directed(6);
        b.add_edge(0, 1, 16.0);
        b.add_edge(0, 2, 13.0);
        b.add_edge(1, 2, 10.0);
        b.add_edge(2, 1, 4.0);
        b.add_edge(1, 3, 12.0);
        b.add_edge(3, 2, 9.0);
        b.add_edge(2, 4, 14.0);
        b.add_edge(4, 3, 7.0);
        b.add_edge(3, 5, 20.0);
        b.add_edge(4, 5, 4.0);
        let net = FlowNetwork::new(b.build(), 0, 5);
        assert!((max_flow(&net).value - 23.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_capacity_sums() {
        let mut b = GraphBuilder::new_directed(2);
        b.add_edge(0, 1, 1.5);
        b.add_edge(0, 1, 2.5); // merged by the builder into capacity 4
        let net = FlowNetwork::new(b.build(), 0, 1);
        assert!((max_flow(&net).value - 4.0).abs() < 1e-9);
    }
}
