//! Approximate max-flow via quasi-stable coloring (Sec. 4.2, Theorem 6).
//!
//! Given a network `G = (X, c, {s}, {t})` and a coloring in which the source
//! and the sink have their own colors, Theorem 6 sandwiches the true
//! max-flow between the max-flows of two reduced networks:
//!
//! * `Ĝ₂` with capacities `ĉ₂(i,j) = c(P_i, P_j)` (total inter-color
//!   capacity) — an **upper bound**;
//! * `Ĝ₁` with capacities `ĉ₁(i,j) = maxUFlow(P_i, P_j, c)` (maximum uniform
//!   flow between the colors) — a **lower bound**.
//!
//! The practical approximation used in the paper's evaluation solves the
//! upper-bound network `Ĝ₂`; the lower bound is provided for validation and
//! for the Theorem 6 property tests.

use crate::dinic;
use crate::network::{FlowNetwork, FlowResult};
use crate::uniform_flow::max_uniform_flow;
use qsc_core::reduced::reduced_graph_with;
use qsc_core::rothko::{Rothko, RothkoConfig};
use qsc_core::Partition;
use qsc_graph::{Bipartite, Graph};

/// Configuration for the coloring-based max-flow approximation.
#[derive(Clone, Debug)]
pub struct FlowApproxConfig {
    /// Color budget (including the two reserved colors for source and sink).
    pub max_colors: usize,
    /// Optional q-error target (alternative stopping rule).
    pub target_error: f64,
}

impl FlowApproxConfig {
    /// Budget-based configuration (the paper uses `α = β = 0` for flows).
    pub fn with_max_colors(max_colors: usize) -> Self {
        FlowApproxConfig {
            max_colors,
            target_error: 0.0,
        }
    }
}

/// Result of the coloring-based approximation.
#[derive(Clone, Debug)]
pub struct ApproxFlow {
    /// The approximate max-flow value (the upper bound `maxFlow(Ĝ₂)`).
    pub value: f64,
    /// Number of colors actually used.
    pub colors: usize,
    /// Maximum q-error of the coloring.
    pub max_q_error: f64,
    /// The coloring of the original nodes.
    pub partition: Partition,
}

/// The initial partition for coloring a flow network: every node in one
/// color except the source and sink, which are pinned to singleton colors
/// (Rothko only ever splits, so they stay singletons).
pub fn pinned_initial(network: &FlowNetwork) -> Partition {
    let n = network.num_nodes();
    let mut assignment = vec![0u32; n];
    assignment[network.source as usize] = 1;
    assignment[network.sink as usize] = 2;
    Partition::from_assignment(&assignment)
}

/// A coloring of a flow network with the source and sink pinned to their own
/// colors.
pub fn color_network(network: &FlowNetwork, config: &FlowApproxConfig) -> Partition {
    let initial = pinned_initial(network);
    let rothko_config = RothkoConfig {
        max_colors: config.max_colors.max(3),
        target_error: config.target_error,
        alpha: 0.0,
        beta: 0.0,
        initial: Some(initial),
        ..Default::default()
    };
    Rothko::new(rothko_config).run(&network.graph).partition
}

/// Build the upper-bound reduced network `Ĝ₂` for an arbitrary coloring in
/// which the source and sink are singletons. Returns the reduced network and
/// the color ids of the source and sink.
pub fn reduced_network_upper(
    network: &FlowNetwork,
    partition: &Partition,
) -> (FlowNetwork, u32, u32) {
    assert_eq!(partition.num_nodes(), network.num_nodes());
    let s_color = partition.color_of(network.source);
    let t_color = partition.color_of(network.sink);
    assert_eq!(partition.size(s_color), 1, "source must have its own color");
    assert_eq!(partition.size(t_color), 1, "sink must have its own color");
    let reduced: Graph = reduced_graph_with(&network.graph, partition, |i, j, sum, _, _| {
        if i == j {
            0.0 // self-loops carry no s-t flow
        } else {
            sum
        }
    });
    (
        FlowNetwork::new(reduced, s_color, t_color),
        s_color,
        t_color,
    )
}

/// Build the lower-bound reduced network `Ĝ₁` (uniform-flow capacities).
/// This requires one max-uniform-flow computation per pair of adjacent
/// colors and is intended for validation on small/medium networks.
pub fn reduced_network_lower(
    network: &FlowNetwork,
    partition: &Partition,
    tolerance: f64,
) -> FlowNetwork {
    let s_color = partition.color_of(network.source);
    let t_color = partition.color_of(network.sink);
    let g = &network.graph;
    let k = partition.num_colors();
    let mut builder = qsc_graph::GraphBuilder::new_directed(k);
    for i in 0..k as u32 {
        for j in 0..k as u32 {
            if i == j {
                continue;
            }
            // Collect the bipartite graph between colors i and j.
            let members_i = partition.members(i);
            let mut index_of_j = std::collections::HashMap::new();
            for (idx, &v) in partition.members(j).iter().enumerate() {
                index_of_j.insert(v, idx as u32);
            }
            let mut edges = Vec::new();
            for (xi, &u) in members_i.iter().enumerate() {
                for (v, w) in g.out_edges(u) {
                    if let Some(&yj) = index_of_j.get(&v) {
                        edges.push((xi as u32, yj, w));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            let bip = Bipartite::from_edges(members_i.len(), partition.size(j), &edges);
            let capacity = max_uniform_flow(&bip, tolerance);
            if capacity > 0.0 {
                builder.add_edge(i, j, capacity);
            }
        }
    }
    FlowNetwork::new(builder.build(), s_color, t_color)
}

/// Approximate the max-flow of a network: color it with Rothko, build the
/// reduced network `Ĝ₂`, and solve the (much smaller) reduced problem.
pub fn approximate_max_flow(network: &FlowNetwork, config: &FlowApproxConfig) -> ApproxFlow {
    let partition = color_network(network, config);
    approximate_with_partition(network, partition)
}

/// Approximate the max-flow with a caller-supplied coloring (the source and
/// sink must be singleton colors).
pub fn approximate_with_partition(network: &FlowNetwork, partition: Partition) -> ApproxFlow {
    let (reduced, _, _) = reduced_network_upper(network, &partition);
    let result = dinic::max_flow(&reduced);
    let max_q_error = qsc_core::q_error::max_q_error(&network.graph, &partition);
    ApproxFlow {
        value: result.value,
        colors: partition.num_colors(),
        max_q_error,
        partition,
    }
}

/// Exact max-flow (push-relabel), provided here for convenient comparison.
pub fn exact_max_flow(network: &FlowNetwork) -> FlowResult {
    crate::push_relabel::max_flow(network)
}

/// Relative error metric used throughout the paper's evaluation:
/// `max(v/v̂, v̂/v)` (1.0 is perfect). Returns `f64::INFINITY` if exactly one
/// of the two values is zero and 1.0 if both are.
pub fn relative_error(actual: f64, predicted: f64) -> f64 {
    if actual == 0.0 && predicted == 0.0 {
        return 1.0;
    }
    if actual <= 0.0 || predicted <= 0.0 {
        return f64::INFINITY;
    }
    (actual / predicted).max(predicted / actual)
}

/// Lift the reduced flow value to a statement about the original network
/// (identity for the value; kept for symmetry with the LP API). The
/// `source`/`sink` arguments are unused but documented for clarity.
pub fn reduced_flow_is_upper_bound(reduced_value: f64, exact_value: f64) -> bool {
    reduced_value + 1e-6 >= exact_value
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::{generators, GraphBuilder};

    fn small_network() -> FlowNetwork {
        let (net, _) = crate::generators::grid_flow_network(6, 6, 4.0, 0.4, 7);
        net
    }

    #[test]
    fn theorem6_sandwich_on_grid() {
        let net = small_network();
        let exact = dinic::max_flow(&net).value;
        let partition = color_network(&net, &FlowApproxConfig::with_max_colors(10));
        let (upper_net, _, _) = reduced_network_upper(&net, &partition);
        let upper = dinic::max_flow(&upper_net).value;
        let lower_net = reduced_network_lower(&net, &partition, 1e-6);
        let lower = dinic::max_flow(&lower_net).value;
        assert!(
            lower <= exact + 1e-6,
            "lower bound {lower} exceeds exact {exact}"
        );
        assert!(
            upper + 1e-6 >= exact,
            "upper bound {upper} below exact {exact}"
        );
    }

    #[test]
    fn stable_coloring_is_exact_for_symmetric_network() {
        // Corollary 9 (2): a stable coloring preserves the max-flow value.
        // Build a network whose stable coloring is coarse: two parallel,
        // identical paths.
        let mut b = GraphBuilder::new_directed(6);
        // s = 0, t = 5; two symmetric middle paths 1-3 and 2-4.
        b.add_edge(0, 1, 2.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 3, 1.0);
        b.add_edge(2, 4, 1.0);
        b.add_edge(3, 5, 2.0);
        b.add_edge(4, 5, 2.0);
        let net = FlowNetwork::new(b.build(), 0, 5);
        let exact = dinic::max_flow(&net).value;
        assert!((exact - 2.0).abs() < 1e-9);
        // Coloring: {s}, {1,2}, {3,4}, {t} — a stable coloring.
        let partition = Partition::from_classes(6, vec![vec![0], vec![1, 2], vec![3, 4], vec![5]]);
        assert_eq!(qsc_core::q_error::max_q_error(&net.graph, &partition), 0.0);
        let approx = approximate_with_partition(&net, partition.clone());
        assert!((approx.value - exact).abs() < 1e-9);
        let lower_net = reduced_network_lower(&net, &partition, 1e-9);
        let lower = dinic::max_flow(&lower_net).value;
        assert!((lower - exact).abs() < 1e-4);
    }

    #[test]
    fn pathological_network_upper_bound_overestimates() {
        // Fig. 4 / Example 7 style: the layer coloring is 1-stable yet the
        // ĉ₂ upper bound exceeds the true flow.
        let layer_size = 6;
        let layers = 5;
        let (g, s, t) = generators::pathological_flow_layers(layers, layer_size);
        let n = g.num_nodes();
        let net = FlowNetwork::new(g, s, t);
        let exact = dinic::max_flow(&net).value;
        // Layer coloring: {s}, each layer, {t}.
        let mut assignment = vec![0u32; n];
        for l in 0..layers {
            for i in 0..layer_size {
                assignment[l * layer_size + i] = l as u32;
            }
        }
        assignment[s as usize] = layers as u32;
        assignment[t as usize] = layers as u32 + 1;
        let partition = Partition::from_assignment(&assignment);
        let q = qsc_core::q_error::max_q_error(&net.graph, &partition);
        assert!(q <= 1.0, "layer coloring should be 1-stable, got q = {q}");
        let approx = approximate_with_partition(&net, partition.clone());
        assert!(
            approx.value > exact + 0.5,
            "expected overestimate: approx {} vs exact {}",
            approx.value,
            exact
        );
        // And the lower bound collapses to ~0 because the uniform flow of the
        // staircase is zero.
        let lower_net = reduced_network_lower(&net, &partition, 1e-6);
        let lower = dinic::max_flow(&lower_net).value;
        assert!(lower < 0.5, "expected near-zero lower bound, got {lower}");
    }

    #[test]
    fn approximation_converges_with_more_colors() {
        let net = small_network();
        let exact = dinic::max_flow(&net).value;
        let coarse = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(6));
        let fine = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(24));
        let err_coarse = relative_error(exact, coarse.value);
        let err_fine = relative_error(exact, fine.value);
        assert!(
            err_fine <= err_coarse + 0.35,
            "coarse {err_coarse}, fine {err_fine}"
        );
        assert!(fine.colors <= 24);
        assert!(fine.max_q_error <= coarse.max_q_error + 1e-9);
    }

    #[test]
    fn relative_error_metric() {
        assert_eq!(relative_error(4.0, 4.0), 1.0);
        assert_eq!(relative_error(2.0, 4.0), 2.0);
        assert_eq!(relative_error(4.0, 2.0), 2.0);
        assert_eq!(relative_error(0.0, 0.0), 1.0);
        assert!(relative_error(0.0, 1.0).is_infinite());
    }
}
