//! Warm-started max-flow budget sweeps: the flow instantiation of the sweep
//! pipeline (see `qsc_core::sweep`).
//!
//! A Fig. 7-style experiment evaluates the coloring approximation at a list
//! of color budgets. The cold path pays, per budget, a fresh Rothko run, an
//! `O(m)` reduced-network construction, and a from-scratch max-flow solve.
//! [`sweep_max_flow`] instead threads one refinement through all budgets:
//!
//! * the coloring advances incrementally (`ColoringSweep`),
//! * the reduced network's capacity matrix is patched per split
//!   (`ReducedDelta`, `O(deg(moved) + k)`),
//! * the reduced *instance itself* is patched in place per checkpoint
//!   (`PatchedReducedGraph`: only rows/columns of colors dirtied since the
//!   last checkpoint are re-emitted — `O(dirty · k)` instead of the dense
//!   `O(k²)` re-emission, with a `O(k + arcs)` CSR build),
//! * the reduced solve resumes from the previous budget's preflow
//!   ([`crate::push_relabel::WarmFlowSolver`]).
//!
//! The per-budget values equal the cold path's (`approximate_max_flow` at
//! the same budget): the checkpoint partitions are identical to fresh runs,
//! the patched capacity matrix matches the rebuilt one (bit-identically for
//! integer-valued capacities, up to floating-point associativity
//! otherwise), and warm and cold solves of the same reduced network agree
//! on the max-flow value. `tests/tests/sweep_equivalence.rs` pins this down
//! across random networks and budget ladders.

use crate::network::FlowNetwork;
use crate::push_relabel::WarmFlowSolver;
use crate::reduce::pinned_initial;
use qsc_core::reduced::{PatchedReducedGraph, ReducedDelta};
use qsc_core::rothko::RothkoConfig;
use qsc_core::sweep::ColoringSweep;
use std::time::Instant;

/// The reduced-capacity weighting shared by the sweep's emission paths:
/// self-loops carry no s-t flow, and tiny negative residues from
/// incremental cancellation are clamped to the true value, zero.
pub(crate) fn reduced_capacity(i: usize, j: usize, sum: f64) -> f64 {
    if i == j {
        0.0
    } else {
        sum.max(0.0)
    }
}

/// One budget point of a warm-started max-flow sweep.
#[derive(Clone, Debug)]
pub struct FlowSweepPoint {
    /// The requested color budget.
    pub budget: usize,
    /// Colors actually used (may be fewer if the refinement exhausted).
    pub colors: usize,
    /// The approximate max-flow value (upper bound `maxFlow(Ĝ₂)`).
    pub value: f64,
    /// Exact maximum q-error of the checkpoint coloring.
    pub max_q_error: f64,
    /// Wall-clock seconds from the start of the sweep until this budget's
    /// solution was ready (cumulative: the warm pipeline's end-to-end cost
    /// of reaching this budget).
    pub cumulative_seconds: f64,
    /// Relabel operations of the (warm-started) reduced solve.
    pub solver_iterations: usize,
}

/// Sweep the coloring-based max-flow approximation over `budgets`
/// (non-decreasing; each is clamped to at least 3 for the two reserved
/// source/sink colors). `target_error` is the optional q-error stopping
/// rule shared by all budgets (0.0 to disable, as in the paper's sweeps).
pub fn sweep_max_flow(
    network: &FlowNetwork,
    budgets: &[usize],
    target_error: f64,
) -> Vec<FlowSweepPoint> {
    let graph = &network.graph;
    let initial = pinned_initial(network);
    let s_color = initial.color_of(network.source);
    let t_color = initial.color_of(network.sink);
    let config = RothkoConfig {
        max_colors: usize::MAX,
        target_error,
        alpha: 0.0,
        beta: 0.0,
        initial: Some(initial),
        ..Default::default()
    };
    assert!(
        budgets.windows(2).all(|w| w[1] >= w[0]),
        "sweep budgets must be non-decreasing (the sweep only refines)"
    );
    let mut sweep = ColoringSweep::new(graph, config);
    let mut delta = ReducedDelta::new(graph, sweep.partition());
    let mut emitter =
        PatchedReducedGraph::new(&mut delta, |i, j, sum, _, _| reduced_capacity(i, j, sum));
    let mut solver = WarmFlowSolver::new();
    // qsc-audit: allow(no-wallclock-in-results) -- feeds only the reported elapsed_ms metric; flow values, colorings and bounds are computed before the clock is read
    let start = Instant::now();
    budgets
        .iter()
        .map(|&budget| {
            let checkpoint =
                sweep.advance_to(budget.max(3), |p, ev| delta.apply_split(graph, p, ev));
            // Patch the emitted reduced network in place: only rows/columns
            // the splits since the last checkpoint dirtied are re-derived.
            emitter.sync(&mut delta);
            let reduced = emitter.to_graph();
            let result = solver.solve(&FlowNetwork::new(reduced, s_color, t_color));
            FlowSweepPoint {
                budget,
                colors: checkpoint.colors,
                value: result.value,
                max_q_error: checkpoint.max_q_error,
                cumulative_seconds: start.elapsed().as_secs_f64(),
                solver_iterations: result.iterations,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce::{approximate_max_flow, FlowApproxConfig};
    use qsc_graph::generators;

    #[test]
    fn sweep_matches_cold_path_on_unit_capacities() {
        // Unit capacities: all arithmetic is exact, so the warm sweep's
        // values are bit-identical to per-budget cold solves.
        let g = generators::erdos_renyi_nm(60, 360, 5).to_directed();
        let net = FlowNetwork::new(g, 0, 59);
        let budgets = [4usize, 8, 14, 22];
        let points = sweep_max_flow(&net, &budgets, 0.0);
        assert_eq!(points.len(), budgets.len());
        for (point, &budget) in points.iter().zip(budgets.iter()) {
            let cold = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(budget));
            assert_eq!(point.colors, cold.colors, "budget {budget}");
            assert_eq!(point.value, cold.value, "budget {budget}");
            assert_eq!(point.max_q_error, cold.max_q_error, "budget {budget}");
        }
        // Cumulative timings are non-decreasing.
        for w in points.windows(2) {
            assert!(w[1].cumulative_seconds >= w[0].cumulative_seconds);
        }
    }

    #[test]
    fn sweep_on_grid_network_stays_close_to_cold() {
        // Float capacities: equality up to floating-point associativity.
        let (net, _) = crate::generators::grid_flow_network(10, 10, 4.0, 0.5, 11);
        let budgets = [5usize, 9, 16];
        let points = sweep_max_flow(&net, &budgets, 0.0);
        for (point, &budget) in points.iter().zip(budgets.iter()) {
            let cold = approximate_max_flow(&net, &FlowApproxConfig::with_max_colors(budget));
            assert!(
                (point.value - cold.value).abs() <= 1e-9 * (1.0 + cold.value.abs()),
                "budget {budget}: warm {} vs cold {}",
                point.value,
                cold.value
            );
        }
    }
}
