//! # qsc-flow
//!
//! Max-flow substrate and the max-flow application of quasi-stable coloring
//! (Sec. 4.2 of the paper).
//!
//! * [`network::FlowNetwork`] — max-flow problem instances.
//! * [`push_relabel`] — the exact baseline solver (FIFO push-relabel with
//!   gap heuristic and global relabeling), standing in for `GraphsFlows`.
//! * [`dinic`] / [`edmonds_karp`] — additional exact solvers used for
//!   cross-checking and for the reduced problems.
//! * [`mincut`] — minimum s-t cut extraction.
//! * [`uniform_flow`] — maximum *uniform* flow of a bipartite graph
//!   (Definition 5 / Lemma 8), used for the lower-bound capacities `ĉ₁`.
//! * [`reduce`] — the coloring-based approximation of Theorem 6 (reduced
//!   networks `Ĝ₁`, `Ĝ₂`).
//! * [`sweep`] — warm-started budget sweeps: one refinement threaded
//!   through every color budget, with the reduced network patched per split
//!   and the reduced solve resumed from the previous preflow
//!   ([`push_relabel::WarmFlowSolver`]).
//! * [`generators`] — vision-style grid instances and layered random
//!   networks standing in for the paper's benchmark datasets.
//!
//! ## Example
//!
//! ```
//! use qsc_flow::generators::grid_flow_network;
//! use qsc_flow::reduce::{approximate_max_flow, relative_error, FlowApproxConfig};
//! use qsc_flow::dinic;
//!
//! let (network, _) = grid_flow_network(12, 12, 3.0, 0.2, 42);
//! let exact = dinic::max_flow(&network).value;
//! let approx = approximate_max_flow(&network, &FlowApproxConfig::with_max_colors(20));
//! // The reduced-network value upper-bounds the true flow (Theorem 6).
//! assert!(approx.value + 1e-6 >= exact);
//! assert!(relative_error(exact, approx.value) < 3.0);
//! ```

#![forbid(unsafe_code)]

pub mod dinic;
pub mod edmonds_karp;
pub mod generators;
pub mod mincut;
pub mod network;
pub mod push_relabel;
pub mod reduce;
pub mod sweep;
pub mod uniform_flow;

pub use mincut::{min_cut, MinCut};
pub use network::{FlowNetwork, FlowResult, ResidualGraph};
pub use push_relabel::WarmFlowSolver;
pub use reduce::{approximate_max_flow, ApproxFlow, FlowApproxConfig};
pub use sweep::{sweep_max_flow, FlowSweepPoint};
pub use uniform_flow::max_uniform_flow;
