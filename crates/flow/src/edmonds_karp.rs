//! Edmonds–Karp (BFS augmenting paths). Simple reference implementation used
//! to cross-check the faster solvers in tests.

use crate::network::{FlowNetwork, FlowResult, ResidualGraph};
use std::collections::VecDeque;

const EPS: f64 = 1e-12;

/// Compute a maximum flow with the Edmonds–Karp algorithm.
pub fn max_flow(network: &FlowNetwork) -> FlowResult {
    let mut rg = ResidualGraph::from_graph(&network.graph);
    let n = rg.num_nodes();
    let source = network.source;
    let sink = network.sink;
    let mut total = 0.0;
    let mut augmentations = 0usize;
    loop {
        // BFS for the shortest augmenting path, remembering the edge used to
        // reach each node.
        let mut pred_edge = vec![u32::MAX; n];
        let mut visited = vec![false; n];
        visited[source as usize] = true;
        let mut queue = VecDeque::new();
        queue.push_back(source);
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in rg.edges_of(u) {
                let v = rg.target(e);
                if !visited[v as usize] && rg.capacity(e) > EPS {
                    visited[v as usize] = true;
                    pred_edge[v as usize] = e;
                    if v == sink {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !visited[sink as usize] {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut v = sink;
        while v != source {
            let e = pred_edge[v as usize];
            bottleneck = bottleneck.min(rg.capacity(e));
            v = rg.target(e ^ 1);
        }
        // Augment.
        let mut v = sink;
        while v != source {
            let e = pred_edge[v as usize];
            rg.push(e, bottleneck);
            v = rg.target(e ^ 1);
        }
        total += bottleneck;
        augmentations += 1;
    }
    FlowResult {
        value: total,
        flows: rg.arc_flows(),
        iterations: augmentations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsc_graph::GraphBuilder;

    #[test]
    fn small_network_matches_known_value() {
        let mut b = GraphBuilder::new_directed(4);
        b.add_edge(0, 1, 3.0);
        b.add_edge(0, 2, 2.0);
        b.add_edge(1, 2, 5.0);
        b.add_edge(1, 3, 2.0);
        b.add_edge(2, 3, 3.0);
        let net = FlowNetwork::new(b.build(), 0, 3);
        let r = max_flow(&net);
        assert!((r.value - 5.0).abs() < 1e-9);
        assert!(r.iterations >= 2);
    }

    #[test]
    fn agrees_with_dinic_on_random_networks() {
        use qsc_graph::generators::erdos_renyi_nm;
        for seed in 0..5 {
            let g = erdos_renyi_nm(30, 120, seed).to_directed();
            let net = FlowNetwork::new(g, 0, 29);
            let ek = max_flow(&net).value;
            let dinic = crate::dinic::max_flow(&net).value;
            assert!(
                (ek - dinic).abs() < 1e-6,
                "seed {seed}: EK {ek} vs Dinic {dinic}"
            );
        }
    }
}
