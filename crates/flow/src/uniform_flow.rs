//! Maximum *uniform* flow in a bipartite graph (Definition 5, Lemma 8).
//!
//! A flow in a bipartite graph `(X, Y, c)` is *uniform* when every left node
//! sends the same amount and every right node receives the same amount. The
//! maximum uniform flow `maxUFlow` defines the lower-bound capacities `ĉ₁`
//! of Theorem 6; the upper-bound capacities `ĉ₂` are simply the total
//! capacity `c(X, Y)`.
//!
//! `maxUFlow` is computed by binary search on the uniform value `F`: a
//! uniform flow of value `F` exists iff the auxiliary network
//! `s → x (F/|X|)`, `x → y (c(x,y))`, `y → t (F/|Y|)` has max-flow `F`
//! (uniform flows scale, so feasibility is monotone in `F`).

use crate::dinic;
use crate::network::ResidualGraph;
use qsc_graph::Bipartite;

/// Compute the maximum uniform flow value of a bipartite graph.
///
/// `tolerance` controls the binary-search precision (absolute).
pub fn max_uniform_flow(bipartite: &Bipartite, tolerance: f64) -> f64 {
    let nx = bipartite.num_left();
    let ny = bipartite.num_right();
    if nx == 0 || ny == 0 || bipartite.num_edges() == 0 {
        return 0.0;
    }
    // Upper bound: every left node must send F/|X| <= c(x, Y) and every right
    // node must receive F/|Y| <= c(X, y).
    let min_left = bipartite
        .left_weights()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    let min_right = bipartite
        .right_weights()
        .into_iter()
        .fold(f64::INFINITY, f64::min);
    let mut hi = (min_left * nx as f64).min(min_right * ny as f64);
    if hi <= 0.0 {
        return 0.0;
    }
    // Quick accept: if the full value hi is feasible, no search is needed.
    if feasible(bipartite, hi, tolerance) {
        return hi;
    }
    let mut lo = 0.0f64;
    while hi - lo > tolerance.max(1e-12) * (1.0 + hi) {
        let mid = 0.5 * (lo + hi);
        if feasible(bipartite, mid, tolerance) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

/// Whether a uniform flow of value `f` exists.
fn feasible(bipartite: &Bipartite, f: f64, tolerance: f64) -> bool {
    if f <= 0.0 {
        return true;
    }
    let nx = bipartite.num_left();
    let ny = bipartite.num_right();
    // Nodes: 0..nx left, nx..nx+ny right, source = nx+ny, sink = nx+ny+1.
    let source = (nx + ny) as u32;
    let sink = (nx + ny + 1) as u32;
    let mut rg = ResidualGraph::with_nodes(nx + ny + 2);
    let per_left = f / nx as f64;
    let per_right = f / ny as f64;
    for x in 0..nx as u32 {
        rg.add_edge(source, x, per_left);
    }
    for y in 0..ny as u32 {
        rg.add_edge((nx + y as usize) as u32, sink, per_right);
    }
    for (x, y, c) in bipartite.edges() {
        rg.add_edge(x, (nx + y as usize) as u32, c);
    }
    let (value, _) = dinic::run(&mut rg, source, sink);
    value >= f - tolerance.max(1e-9) * (1.0 + f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn biregular_graph_reaches_total_capacity() {
        // Corollary 9 (1): a biregular bipartite graph has
        // maxUFlow = c(X, Y).
        // K_{3,3} with unit capacities: total 9.
        let b = Bipartite::from_dense(&[
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
            vec![1.0, 1.0, 1.0],
        ]);
        let f = max_uniform_flow(&b, 1e-9);
        assert!((f - 9.0).abs() < 1e-6, "got {f}");
    }

    #[test]
    fn circulant_biregular_graph() {
        // Each left node connects to 2 of 4 right nodes in a circulant
        // pattern: (2,2)-biregular, maxUFlow = 8.
        let mut rows = vec![vec![0.0; 4]; 4];
        for (i, row) in rows.iter_mut().enumerate() {
            row[i] = 1.0;
            row[(i + 1) % 4] = 1.0;
        }
        let b = Bipartite::from_dense(&rows);
        let f = max_uniform_flow(&b, 1e-9);
        assert!((f - 8.0).abs() < 1e-5, "got {f}");
    }

    #[test]
    fn fig4_staircase_uniform_flow_is_zero() {
        // Example 7: the staircase bipartite graph between consecutive
        // layers admits only the zero uniform flow — node 0 sends to two
        // right nodes that each must receive the full per-node share, which
        // forces the share to be zero.
        let edges = qsc_graph::generators::staircase_bipartite(6);
        let b = Bipartite::from_edges(6, 6, &edges);
        assert_eq!(b.total_weight(), 7.0);
        let f = max_uniform_flow(&b, 1e-9);
        assert!(f < 1e-6, "expected zero uniform flow, got {f}");
    }

    #[test]
    fn empty_and_disconnected_cases() {
        let empty = Bipartite::from_edges(3, 3, &[]);
        assert_eq!(max_uniform_flow(&empty, 1e-9), 0.0);
        // One isolated left node forces zero uniform flow.
        let partial = Bipartite::from_edges(2, 1, &[(0, 0, 5.0)]);
        assert_eq!(max_uniform_flow(&partial, 1e-9), 0.0);
    }

    #[test]
    fn uniform_flow_leq_total_capacity() {
        let b = Bipartite::from_dense(&[vec![2.0, 0.0], vec![1.0, 3.0]]);
        let f = max_uniform_flow(&b, 1e-9);
        assert!(f <= b.total_weight() + 1e-9);
        assert!(f >= 0.0);
    }
}
